"""Query-service read path: artifact build, load, and point lookups.

The query artifact exists so the read path answers in microseconds with
zero CPM recompute; this bench freezes the session context into an
artifact, round-trips it through save -> mmap load, and times the four
point-query families a served artifact answers (membership, band,
lowest common community, top-N).  Correctness comes first: every timed
lookup family is checked against the live hierarchy/tree objects before
any number is recorded, so the timings measure the same answers.

Persisted measurements (``BENCH_*.json`` config, gated by
``check_bench_regression.py``): ``query_lookup_seconds_*`` are
many-iteration loop totals sized to clear the gate's tiny-baseline
floor (0.05 s) so the latency trajectory is actually enforced; the
per-call ``query_lookup_us_*`` microsecond figures and the build/load
costs ride along ungated.  The build's ``query.build`` span lands in
the manifest via ``bench_tracer``/``bench_metrics``.

``test_query_service_concurrent`` drives the *served* path: a live
:class:`~repro.query.server.QueryServer` hammered over HTTP by
keep-alive client threads, once in the legacy global-lock mode
(``serialize_requests=True``) and once concurrently.  It records
``query_throughput_rps`` (gated, higher-is-better: multi-threaded
serving must not silently lose throughput) and the per-endpoint
``query_p99_seconds_*`` tail latencies straight from the server's
log-bucketed histograms.  The concurrent-vs-serialized speedup floor
only *fails* under ``REPRO_BENCH_REQUIRE_SPEEDUP=1`` (set by CI, which
has multiple vCPUs) — a single-core dev box cannot overlap requests
and would fail the floor for hardware reasons, exactly like the shard
bench's treatment.
"""

from __future__ import annotations

import http.client
import os
import threading
import time

from repro.api import load_query_artifact, make_query_server
from repro.obs.manifest import graph_fingerprint
from repro.obs.metrics import MetricsRegistry
from repro.query import LookupEngine, build_artifact
from repro.report.figures import ascii_table

#: Loop counts per lookup family, sized so each loop total clears the
#: regression gate's 0.05 s floor by a wide margin on CI hardware.
_LOOPS = {"membership": 50_000, "band": 40_000, "lca": 20_000, "top": 10_000}

#: Concurrent-load shape: client threads x keep-alive requests each.
_CLIENTS = 8
_REQUESTS_PER_CLIENT = 300

#: Required concurrent/serialized throughput ratio when the floor is
#: armed (REPRO_BENCH_REQUIRE_SPEEDUP=1; CI runs with >= 4 vCPUs).
_SPEEDUP_FLOOR = 1.05


def test_query_service_lookups(
    benchmark, context, emit, bench_record, bench_tracer, bench_metrics, tmp_path
):
    hierarchy = context.hierarchy

    start = time.perf_counter()
    built = build_artifact(
        hierarchy,
        tree=context.tree,
        graph=context.graph,
        csr=context.csr,
        tracer=bench_tracer,
        metrics=bench_metrics,
    )
    bench_record["query_build_seconds"] = round(time.perf_counter() - start, 4)

    path = tmp_path / "bench.rqart"
    built.save(path)
    start = time.perf_counter()
    artifact = load_query_artifact(path)
    bench_record["query_load_seconds"] = round(time.perf_counter() - start, 4)
    bench_record["query_artifact_bytes"] = path.stat().st_size

    engine = LookupEngine(artifact)
    nodes = artifact.nodes
    assert artifact.fingerprint == graph_fingerprint(context.graph)

    # Exactness before timing: the artifact must answer identically to
    # the live objects for every family about to be measured.
    for node in nodes[:50]:
        assert engine.memberships(node) == hierarchy.membership_of(node)
        assert engine.band(node)["max_k"] == max(hierarchy.membership_of(node))
    pair_members = artifact.members(0)
    lca = engine.lowest_common(pair_members[0], pair_members[1])
    assert lca is not None and lca["k"] >= artifact.orders[0]
    top = engine.top("density", n=10)
    densities = [record["link_density"] for record in top]
    assert densities == sorted(densities, reverse=True)

    # Timed loops — each family cycles through real ASes so the postings
    # slices touched vary the way served traffic would.
    n = len(nodes)
    timings: dict[str, tuple[float, float]] = {}

    def _loop(name: str, fn) -> None:
        loops = _LOOPS[name]
        start = time.perf_counter()
        for i in range(loops):
            fn(i)
        total = time.perf_counter() - start
        timings[name] = (total, total / loops)
        bench_record[f"query_lookup_seconds_{name}"] = round(total, 4)
        bench_record[f"query_lookup_us_{name}"] = round(total / loops * 1e6, 2)

    _loop("membership", lambda i: engine.memberships(nodes[i % n]))
    _loop("band", lambda i: engine.band(nodes[i % n]))
    _loop("lca", lambda i: engine.lowest_common(nodes[i % n], nodes[(i * 7 + 1) % n]))
    _loop("top", lambda i: engine.top("density", n=10))

    # The timed target for pytest-benchmark: one membership lookup.
    benchmark(lambda: engine.memberships(nodes[0]))

    table = ascii_table(
        ["lookup", "loops", "total (s)", "per call (us)"],
        [
            [name, _LOOPS[name], round(total, 3), round(per_call * 1e6, 2)]
            for name, (total, per_call) in timings.items()
        ],
        title=(
            f"query-service point lookups "
            f"({artifact.n_communities} communities, {artifact.n_nodes} ASes, "
            f"{path.stat().st_size} byte artifact)"
        ),
    )
    emit("query_service_lookups", table)

    artifact.close()


def _serve_and_hammer(artifact, nodes, *, serialize: bool) -> tuple[float, dict]:
    """Serve ``artifact`` and hammer it; returns (wall, metrics dict).

    ``_CLIENTS`` threads each issue ``_REQUESTS_PER_CLIENT`` requests
    over one keep-alive :class:`http.client.HTTPConnection`, cycling
    membership/band/top paths the way served traffic would.  Every
    response is checked to be 200.
    """
    metrics = MetricsRegistry()
    server = make_query_server(artifact, metrics=metrics, serialize_requests=serialize)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    n = len(nodes)
    bad: list[int] = []

    def client(t: int) -> None:
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            for i in range(_REQUESTS_PER_CLIENT):
                node = nodes[(t * _REQUESTS_PER_CLIENT + i) % n]
                path = (
                    f"/membership?as={node}",
                    f"/band?as={node}",
                    "/top?metric=density&n=5",
                )[i % 3]
                conn.request("GET", path)
                response = conn.getresponse()
                response.read()
                if response.status != 200:
                    bad.append(response.status)
        finally:
            conn.close()

    threads = [threading.Thread(target=client, args=(t,)) for t in range(_CLIENTS)]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - start
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)
    assert not bad, f"non-200 responses under load: {bad[:5]}"
    data = metrics.to_dict()
    total = _CLIENTS * _REQUESTS_PER_CLIENT
    assert data["counters"]["query.requests"] == total, "lost counter updates"
    return wall, data


def test_query_service_concurrent(context, emit, bench_record, tmp_path):
    built = build_artifact(
        context.hierarchy, tree=context.tree, graph=context.graph, csr=context.csr
    )
    path = tmp_path / "bench-live.rqart"
    built.save(path)
    artifact = load_query_artifact(path)
    nodes = artifact.nodes
    total = _CLIENTS * _REQUESTS_PER_CLIENT

    serial_wall, _serial_data = _serve_and_hammer(artifact, nodes, serialize=True)
    concurrent_wall, data = _serve_and_hammer(artifact, nodes, serialize=False)

    serial_rps = total / serial_wall
    concurrent_rps = total / concurrent_wall
    speedup = concurrent_rps / serial_rps
    bench_record["query_concurrent_requests"] = total
    bench_record["query_concurrent_clients"] = _CLIENTS
    bench_record["query_throughput_rps"] = round(concurrent_rps, 1)
    bench_record["query_throughput_serial_rps"] = round(serial_rps, 1)
    bench_record["query_concurrent_speedup"] = round(speedup, 3)

    rows = []
    histograms = data["histograms"]
    for endpoint in ("membership", "band", "top"):
        summary = histograms[f'query.request_seconds{{endpoint="{endpoint}"}}']
        bench_record[f"query_p99_seconds_{endpoint}"] = round(summary["p99"], 6)
        bench_record[f"query_p50_seconds_{endpoint}"] = round(summary["p50"], 6)
        rows.append(
            [
                endpoint,
                summary["count"],
                round(summary["p50"] * 1e6, 1),
                round(summary["p99"] * 1e6, 1),
                round(summary["max"] * 1e6, 1),
            ]
        )
        # Sanity on the live histograms: exact counts survived the
        # concurrent writers, and the tail dominates the median.
        assert summary["count"] == total // 3
        assert summary["p99"] >= summary["p50"] > 0.0

    table = ascii_table(
        ["endpoint", "requests", "p50 (us)", "p99 (us)", "max (us)"],
        rows,
        title=(
            f"served lookups under concurrent load "
            f"({_CLIENTS} clients x {_REQUESTS_PER_CLIENT} reqs: "
            f"serialized {serial_rps:,.0f} rps -> concurrent {concurrent_rps:,.0f} rps, "
            f"{speedup:.2f}x)"
        ),
    )
    emit("query_service_concurrent", table)

    if os.environ.get("REPRO_BENCH_REQUIRE_SPEEDUP"):
        assert speedup >= _SPEEDUP_FLOOR, (
            f"concurrent serving {speedup:.2f}x vs serialized; "
            f"expected >= {_SPEEDUP_FLOOR}x with the global lock removed"
        )

    artifact.close()
