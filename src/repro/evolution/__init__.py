"""Temporal extension: growing-topology snapshots and community
tracking (birth / growth / merge / split events across campaigns).
"""

from .snapshots import TopologyEvolution
from .tracking import (
    STRATEGIES,
    CommunityEvent,
    CommunityTimeline,
    EventKind,
    EvolutionTracker,
)

__all__ = [
    "TopologyEvolution",
    "EvolutionTracker",
    "CommunityEvent",
    "CommunityTimeline",
    "EventKind",
    "STRATEGIES",
]
