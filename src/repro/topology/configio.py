"""Generator configuration files.

Experiment sweeps want configs under version control:
:func:`config_to_dict` / :func:`config_from_dict` round-trip a
:class:`GeneratorConfig` (including the nested IXP specs) through plain
JSON, and the CLI accepts ``generate --config my-internet.json``.
Unknown keys are rejected — a typo'd knob must fail loudly, not
silently fall back to a default.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from .generator import CrownBlockSpec, GeneratorConfig, MediumIXPSpec, SmallIXPSpec

__all__ = ["config_to_dict", "config_from_dict", "save_config", "load_config"]

_SPEC_TYPES = {
    "crown_blocks": CrownBlockSpec,
    "medium_ixps": MediumIXPSpec,
    "small_ixps": SmallIXPSpec,
}


def config_to_dict(config: GeneratorConfig) -> dict:
    """A JSON-ready dictionary of every knob."""
    out: dict = {}
    for field in dataclasses.fields(config):
        value = getattr(config, field.name)
        if field.name in _SPEC_TYPES:
            out[field.name] = [dataclasses.asdict(spec) for spec in value]
        elif isinstance(value, tuple):
            out[field.name] = list(value)
        else:
            out[field.name] = value
    return out


def config_from_dict(document: dict) -> GeneratorConfig:
    """Rebuild a config; raises on unknown keys or malformed specs."""
    field_names = {field.name for field in dataclasses.fields(GeneratorConfig)}
    unknown = set(document) - field_names
    if unknown:
        raise ValueError(f"unknown GeneratorConfig keys: {sorted(unknown)}")
    kwargs: dict = {}
    for name, value in document.items():
        if name in _SPEC_TYPES:
            spec_type = _SPEC_TYPES[name]
            kwargs[name] = tuple(spec_type(**entry) for entry in value)
        elif isinstance(value, list):
            kwargs[name] = tuple(value)
        else:
            kwargs[name] = value
    return GeneratorConfig(**kwargs)


def save_config(config: GeneratorConfig, path: str | Path) -> None:
    """Write the config as indented JSON."""
    Path(path).write_text(
        json.dumps(config_to_dict(config), indent=2, sort_keys=True), encoding="utf-8"
    )


def load_config(path: str | Path) -> GeneratorConfig:
    """Read a config written by :func:`save_config` (or by hand)."""
    return config_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))
