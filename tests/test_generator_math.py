"""The generator's clique arithmetic, asserted.

docs/generator.md derives the community-tree consequences of each knob
(apex order and size, the crown merge order, medium-IXP branch ranges).
These tests build *custom* configurations and verify the arithmetic on
the extracted hierarchy — the knob → phenomenon map is a contract, not
folklore.
"""

import pytest

from repro.core import CommunityTree, LightweightParallelCPM
from repro.topology import GeneratorConfig, generate_topology
from repro.topology.generator import CrownBlockSpec, MediumIXPSpec, SmallIXPSpec


def _custom_config(**overrides):
    """A minimal, fast config with explicit crown/medium structure."""
    base = dict(
        shared_pool=8,
        crown_blocks=(
            CrownBlockSpec("AMS-IX", "NL", base_extra=4, n_ext=3),
            CrownBlockSpec("LINX", "GB", base_extra=2, n_ext=2),
        ),
        medium_ixps=(
            MediumIXPSpec("MSK-IX", "RU", core_size=8, pool_members=4, periphery=4),
        ),
        small_ixps=(SmallIXPSpec("VIX", "AT", 5),),
        large_periphery=8,
        periphery_attach_min=3,
        n_tier1=5,
        n_countries=8,
        n_stubs=80,
        n_carrier_stubs=25,
        n_isolated_triangles=4,
    )
    base.update(overrides)
    return GeneratorConfig(**base)


@pytest.fixture(scope="module")
def custom_run():
    config = _custom_config()
    dataset = generate_topology(config, seed=5)
    hierarchy = LightweightParallelCPM(dataset.graph).run()
    return config, dataset, hierarchy


class TestCrownArithmetic:
    def test_max_order_is_pool_plus_base_extra_plus_one(self, custom_run):
        config, _, hierarchy = custom_run
        biggest = max(
            config.shared_pool + block.base_extra + 1 for block in config.crown_blocks
        )
        assert hierarchy.max_k == biggest  # 8 + 4 + 1 = 13

    def test_apex_size_is_base_plus_extensions(self, custom_run):
        config, _, hierarchy = custom_run
        apex_block = config.crown_blocks[0]
        expected = config.shared_pool + apex_block.base_extra + apex_block.n_ext
        apex = hierarchy[hierarchy.max_k][0]
        assert apex.size == expected  # 12 base + 3 ext = 15

    def test_blocks_merge_exactly_at_pool_plus_one(self, custom_run):
        """Two blocks overlap in the pool: separate above pool+1,
        merged at and below it."""
        config, _, hierarchy = custom_run
        merge_k = config.shared_pool + 1  # 9
        second_top = config.shared_pool + config.crown_blocks[1].base_extra + 1  # 11
        # Above the merge order, both blocks are present where both
        # have cliques.
        assert len(hierarchy[second_top]) >= 2
        # At the merge order, a single community holds both bases.
        pool_merged = hierarchy[merge_k]
        biggest = pool_merged[0]
        for block_top in (hierarchy.max_k, second_top):
            block_apex = hierarchy[block_top][0]
            assert set(block_apex.members) <= set(biggest.members)

    def test_extensions_are_not_mutually_adjacent(self, custom_run):
        """Ext members attach to the base only — the apex community is
        a union of overlapping cliques, not one clique."""
        config, dataset, hierarchy = custom_run
        apex = hierarchy[hierarchy.max_k][0]
        assert not dataset.graph.is_clique(apex.members)


class TestMediumArithmetic:
    def test_branch_parallel_range(self, custom_run):
        """The medium core (q pool members) is parallel for
        k in [q+2, core] and inside main at k = q+1."""
        config, dataset, hierarchy = custom_run
        spec = config.medium_ixps[0]
        tree = CommunityTree(hierarchy)
        core_members = {
            asn
            for asn in dataset.ixps[spec.name].participants
        }
        q = spec.pool_members
        # Parallel at the top of the branch: some community at
        # k = core_size holds the core and is not main.
        top_cover = hierarchy[spec.core_size]
        holders = [c for c in top_cover if len(core_members & set(c.members)) >= spec.core_size - 1]
        assert holders
        assert any(not tree.is_main(c) for c in holders)
        # Merged at q+1: the main community contains the whole core.
        main = tree.main_community(q + 1)
        core_roles = ("pool_carrier", "medium_core")
        core_ases = [a for a in core_members if dataset.as_roles.get(a) in core_roles]
        inside = sum(1 for a in core_ases if a in main.members)
        assert inside >= len(core_ases) - 1  # all but the skipped member


class TestSmallIxpArithmetic:
    def test_small_ixps_yield_full_share_root_communities(self, default_context):
        """On a realistically sized pool (28), the named small IXPs
        surface as parallel communities made only of their own
        participants.  (A cramped pool lets anchor uplinks percolate
        the IXP clique straight into the main community — which is why
        this contract is checked on the default profile.)
        """
        registry = default_context.dataset.ixps
        hierarchy = default_context.hierarchy
        matched = 0
        for name in ("VIX", "WIX", "NIX.CZ", "SIX"):
            participants = set(registry[name].participants)
            found = any(
                set(community.members) <= participants
                and len(community.members) >= len(participants) - 2
                for k in hierarchy.orders
                if 3 <= k <= 13
                for community in hierarchy[k]
            )
            matched += found
        assert matched >= 3


class TestKnobEffects:
    def test_bigger_pool_raises_crown_merge_order(self):
        """crown_min tracks shared_pool + 2 (docs/generator.md table)."""
        counts = {}
        for pool in (6, 10):
            config = _custom_config(shared_pool=pool)
            dataset = generate_topology(config, seed=5)
            hierarchy = LightweightParallelCPM(dataset.graph).run()
            # The last order with >= 2 crown communities sits just
            # above the merge order pool + 1.
            multi = [
                k for k in hierarchy.orders
                if k > pool and len(hierarchy[k]) >= 2
            ]
            counts[pool] = max(multi)
        assert counts[10] > counts[6]

    def test_more_extensions_grow_apex_not_depth(self):
        small = _custom_config()
        big_blocks = (
            CrownBlockSpec("AMS-IX", "NL", base_extra=4, n_ext=6),
            small.crown_blocks[1],
        )
        big = _custom_config(crown_blocks=big_blocks)
        h_small = LightweightParallelCPM(generate_topology(small, seed=5).graph).run()
        h_big = LightweightParallelCPM(generate_topology(big, seed=5).graph).run()
        assert h_big.max_k == h_small.max_k
        assert h_big[h_big.max_k][0].size == h_small[h_small.max_k][0].size + 3
