"""Weighted undirected graphs.

The AS-level topology of the paper is unweighted, but the Clique
Percolation Method family it builds on ([23]) has a weighted variant
(CPMw — Farkas, Ábel, Palla, Vicsek 2007) that thresholds k-cliques by
*intensity*, the geometric mean of their edge weights.  This module
supplies the weighted substrate so :mod:`repro.core.weighted` can
implement CPMw; it also lets users attach link weights (e.g. observed
path counts from the measurement simulation) to AS graphs.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

from .undirected import Graph, GraphError

__all__ = ["WeightedGraph"]


class WeightedGraph(Graph):
    """An undirected simple graph with positive edge weights.

    Behaves exactly like :class:`Graph` (so every algorithm in the
    library works on it, ignoring weights); adds weight storage and
    weighted-specific queries.  Unweighted ``add_edge`` defaults the
    weight to 1.0.
    """

    __slots__ = ("_weights",)

    def __init__(
        self,
        edges: Iterable[tuple[Hashable, Hashable, float]] | None = None,
    ) -> None:
        super().__init__()
        self._weights: dict[frozenset, float] = {}
        if edges is not None:
            for u, v, weight in edges:
                self.add_edge(u, v, weight)

    def add_edge(self, u: Hashable, v: Hashable, weight: float = 1.0) -> None:
        if weight <= 0:
            raise GraphError(f"edge weight must be positive, got {weight}")
        super().add_edge(u, v)
        self._weights[frozenset((u, v))] = float(weight)

    def remove_edge(self, u: Hashable, v: Hashable) -> None:
        super().remove_edge(u, v)
        del self._weights[frozenset((u, v))]

    def remove_node(self, node: Hashable) -> None:
        for other in list(self.neighbors(node)):
            del self._weights[frozenset((node, other))]
        super().remove_node(node)

    def weight(self, u: Hashable, v: Hashable) -> float:
        """The weight of edge {u, v}; raises if the edge is absent."""
        try:
            return self._weights[frozenset((u, v))]
        except KeyError as exc:
            raise GraphError(f"edge {{{u!r}, {v!r}}} not in graph") from exc

    def set_weight(self, u: Hashable, v: Hashable, weight: float) -> None:
        """Update an existing edge's weight."""
        if weight <= 0:
            raise GraphError(f"edge weight must be positive, got {weight}")
        key = frozenset((u, v))
        if key not in self._weights:
            raise GraphError(f"edge {{{u!r}, {v!r}}} not in graph")
        self._weights[key] = float(weight)

    def total_weight(self) -> float:
        """Sum of all edge weights."""
        return sum(self._weights.values())

    def strength(self, node: Hashable) -> float:
        """Weighted degree: sum of incident edge weights."""
        return sum(self._weights[frozenset((node, nb))] for nb in self.neighbors(node))

    def intensity(self, nodes: Iterable[Hashable]) -> float:
        """Subgraph intensity: geometric mean of the clique's weights.

        Defined (Onnela et al.) for complete subgraphs; raises if
        ``nodes`` is not a clique of this graph.  Intensity of a single
        node or edgeless set is defined as 0.0.
        """
        members = list(dict.fromkeys(nodes))
        if len(members) < 2:
            return 0.0
        if not self.is_clique(members):
            raise GraphError(f"intensity is defined on cliques; {members!r} is not one")
        product = 1.0
        count = 0
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                product *= self._weights[frozenset((u, v))]
                count += 1
        return product ** (1.0 / count)

    def copy(self) -> "WeightedGraph":
        """An independent copy including edge weights."""
        dup = WeightedGraph()
        for node in self.nodes():
            dup.add_node(node)
        for u, v in self.edges():
            dup.add_edge(u, v, self.weight(u, v))
        return dup

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WeightedGraph(nodes={self.number_of_nodes}, "
            f"edges={self.number_of_edges}, total_weight={self.total_weight():g})"
        )
