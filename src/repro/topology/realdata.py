"""Parsers for the real datasets' public file formats.

The synthetic generator stands in for the paper's inputs, but the
pipeline accepts the originals: these parsers read the public CAIDA
formats so that, given the actual April-2010 files, the identical
analysis reproduces the paper's absolute numbers.

* **AS-links** (the IPv4 Routed /24 AS Links dataset [15]): lines like
  ``D|1239|3257|...`` (direct link) and ``I|1239|7018|...`` (indirect,
  from unresponsive-hop gaps); ``#`` comments.  Multi-origin fields may
  carry underscore-joined ASNs (``174_3356``), which are expanded
  pairwise-conservatively: each listed ASN links to the other side.
* **AS-relationships** (CAIDA serial-1): ``provider|customer|-1`` and
  ``peer|peer|0`` lines, read into a
  :class:`repro.routing.relationships.RelationshipMap`.
"""

from __future__ import annotations

from collections.abc import Iterable
from pathlib import Path

from ..graph.undirected import Graph

__all__ = ["parse_as_links", "read_as_links", "parse_as_relationships", "read_as_relationships"]


class RealDataError(ValueError):
    """Raised on malformed real-dataset lines."""


def _expand_asns(field: str) -> list[int]:
    """One AS-links endpoint field: an ASN or underscore-joined MOAS set."""
    try:
        return [int(token) for token in field.split("_")]
    except ValueError as exc:
        raise RealDataError(f"cannot parse ASN field {field!r}") from exc


def parse_as_links(
    lines: Iterable[str],
    *,
    include_indirect: bool = True,
) -> Graph:
    """Build a graph from CAIDA AS-links text.

    Only ``D`` (direct) and — unless disabled — ``I`` (indirect)
    records produce edges; other record types (``T``, ``M``…, carrying
    monitor metadata) are skipped, as are comments and blanks.
    """
    graph = Graph()
    wanted = {"D", "I"} if include_indirect else {"D"}
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split("|")
        record = fields[0]
        if record not in {"D", "I", "T", "M"}:
            raise RealDataError(f"line {lineno}: unknown record type {record!r}")
        if record not in wanted or len(fields) < 3:
            continue
        for left in _expand_asns(fields[1]):
            for right in _expand_asns(fields[2]):
                if left != right:
                    graph.add_edge(left, right)
    return graph


def read_as_links(path: str | Path, **kwargs) -> Graph:
    """Read a CAIDA AS-links file from disk."""
    with open(path, encoding="utf-8") as handle:
        return parse_as_links(handle, **kwargs)


def parse_as_relationships(lines: Iterable[str]):
    """Build a RelationshipMap from CAIDA serial-1 relationship text.

    Lines are ``<as1>|<as2>|<code>`` with code -1 (as1 is the provider
    of as2) or 0 (peers).  Siblings (code 2, rare) are mapped to
    peering — the closest expressible semantics.
    """
    from ..routing.relationships import RelationshipMap

    relationships = RelationshipMap()
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split("|")
        if len(fields) < 3:
            raise RealDataError(f"line {lineno}: expected as1|as2|code, got {line!r}")
        try:
            as1, as2, code = int(fields[0]), int(fields[1]), int(fields[2])
        except ValueError as exc:
            raise RealDataError(f"line {lineno}: cannot parse {line!r}") from exc
        if code == -1:
            relationships.add_customer_provider(customer=as2, provider=as1)
        elif code in (0, 2):
            relationships.add_peering(as1, as2)
        elif code == 1:
            relationships.add_customer_provider(customer=as1, provider=as2)
        else:
            raise RealDataError(f"line {lineno}: unknown relationship code {code}")
    return relationships


def read_as_relationships(path: str | Path):
    """Read a CAIDA serial-1 relationship file from disk."""
    with open(path, encoding="utf-8") as handle:
        return parse_as_relationships(handle)
