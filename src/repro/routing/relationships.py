"""AS business relationships.

Inter-domain links carry economics: a *customer* pays its *provider*
for transit; *peers* exchange their customers' traffic settlement-free.
The paper's community interpretations are economic at heart — regional
transit meshes keeping traffic local, IXP fabrics existing to create
cheap peering — so the routing substrate models the relationships
explicitly:

* :class:`Relationship` — customer→provider or peer↔peer;
* :class:`RelationshipMap` — the annotated edge set, with valley-free
  path validation;
* :func:`infer_relationships` — derive the map for a generated dataset
  from the generator roles (stubs buy transit from providers, providers
  from carriers and Tier-1s, while meshes — IXP fabrics, the Tier-1
  clique, national provider meshes — are peering).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from enum import Enum

from ..graph.undirected import Graph
from ..topology.dataset import ASDataset

__all__ = ["Relationship", "RelationshipMap", "infer_relationships"]


class Relationship(str, Enum):
    """Directed view of an edge from one endpoint's perspective."""

    CUSTOMER = "customer"      # the neighbor is my customer
    PROVIDER = "provider"      # the neighbor is my provider
    PEER = "peer"


class RelationshipMap:
    """Business relationship of every annotated edge."""

    def __init__(self) -> None:
        #: (u, v) -> relationship of v from u's perspective.
        self._kind: dict[tuple[Hashable, Hashable], Relationship] = {}

    def add_customer_provider(self, customer: Hashable, provider: Hashable) -> None:
        """Annotate: ``customer`` buys transit from ``provider``."""
        self._kind[(customer, provider)] = Relationship.PROVIDER
        self._kind[(provider, customer)] = Relationship.CUSTOMER

    def add_peering(self, a: Hashable, b: Hashable) -> None:
        """Annotate: ``a`` and ``b`` peer settlement-free."""
        self._kind[(a, b)] = Relationship.PEER
        self._kind[(b, a)] = Relationship.PEER

    def kind(self, u: Hashable, v: Hashable) -> Relationship:
        """Relationship of ``v`` from ``u``'s perspective."""
        try:
            return self._kind[(u, v)]
        except KeyError as exc:
            raise KeyError(f"edge ({u!r}, {v!r}) has no relationship annotation") from exc

    def __contains__(self, edge: tuple[Hashable, Hashable]) -> bool:
        return edge in self._kind

    def __len__(self) -> int:
        return len(self._kind) // 2

    def providers_of(self, node: Hashable, graph: Graph) -> list[Hashable]:
        """The neighbors ``node`` buys transit from."""
        return [v for v in graph.neighbors(node) if self.kind(node, v) is Relationship.PROVIDER]

    def customers_of(self, node: Hashable, graph: Graph) -> list[Hashable]:
        """The neighbors buying transit from ``node``."""
        return [v for v in graph.neighbors(node) if self.kind(node, v) is Relationship.CUSTOMER]

    def peers_of(self, node: Hashable, graph: Graph) -> list[Hashable]:
        """The neighbors peering with ``node``."""
        return [v for v in graph.neighbors(node) if self.kind(node, v) is Relationship.PEER]

    def is_valley_free(self, path: Iterable[Hashable]) -> bool:
        """Gao's export rule as a path predicate.

        A valid AS path is an uphill segment (customer→provider hops),
        at most one peer hop, then a downhill segment
        (provider→customer hops).  Equivalently: after the first peer
        or downhill hop, only downhill hops may follow.
        """
        hops = list(path)
        descending = False
        used_peer = False
        for u, v in zip(hops, hops[1:]):
            step = self.kind(u, v)
            if step is Relationship.PROVIDER:  # uphill
                if descending or used_peer:
                    return False
            elif step is Relationship.PEER:
                if descending or used_peer:
                    return False
                used_peer = True
            else:  # downhill
                descending = True
        return True


#: Role-pair -> relationship rules, most specific first.  ``c2p`` means
#: the *first* role buys transit from the second; ``p2p`` is peering.
_MESH_PEER_ROLES = {
    "tier1",
    "pool_carrier",
    "crown_exclusive",
    "crown_exception",
    "crown_extension",
    "medium_core",
    "provider",
    "small_ixp_member",
}

_CUSTOMER_ROLES = {
    "stub",
    "carrier_stub",
    "regional_customer",
    "triangle_member",
    "large_periphery",
    "medium_periphery",
}

#: Transit hierarchy order: an edge between different strata points the
#: customer side at the lower stratum.  IXP peripheries sit *below*
#: their cores — a regional ISP at an exchange buys transit/route-server
#: reachability from the resident carriers — so their uplinks are
#: customer-provider, which keeps them reachable under valley-free
#: export (peer-learned routes never propagate two hops).
_STRATUM = {
    "tier1": 5,
    "pool_carrier": 4,
    "crown_exclusive": 4,
    "crown_exception": 4,
    "crown_extension": 4,
    "medium_core": 3,
    "large_periphery": 2,
    "medium_periphery": 2,
    "provider": 1,
    # Below national providers: small-IXP locals reach the world through
    # the resident anchor providers (route-server reachability is not
    # transit), so their anchor links must be customer-provider.
    "small_ixp_member": 0.5,
    "stub": 0,
    "carrier_stub": 0,
    "regional_customer": 0,
    "triangle_member": 0,
}


def infer_relationships(dataset: ASDataset) -> RelationshipMap:
    """Annotate every edge of a generated dataset.

    Rules (checked in order):

    1. same-stratum edges between infrastructure roles are **peering**
       (the Tier-1 clique, IXP fabrics, national provider meshes,
       customer-triangle internals);
    2. pool carriers peer with Tier-1s (settlement-free, the classic
       'donut' peering);
    3. otherwise the lower-stratum endpoint is the **customer** of the
       higher-stratum one (stub → provider, provider → carrier,
       periphery → IXP core, carrier → Tier-1 transit).
    """
    relationships = RelationshipMap()
    roles = dataset.as_roles
    graph = dataset.graph
    for u, v in graph.edges():
        role_u = roles.get(u, "stub")
        role_v = roles.get(v, "stub")
        stratum_u = _STRATUM.get(role_u, 0)
        stratum_v = _STRATUM.get(role_v, 0)
        if {role_u, role_v} == {"pool_carrier", "tier1"}:
            relationships.add_peering(u, v)
        elif role_u == role_v == "triangle_member":
            # The gateway member (created first, hence lowest ASN)
            # resells its transit to its triangle partners — a pure
            # peer triangle would leave the partners unreachable.
            customer, provider = (u, v) if u > v else (v, u)
            relationships.add_customer_provider(customer, provider)
        elif stratum_u == stratum_v:
            relationships.add_peering(u, v)
        elif stratum_u < stratum_v:
            relationships.add_customer_provider(u, v)
        else:
            relationships.add_customer_provider(v, u)
    return relationships
