"""Label-propagation partition baseline.

A representative of the *partition* category of community detection
(Chapter 1's taxonomy, after [27]): every node ends up in exactly one
community, so the overlap that motivates the paper's choice of CPM is
impossible by construction.  Asynchronous label propagation (Raghavan
et al.) with deterministic, seeded tie-breaking.
"""

from __future__ import annotations

import random
from collections import Counter
from collections.abc import Hashable

from ..graph.undirected import Graph

__all__ = ["label_propagation"]


def label_propagation(
    graph: Graph,
    *,
    seed: int = 0,
    max_rounds: int = 100,
) -> list[set[Hashable]]:
    """Partition the graph; returns communities largest first.

    Each node adopts the most frequent label among its neighbors
    (random seeded tie-breaks) until no label changes or ``max_rounds``
    is hit.  Isolated nodes keep their own singleton community.
    """
    rng = random.Random(seed)
    nodes = sorted(graph.nodes(), key=repr)
    label: dict[Hashable, int] = {node: i for i, node in enumerate(nodes)}
    for _ in range(max_rounds):
        changed = False
        order = nodes[:]
        rng.shuffle(order)
        for node in order:
            neighbors = graph.neighbors(node)
            if not neighbors:
                continue
            counts = Counter(label[n] for n in neighbors)
            top = max(counts.values())
            candidates = sorted(l for l, c in counts.items() if c == top)
            new_label = rng.choice(candidates)
            if new_label != label[node]:
                label[node] = new_label
                changed = True
        if not changed:
            break
    groups: dict[int, set[Hashable]] = {}
    for node, l in label.items():
        groups.setdefault(l, set()).add(node)
    return sorted(groups.values(), key=len, reverse=True)
