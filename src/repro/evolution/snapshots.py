"""Topology evolution: monthly-campaign-style snapshots.

The paper analyses one April-2010 snapshot but builds on a line of work
that watches the AS ecosystem evolve (Dhamdhere & Dovrolis [8];
Oliveira, Zhang & Zhang [22]).  This module extends the reproduction
with that temporal axis: a ground-truth topology is generated once, and
each AS receives a *birth time* consistent with how the Internet
actually grew — the Tier-1s and big carriers first, national providers
next, the customer periphery accreting continuously.  Snapshot *t* is
the subgraph induced by the ASes born by *t* (an edge exists once both
endpoints do), so consecutive snapshots form a strictly growing chain,
like consecutive measurement campaigns over a growing Internet.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..graph.components import largest_connected_component
from ..graph.undirected import Graph
from ..topology.dataset import ASDataset
from ..topology.generator import GeneratorConfig, InternetTopologyGenerator

__all__ = ["TopologyEvolution"]

#: Role -> (earliest birth, latest birth) as fractions of the timeline.
#: Core infrastructure predates the observation window; stubs arrive
#: throughout it.
_BIRTH_WINDOWS: dict[str, tuple[float, float]] = {
    "tier1": (0.0, 0.0),
    "pool_carrier": (0.0, 0.05),
    "crown_exclusive": (0.0, 0.15),
    "crown_exception": (0.0, 0.2),
    "crown_extension": (0.05, 0.3),
    "medium_core": (0.05, 0.3),
    "provider": (0.0, 0.5),
    "large_periphery": (0.1, 0.9),
    "medium_periphery": (0.2, 0.95),
    "small_ixp_member": (0.2, 0.9),
    "regional_customer": (0.3, 1.0),
    "carrier_stub": (0.3, 1.0),
    "stub": (0.2, 1.0),
    "triangle_member": (0.4, 1.0),
}


@dataclass
class TopologyEvolution:
    """A growing synthetic Internet observed at regular intervals."""

    config: GeneratorConfig | None = None
    seed: int = 42
    n_snapshots: int = 6
    dataset: ASDataset = field(init=False)
    birth_time: dict[int, float] = field(init=False)

    def __post_init__(self) -> None:
        if self.n_snapshots < 2:
            raise ValueError(f"need >= 2 snapshots, got {self.n_snapshots}")
        generator = InternetTopologyGenerator(self.config, seed=self.seed)
        self.dataset = generator.generate()
        rng = random.Random(f"{self.seed}:birth")
        self.birth_time = {}
        for role, ases in generator.roles.items():
            lo, hi = _BIRTH_WINDOWS.get(role, (0.3, 1.0))
            for asn in ases:
                self.birth_time[asn] = lo if hi == lo else rng.uniform(lo, hi)

    def snapshot_times(self) -> list[float]:
        """Evenly spaced observation instants ending at 1.0 (the full graph)."""
        step = 1.0 / (self.n_snapshots - 1)
        return [round(i * step, 6) for i in range(self.n_snapshots)]

    def snapshot(self, t: float) -> Graph:
        """The giant component of the topology as of time ``t``.

        Restricting to the giant component mirrors the cleaning step of
        the dataset pipeline — and guarantees a single 2-clique
        community per snapshot.
        """
        alive = {asn for asn, born in self.birth_time.items() if born <= t}
        return largest_connected_component(self.dataset.graph.subgraph(alive))

    def snapshots(self) -> list[Graph]:
        """Every snapshot graph, earliest first."""
        return [self.snapshot(t) for t in self.snapshot_times()]

    def growth_series(self) -> list[tuple[float, int, int]]:
        """(t, ASes, links) per snapshot — the ecosystem growth curve."""
        series = []
        for t in self.snapshot_times():
            graph = self.snapshot(t)
            series.append((t, graph.number_of_nodes, graph.number_of_edges))
        return series
