"""Exercise every endpoint of a running query server and verify schemas.

CI's query-smoke job starts ``repro query serve`` in the background and
runs this client against it: stdlib urllib only, one GET per endpoint
(plus the error paths), asserting each response is well-formed JSON with
the documented shape and non-empty content.  It then hammers the server
from concurrent threads and scrapes ``/metrics``, asserting the
Prometheus text carries exact per-endpoint request counts and a sane
p99 — the live-telemetry plane verified over real HTTP, not in-process.
Exit code 0 means every endpoint answered correctly.

Usage: python query_smoke_client.py http://127.0.0.1:8091
"""

from __future__ import annotations

import json
import sys
import threading
import time
import urllib.error
import urllib.request

TIMEOUT = 10.0

#: Concurrent-load shape: threads x requests each (health + band + an
#: expected-404 membership per round, so error counters are exercised).
N_CLIENTS = 8
PER_CLIENT = 20


def get(base: str, path: str):
    """(status, parsed JSON body) of one GET, HTTP errors included."""
    try:
        with urllib.request.urlopen(base + path, timeout=TIMEOUT) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def wait_ready(base: str, attempts: int = 100, delay: float = 0.2) -> dict:
    """Poll /health until the server answers (or give up)."""
    for _ in range(attempts):
        try:
            status, body = get(base, "/health")
            if status == 200:
                return body
        except (urllib.error.URLError, ConnectionError, json.JSONDecodeError):
            pass
        time.sleep(delay)
    raise SystemExit(f"server at {base} never became ready")


def require(condition: bool, message: str) -> None:
    if not condition:
        raise SystemExit(f"query-smoke FAILED: {message}")


def scrape(base: str) -> dict[str, float]:
    """Parse ``/metrics`` Prometheus text into ``{series: value}``.

    Keys keep their label block verbatim, e.g.
    ``repro_query_request_seconds_count{endpoint="band"}``.
    """
    with urllib.request.urlopen(base + "/metrics", timeout=TIMEOUT) as response:
        content_type = response.headers.get("Content-Type", "")
        text = response.read().decode("utf-8")
    require(
        content_type.startswith("text/plain") and "version=0.0.4" in content_type,
        f"/metrics content type not Prometheus text: {content_type!r}",
    )
    samples: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        series, _, value = line.rpartition(" ")
        samples[series] = float(value)
    require(bool(samples), "/metrics exposition is empty")
    return samples


def concurrent_load(base: str, known_as: int) -> None:
    """Hammer the server from ``N_CLIENTS`` threads, recording failures.

    Each round issues a /health, a /band for a real AS, and a
    /membership for a nonexistent one (an *expected* 404), so both the
    request and error counters move under concurrency.
    """
    failures: list[tuple] = []

    def hammer() -> None:
        for _ in range(PER_CLIENT):
            try:
                status, _body = get(base, "/health")
                if status != 200:
                    failures.append(("health", status))
                status, _body = get(base, f"/band?as={known_as}")
                if status != 200:
                    failures.append(("band", status))
                status, _body = get(base, "/membership?as=999999999")
                if status != 404:
                    failures.append(("membership-miss", status))
            except Exception as exc:  # noqa: BLE001 - smoke harness
                failures.append(("exception", repr(exc)))

    threads = [threading.Thread(target=hammer) for _ in range(N_CLIENTS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    require(not failures, f"concurrent load failures: {failures[:5]}")


def main(base: str) -> int:
    health = wait_ready(base)
    require(health.get("status") == "ok", f"/health not ok: {health}")
    require(health.get("communities", 0) > 0, "/health reports zero communities")
    print(f"/health ok: {health['communities']} communities, {health['nodes']} ASes")

    status, info = get(base, "/artifact")
    require(status == 200, f"/artifact -> {status}")
    require(bool(info.get("fingerprint", {}).get("checksum")), "/artifact has no fingerprint")
    require(bool(info.get("orders")), "/artifact has no orders")
    require(
        {"root_max", "crown_min"} <= set(info.get("bands", {})),
        "/artifact bands malformed",
    )
    print(f"/artifact ok: orders {info['orders'][0]}..{info['orders'][-1]}")

    # Discover real ASes through the API itself: the largest community's
    # member list seeds the point queries.
    status, top = get(base, "/top?metric=size&n=3")
    require(status == 200, f"/top -> {status}")
    communities = top.get("communities") or []
    require(len(communities) == 3, f"/top returned {len(communities)} communities")
    for record in communities:
        require(
            {"label", "k", "size", "link_density", "average_odf"} <= set(record),
            f"/top record malformed: {record}",
        )
    sizes = [record["size"] for record in communities]
    require(sizes == sorted(sizes, reverse=True), f"/top not sorted: {sizes}")
    label = communities[0]["label"]
    print(f"/top ok: largest community {label} (size {sizes[0]})")

    status, community = get(base, f"/community?label={label}&members=1")
    require(status == 200, f"/community -> {status}")
    members = community.get("members") or []
    require(len(members) == communities[0]["size"], "/community member count mismatch")
    require(community.get("band") in ("root", "trunk", "crown"), "/community band missing")
    print(f"/community ok: {len(members)} members, band {community['band']}")

    a, b = members[0], members[1]
    status, membership = get(base, f"/membership?as={a}")
    require(status == 200, f"/membership -> {status}")
    per_order = membership.get("memberships") or {}
    require(bool(per_order), f"/membership empty for AS {a}")
    require(
        all(labels for labels in per_order.values()),
        "/membership has an empty order",
    )
    require(
        any(label in labels for labels in per_order.values()),
        f"/membership for AS {a} misses its own community {label}",
    )
    print(f"/membership ok: AS {a} in communities at {len(per_order)} orders")

    status, band = get(base, f"/band?as={a}")
    require(status == 200, f"/band -> {status}")
    require(band.get("band") in ("root", "trunk", "crown"), f"/band malformed: {band}")
    require(isinstance(band.get("max_k"), int), "/band max_k missing")
    print(f"/band ok: AS {a} is {band['band']} (max k {band['max_k']})")

    status, lca = get(base, f"/lca?a={a}&b={b}")
    require(status == 200, f"/lca -> {status}")
    record = lca.get("lca")
    require(record is not None, f"/lca of two co-members of {label} is null")
    require(record["k"] >= communities[0]["k"], "/lca shallower than a shared community")
    print(f"/lca ok: lca({a}, {b}) = {record['label']}")

    # Error paths: unknown AS -> 404, missing parameter -> 400,
    # unknown endpoint -> 404 — JSON errors, never tracebacks.
    status, body = get(base, "/membership?as=999999999")
    require(status == 404 and "error" in body, f"unknown AS: {status} {body}")
    status, body = get(base, "/band")
    require(status == 400 and "error" in body, f"missing param: {status} {body}")
    status, body = get(base, "/no-such-endpoint")
    require(status == 404 and "error" in body, f"unknown path: {status} {body}")
    print("error paths ok: 404 unknown AS, 400 missing param, 404 unknown endpoint")

    # Live-telemetry plane: scrape, hammer concurrently, scrape again.
    # The counter/histogram deltas must account for every request the
    # threads issued — a lost update under concurrency shows up as an
    # exact-count mismatch here, over real HTTP.
    before = scrape(base)
    start = time.perf_counter()
    concurrent_load(base, a)
    elapsed = time.perf_counter() - start
    after = scrape(base)
    total = N_CLIENTS * PER_CLIENT
    for endpoint in ("health", "band", "membership"):
        key = f'repro_query_request_seconds_count{{endpoint="{endpoint}"}}'
        delta = after.get(key, 0.0) - before.get(key, 0.0)
        require(
            delta == total,
            f"lost updates: {key} moved {delta:g}, expected {total}",
        )
    err_delta = after.get("repro_query_errors_total", 0.0) - before.get(
        "repro_query_errors_total", 0.0
    )
    require(err_delta == total, f"error counter moved {err_delta:g}, expected {total}")
    p50 = after[f'repro_query_request_seconds{{endpoint="band",quantile="0.5"}}']
    p99 = after[f'repro_query_request_seconds{{endpoint="band",quantile="0.99"}}']
    require(0.0 < p50 <= p99, f"/band quantiles not ordered: p50={p50} p99={p99}")
    require(p99 < 5.0, f"/band p99 {p99:.3f}s is not sane for a point lookup")
    require(
        after.get("repro_process_rss_kib", 0.0) > 0.0,
        "/metrics missing process RSS gauge",
    )
    print(
        f"concurrent load ok: {N_CLIENTS} threads x {PER_CLIENT} rounds "
        f"({3 * total} requests in {elapsed:.2f}s), exact counts on /metrics, "
        f"band p50={p50 * 1e3:.2f}ms p99={p99 * 1e3:.2f}ms"
    )

    print("query-smoke client: all endpoints ok")
    return 0


if __name__ == "__main__":
    if len(sys.argv) != 2:
        raise SystemExit(f"usage: {sys.argv[0]} BASE_URL")
    sys.exit(main(sys.argv[1].rstrip("/")))
