"""Tests for the SVG renderer and the standalone HTML report."""

import pytest

from repro.report import render_html_report, svg_scatter


class TestSvgScatter:
    def test_basic_structure(self):
        svg = svg_scatter({"s": [(1, 2), (3, 4)]}, title="T", y_label="v")
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert "T" in svg
        assert svg.count("<circle") >= 2  # data markers + legend

    def test_log_scale_handles_zero(self):
        svg = svg_scatter({"s": [(1, 0), (2, 100)]}, title="log", log_y=True)
        assert "<svg" in svg
        assert "(log)" in svg or "log" in svg

    def test_two_series_get_two_colors(self):
        svg = svg_scatter({"a": [(1, 1)], "b": [(2, 2)]}, title="x")
        assert "#1f6f8b" in svg and "#d1495b" in svg

    def test_empty_series(self):
        svg = svg_scatter({"s": []}, title="empty")
        assert "no data" in svg

    def test_single_point_does_not_crash(self):
        svg = svg_scatter({"s": [(5, 5)]}, title="one")
        assert "<circle" in svg


class TestHtmlReport:
    @pytest.fixture(scope="class")
    def html_doc(self, paper_run):
        return render_html_report(paper_run)

    def test_is_standalone_document(self, html_doc):
        assert html_doc.startswith("<!DOCTYPE html>")
        assert "<style>" in html_doc
        assert html_doc.count("<svg") == 4  # the four scatter figures

    def test_contains_all_artefacts(self, html_doc):
        for marker in (
            "Table 2.1",
            "Table 2.2",
            "Figure 4.1",
            "Figure 4.3",
            "Figure 4.4(a)",
            "Figure 4.4(b)",
            "Crown case study",
            "Community tree",
        ):
            assert marker in html_doc

    def test_band_table_present(self, html_doc):
        assert "crown" in html_doc and "trunk" in html_doc and "root" in html_doc
        assert "AMS-IX" in html_doc

    def test_custom_title_escaped(self, paper_run):
        doc = render_html_report(paper_run, title="<script>alert(1)</script>")
        assert "<script>alert" not in doc
        assert "&lt;script&gt;" in doc

    def test_cli_writes_html(self, paper_run, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "dataset"
        paper_run.dataset.save(target)
        out = tmp_path / "report.html"
        assert main(["paper", "--dataset", str(target), "--html", str(out)]) == 0
        assert out.exists()
        assert "<svg" in out.read_text()
