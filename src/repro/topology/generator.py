"""Synthetic Internet AS-level topology generator.

The paper's Topology dataset (35,390 ASes, 152,233 links, April 2010)
is built from measurement collections that are not available offline,
so this module builds a *structural model* of the same object.  The
model encodes exactly the driving factors the paper identifies in
Chapter 4 and 5, each mapped to a generator ingredient:

===========================  =====================================================
Paper phenomenon             Generator ingredient
===========================  =====================================================
Crown communities            Three large European IXPs modelled as *crown blocks*:
(k near the max; AMS-IX /    a shared carrier pool (their common participants)
DE-CIX / LINX; overlap       meshed into each block's base clique, plus per-block
through 119 shared           exclusive members and *extension* ASes connected to
participants; the 36-clique  the base but not to each other — so the apex
community of 38 ASes)        community is a union of overlapping (pool+1)-cliques,
                             not one monolithic clique, exactly like the paper's
                             36-clique community of 38 ASes
Trunk main communities       Large-IXP periphery: each participant peers with the
(large, low density, long    top-j members of the IXP's ranked base (j heavy-
k-clique chains)             tailed), giving nested cliques that chain through the
                             core and shrink as k grows
Trunk parallel branches      Medium national IXPs whose cores mix q carriers from
(MSK-IX branch; >95%         the shared pool with national members: the core is
max-share, no full-share)    parallel for k in [q+2, core], merging into the main
                             community exactly at k = q+1
Tier-1 full mesh             A clique of Tier-1 ASes that do *not* participate in
(motivating example of       IXPs and whose degree is dominated by customer links
Chapter 1)                   — found by CPM, invisible to internal-degree methods
Root communities             Small national IXPs (full-share), regional
(regional, country-          provider+customer multi-homing cliques, and isolated
contained, avg size ~5)      customer triangles, all within one country
Degree heavy tail            Stub ASes preferentially attached to providers and
                             carriers (the carrier attachment also produces the
                             high crown ODF of Figure 4.4(b))
Unknown-geography ASes       A configurable fraction of stubs left out of the
                             geography registry
===========================  =====================================================

**Clique-count discipline.**  CPM cost is driven by the number of
maximal cliques (the real graph has 2.7M; infeasible here).  Every
dense structure in this generator is an *exact* clique plus
deterministic prefix attachments, so peripheral members contribute O(1)
maximal cliques each and the total stays linear in the AS count.  This
is the substitution documented in DESIGN.md §5.

Everything is driven by one ``random.Random(seed)``; two runs with the
same config and seed produce identical datasets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from math import ceil

from ..graph.undirected import Graph
from .dataset import ASDataset
from .geography import COUNTRY_CONTINENT, Continent, GeoRegistry
from .ixp import IXP, IXPRegistry

__all__ = [
    "CrownBlockSpec",
    "MediumIXPSpec",
    "SmallIXPSpec",
    "GeneratorConfig",
    "InternetTopologyGenerator",
    "generate_topology",
]


@dataclass(frozen=True)
class CrownBlockSpec:
    """One dense block of a large IXP.

    ``base_extra`` exclusive members are meshed together with the shared
    pool into the block's base clique; ``n_ext`` extension ASes connect
    to every base member but not to each other, so the block's top
    community (order ``pool + base_extra + 1``) has
    ``pool + base_extra + n_ext`` members.
    """

    ixp: str
    country: str
    base_extra: int
    n_ext: int


@dataclass(frozen=True)
class MediumIXPSpec:
    """A national IXP producing a trunk parallel branch.

    ``pool_members`` (q) of the core are carriers from the shared pool;
    the branch is parallel for k in [q+2, core_size] and merges into
    the main community at k = q+1.
    """

    name: str
    country: str
    core_size: int
    pool_members: int
    periphery: int


@dataclass(frozen=True)
class SmallIXPSpec:
    """A small regional IXP: a full-share root community."""

    name: str
    country: str
    core_size: int


_DEFAULT_CROWN = (
    CrownBlockSpec("AMS-IX", "NL", base_extra=7, n_ext=4),
    CrownBlockSpec("LINX", "GB", base_extra=6, n_ext=2),
    CrownBlockSpec("DE-CIX", "DE", base_extra=5, n_ext=2),
    CrownBlockSpec("LINX", "GB", base_extra=4, n_ext=2),
    CrownBlockSpec("DE-CIX", "DE", base_extra=3, n_ext=3),
)

_DEFAULT_MEDIUM = (
    MediumIXPSpec("MSK-IX", "RU", core_size=22, pool_members=14, periphery=18),
    MediumIXPSpec("France-IX", "FR", core_size=19, pool_members=13, periphery=14),
    MediumIXPSpec("Netnod", "SE", core_size=18, pool_members=12, periphery=12),
    MediumIXPSpec("PLIX", "PL", core_size=16, pool_members=11, periphery=10),
    MediumIXPSpec("ESPANIX", "ES", core_size=15, pool_members=10, periphery=10),
    MediumIXPSpec("TOP-IX", "IT", core_size=15, pool_members=9, periphery=8),
)

_DEFAULT_SMALL = (
    SmallIXPSpec("WIX", "NZ", 7),
    SmallIXPSpec("KhIX", "RU", 6),
    SmallIXPSpec("SIX", "US", 12),
    SmallIXPSpec("SIX.SK", "SK", 6),
    SmallIXPSpec("PIPE-NSW", "AU", 9),
    SmallIXPSpec("NIXI-Delhi", "IN", 7),
    SmallIXPSpec("SPB-IX", "RU", 8),
    SmallIXPSpec("PTTMetro-SaoPaulo", "BR", 11),
    SmallIXPSpec("NIX.CZ", "CZ", 10),
    SmallIXPSpec("SwissIX", "CH", 9),
    SmallIXPSpec("MIX-IT", "IT", 8),
    SmallIXPSpec("VIX", "AT", 10),
)

_EU_COUNTRIES = [c for c, cont in COUNTRY_CONTINENT.items() if cont is Continent.EUROPE]
_NON_EU_COUNTRIES = [c for c, cont in COUNTRY_CONTINENT.items() if cont is not Continent.EUROPE]


@dataclass(frozen=True)
class GeneratorConfig:
    """All knobs of the synthetic topology.

    ``scale`` multiplies the *population* counts (periphery, providers,
    customers, stubs) without touching the clique core sizes — so the
    community tree's depth and band boundaries stay put while the graph
    grows or shrinks around them.
    """

    shared_pool: int = 28
    crown_blocks: tuple[CrownBlockSpec, ...] = _DEFAULT_CROWN
    medium_ixps: tuple[MediumIXPSpec, ...] = _DEFAULT_MEDIUM
    small_ixps: tuple[SmallIXPSpec, ...] = _DEFAULT_SMALL
    large_periphery: int = 55          # per crown IXP (deduplicated by name)
    periphery_attach_min: int = 4
    periphery_attach_alpha: float = 1.7
    n_tier1: int = 12
    tier1_links_per_pool_carrier: tuple[int, int] = (3, 6)
    n_countries: int = 36
    providers_per_country: tuple[int, int] = (3, 5)
    regional_groups_per_country: tuple[int, int] = (1, 5)
    regional_customers: tuple[int, int] = (2, 5)
    regional_mesh_probability: float = 0.3
    n_stubs: int = 2200
    n_carrier_stubs: int = 800
    n_isolated_triangles: int = 70
    unknown_geo_fraction: float = 0.045
    scale: float = 1.0

    @classmethod
    def default(cls) -> "GeneratorConfig":
        """Benchmark-scale config (~4k ASes, CPM in seconds)."""
        return cls()

    @classmethod
    def tiny(cls) -> "GeneratorConfig":
        """Test-scale config (~450 ASes, CPM well under a second)."""
        return cls(
            shared_pool=10,
            crown_blocks=(
                CrownBlockSpec("AMS-IX", "NL", base_extra=4, n_ext=2),
                CrownBlockSpec("LINX", "GB", base_extra=3, n_ext=2),
                CrownBlockSpec("DE-CIX", "DE", base_extra=2, n_ext=2),
            ),
            medium_ixps=(
                MediumIXPSpec("MSK-IX", "RU", core_size=9, pool_members=5, periphery=6),
                MediumIXPSpec("France-IX", "FR", core_size=8, pool_members=4, periphery=5),
            ),
            small_ixps=(
                SmallIXPSpec("WIX", "NZ", 5),
                SmallIXPSpec("VIX", "AT", 6),
                SmallIXPSpec("NIX.CZ", "CZ", 5),
            ),
            large_periphery=14,
            periphery_attach_min=3,
            n_tier1=6,
            n_countries=12,
            n_stubs=220,
            n_carrier_stubs=60,
            n_isolated_triangles=8,
        )

    @classmethod
    def paper_scale(cls) -> "GeneratorConfig":
        """Approach the April-2010 census (tens of thousands of ASes).

        CPM on this takes minutes-to-hours on one core; provided for
        completeness, not used by the CI-sized benchmarks.
        """
        return cls(scale=9.0, large_periphery=120, n_countries=60)

    def scaled(self, value: int) -> int:
        """``value`` multiplied by the population scale (minimum 1)."""
        return max(1, ceil(value * self.scale))


class InternetTopologyGenerator:
    """Build an :class:`ASDataset` from a :class:`GeneratorConfig` and a seed."""

    def __init__(self, config: GeneratorConfig | None = None, *, seed: int = 42) -> None:
        self.config = config or GeneratorConfig.default()
        self.seed = seed
        self._rng = random.Random(seed)
        self._next_asn = 1
        self._graph = Graph()
        self._geo: dict[int, set[str]] = {}
        self._ixp_members: dict[str, set[int]] = {}
        self._ixp_country: dict[str, str] = {}
        self._names: dict[int, str] = {}
        self._uplinks: dict[int, int] = {}
        self.roles: dict[str, list[int]] = {}

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------
    def generate(self) -> ASDataset:
        """Build the dataset: graph, IXP and geography registries, roles."""
        cfg = self.config
        pool, rankings = self._build_crown_blocks()
        tier1 = self._build_tier1_mesh(pool)
        self._build_large_periphery(rankings)
        self._build_medium_ixps(pool, rankings)
        providers_by_country = self._build_countries(tier1, pool)
        self._build_small_ixps(providers_by_country, pool)
        self._build_regional_groups(providers_by_country, pool)
        self._build_stubs(providers_by_country)
        self._build_carrier_stubs(pool, rankings)
        self._build_isolated_triangles(providers_by_country)
        self._connect_components(tier1)

        ixps = IXPRegistry(
            IXP(name=name, country=self._ixp_country[name], participants=frozenset(members))
            for name, members in self._ixp_members.items()
        )
        geography = GeoRegistry({asn: c for asn, c in self._geo.items()})
        notes = {
            "config": repr(cfg),
            "seed": self.seed,
            "roles": {role: len(ases) for role, ases in self.roles.items()},
        }
        as_roles = {
            asn: role for role, ases in self.roles.items() for asn in ases
        }
        return ASDataset(
            graph=self._graph,
            ixps=ixps,
            geography=geography,
            as_names=self._names,
            as_roles=as_roles,
            notes=notes,
        )

    # ------------------------------------------------------------------
    # Low-level helpers
    # ------------------------------------------------------------------
    def _new_as(
        self, role: str, *, countries: set[str] | None = None, name: str | None = None
    ) -> int:
        asn = self._next_asn
        self._next_asn += 1
        self._graph.add_node(asn)
        if countries:
            self._geo[asn] = set(countries)
        if name:
            self._names[asn] = name
        self.roles.setdefault(role, []).append(asn)
        return asn

    def _mesh(self, members: list[int]) -> None:
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                if not self._graph.has_edge(u, v):
                    self._graph.add_edge(u, v)

    def _join_ixp(self, name: str, country: str, asn: int) -> None:
        self._ixp_members.setdefault(name, set()).add(asn)
        self._ixp_country.setdefault(name, country)

    def _pareto_attach(self, lo: int, hi: int) -> int:
        """Heavy-tailed attachment depth in [lo, hi] (bounded Pareto)."""
        if hi <= lo:
            return lo
        alpha = self.config.periphery_attach_alpha
        u = self._rng.random()
        value = lo / max((1.0 - u), 1e-12) ** (1.0 / alpha)
        return min(hi, max(lo, int(value)))

    def _eu_countries(self, n: int) -> set[str]:
        return set(self._rng.sample(_EU_COUNTRIES, n))

    # ------------------------------------------------------------------
    # Crown: large European IXP blocks
    # ------------------------------------------------------------------
    def _build_crown_blocks(self) -> tuple[list[int], dict[str, list[int]]]:
        """The shared carrier pool and the per-IXP base rankings.

        Returns ``(pool, rankings)`` where ``rankings[ixp]`` is the
        ranked base member list peripherals attach to (pool carriers
        first: they are the most-open peers of every large IXP).
        """
        cfg = self.config
        pool: list[int] = []
        for _ in range(cfg.shared_pool):
            if self._rng.random() < 0.4:
                countries = self._eu_countries(2) | {self._rng.choice(_NON_EU_COUNTRIES)}
            else:
                countries = self._eu_countries(self._rng.randint(2, 4))
            pool.append(self._new_as("pool_carrier", countries=countries))
        self._mesh(pool)

        # Crown exception ASes (paper: 4 non-European crown members, 3 of
        # which participate in no IXP) live in the first block's extensions.
        exception_names = ["TICSA-like", "MIT-GW-like-1", "MIT-GW-like-2", "AFRICAINX-like"]
        exception_countries = [{"ZA"}, {"US"}, {"US"}, {"ZA"}]
        exceptions_left = list(zip(exception_names, exception_countries))

        rankings: dict[str, list[int]] = {}
        for block_idx, block in enumerate(cfg.crown_blocks):
            base = list(pool)
            for _ in range(block.base_extra):
                asn = self._new_as(
                    "crown_exclusive", countries={block.country} | self._eu_countries(1)
                )
                self._join_ixp(block.ixp, block.country, asn)
                base.append(asn)
            self._mesh(base)
            for ext_idx in range(block.n_ext):
                if block_idx == 0 and exceptions_left:
                    name, countries = exceptions_left.pop(0)
                    asn = self._new_as("crown_exception", countries=countries, name=name)
                    # Only the first exception keeps an IXP membership
                    # (paper: 4 non-EU crown ASes, 3 with no IXP at all).
                    if len(exceptions_left) == 3:
                        self._join_ixp(block.ixp, block.country, asn)
                else:
                    asn = self._new_as("crown_extension", countries={block.country})
                    self._join_ixp(block.ixp, block.country, asn)
                for member in base:
                    self._graph.add_edge(asn, member)
            if block.ixp not in rankings:
                ranked_pool = list(pool)
                self._rng.shuffle(ranked_pool)
                rankings[block.ixp] = ranked_pool
            # Exclusive base members extend the ranking after the pool.
            rankings[block.ixp].extend(base[len(pool) :])

        for asn in pool:
            for ixp in rankings:
                self._join_ixp(ixp, self._ixp_country[ixp] if ixp in self._ixp_country else "", asn)
        return pool, rankings

    # ------------------------------------------------------------------
    # Tier-1 mesh
    # ------------------------------------------------------------------
    def _build_tier1_mesh(self, pool: list[int]) -> list[int]:
        cfg = self.config
        tier1: list[int] = []
        for _ in range(cfg.n_tier1):
            continents = [Continent.NORTH_AMERICA, Continent.EUROPE, Continent.ASIA]
            countries: set[str] = set()
            for cont in continents:
                options = [c for c, cc in COUNTRY_CONTINENT.items() if cc is cont]
                countries.add(self._rng.choice(options))
            tier1.append(self._new_as("tier1", countries=countries))
        self._mesh(tier1)
        lo, hi = cfg.tier1_links_per_pool_carrier
        for carrier in pool:
            for t in self._rng.sample(tier1, self._rng.randint(lo, min(hi, len(tier1)))):
                if not self._graph.has_edge(carrier, t):
                    self._graph.add_edge(carrier, t)
        return tier1

    # ------------------------------------------------------------------
    # Large-IXP periphery (trunk main chains)
    # ------------------------------------------------------------------
    def _build_large_periphery(self, rankings: dict[str, list[int]]) -> None:
        cfg = self.config
        ixp_names = list(rankings)
        for ixp in ixp_names:
            country = self._ixp_country[ixp]
            for _ in range(cfg.scaled(cfg.large_periphery)):
                roll = self._rng.random()
                if roll < 0.70:
                    keep_home = self._rng.random() < 0.5
                    countries = {country if keep_home else self._rng.choice(_EU_COUNTRIES)}
                elif roll < 0.92:
                    countries = self._eu_countries(2)
                else:
                    # Multinational carriers with a footprint outside
                    # Europe (Table 2.2's worldwide ASes).
                    countries = self._eu_countries(2) | {self._rng.choice(_NON_EU_COUNTRIES)}
                asn = self._new_as("large_periphery", countries=countries)
                self._join_ixp(ixp, country, asn)
                ranking = rankings[ixp]
                depth = self._pareto_attach(cfg.periphery_attach_min, len(ranking) - 1)
                for member in ranking[:depth]:
                    self._graph.add_edge(asn, member)
                # A quarter of the periphery peers at a second large IXP.
                if len(ixp_names) > 1 and self._rng.random() < 0.25:
                    other = self._rng.choice([x for x in ixp_names if x != ixp])
                    self._join_ixp(other, self._ixp_country[other], asn)
                    other_depth = self._pareto_attach(
                        cfg.periphery_attach_min, min(depth, len(rankings[other]) - 1)
                    )
                    for member in rankings[other][:other_depth]:
                        if not self._graph.has_edge(asn, member):
                            self._graph.add_edge(asn, member)

    # ------------------------------------------------------------------
    # Medium IXPs (trunk parallel branches)
    # ------------------------------------------------------------------
    def _build_medium_ixps(self, pool: list[int], rankings: dict[str, list[int]]) -> None:
        cfg = self.config
        for spec in cfg.medium_ixps:
            q = min(spec.pool_members, len(pool))
            core = self._rng.sample(pool, q)
            n_national = spec.core_size - q
            nationals = [
                self._new_as("medium_core", countries={spec.country})
                for _ in range(n_national)
            ]
            core.extend(nationals)
            self._mesh(core)
            # All but one national member join the IXP: the missing one
            # keeps every trunk community short of a full-share IXP.
            skip = nationals[0] if nationals else None
            for asn in core:
                if asn != skip:
                    self._join_ixp(spec.name, spec.country, asn)
            ranking = list(core)
            for _ in range(cfg.scaled(spec.periphery)):
                asn = self._new_as("medium_periphery", countries={spec.country})
                self._join_ixp(spec.name, spec.country, asn)
                depth = self._pareto_attach(3, len(ranking) - 1)
                for member in ranking[:depth]:
                    self._graph.add_edge(asn, member)

    # ------------------------------------------------------------------
    # Countries, providers, transit
    # ------------------------------------------------------------------
    def _build_countries(self, tier1: list[int], pool: list[int]) -> dict[str, list[int]]:
        cfg = self.config
        eu_weight = 0.55
        countries: list[str] = []
        n_eu = int(cfg.n_countries * eu_weight)
        countries.extend(self._rng.sample(_EU_COUNTRIES, min(n_eu, len(_EU_COUNTRIES))))
        rest = [c for c in _NON_EU_COUNTRIES if c not in countries]
        countries.extend(
            self._rng.sample(rest, min(cfg.n_countries - len(countries), len(rest)))
        )
        # Countries hosting small IXPs must exist so that root
        # communities can anchor to national providers.
        for spec in cfg.small_ixps:
            if spec.country not in countries:
                countries.append(spec.country)

        providers_by_country: dict[str, list[int]] = {}
        lo, hi = cfg.providers_per_country
        for country in countries:
            continent = COUNTRY_CONTINENT[country]
            siblings = [
                c for c, cont in COUNTRY_CONTINENT.items()
                if cont is continent and c != country
            ]
            providers = []
            for _ in range(self._rng.randint(lo, hi)):
                presence = {country}
                # Some national providers grow into a second market of
                # their continent (Table 2.2's continental ASes).
                if siblings and self._rng.random() < 0.12:
                    presence.add(self._rng.choice(siblings))
                providers.append(self._new_as("provider", countries=presence))
            self._mesh(providers)
            providers_by_country[country] = providers
            # Every provider buys transit from 1-3 Tier-1s and from a
            # handful of pool carriers.  A provider with >= k-1 carrier
            # uplinks sits in the main k-clique community (its uplink
            # clique chains into the carrier mesh), which is what makes
            # parallel root communities overlap the main community the
            # way Section 4's overlap-fraction statistics describe.
            for p in providers:
                for t in self._rng.sample(tier1, self._rng.randint(1, 3)):
                    if not self._graph.has_edge(p, t):
                        self._graph.add_edge(p, t)
                self._add_carrier_uplinks(p, pool)
        return providers_by_country

    def _add_carrier_uplinks(
        self, asn: int, pool: list[int], *, boost: int | None = None
    ) -> None:
        """Connect ``asn`` to a heavy-tailed number of pool carriers.

        An AS with u uplinks into the (meshed) pool belongs to the main
        k-clique community for every k <= u + 1.  ``boost`` forces at
        least that many uplinks — used for the anchor members of root
        communities, whose double membership (regional clique + main
        community) produces the overlap-fraction statistics of
        Section 4.
        """
        roll = self._rng.random()
        if roll < 0.15:
            n_uplinks = 0
        elif roll < 0.35:
            n_uplinks = 2
        elif roll < 0.60:
            n_uplinks = 3
        elif roll < 0.78:
            n_uplinks = 4
        elif roll < 0.88:
            n_uplinks = 5
        elif roll < 0.95:
            n_uplinks = 6
        else:
            n_uplinks = 7
        if boost is not None:
            n_uplinks = max(n_uplinks, boost)
        n_uplinks = min(n_uplinks, len(pool))
        for carrier in self._rng.sample(pool, n_uplinks):
            if not self._graph.has_edge(asn, carrier):
                self._graph.add_edge(asn, carrier)
        self._uplinks[asn] = max(self._uplinks.get(asn, 0), n_uplinks)

    # ------------------------------------------------------------------
    # Small IXPs (root full-share communities)
    # ------------------------------------------------------------------
    def _build_small_ixps(
        self, providers_by_country: dict[str, list[int]], pool: list[int]
    ) -> None:
        cfg = self.config
        for spec in cfg.small_ixps:
            providers = providers_by_country.get(spec.country, [])
            anchors = providers[: min(2, len(providers))]
            for anchor in anchors:
                # IXP anchor providers are well connected upstream, so
                # they also sit in the main community at the orders
                # where this root community is parallel.
                self._add_carrier_uplinks(anchor, pool, boost=spec.core_size + 1)
            locals_needed = spec.core_size - len(anchors)
            members = list(anchors)
            for _ in range(locals_needed):
                asn = self._new_as("small_ixp_member", countries={spec.country})
                # Half of the local members also buy carrier transit,
                # placing them in the main community at moderate k.
                if self._rng.random() < 0.5:
                    self._add_carrier_uplinks(asn, pool)
                members.append(asn)
            self._mesh(members)
            for asn in members:
                self._join_ixp(spec.name, spec.country, asn)

    # ------------------------------------------------------------------
    # Regional multi-homing cliques (root communities)
    # ------------------------------------------------------------------
    def _build_regional_groups(
        self, providers_by_country: dict[str, list[int]], pool: list[int]
    ) -> None:
        cfg = self.config
        glo, ghi = cfg.regional_groups_per_country
        clo, chi = cfg.regional_customers
        for country, providers in providers_by_country.items():
            if len(providers) < 2:
                continue
            for _ in range(cfg.scaled(self._rng.randint(glo, ghi))):
                n_homes = self._rng.randint(2, min(4, len(providers)))
                # Multi-homed customers prefer the best-connected national
                # providers, so root communities inherit members that also
                # sit in the main community (Section 4's overlap story).
                weights = [1 + self._uplinks.get(p, 0) ** 2 for p in providers]
                homes: list[int] = []
                candidates = list(providers)
                cand_weights = list(weights)
                for _ in range(n_homes):
                    pick = self._rng.choices(range(len(candidates)), weights=cand_weights)[0]
                    homes.append(candidates.pop(pick))
                    cand_weights.pop(pick)
                customers = [
                    self._new_as("regional_customer", countries={country})
                    for _ in range(self._rng.randint(clo, chi))
                ]
                for c in customers:
                    for p in homes:
                        self._graph.add_edge(c, p)
                if self._rng.random() < cfg.regional_mesh_probability:
                    self._mesh(customers)
                    # The meshed clique reaches order len(homes) +
                    # len(customers); boosting the primary home keeps
                    # it co-resident in the main community there.
                    self._add_carrier_uplinks(
                        homes[0], pool, boost=len(homes) + len(customers) + 1
                    )

    # ------------------------------------------------------------------
    # Stubs
    # ------------------------------------------------------------------
    def _build_stubs(self, providers_by_country: dict[str, list[int]]) -> None:
        cfg = self.config
        countries = list(providers_by_country)
        for _ in range(cfg.scaled(cfg.n_stubs)):
            country = self._rng.choice(countries)
            providers = providers_by_country[country]
            known = self._rng.random() >= cfg.unknown_geo_fraction
            asn = self._new_as("stub", countries={country} if known else None)
            roll = self._rng.random()
            n_homes = 1 if roll < 0.4 else (2 if roll < 0.85 else 3)
            for p in self._rng.sample(providers, min(n_homes, len(providers))):
                self._graph.add_edge(asn, p)

    def _build_carrier_stubs(self, pool: list[int], rankings: dict[str, list[int]]) -> None:
        """Customer cones of the big carriers: the source of crown ODF."""
        cfg = self.config
        # Weight carriers by rank so the top of each ranking gets the
        # heaviest cone, mimicking the paper's huge crown degrees.
        weighted: list[int] = []
        for ranking in rankings.values():
            for position, asn in enumerate(ranking):
                weighted.extend([asn] * max(1, (len(ranking) - position) // 3))
        weighted.extend(pool * 2)
        for _ in range(cfg.scaled(cfg.n_carrier_stubs)):
            carrier = self._rng.choice(weighted)
            carrier_countries = self._geo.get(carrier, set())
            country = (
                self._rng.choice(sorted(carrier_countries))
                if carrier_countries
                else self._rng.choice(_EU_COUNTRIES)
            )
            asn = self._new_as("carrier_stub", countries={country})
            self._graph.add_edge(asn, carrier)
            if self._rng.random() < 0.35:
                second = self._rng.choice(weighted)
                if second != asn and not self._graph.has_edge(asn, second):
                    self._graph.add_edge(asn, second)

    # ------------------------------------------------------------------
    # Isolated customer triangles (parallel 3-clique communities)
    # ------------------------------------------------------------------
    def _build_isolated_triangles(self, providers_by_country: dict[str, list[int]]) -> None:
        cfg = self.config
        countries = list(providers_by_country)
        for index in range(cfg.scaled(cfg.n_isolated_triangles)):
            country = self._rng.choice(countries)
            n_members = 4 if self._rng.random() < 0.3 else 3
            members = [
                self._new_as("triangle_member", countries={country})
                for _ in range(n_members)
            ]
            self._mesh(members[:3])
            if n_members == 4:
                # Two triangles sharing an edge: a parallel 3-clique
                # community of size 4.
                self._graph.add_edge(members[3], members[0])
                self._graph.add_edge(members[3], members[1])
            providers = providers_by_country[country]
            if len(providers) >= 3 and index % 8 != 0:
                # The gateway member homes onto two (meshed) providers,
                # so it also belongs to the main 3-clique community —
                # the parallel triangle shares exactly that one AS with
                # the main community.
                for p in self._rng.sample(providers, 2):
                    self._graph.add_edge(members[0], p)
            else:
                # A few communities keep a single bridge edge and share
                # no AS with the main community — the paper found 6
                # such exceptions.
                self._graph.add_edge(members[0], self._rng.choice(providers))

    # ------------------------------------------------------------------
    # Connectivity guarantee
    # ------------------------------------------------------------------
    def _connect_components(self, tier1: list[int]) -> None:
        from ..graph.components import connected_components

        components = connected_components(self._graph)
        anchor = tier1[0]
        for component in components[1:]:
            node = next(iter(component))
            self._graph.add_edge(node, anchor)


def generate_topology(
    config: GeneratorConfig | None = None, *, seed: int = 42
) -> ASDataset:
    """One-call convenience: build the synthetic April-2010-like dataset."""
    return InternetTopologyGenerator(config, seed=seed).generate()
