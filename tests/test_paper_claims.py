"""The paper-claims ledger.

One test per headline claim of the paper, in paper order — the
regression contract of the reproduction.  Each test states the claim it
covers; EXPERIMENTS.md carries the quantitative paper-vs-measured
record, this module keeps the claims from silently breaking.  Deeper
per-module checks live in the other test files; these are intentionally
end-to-end.
"""

import pytest

from repro.analysis import (
    CommunityCensus,
    DensityOdfAnalysis,
    GeoAnalysis,
    IXPShareAnalysis,
    OverlapAnalysis,
    SizeAnalysis,
    crown_report,
    derive_bands,
    root_report,
    trunk_report,
)
from repro.core import verify_nesting
from repro.topology.geography import Continent


@pytest.fixture(scope="module")
def ledger(default_context):
    """Everything the claims need, computed once."""
    share = IXPShareAnalysis(default_context)
    bands = derive_bands(share)
    return {
        "context": default_context,
        "census": CommunityCensus(default_context.hierarchy),
        "sizes": SizeAnalysis(default_context),
        "density": DensityOdfAnalysis(default_context),
        "overlap": OverlapAnalysis(default_context),
        "share": share,
        "bands": bands,
        "geo": GeoAnalysis(default_context),
        "crown": crown_report(default_context, share, bands),
        "trunk": trunk_report(default_context, share, bands),
        "root": root_report(default_context, share, bands),
    }


class TestChapter3Claims:
    def test_theorem_1_every_community_nests_uniquely(self, ledger):
        """Sec 3.1: each k-community lies in exactly one (k-1)-community."""
        hierarchy = ledger["context"].hierarchy
        expected = sum(
            len(hierarchy[k]) for k in hierarchy.orders if k > hierarchy.min_k
        )
        assert verify_nesting(hierarchy) == expected


class TestChapter4StructureClaims:
    def test_single_2_clique_community(self, ledger):
        """Ch 4: a connected dataset has exactly one 2-clique community."""
        assert ledger["census"].single_2_clique_community()

    def test_unique_orders_contain_all_higher_communities(self, ledger):
        """Ch 4: a unique k-community contains every higher-order one."""
        hierarchy = ledger["context"].hierarchy
        for k in ledger["census"].unique_orders():
            unique = hierarchy[k][0]
            for higher_k in hierarchy.orders:
                if higher_k <= k:
                    continue
                for community in hierarchy[higher_k]:
                    assert community.members <= unique.members

    def test_main_chain_one_per_order_and_nested(self, ledger):
        """Fig 4.2: one main community per k, each containing the next."""
        tree = ledger["context"].tree
        chain = tree.main_chain()
        assert [n.k for n in chain] == ledger["context"].hierarchy.orders
        for parent, child in zip(chain, chain[1:]):
            assert child.community.members <= parent.community.members

    def test_main_size_decreases_parallel_sizes_near_k(self, ledger):
        """Fig 4.3's two point clouds."""
        sizes = ledger["sizes"]
        assert sizes.main_is_monotone_nonincreasing()
        assert sizes.main_covers_graph_at_k2()
        mean_ratio, _ = sizes.parallel_size_ratio_stats()
        assert mean_ratio < 3.0

    def test_density_and_odf_regimes(self, ledger):
        """Fig 4.4: chain-like main at low k, clique-like crown, high
        crown ODF."""
        density = ledger["density"]
        assert density.main_density_low_then_high()
        assert density.clique_like_top()
        assert density.main_odf_increases_to_crown()

    def test_overlap_fractions(self, ledger):
        """Sec 4 text: parallels overlap main; zero overlap is rare;
        par-par too variable to average."""
        overlap = ledger["overlap"]
        assert overlap.parallel_main_mean_over_k() > 0.4
        total = ledger["context"].hierarchy.total_communities
        assert overlap.total_zero_overlap_exceptions() < 0.05 * total
        assert (
            overlap.parallel_parallel_variance_over_k()
            > overlap.parallel_main_variance_over_k()
        )


class TestChapter4TagClaims:
    def test_high_k_communities_are_on_ixp(self, ledger):
        """Sec 4: >90% on-IXP members for every community above a
        threshold order (paper: 16)."""
        threshold = ledger["share"].high_on_ixp_threshold(fraction=0.9)
        assert threshold is not None and threshold <= 16

    def test_three_full_share_regimes(self, ledger):
        """Sec 4: full shares at the extremes, none in the trunk gap."""
        gap = ledger["share"].no_full_share_band()
        orders = ledger["share"].full_share_orders()
        assert gap is not None
        assert min(orders) < gap[0] and max(orders) > gap[1]

    def test_crown_claims(self, ledger):
        """Sec 4.1: AMS-IX apex without full share; big-three max
        shares; 4 non-EU / 3 non-IXP members; full-share parallels."""
        crown = ledger["crown"]
        assert crown.apex_max_share_ixp == "AMS-IX"
        assert not crown.apex_has_full_share
        assert not crown.main_has_full_share
        assert crown.max_share_ixps == {"AMS-IX", "DE-CIX", "LINX"}
        assert len(crown.non_european_members) == 4
        assert len(crown.non_ixp_members) == 3
        assert any(full for *_, full, is_main in crown.case_study if not is_main)

    def test_crown_is_european(self, ledger):
        """Sec 4.1: all crown ASes are in Europe but the exceptions."""
        geo = ledger["geo"]
        k_min = ledger["bands"].crown_min
        assert geo.continent_membership_fraction(Continent.EUROPE, k_min=k_min) > 0.85

    def test_trunk_claims(self, ledger):
        """Sec 4.2: no full share, high on-IXP, >90% max-share
        parallels, high-degree multi-country members, nested branch."""
        trunk = ledger["trunk"]
        assert not trunk.any_full_share
        assert trunk.min_on_ixp_fraction > 0.8
        assert trunk.parallel_max_share_min > 0.9
        assert trunk.mean_member_degree > 20
        assert len(trunk.longest_branch) >= 3

    def test_root_claims(self, ledger):
        """Sec 4.3: small parallels, full-share small IXPs incl.
        non-European, country-contained majority."""
        root = ledger["root"]
        assert root.mean_parallel_size < 15
        assert root.full_share_parallels >= 10
        assert root.non_european_full_share_exists
        assert root.country_contained_parallels > 50
