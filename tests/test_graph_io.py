"""Unit tests for edge-list I/O."""

import pytest

from repro.graph import Graph, format_edgelist, parse_edgelist, read_edgelist, write_edgelist
from repro.graph.io import EdgeListError


class TestParse:
    def test_basic(self):
        g = parse_edgelist(["1 2", "2 3"])
        assert g.number_of_edges == 2

    def test_comments_and_blanks_ignored(self):
        g = parse_edgelist(["# header", "", "1 2", "   ", "# trailing"])
        assert g.number_of_edges == 1

    def test_duplicates_collapse(self):
        g = parse_edgelist(["1 2", "2 1", "1 2"])
        assert g.number_of_edges == 1

    def test_self_loops_skipped(self):
        g = parse_edgelist(["1 1", "1 2"])
        assert g.number_of_edges == 1
        assert not g.has_edge(1, 1)

    def test_bad_token_count(self):
        with pytest.raises(EdgeListError, match="line 1"):
            parse_edgelist(["1 2 3"])

    def test_bad_type(self):
        with pytest.raises(EdgeListError, match="cannot parse"):
            parse_edgelist(["a b"])

    def test_custom_node_type(self):
        g = parse_edgelist(["a b"], node_type=str)
        assert g.has_edge("a", "b")


class TestRoundTrip:
    def test_format_is_deterministic_and_sorted(self):
        g = Graph([(3, 1), (2, 1)])
        text = format_edgelist(g)
        assert text == "1 2\n1 3\n"

    def test_header_rendered_as_comments(self):
        text = format_edgelist(Graph([(1, 2)]), header="line one\nline two")
        assert text.startswith("# line one\n# line two\n")

    def test_file_round_trip(self, tmp_path):
        g = Graph([(1, 2), (2, 3), (9, 4)])
        path = tmp_path / "topo.edges"
        write_edgelist(g, path, header="test")
        loaded = read_edgelist(path)
        assert {frozenset(e) for e in loaded.edges()} == {frozenset(e) for e in g.edges()}

    def test_empty_graph_round_trip(self, tmp_path):
        path = tmp_path / "empty.edges"
        write_edgelist(Graph(), path)
        assert read_edgelist(path).number_of_edges == 0
