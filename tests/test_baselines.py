"""Tests for the baseline community-detection methods."""

import random

import pytest

from repro.baselines import (
    EagleConfig,
    GCEConfig,
    KCoreDecomposition,
    KDenseDecomposition,
    eagle,
    extended_modularity,
    greedy_clique_expansion,
    k_dense_communities,
    k_dense_subgraph,
    label_propagation,
)
from repro.core import k_clique_communities
from repro.graph import (
    Graph,
    complete_graph,
    erdos_renyi,
    path_graph,
    ring_of_cliques,
    star_graph,
)


class TestKCore:
    def test_rows_and_partition(self):
        deco = KCoreDecomposition(ring_of_cliques(3, 5))
        assert deco.degeneracy == 4
        assert deco.is_partition()
        rows = deco.rows()
        assert rows[-1].k == 4
        assert rows[-1].core_size == 15

    def test_shells_disjoint(self):
        g = erdos_renyi(40, 0.2, random.Random(0))
        deco = KCoreDecomposition(g)
        seen = set()
        for k in range(deco.degeneracy + 1):
            shell = deco.shell_members(k)
            assert not (shell & seen)
            seen |= shell
        assert seen == set(g.nodes())


class TestKDense:
    def test_k2_drops_only_isolated_nodes(self):
        g = path_graph(4)
        g.add_node(99)
        dense = k_dense_subgraph(g, 2)
        assert 99 not in dense
        assert dense.number_of_edges == 3

    def test_k3_requires_triangles(self):
        assert len(k_dense_subgraph(path_graph(5), 3)) == 0
        triangle = complete_graph(3)
        assert k_dense_subgraph(triangle, 3).number_of_edges == 3

    def test_clique_survives_at_its_order(self):
        g = complete_graph(6)
        # Every edge has 4 common neighbors: survives up to k = 6.
        assert k_dense_subgraph(g, 6).number_of_edges == 15
        assert len(k_dense_subgraph(g, 7)) == 0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            k_dense_subgraph(Graph(), 1)

    def test_sandwich_property(self):
        """k-clique communities ⊆ k-dense subgraph ⊆ k-core."""
        from repro.graph import k_core

        g = erdos_renyi(35, 0.3, random.Random(1))
        for k in (3, 4):
            dense_nodes = set(k_dense_subgraph(g, k).nodes())
            core_nodes = set(k_core(g, k - 1).nodes())
            cpm_nodes = set()
            for community in k_clique_communities(g, k):
                cpm_nodes |= set(community.members)
            assert cpm_nodes <= dense_nodes <= core_nodes

    def test_communities_and_decomposition(self):
        g = ring_of_cliques(3, 5)
        communities = k_dense_communities(g, 5)
        assert len(communities) == 3
        deco = KDenseDecomposition(g)
        assert deco.max_k == 5
        assert deco.counts_by_k()[5] == 3
        assert deco.communities(99) == []

    def test_nesting_of_levels(self):
        g = erdos_renyi(30, 0.35, random.Random(2))
        deco = KDenseDecomposition(g)
        for k in range(3, deco.max_k + 1):
            assert set(deco.levels[k].nodes()) <= set(deco.levels[k - 1].nodes())


class TestGCE:
    def test_finds_ring_cliques(self):
        g = ring_of_cliques(4, 6)
        communities = greedy_clique_expansion(g, GCEConfig(min_clique_size=4))
        # Each 6-clique should appear (possibly grown slightly).
        assert len(communities) == 4
        for c in range(4):
            members = set(range(c * 6, (c + 1) * 6))
            assert any(members <= community for community in communities)

    def test_rejects_tier1_like_mesh(self):
        """The paper's GCE critique: a full mesh whose members have
        dominant external degree is not 'fit', so GCE grows it into a
        blob with the customer cone instead of keeping it crisp."""
        g = complete_graph(4)
        node = 100
        for hub in range(4):
            for _ in range(20):
                g.add_edge(hub, node)
                node += 1
        communities = greedy_clique_expansion(g, GCEConfig(min_clique_size=4))
        # The grown community is not the clean Tier-1 mesh.
        assert all(community != frozenset(range(4)) for community in communities)

    def test_dedupe(self):
        g = complete_graph(8)
        communities = greedy_clique_expansion(g, GCEConfig(min_clique_size=3))
        assert len(communities) == 1


class TestEagle:
    def test_recovers_ring_cliques(self):
        g = ring_of_cliques(4, 5)
        result = eagle(g, EagleConfig(min_clique_size=4))
        assert result.n_initial_cliques == 4
        tops = [c for c in result.communities if len(c) >= 5]
        assert len(tops) >= 4 or result.n_merges > 0

    def test_threshold_discards_small_cliques(self):
        """The paper's EAGLE critique: cliques below the threshold
        become subordinate singletons, losing regional communities."""
        g = ring_of_cliques(2, 6)
        # Attach a separate triangle (a small regional community).
        g.add_edges_from([(100, 101), (101, 102), (100, 102), (100, 0)])
        result = eagle(g, EagleConfig(min_clique_size=4))
        assert result.n_subordinate_vertices >= 3

    def test_extended_modularity_bounds(self):
        g = ring_of_cliques(3, 4)
        cover = [frozenset(range(c * 4, (c + 1) * 4)) for c in range(3)]
        eq = extended_modularity(g, cover)
        assert 0.0 < eq <= 1.0

    def test_extended_modularity_empty(self):
        assert extended_modularity(Graph(), []) == 0.0
        assert extended_modularity(complete_graph(3), []) == 0.0


class TestLabelPropagation:
    def test_partitions_node_set(self):
        g = ring_of_cliques(4, 6)
        communities = label_propagation(g, seed=0)
        nodes = [n for community in communities for n in community]
        assert sorted(nodes) == sorted(g.nodes())
        assert len(nodes) == len(set(nodes))  # no overlap, by construction

    def test_separates_weakly_joined_cliques(self):
        g = ring_of_cliques(4, 8)
        communities = label_propagation(g, seed=1)
        # Strong cliques should not all collapse into one label.
        assert len(communities) >= 2

    def test_isolated_nodes_kept(self):
        g = star_graph(3)
        g.add_node(42)
        communities = label_propagation(g, seed=0)
        assert {42} in communities

    def test_deterministic_for_seed(self):
        g = erdos_renyi(30, 0.2, random.Random(3))
        a = label_propagation(g, seed=5)
        b = label_propagation(g, seed=5)
        assert a == b
