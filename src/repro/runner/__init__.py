"""Resilient execution engine for the LP-CPM pipeline.

The paper's community extraction ran 93 hours on 48 cores; at that
scale faults are the common case, not the exception.  This package
supplies the three ingredients that make a long LP-CPM run survivable,
consumed by :class:`repro.core.lightweight.LightweightParallelCPM` and
surfaced on the CLI as ``--checkpoint-dir``/``--resume``:

* :mod:`.checkpoint` — phase-level checkpoints (enumeration, overlap
  wire, per-order percolation prefixes) behind atomic writes, so an
  interrupted run resumes from the last completed phase;
* :mod:`.supervise` — a supervised process pool with per-round
  timeouts, bounded exponential-backoff retry, pool resurrection after
  worker death, and graceful degradation to serial in-driver execution
  when a batch fails permanently;
* :mod:`.faults` — deterministic fault injection (``REPRO_FAULT_PLAN``)
  that kills/delays/fails chosen batches or phase boundaries, so every
  recovery path above is testable in CI.

See ``docs/robustness.md`` for the checkpoint layout, the retry and
degradation policy, and the observability surface (``runner.*``
counters and spans).
"""

from .checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    PHASES,
    CheckpointError,
    CheckpointMismatchError,
    CheckpointStore,
)
from .faults import FAULT_PLAN_ENV, FaultPlan, FaultRule, InjectedFault
from .supervise import BatchRetryExhausted, PoolSupervisor, RunnerConfig

__all__ = [
    "CheckpointStore",
    "CheckpointError",
    "CheckpointMismatchError",
    "CHECKPOINT_SCHEMA_VERSION",
    "PHASES",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "FAULT_PLAN_ENV",
    "PoolSupervisor",
    "RunnerConfig",
    "BatchRetryExhausted",
]
