"""Sampling resource monitor: RSS / CPU series for a whole run.

Spans answer "how long did each phase take"; they cannot answer "what
did the process footprint look like *while* the overlap phase ran".
:class:`ResourceMonitor` fills that gap with a daemon thread that
samples, at a configurable interval:

* current resident set size (``/proc/self/statm`` where available,
  0 elsewhere — no dependency on psutil),
* the high-water RSS (``resource.getrusage``),
* cumulative process CPU time (``time.process_time``),
* the ``time.perf_counter`` wall clock — the *same* clock spans stamp
  ``start_wall`` with, so samples and spans align on one timeline (the
  Perfetto exporter relies on this to draw the counter track under the
  span tracks).

The monitor is opt-in and owned by the caller: uninstrumented runs
never construct one, so the disabled cost is exactly zero.  The
collected series lands in the :class:`~.manifest.RunManifest` as the
``resources`` block.
"""

from __future__ import annotations

import os
import threading
import time

from .tracing import max_rss_kib

__all__ = ["ResourceMonitor"]

#: Bytes per VM page, for converting /proc/self/statm resident pages.
_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096

#: Default sampling interval in seconds (coarse enough to be free,
#: fine enough to catch per-phase footprint changes).
DEFAULT_INTERVAL = 0.25


def current_rss_kib() -> int:
    """Current resident set size in KiB (0 where /proc is unavailable)."""
    try:
        with open("/proc/self/statm", "rb") as handle:
            fields = handle.read().split()
        return int(fields[1]) * _PAGE_SIZE // 1024
    except (OSError, IndexError, ValueError):
        return 0


class ResourceMonitor:
    """Background sampler of process RSS and CPU time.

    Use as a context manager (or call :meth:`start` / :meth:`stop`)::

        with ResourceMonitor(interval=0.25) as monitor:
            run_the_pipeline()
        manifest = RunManifest.collect(..., resources=monitor.series())

    Samples are plain dicts (``wall``, ``rss_kib``, ``max_rss_kib``,
    ``cpu_seconds``) appended under a lock; :meth:`series` returns the
    JSON-ready block.  The thread is a daemon and ``stop`` is
    idempotent, so a crashing run can never hang on the sampler.
    """

    def __init__(self, interval: float = DEFAULT_INTERVAL) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.interval = interval
        self.samples: list[dict] = []
        self._lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ResourceMonitor":
        """Begin sampling (one leading sample is taken immediately)."""
        if self._thread is not None:
            return self
        self._sample()
        self._thread = threading.Thread(
            target=self._run, name="repro-resource-monitor", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the thread and take one trailing sample (idempotent)."""
        if self._thread is None:
            return
        self._stop_event.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        self._sample()

    def __enter__(self) -> "ResourceMonitor":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while not self._stop_event.wait(self.interval):
            self._sample()

    def _sample(self) -> None:
        sample = {
            "wall": time.perf_counter(),
            "rss_kib": current_rss_kib(),
            "max_rss_kib": max_rss_kib(),
            "cpu_seconds": time.process_time(),
        }
        with self._lock:
            self.samples.append(sample)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def series(self) -> dict:
        """The collected samples as the manifest's ``resources`` block."""
        with self._lock:
            samples = list(self.samples)
        return {"interval": self.interval, "samples": samples}
