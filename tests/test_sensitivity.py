"""Tests for the seed-sensitivity harness.

Uses the tiny profile for speed; the benchmark runs the default
profile across seeds.
"""

import pytest

from repro.analysis.sensitivity import run_sensitivity
from repro.topology import GeneratorConfig


@pytest.fixture(scope="module")
def report():
    return run_sensitivity(seeds=[3, 7], config=GeneratorConfig.tiny())


class TestSensitivity:
    def test_one_run_per_seed(self, report):
        assert report.n_seeds == 2
        assert [run.seed for run in report.runs] == [3, 7]

    def test_invariants_hold_across_seeds(self, report):
        assert report.invariants_always_hold()

    def test_max_k_fixed_by_construction(self, report):
        # Tiny profile: AMS base 14 + ext = 15-clique apex.
        assert report.max_k_values() == {15}

    def test_crown_always_big_three(self, report):
        assert report.crown_ixps_always_big_three()

    def test_count_range_and_overlap_stats(self, report):
        lo, hi = report.community_count_range()
        assert 0 < lo <= hi
        mean, stdev = report.overlap_mean_stats()
        assert 0.0 < mean < 1.0
        assert stdev >= 0.0

    def test_band_boundary_spread_small(self, report):
        root_spread, crown_spread = report.band_boundary_spread()
        assert root_spread <= 2
        assert crown_spread <= 2
