"""Extension — synthetic-topology validation against AS-graph invariants.

The substitution argument of DESIGN.md §2 requires the generated
topology to reproduce the Internet's published structural invariants,
independent of the community analysis itself:

* heavy-tailed degrees with power-law exponent ~2.1 (Faloutsos et al.);
* high average local clustering (≈0.4-0.6 at AS level);
* disassortative degree mixing (≈ -0.2);
* a dense rich club of top carriers.

This bench regenerates the validation table; the assertions pin the
accepted ranges.
"""

from repro.graph.stats import summarize_graph
from repro.report.figures import ascii_table


def test_topology_validation(benchmark, dataset, emit):
    summary = benchmark(lambda: summarize_graph(dataset.graph))
    table = ascii_table(
        ["invariant", "measured", "published AS-level value"],
        [
            [
                "nodes / edges",
                f"{summary.n_nodes} / {summary.n_edges}",
                "35,390 / 152,233 (Apr 2010)",
            ],
            ["mean degree", round(summary.mean_degree, 2), "~8.6"],
            ["max degree", summary.max_degree, "thousands (Tier-1s)"],
            ["power-law alpha (MLE)", round(summary.powerlaw_alpha, 2), "~2.1"],
            ["global clustering", round(summary.global_clustering, 3), "~0.01-0.1"],
            ["avg local clustering", round(summary.average_local_clustering, 3), "~0.4-0.6"],
            ["degree assortativity", round(summary.assortativity, 3), "~-0.2"],
            ["top-1% degree density", round(summary.top_degree_density, 3), "dense rich club"],
        ],
        title="Synthetic topology vs published Internet AS-graph invariants",
    )
    emit("topology_validation", table)

    assert 1.7 < summary.powerlaw_alpha < 2.6
    assert summary.average_local_clustering > 0.3
    assert summary.assortativity < -0.05
    assert summary.top_degree_density > 0.4
