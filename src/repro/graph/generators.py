"""Elementary graph generators.

Used by the test-suite (oracles with known clique structure), by the
synthetic Internet generator (building blocks: cliques, stars,
preferential attachment) and by benchmark scaling sweeps.
All generators take an explicit ``random.Random`` where randomness is
involved so that every experiment in the repository is reproducible
from a seed.
"""

from __future__ import annotations

import random
from collections.abc import Hashable, Sequence

from .undirected import Graph

__all__ = [
    "complete_graph",
    "cycle_graph",
    "path_graph",
    "star_graph",
    "erdos_renyi",
    "barabasi_albert",
    "ring_of_cliques",
    "overlapping_cliques",
]


def complete_graph(nodes: int | Sequence[Hashable]) -> Graph:
    """K_n on ``range(n)`` or on an explicit node sequence."""
    members: Sequence[Hashable] = range(nodes) if isinstance(nodes, int) else nodes
    graph = Graph()
    members = list(members)
    graph.add_nodes_from(members)
    for i, u in enumerate(members):
        for v in members[i + 1 :]:
            graph.add_edge(u, v)
    return graph


def path_graph(n: int) -> Graph:
    """A simple path on nodes 0..n-1."""
    graph = Graph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from((i, i + 1) for i in range(n - 1))
    return graph


def cycle_graph(n: int) -> Graph:
    """A simple cycle on nodes 0..n-1 (needs n >= 3)."""
    if n < 3:
        raise ValueError(f"cycle needs >= 3 nodes, got {n}")
    graph = path_graph(n)
    graph.add_edge(n - 1, 0)
    return graph


def star_graph(n_leaves: int) -> Graph:
    """Node 0 is the hub; 1..n_leaves are leaves."""
    graph = Graph()
    graph.add_node(0)
    graph.add_edges_from((0, leaf) for leaf in range(1, n_leaves + 1))
    return graph


def erdos_renyi(n: int, p: float, rng: random.Random) -> Graph:
    """G(n, p) sampled with the given generator."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    graph = Graph()
    graph.add_nodes_from(range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                graph.add_edge(u, v)
    return graph


def barabasi_albert(n: int, m: int, rng: random.Random) -> Graph:
    """Preferential-attachment graph: each new node attaches to ``m`` targets.

    The heavy-tailed degree distribution of the Internet AS graph is the
    canonical instance of this process; the synthetic topology generator
    uses it for the stub/customer periphery.
    """
    if m < 1 or m >= n:
        raise ValueError(f"need 1 <= m < n, got m={m}, n={n}")
    graph = complete_graph(m + 1)
    # Repeated-nodes list: sampling uniformly from it is sampling
    # proportionally to degree.
    repeated: list[int] = [node for u, v in graph.edges() for node in (u, v)]
    for new in range(m + 1, n):
        targets: set[int] = set()
        while len(targets) < m:
            targets.add(rng.choice(repeated))
        for target in targets:
            graph.add_edge(new, target)
            repeated.extend((new, target))
    return graph


def ring_of_cliques(n_cliques: int, clique_size: int) -> Graph:
    """``n_cliques`` disjoint K_{clique_size} joined in a ring by single edges.

    A standard community-detection oracle: every clique is its own
    k-clique community for k == clique_size, while for k == 2 the whole
    ring is one community.
    """
    if n_cliques < 1 or clique_size < 2:
        raise ValueError("need n_cliques >= 1 and clique_size >= 2")
    graph = Graph()
    for c in range(n_cliques):
        members = [c * clique_size + i for i in range(clique_size)]
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                graph.add_edge(u, v)
    if n_cliques > 1:
        for c in range(n_cliques):
            u = c * clique_size  # first member of clique c
            v = ((c + 1) % n_cliques) * clique_size
            if not graph.has_edge(u, v):
                graph.add_edge(u, v)
    return graph


def overlapping_cliques(sizes: Sequence[int], overlap: int) -> Graph:
    """A chain of cliques, consecutive ones sharing ``overlap`` nodes.

    With ``overlap == k - 1`` consecutive k-cliques are CPM-adjacent, so
    the whole chain is one k-clique community: the elementary object of
    the paper's Section 3 definition, used as a ground-truth fixture.
    """
    if overlap < 0:
        raise ValueError("overlap must be non-negative")
    graph = Graph()
    next_node = 0
    previous: list[int] = []
    for size in sizes:
        if overlap >= size:
            raise ValueError(f"overlap {overlap} must be < clique size {size}")
        shared = previous[-overlap:] if overlap and previous else []
        fresh = list(range(next_node, next_node + size - len(shared)))
        next_node += len(fresh)
        members = shared + fresh
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                if not graph.has_edge(u, v):
                    graph.add_edge(u, v)
        previous = members
    return graph
