"""Crown / trunk / root banding (Sections 4.1–4.3).

The paper splits the community tree into three bands using the
full-share-IXP regimes: crown (k > 28) — communities fully contained in
the largest European IXPs only; trunk (k in [14, 28]) — no community
has a full-share IXP; root (k < 14) — full-share at small regional
IXPs.  Boundaries are *derived from the data* here, exactly as in the
paper: the trunk is the no-full-share gap between the two regimes.

Each band gets a report object carrying the paper's per-band claims so
benchmarks and tests can check them mechanically.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from ..core.communities import Community
from ..topology.geography import Continent
from .context import AnalysisContext
from .geo import GeoAnalysis
from .ixp_share import IXPShareAnalysis

__all__ = [
    "BandBoundaries",
    "derive_bands",
    "CrownReport",
    "TrunkReport",
    "RootReport",
    "crown_report",
    "trunk_report",
    "root_report",
]


@dataclass(frozen=True)
class BandBoundaries:
    """Derived band edges: root = [2, root_max], trunk = [root_max+1,
    crown_min-1], crown = [crown_min, max_k]."""

    root_max: int
    crown_min: int

    def band_of(self, k: int) -> str:
        """The band name ('root' / 'trunk' / 'crown') of order ``k``."""
        if k <= self.root_max:
            return "root"
        if k < self.crown_min:
            return "trunk"
        return "crown"


def derive_bands(
    ixp_share: IXPShareAnalysis,
    *,
    fallback: tuple[int, int] = (13, 29),
) -> BandBoundaries:
    """Band boundaries from the no-full-share gap of the IXP analysis.

    ``fallback`` (root_max, crown_min) applies when the dataset has no
    two-regime structure (e.g. tiny test graphs).
    """
    gap = ixp_share.no_full_share_band()
    if gap is None:
        return BandBoundaries(root_max=fallback[0], crown_min=fallback[1])
    return BandBoundaries(root_max=gap[0] - 1, crown_min=gap[1] + 1)


def _communities_in_band(context: AnalysisContext, lo: int, hi: int) -> list[Community]:
    return [c for c in context.hierarchy.all_communities() if lo <= c.k <= hi]


# ----------------------------------------------------------------------
# Crown (Section 4.1)
# ----------------------------------------------------------------------
@dataclass
class CrownReport:
    """The Section 4.1 claims about crown communities."""

    k_range: tuple[int, int]
    n_communities: int
    apex_label: str
    apex_size: int
    apex_max_share_ixp: str | None
    apex_max_share_fraction: float
    apex_has_full_share: bool
    max_share_ixps: set[str] = field(default_factory=set)
    member_ases: set[int] = field(default_factory=set)
    non_european_members: set[int] = field(default_factory=set)
    non_ixp_members: set[int] = field(default_factory=set)
    main_has_full_share: bool = False
    case_study_k: int | None = None
    case_study: list[tuple[str, str, float, bool, bool]] = field(default_factory=list)
    # (label, max-share IXP, fraction, has_full_share, is_main)


def crown_report(
    context: AnalysisContext,
    ixp_share: IXPShareAnalysis,
    bands: BandBoundaries,
) -> CrownReport:
    """Compute the Section 4.1 crown-band report."""
    hierarchy = context.hierarchy
    tree = context.tree
    registry = context.dataset.ixps
    geography = context.dataset.geography
    lo, hi = bands.crown_min, hierarchy.max_k
    communities = _communities_in_band(context, lo, hi)

    members: set[int] = set()
    for c in communities:
        members |= set(c.members)
    non_eu = {a for a in members if Continent.EUROPE not in geography.continents(a)}
    non_ixp = {a for a in members if not registry.is_on_ixp(a)}

    apex = tree.apex.community
    apex_record = ixp_share.record(apex.label)

    # Case study: the largest order below max_k with >= 3 communities
    # (the paper's nine 34-clique communities).
    case_k = None
    for k in range(hierarchy.max_k - 1, lo - 1, -1):
        if k in hierarchy and len(hierarchy[k]) >= 3:
            case_k = k
            break
    case_rows: list[tuple[str, str, float, bool, bool]] = []
    if case_k is not None:
        for c in hierarchy[case_k]:
            record = ixp_share.record(c.label)
            case_rows.append(
                (
                    c.label,
                    record.max_share_ixp or "-",
                    record.max_share_fraction,
                    record.has_full_share,
                    tree.is_main(c),
                )
            )

    main_full_share = any(
        ixp_share.record(tree.main_community(k).label).has_full_share
        for k in range(lo, hi + 1)
        if k in hierarchy
    )
    return CrownReport(
        k_range=(lo, hi),
        n_communities=len(communities),
        apex_label=apex.label,
        apex_size=apex.size,
        apex_max_share_ixp=apex_record.max_share_ixp,
        apex_max_share_fraction=apex_record.max_share_fraction,
        apex_has_full_share=apex_record.has_full_share,
        max_share_ixps={
            r.max_share_ixp
            for r in ixp_share.records
            if lo <= r.k <= hi and r.max_share_ixp is not None
        },
        member_ases=members,
        non_european_members=non_eu,
        non_ixp_members=non_ixp,
        main_has_full_share=main_full_share,
        case_study_k=case_k,
        case_study=case_rows,
    )


# ----------------------------------------------------------------------
# Trunk (Section 4.2)
# ----------------------------------------------------------------------
@dataclass
class TrunkReport:
    """The Section 4.2 claims about trunk communities."""

    k_range: tuple[int, int]
    n_communities: int
    any_full_share: bool
    min_on_ixp_fraction: float
    parallel_max_share_min: float | None
    mean_member_degree: float
    worldwide_or_continental_fraction: float
    longest_branch: list[tuple[str, int, str | None]] = field(default_factory=list)
    # (label, size, max-share IXP) ascending k


def trunk_report(
    context: AnalysisContext,
    ixp_share: IXPShareAnalysis,
    bands: BandBoundaries,
) -> TrunkReport:
    """Compute the Section 4.2 trunk-band report."""
    hierarchy = context.hierarchy
    tree = context.tree
    geography = context.dataset.geography
    lo, hi = bands.root_max + 1, bands.crown_min - 1
    communities = _communities_in_band(context, lo, hi)
    records = [r for r in ixp_share.records if lo <= r.k <= hi]

    members: set[int] = set()
    for c in communities:
        members |= set(c.members)
    # Degrees come from the engine's CSR snapshot (one indptr diff per
    # node); integer degrees make the mean exact and order-independent.
    node_degree = context.engine.node_degree
    degrees = [node_degree(a) for a in members]
    multi_country = [
        a
        for a in members
        if geography.tag(a).value in ("worldwide", "continental")
    ]

    parallel_fracs = [
        r.max_share_fraction for r in records if not r.is_main and r.max_share_ixp
    ]
    branches = [
        b
        for b in tree.parallel_branches()
        if lo <= b[0].k and b[-1].k <= hi
    ]
    longest: list[tuple[str, int, str | None]] = []
    if branches:
        branch = max(branches, key=len)
        longest = [
            (node.label, node.community.size, ixp_share.record(node.label).max_share_ixp)
            for node in branch
        ]
    return TrunkReport(
        k_range=(lo, hi),
        n_communities=len(communities),
        any_full_share=any(r.has_full_share for r in records),
        min_on_ixp_fraction=min((r.on_ixp_fraction for r in records), default=0.0),
        parallel_max_share_min=min(parallel_fracs, default=None),
        mean_member_degree=statistics.mean(degrees) if degrees else 0.0,
        worldwide_or_continental_fraction=(
            len(multi_country) / len(members) if members else 0.0
        ),
        longest_branch=longest,
    )


# ----------------------------------------------------------------------
# Root (Section 4.3)
# ----------------------------------------------------------------------
@dataclass
class RootReport:
    """The Section 4.3 claims about root communities."""

    k_range: tuple[int, int]
    n_communities: int
    mean_parallel_size: float
    full_share_parallels: int
    full_share_ixp_countries: set[str] = field(default_factory=set)
    non_european_full_share_exists: bool = False
    country_contained_parallels: int = 0


def root_report(
    context: AnalysisContext,
    ixp_share: IXPShareAnalysis,
    bands: BandBoundaries,
    geo: GeoAnalysis | None = None,
) -> RootReport:
    """Compute the Section 4.3 root-band report."""
    hierarchy = context.hierarchy
    tree = context.tree
    registry = context.dataset.ixps
    lo, hi = hierarchy.min_k, bands.root_max
    communities = _communities_in_band(context, lo, hi)
    records = [r for r in ixp_share.records if lo <= r.k <= hi]
    geo = geo or GeoAnalysis(context)

    parallel_sizes = [c.size for c in communities if not tree.is_main(c)]
    full_share_parallel = [r for r in records if not r.is_main and r.has_full_share]
    countries = {
        registry[name].country
        for r in full_share_parallel
        for name in r.full_share_ixps
        if name in registry
    }
    country_contained = geo.country_contained(k_max=hi, parallel_only=True)
    return RootReport(
        k_range=(lo, hi),
        n_communities=len(communities),
        mean_parallel_size=(
            statistics.mean(parallel_sizes) if parallel_sizes else 0.0
        ),
        full_share_parallels=len(full_share_parallel),
        full_share_ixp_countries=countries,
        non_european_full_share_exists=any(
            Continent.EUROPE is not _continent_or_none(c) for c in countries
        ),
        country_contained_parallels=len(country_contained),
    )


def _continent_or_none(country: str):
    from ..topology.geography import COUNTRY_CONTINENT

    return COUNTRY_CONTINENT.get(country)
