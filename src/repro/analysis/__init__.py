"""Analysis layer: one module per piece of the paper's Chapter 4
evaluation, all driven by a shared :class:`AnalysisContext`.
"""

from .bands import (
    BandBoundaries,
    CrownReport,
    RootReport,
    TrunkReport,
    crown_report,
    derive_bands,
    root_report,
    trunk_report,
)
from .census import CensusRow, CommunityCensus
from .community_graph import CommunityGraphStats, community_graph, community_graph_stats
from .context import AnalysisContext
from .density_odf import DensityOdfAnalysis, DensityOdfPoint
from .engine import ENGINES, MetricsEngine, MetricsRow, OrderOverlap
from .geo import CommunityGeo, GeoAnalysis, common_continents, common_countries
from .ixp_share import CommunityIXPShare, IXPShareAnalysis
from .kdense_compare import KDenseComparison, compare_with_kdense
from .overlap import OverlapAnalysis, OverlapRow
from .percolation_threshold import (
    SweepPoint,
    critical_probability,
    empirical_threshold,
    threshold_sweep,
)
from .robustness import (
    BandRecall,
    RobustnessReport,
    community_recall,
    uniform_edge_sample,
)
from .sensitivity import SeedRun, SensitivityReport, run_sensitivity
from .sizes import SizeAnalysis, SizePoint
from .tree_metrics import BranchRecord, TreeShape, tree_shape
from .zp import NodeRole, ZPAnalysis, ZPRecord, classify_role

__all__ = [
    "AnalysisContext",
    "MetricsEngine",
    "MetricsRow",
    "OrderOverlap",
    "ENGINES",
    "CommunityCensus",
    "CensusRow",
    "SizeAnalysis",
    "SizePoint",
    "DensityOdfAnalysis",
    "DensityOdfPoint",
    "OverlapAnalysis",
    "OverlapRow",
    "IXPShareAnalysis",
    "CommunityIXPShare",
    "GeoAnalysis",
    "CommunityGeo",
    "common_countries",
    "common_continents",
    "BandBoundaries",
    "derive_bands",
    "CrownReport",
    "TrunkReport",
    "RootReport",
    "crown_report",
    "trunk_report",
    "root_report",
    "ZPAnalysis",
    "ZPRecord",
    "NodeRole",
    "classify_role",
    "RobustnessReport",
    "BandRecall",
    "community_recall",
    "uniform_edge_sample",
    "critical_probability",
    "threshold_sweep",
    "empirical_threshold",
    "SweepPoint",
    "SeedRun",
    "SensitivityReport",
    "run_sensitivity",
    "KDenseComparison",
    "compare_with_kdense",
    "CommunityGraphStats",
    "community_graph",
    "community_graph_stats",
    "TreeShape",
    "BranchRecord",
    "tree_shape",
]
