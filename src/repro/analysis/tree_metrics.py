"""Quantitative shape of the k-clique community tree.

Chapter 5 describes the tree qualitatively: "parallel branches ...
characterized by a limited size which are rapidly incorporated into a
main community with a lower k".  This module turns that into numbers:

* **branch persistence** — how many orders a parallel branch survives
  before merging (the k-span of the side chains in Figure 4.2);
* **absorption order** — the k of the main community a branch merges
  into, by band;
* **branching factor** — children per tree node, split main/parallel;
* **depth profile** — nodes per order (Figure 4.1 from the tree side).
"""

from __future__ import annotations

import statistics
from collections import Counter
from dataclasses import dataclass

from ..core.tree import CommunityTree

__all__ = ["BranchRecord", "TreeShape", "tree_shape"]


@dataclass(frozen=True)
class BranchRecord:
    """One parallel branch of the tree."""

    start_k: int            # shallowest order of the branch
    end_k: int              # deepest order
    absorbed_at: int | None  # order of the main community it merges into
    sizes: tuple[int, ...]
    #: Per-node link densities along the branch, filled in only when
    #: ``tree_shape`` is given a metric engine (None otherwise).
    link_densities: tuple[float, ...] | None = None

    @property
    def persistence(self) -> int:
        """Number of orders the branch spans."""
        return self.end_k - self.start_k + 1


@dataclass
class TreeShape:
    """Aggregate shape statistics of a community tree."""

    n_nodes: int
    n_main: int
    n_parallel: int
    branches: list[BranchRecord]
    branching_factor_main: float
    branching_factor_parallel: float
    nodes_per_order: dict[int, int]

    def mean_persistence(self) -> float:
        """Average branch persistence (the paper: short side chains)."""
        if not self.branches:
            return 0.0
        return statistics.mean(b.persistence for b in self.branches)

    def max_persistence(self) -> int:
        """The deepest-surviving branch (the MSK-IX-style chains)."""
        return max((b.persistence for b in self.branches), default=0)

    def persistence_distribution(self) -> dict[int, int]:
        """Persistence -> number of branches."""
        return dict(sorted(Counter(b.persistence for b in self.branches).items()))

    def absorption_orders(self) -> dict[int, int]:
        """Order absorbed into main -> number of branches."""
        return dict(
            sorted(
                Counter(
                    b.absorbed_at for b in self.branches if b.absorbed_at is not None
                ).items()
            )
        )


def tree_shape(
    tree: CommunityTree, *, min_branch_length: int = 1, engine=None
) -> TreeShape:
    """Measure the shape of a community tree.

    ``engine`` (a :class:`~repro.analysis.engine.MetricsEngine`, or any
    object with a ``row(label)`` accessor) optionally annotates each
    branch with the link densities from the shared metric table; without
    one the records carry ``link_densities=None`` as before.
    """
    branches = []
    for chain in tree.parallel_branches(min_length=min_branch_length):
        parent = chain[0].parent
        absorbed_at = parent.k if parent is not None and tree.is_main(parent.community) else None
        branches.append(
            BranchRecord(
                start_k=chain[0].k,
                end_k=chain[-1].k,
                absorbed_at=absorbed_at,
                sizes=tuple(node.community.size for node in chain),
                link_densities=(
                    None
                    if engine is None
                    else tuple(engine.row(node.label).link_density for node in chain)
                ),
            )
        )
    main_children = []
    parallel_children = []
    nodes_per_order: Counter[int] = Counter()
    n_main = 0
    for node in tree:
        nodes_per_order[node.k] += 1
        if tree.is_main(node.community):
            n_main += 1
            main_children.append(len(node.children))
        else:
            parallel_children.append(len(node.children))
    return TreeShape(
        n_nodes=len(tree),
        n_main=n_main,
        n_parallel=len(tree) - n_main,
        branches=sorted(branches, key=lambda b: (-b.persistence, b.start_k)),
        branching_factor_main=statistics.mean(main_children) if main_children else 0.0,
        branching_factor_parallel=(
            statistics.mean(parallel_children) if parallel_children else 0.0
        ),
        nodes_per_order=dict(sorted(nodes_per_order.items())),
    )
