"""Overlap-fraction analysis (Section 4 text).

At each order k the paper computes the overlap (shared members) and
overlap fraction (overlap over the smaller community's size) between
pairs of communities.  Findings reproduced here:

a) (almost) every parallel community shares at least one AS with its
   relative main community — 6 exceptions across the whole tree;
b) there are parallel communities that do not overlap any other
   parallel community;
c) small sets of parallel communities overlap each other strongly;
d) the parallel↔main average overlap fraction exceeds 0.432 at every k
   and averages 0.704 over k (variance 0.023), i.e. on average ~70% of
   a parallel community's ASes also participate in the main community;
e) parallel↔parallel overlap fractions vary too much to average
   usefully (variance 0.136).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from .context import AnalysisContext

__all__ = ["OverlapRow", "OverlapAnalysis"]


@dataclass(frozen=True)
class OverlapRow:
    """Per-order overlap summary."""

    k: int
    n_parallel: int
    mean_parallel_main_fraction: float
    zero_overlap_parallels: int
    mean_parallel_parallel_fraction: float | None


class OverlapAnalysis:
    """All per-order overlap statistics of Section 4."""

    def __init__(self, context: AnalysisContext) -> None:
        self.context = context
        self.rows: list[OverlapRow] = []
        #: Per-order parallel↔parallel fraction tuples, keyed by k.  All
        #: pairwise findings (b, c, e) read these — the pairs are
        #: enumerated exactly once, by the engine sweep.
        self._pair_fractions: dict[int, tuple[float, ...]] = {}
        overlaps = context.engine.order_overlaps()
        for k in context.hierarchy.orders:
            order = overlaps.get(k)
            if order is None:
                continue
            main_fracs = order.main_fractions
            pp_fracs = order.pair_fractions
            self._pair_fractions[k] = pp_fracs
            self.rows.append(
                OverlapRow(
                    k=k,
                    n_parallel=len(order.parallel_labels),
                    mean_parallel_main_fraction=statistics.mean(main_fracs),
                    zero_overlap_parallels=sum(1 for f in main_fracs if f == 0.0),
                    mean_parallel_parallel_fraction=(
                        statistics.mean(pp_fracs) if pp_fracs else None
                    ),
                )
            )

    # ------------------------------------------------------------------
    # The paper's headline numbers
    # ------------------------------------------------------------------
    def parallel_main_mean_over_k(self) -> float:
        """Average over k of the per-k parallel↔main mean (paper: 0.704)."""
        values = [row.mean_parallel_main_fraction for row in self.rows]
        return statistics.mean(values) if values else 0.0

    def parallel_main_variance_over_k(self) -> float:
        """Variance of the same series (paper: 0.023)."""
        values = [row.mean_parallel_main_fraction for row in self.rows]
        return statistics.variance(values) if len(values) > 1 else 0.0

    def parallel_main_min_over_k(self) -> float:
        """Minimum per-k mean (paper: always larger than 0.432)."""
        values = [row.mean_parallel_main_fraction for row in self.rows]
        return min(values) if values else 0.0

    def total_zero_overlap_exceptions(self) -> int:
        """Parallel communities sharing no AS with their main (paper: 6)."""
        return sum(row.zero_overlap_parallels for row in self.rows)

    def parallel_parallel_variance_over_k(self) -> float:
        """Variance of the per-k parallel↔parallel means (paper: 0.136).

        The paper declines to report the average because of this
        variance; we report the variance itself as the checkable claim.
        """
        values = [
            row.mean_parallel_parallel_fraction
            for row in self.rows
            if row.mean_parallel_parallel_fraction is not None
        ]
        return statistics.variance(values) if len(values) > 1 else 0.0

    def disjoint_parallel_pairs_exist(self) -> bool:
        """Finding (b): some parallel pairs share no member.

        A pair's overlap count is zero iff its fraction is zero (sizes
        are at least k > 0), so this reads the memoized fraction table
        instead of re-enumerating every pair.
        """
        return any(
            frac == 0.0
            for fracs in self._pair_fractions.values()
            for frac in fracs
        )

    def strongly_overlapping_parallel_pairs(self, *, threshold: float = 0.5) -> int:
        """Finding (c): count of parallel pairs above the given fraction."""
        return sum(
            1
            for fracs in self._pair_fractions.values()
            for frac in fracs
            if frac >= threshold
        )
