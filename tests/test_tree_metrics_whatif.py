"""Tests for tree-shape metrics and the what-if counterfactuals."""

import pytest

from repro.analysis import tree_shape
from repro.core import CommunityTree, LightweightParallelCPM, extract_hierarchy
from repro.graph import ring_of_cliques
from repro.topology import add_ixp, remove_ixp_fabric


class TestTreeShapeOnOracle:
    @pytest.fixture(scope="class")
    def shape(self):
        tree = CommunityTree(extract_hierarchy(ring_of_cliques(4, 5)))
        return tree_shape(tree)

    def test_counts(self, shape):
        assert shape.n_nodes == 13
        assert shape.n_main == 4
        assert shape.n_parallel == 9

    def test_branches(self, shape):
        # Three parallel cliques, each a k=3..5 chain absorbed at k=2.
        assert len(shape.branches) == 3
        assert all(b.persistence == 3 for b in shape.branches)
        assert shape.absorption_orders() == {2: 3}
        assert shape.persistence_distribution() == {3: 3}

    def test_branch_sizes(self, shape):
        assert all(b.sizes == (5, 5, 5) for b in shape.branches)

    def test_branching_factors(self, shape):
        # Root has 4 children; other main nodes have 1; parallels 1,1,0.
        assert shape.branching_factor_main == pytest.approx((4 + 1 + 1 + 0) / 4)
        assert shape.branching_factor_parallel == pytest.approx(6 / 9)


class TestTreeShapeOnDataset:
    def test_paper_shape_statement(self, default_context):
        """Ch 5: parallel branches have limited size and are rapidly
        incorporated — mean persistence is a few orders, far below the
        tree's depth."""
        shape = tree_shape(default_context.tree)
        assert shape.n_main == len(default_context.hierarchy.orders)
        assert shape.mean_persistence() < 0.3 * default_context.hierarchy.max_k
        assert shape.max_persistence() >= 5  # but deep branches exist (MSK)
        assert shape.nodes_per_order[2] == 1


class TestWhatIf:
    def test_add_ixp_creates_local_structure(self, tiny_dataset):
        before = LightweightParallelCPM(tiny_dataset.graph).run()
        modified = add_ixp(tiny_dataset, name="NEW-IX", country="BG", n_members=8, seed=1)
        after = LightweightParallelCPM(modified.graph).run()
        members = set(modified.ixps["NEW-IX"].participants)
        # A community of order n_members now contains the whole mesh...
        assert any(members <= set(c.members) for c in after[8])
        # ...where no 8-order community held those ASes before.
        held_before = 8 in before and any(
            members <= set(c.members) for c in before[8]
        )
        assert not held_before

    def test_add_ixp_registers_participants(self, tiny_dataset):
        modified = add_ixp(tiny_dataset, name="NEW-IX", country="BG", n_members=6, seed=2)
        assert "NEW-IX" in modified.ixps
        for asn in modified.ixps["NEW-IX"].participants:
            assert "BG" in modified.geography.countries(asn)
        # Original untouched.
        assert "NEW-IX" not in tiny_dataset.ixps

    def test_add_ixp_validation(self, tiny_dataset):
        with pytest.raises(ValueError, match="already exists"):
            add_ixp(tiny_dataset, name="VIX", country="AT", n_members=4)
        empty_country = next(
            c for c in ("AO", "FJ", "PA", "LU")
            if len(tiny_dataset.geography.ases_in_country(c)) < 2
        )
        with pytest.raises(ValueError, match="fewer than two"):
            add_ixp(tiny_dataset, name="X-IX", country=empty_country, n_members=4)

    def test_remove_fabric_collapses_crown(self, tiny_dataset):
        before = LightweightParallelCPM(tiny_dataset.graph).run()
        stripped = remove_ixp_fabric(tiny_dataset, "AMS-IX")
        after = LightweightParallelCPM(stripped.graph).run()
        assert after.max_k < before.max_k
        # Membership registry is untouched — the contract survives the outage.
        assert stripped.ixps["AMS-IX"].participants == tiny_dataset.ixps["AMS-IX"].participants

    def test_remove_small_fabric_spares_the_crown(self, tiny_dataset):
        before = LightweightParallelCPM(tiny_dataset.graph).run()
        stripped = remove_ixp_fabric(tiny_dataset, "VIX")
        after = LightweightParallelCPM(stripped.graph).run()
        assert after.max_k == before.max_k
