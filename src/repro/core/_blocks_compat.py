"""Optional-numpy guard for the ``blocks`` kernel.

numpy is an optional ``[perf]`` extra: the ``blocks`` CPM kernel and
the ``blocks`` analysis engine need it, everything else in the package
runs without it.  This module is the single place that probes for the
dependency, so the import is attempted exactly once and every feature
gate reads the same answer.

``require_numpy`` raises :class:`BlocksUnavailableError` — a
``ValueError`` subclass, so the CLI's existing argument-error handling
turns a ``--kernel blocks`` request on a numpy-less install into a
clean ``error: ...`` message and exit code 2 instead of a traceback.
"""

from __future__ import annotations

__all__ = [
    "HAVE_NUMPY",
    "BlocksUnavailableError",
    "numpy_version",
    "require_numpy",
]

try:  # pragma: no cover - exercised via both CI legs
    import numpy as _numpy

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - the no-numpy CI leg hits this
    _numpy = None
    HAVE_NUMPY = False


class BlocksUnavailableError(ValueError):
    """A numpy-backed feature was requested but numpy is not installed."""


def numpy_version() -> str | None:
    """The installed numpy version, or None without the ``[perf]`` extra.

    Recorded in run-manifest settings so two runs can be told apart by
    the numerical stack they executed on, not just the kernel name.
    """
    return _numpy.__version__ if HAVE_NUMPY else None


def require_numpy(feature: str):
    """Return the numpy module, or raise a clean error naming ``feature``.

    >>> np = require_numpy("kernel 'blocks'")  # doctest: +SKIP
    """
    if not HAVE_NUMPY:
        raise BlocksUnavailableError(
            f"{feature} requires numpy, which is not installed; "
            "install the [perf] extra (pip install 'repro[perf]') "
            "or use the pure-Python 'bitset' kernel"
        )
    return _numpy
