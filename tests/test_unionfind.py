"""Unit tests for the disjoint-set forest."""

from repro.core import UnionFind


class TestUnionFind:
    def test_initial_items_are_singletons(self):
        uf = UnionFind([1, 2, 3])
        assert len(uf) == 3
        assert not uf.connected(1, 2)

    def test_union_merges(self):
        uf = UnionFind()
        assert uf.union(1, 2)
        assert uf.connected(1, 2)

    def test_union_of_merged_returns_false(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(2, 3)
        assert not uf.union(1, 3)

    def test_transitivity(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("c", "d")
        uf.union("b", "c")
        assert uf.connected("a", "d")

    def test_find_auto_registers(self):
        uf = UnionFind()
        assert uf.find(42) == 42
        assert 42 in uf

    def test_set_size(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(2, 3)
        assert uf.set_size(1) == 3
        assert uf.set_size(9) == 1

    def test_groups_sorted_by_size(self):
        uf = UnionFind(range(6))
        uf.union(0, 1)
        uf.union(1, 2)
        uf.union(4, 5)
        groups = uf.groups()
        assert [len(g) for g in groups] == [3, 2, 1]
        assert {0, 1, 2} in groups

    def test_large_chain_path_compression(self):
        uf = UnionFind()
        for i in range(1000):
            uf.union(i, i + 1)
        assert uf.connected(0, 1000)
        assert uf.set_size(500) == 1001
