"""Figure 4.4(a) — link density vs k.

Paper: main communities are low-density k-clique chains through most of
the k range and become clique-like (density → 1) near the top; parallel
communities are dense; low-k parallels are highly variable.
"""

from repro.analysis.density_odf import DensityOdfAnalysis
from repro.report.figures import ascii_scatter, ascii_table


def test_figure_4_4a_link_density(benchmark, context, emit):
    analysis = benchmark(lambda: DensityOdfAnalysis(context))
    chart = ascii_scatter(
        {
            "main": [(float(k), v) for k, v in analysis.main_density_series()],
            "parallel": [(float(k), v) for k, v in analysis.parallel_density_points()],
        },
        title="Figure 4.4(a): Link density vs k",
        y_label="link density",
    )
    table = ascii_table(
        ["k", "main density"],
        [[k, round(v, 4)] for k, v in analysis.main_density_series()],
        title="Main-community link density (paper: low for k in [2,30], ~1 near the top)",
    )
    footer = (
        f"low-k parallel density stdev: {analysis.parallel_variability():.3f} "
        "(paper: 'very variable')"
    )
    emit("figure_4_4a", f"{chart}\n\n{table}\n{footer}")

    assert analysis.main_density_low_then_high()
    assert analysis.clique_like_top()
    assert analysis.parallel_variability() > 0.1
