"""Routing-level analyses: path inflation and locality.

Two classic measurements connect the routing substrate back to the
paper's community story:

* **path inflation** — policy routing forbids valleys, so AS paths are
  often longer than shortest paths; the detour happens exactly where
  dense peering (the communities!) is missing;
* **traffic locality** — the fraction of policy paths between ASes of
  one country that stay inside that country's AS set: the paper's
  regional-community motivation ("traffic to remain localized ...
  without unnecessarily traversing other transit networks"), made
  measurable.
"""

from __future__ import annotations

import random
import statistics
from collections import deque
from dataclasses import dataclass

from ..graph.undirected import Graph
from ..topology.dataset import ASDataset
from .bgp import BGPSimulator
from .relationships import RelationshipMap

__all__ = ["PathInflation", "measure_path_inflation", "measure_locality"]


def _bfs_distances(graph: Graph, source) -> dict:
    distances = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in graph.neighbors(node):
            if neighbor not in distances:
                distances[neighbor] = distances[node] + 1
                queue.append(neighbor)
    return distances


@dataclass(frozen=True)
class PathInflation:
    """Aggregate of policy-vs-shortest path comparison."""

    n_pairs: int
    mean_policy_length: float
    mean_shortest_length: float
    mean_inflation: float        # policy − shortest, in hops
    inflated_fraction: float     # pairs with a strictly longer policy path
    unrouted_pairs: int
    valley_violations: int


def measure_path_inflation(
    graph: Graph,
    relationships: RelationshipMap,
    *,
    n_destinations: int = 20,
    sources_per_destination: int = 40,
    seed: int = 0,
) -> PathInflation:
    """Sample destination ASes, compare policy paths to shortest paths.

    Every sampled policy path is also validated against Gao's
    valley-free predicate; ``valley_violations`` must come out 0 for a
    correct simulator (asserted by the test-suite and benchmark).
    """
    rng = random.Random(f"{seed}:inflation")
    simulator = BGPSimulator(graph, relationships)
    nodes = sorted(graph.nodes())
    destinations = rng.sample(nodes, min(n_destinations, len(nodes)))

    policy_lengths: list[int] = []
    shortest_lengths: list[int] = []
    inflated = 0
    unrouted = 0
    violations = 0
    for destination in destinations:
        routes = simulator.routes_to(destination)
        distances = _bfs_distances(graph, destination)
        sources = rng.sample(nodes, min(sources_per_destination, len(nodes)))
        for source in sources:
            if source == destination:
                continue
            route = routes.get(source)
            if route is None:
                unrouted += 1
                continue
            if not relationships.is_valley_free(route.path):
                violations += 1
            policy_lengths.append(route.length)
            shortest_lengths.append(distances[source])
            if route.length > distances[source]:
                inflated += 1
    n_pairs = len(policy_lengths)
    return PathInflation(
        n_pairs=n_pairs,
        mean_policy_length=statistics.mean(policy_lengths) if policy_lengths else 0.0,
        mean_shortest_length=statistics.mean(shortest_lengths) if shortest_lengths else 0.0,
        mean_inflation=(
            statistics.mean(p - s for p, s in zip(policy_lengths, shortest_lengths))
            if policy_lengths
            else 0.0
        ),
        inflated_fraction=(inflated / n_pairs) if n_pairs else 0.0,
        unrouted_pairs=unrouted,
        valley_violations=violations,
    )


def measure_locality(
    dataset: ASDataset,
    relationships: RelationshipMap,
    country: str,
    *,
    max_pairs: int = 60,
    seed: int = 0,
) -> float:
    """Fraction of intra-country policy paths that stay in-country.

    High locality for countries with their own provider meshes and
    IXPs is the routing-level effect of the paper's root communities.
    Returns 0.0 when the country has fewer than two routed ASes.
    """
    rng = random.Random(f"{seed}:{country}:locality")
    members = sorted(dataset.geography.ases_in_country(country))
    members = [m for m in members if m in dataset.graph]
    if len(members) < 2:
        return 0.0
    simulator = BGPSimulator(dataset.graph, relationships)
    pairs: list[tuple[int, int]] = []
    attempts = 0
    while len(pairs) < max_pairs and attempts < max_pairs * 4:
        attempts += 1
        a, b = rng.sample(members, 2)
        pairs.append((a, b))
    by_destination: dict[int, list[int]] = {}
    for a, b in pairs:
        by_destination.setdefault(b, []).append(a)
    member_set = set(members)
    local = 0
    total = 0
    for destination, sources in by_destination.items():
        routes = simulator.routes_to(destination)
        for source in sources:
            route = routes.get(source)
            if route is None:
                continue
            total += 1
            if all(hop in member_set for hop in route.path):
                local += 1
    return (local / total) if total else 0.0
