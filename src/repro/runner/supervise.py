"""Worker-pool supervision: timeouts, bounded retry, serial degradation.

``ProcessPoolExecutor`` has exactly one failure story: a dead worker
breaks the whole pool and every in-flight future raises
``BrokenProcessPool``.  For a multi-hour CPM run that turns one OOM-
killed percolation batch into a lost run.  :class:`PoolSupervisor`
wraps the pool with the policy a long run actually needs:

* **per-round timeout** — a dispatch round that exceeds its budget
  (``batch_timeout`` scaled by queue depth) is declared stalled, the
  pool is torn down and the unfinished batches are retried;
* **bounded retry with exponential backoff** — a failed or stalled
  batch is retried up to ``max_retries`` times, sleeping
  ``backoff_base * backoff_factor**attempt`` (capped at
  ``backoff_max``) between rounds;
* **pool resurrection** — a broken pool (worker killed) is rebuilt,
  re-running the pool initializer so process-shared payloads survive;
* **graceful degradation** — a batch that keeps failing past its retry
  budget is executed *serially in the driver process* via the caller's
  ``fallback`` callable (which bypasses fault injection and the pool
  entirely), so a poisoned batch degrades throughput instead of
  correctness.  Degradation flips the ``runner.degraded`` gauge to 1
  and counts ``runner.fallback_batches``.

Every decision is observable: the supervisor runs under a
``runner.supervise`` span and maintains the ``runner.*`` counters
documented in ``docs/robustness.md``.  Determinism note: results are
returned in task order regardless of completion order, so supervised
runs produce byte-identical output to unsupervised ones.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable

from ..obs.logging import get_logger
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import NULL_TRACER, Tracer
from ..obs.worker import TelemetryEnvelope, capture
from .faults import FaultPlan

#: Structured-log handle (no-op until ``--log-json`` configures one).
_LOG = get_logger(component="runner")

__all__ = ["RunnerConfig", "PoolSupervisor", "BatchRetryExhausted"]


@dataclass(frozen=True)
class RunnerConfig:
    """Supervision policy knobs (all optional; defaults are conservative).

    ``batch_timeout`` is the wall-clock budget of one *wave* of batches
    (None disables stall detection); ``max_retries`` is how many times a
    failed batch is re-dispatched to the pool before the supervisor
    degrades it to the serial fallback.
    """

    batch_timeout: float | None = None
    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0

    def backoff_seconds(self, attempt: int) -> float:
        """The sleep before re-dispatching a batch on its Nth retry."""
        return min(self.backoff_max, self.backoff_base * self.backoff_factor ** max(0, attempt - 1))


class BatchRetryExhausted(RuntimeError):
    """A batch failed past its retry budget and no fallback was given."""


def _supervised_call(payload: tuple) -> Any:
    """Worker-side trampoline: fire any injected fault, then run the task.

    The fault plan travels as its spec string inside the task tuple, so
    this works identically under fork and spawn start methods and needs
    no shared state beyond the payload itself.

    With ``telemetry`` set, the task body runs inside a
    :func:`repro.obs.worker.capture` context and the bare result is
    replaced by a :class:`~repro.obs.worker.TelemetryEnvelope` carrying
    the worker's spans and counters; the driver unwraps it on receipt.
    Faults fire *before* the capture opens, so a failed attempt ships
    no telemetry and a retried batch is counted exactly once — by the
    attempt that succeeded.
    """
    fn, task, site, index, attempt, spec, telemetry = payload
    if spec:
        FaultPlan.parse(spec).fire(site, index=index, attempt=attempt)
    if not telemetry:
        return fn(task)
    with capture(site, index, attempt) as ctx:
        result = fn(task)
    return TelemetryEnvelope(result, ctx.export())


class PoolSupervisor:
    """Run batches through a supervised process pool (see module docs).

    One supervisor instance drives one phase's dispatch; it owns the
    pool lifecycle (creation, resurrection after breakage, shutdown).
    ``initializer``/``initargs`` are re-applied on every pool rebuild,
    so process-shared payloads (the packed overlap wire) survive worker
    death.
    """

    def __init__(
        self,
        *,
        workers: int,
        phase: str,
        config: RunnerConfig | None = None,
        fault_plan: FaultPlan | None = None,
        initializer: Callable | None = None,
        initargs: tuple = (),
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        telemetry: bool | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if workers < 2:
            raise ValueError("PoolSupervisor needs workers >= 2; run serially instead")
        self.workers = workers
        self.phase = phase
        self.config = config if config is not None else RunnerConfig()
        self.fault_spec = fault_plan.spec if fault_plan else ""
        self.initializer = initializer
        self.initargs = initargs
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # Worker-side capture defaults to "whenever the driver traces":
        # an instrumented run gets worker spans for free, an
        # uninstrumented one pays nothing (the trampoline's telemetry
        # branch is a falsy check).  Callers can force it either way.
        self.telemetry = telemetry if telemetry is not None else self.tracer.enabled
        self.sleep = sleep
        self.degraded = False
        self.restarts = 0
        #: First-seen ordering of worker pids -> small stable worker ids.
        self._worker_ids: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(
        self,
        fn: Callable[[Any], Any],
        tasks: list,
        *,
        fallback: Callable[[Any], Any] | None = None,
        on_result: Callable[[int, Any], None] | None = None,
    ) -> list:
        """Execute every task, in order-stable fashion, surviving faults.

        ``fn`` must be a module-level (picklable) callable of one task.
        ``fallback`` runs a permanently-failing task serially in the
        driver; without one, exhaustion raises
        :class:`BatchRetryExhausted`.  ``on_result`` fires in the
        driver as each batch completes (in completion order) — the
        checkpoint-write hook.
        """
        results: dict[int, Any] = {}
        pending: dict[int, Any] = dict(enumerate(tasks))
        attempts: dict[int, int] = {i: 0 for i in pending}
        with self.tracer.span(
            "runner.supervise", phase=self.phase, batches=len(tasks), workers=self.workers
        ) as span:
            pool = self._new_pool()
            try:
                while pending:
                    failed, broken = self._dispatch_round(
                        pool, fn, pending, attempts, results, on_result
                    )
                    if broken:
                        pool = self._restart_pool(pool)
                        failed = sorted(pending)
                    retried = False
                    for index in failed:
                        attempts[index] += 1
                        if attempts[index] > self.config.max_retries:
                            self._degrade(index, pending, results, fallback, on_result)
                        else:
                            retried = True
                            self.metrics.inc("runner.retries")
                            _LOG.warning(
                                "runner.retry",
                                phase=self.phase,
                                batch=index,
                                attempt=attempts[index],
                            )
                    if retried and pending:
                        lowest = min(attempts[i] for i in pending)
                        self.sleep(self.config.backoff_seconds(lowest))
            finally:
                pool.shutdown(wait=False, cancel_futures=True)
            span.set("restarts", self.restarts)
            span.set("degraded", int(self.degraded))
        return [results[i] for i in range(len(tasks))]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=self.initializer,
            initargs=self.initargs,
        )

    def _restart_pool(self, pool: ProcessPoolExecutor) -> ProcessPoolExecutor:
        pool.shutdown(wait=False, cancel_futures=True)
        self.restarts += 1
        self.metrics.inc("runner.pool_restarts")
        _LOG.warning("runner.pool_restart", phase=self.phase, restarts=self.restarts)
        return self._new_pool()

    def _round_timeout(self, n_batches: int) -> float | None:
        if self.config.batch_timeout is None:
            return None
        waves = max(1, math.ceil(n_batches / self.workers))
        return self.config.batch_timeout * waves

    def _dispatch_round(
        self,
        pool: ProcessPoolExecutor,
        fn: Callable,
        pending: dict[int, Any],
        attempts: dict[int, int],
        results: dict[int, Any],
        on_result: Callable[[int, Any], None] | None,
    ) -> tuple[list[int], bool]:
        """Submit every pending batch once; returns (failed indices, broken?)."""
        futures = {}
        try:
            for index, task in sorted(pending.items()):
                payload = (
                    fn, task, self.phase, index, attempts[index],
                    self.fault_spec, self.telemetry,
                )
                futures[pool.submit(_supervised_call, payload)] = index
        except (BrokenExecutor, RuntimeError):
            # Pool already broken (e.g. a worker died during initializer).
            return [], True
        failed: list[int] = []
        deadline = None
        timeout = self._round_timeout(len(futures))
        if timeout is not None:
            deadline = time.monotonic() + timeout
        not_done = set(futures)
        while not_done:
            wait_for = None if deadline is None else max(0.0, deadline - time.monotonic())
            done, not_done = wait(not_done, timeout=wait_for, return_when=FIRST_COMPLETED)
            if not done:  # round deadline hit: declare the stragglers stalled
                self.metrics.inc("runner.timeouts")
                _LOG.warning(
                    "runner.timeout", phase=self.phase, stalled=len(not_done)
                )
                return failed, True
            for future in done:
                index = futures[future]
                try:
                    result = future.result()
                except BrokenExecutor:
                    return failed, True
                except Exception:
                    failed.append(index)
                    self.metrics.inc("runner.batch_failures")
                else:
                    result = self._unwrap(result)
                    results[index] = result
                    del pending[index]
                    if on_result is not None:
                        on_result(index, result)
        return failed, False

    def _unwrap(self, result: Any) -> Any:
        """Merge a result's telemetry envelope into the driver's trace.

        Spans are grafted under the open ``runner.supervise`` span with
        ``pid`` / ``worker_id`` attribution (worker ids are assigned in
        first-seen pid order, so they are small and stable within a
        phase); counters/histograms merge into the driver registry.
        Bare results pass through untouched.
        """
        if not isinstance(result, TelemetryEnvelope):
            return result
        telemetry = result.telemetry
        pid = telemetry.get("pid", 0)
        worker_id = self._worker_ids.setdefault(pid, len(self._worker_ids))
        self.tracer.absorb(
            telemetry.get("spans", []), pid=pid, worker_id=worker_id
        )
        self.metrics.merge(telemetry.get("metrics", {}))
        return result.result

    def _degrade(
        self,
        index: int,
        pending: dict[int, Any],
        results: dict[int, Any],
        fallback: Callable[[Any], Any] | None,
        on_result: Callable[[int, Any], None] | None,
    ) -> None:
        """Run a retry-exhausted batch serially in the driver process."""
        task = pending.pop(index)
        if fallback is None:
            raise BatchRetryExhausted(
                f"{self.phase} batch {index} failed past {self.config.max_retries} retries"
            )
        with self.tracer.span("runner.fallback", phase=self.phase, batch=index):
            if self.telemetry:
                # Serial degradation still captures the task's worker
                # spans/counters — they just attribute to the driver
                # pid.  The capture replaces any telemetry the failed
                # pool attempts produced (which was never shipped), so
                # the batch is counted exactly once here too.
                with capture(self.phase, index, -1) as ctx:
                    result = fallback(task)
                result = self._unwrap(TelemetryEnvelope(result, ctx.export()))
            else:
                result = fallback(task)
        results[index] = result
        self.degraded = True
        self.metrics.inc("runner.fallback_batches")
        self.metrics.set_gauge("runner.degraded", 1)
        _LOG.error("runner.degraded", phase=self.phase, batch=index)
        if on_result is not None:
            on_result(index, result)
