"""The paper-run driver: every table and figure from one dataset.

:class:`PaperRun` wires the analysis layer together and renders each of
the paper's tables and figures as text — the single entry point used by
the benchmark harness, the CLI (``python -m repro paper``) and the
EXPERIMENTS.md record.
"""

from __future__ import annotations

from functools import cached_property

from ..analysis.bands import (
    BandBoundaries,
    CrownReport,
    RootReport,
    TrunkReport,
    crown_report,
    derive_bands,
    root_report,
    trunk_report,
)
from ..analysis.census import CommunityCensus
from ..analysis.context import AnalysisContext
from ..analysis.density_odf import DensityOdfAnalysis
from ..analysis.geo import GeoAnalysis
from ..analysis.ixp_share import IXPShareAnalysis
from ..analysis.overlap import OverlapAnalysis
from ..analysis.sizes import SizeAnalysis
from ..topology.dataset import ASDataset
from .figures import ascii_scatter, ascii_table

__all__ = ["PaperRun"]


class PaperRun:
    """All Chapter 2 and Chapter 4 artefacts for one dataset."""

    def __init__(
        self,
        dataset: ASDataset,
        *,
        workers: int = 1,
        kernel: str = "bitset",
        shards: int | str = 1,
        analysis_engine: str = "bitset",
        cache=None,
        checkpoint=None,
        resume: bool = False,
        runner=None,
        fault_plan=None,
        tracer=None,
        metrics=None,
    ) -> None:
        self.dataset = dataset
        self.context = AnalysisContext.from_dataset(
            dataset,
            workers=workers,
            kernel=kernel,
            shards=shards,
            cache=cache,
            checkpoint=checkpoint,
            resume=resume,
            runner=runner,
            fault_plan=fault_plan,
            analysis_engine=analysis_engine,
            tracer=tracer,
            metrics=metrics,
        )

    # ------------------------------------------------------------------
    # Lazy analyses
    # ------------------------------------------------------------------
    @cached_property
    def census(self) -> CommunityCensus:
        return CommunityCensus(self.context.hierarchy)

    @cached_property
    def sizes(self) -> SizeAnalysis:
        return SizeAnalysis(self.context)

    @cached_property
    def density_odf(self) -> DensityOdfAnalysis:
        return DensityOdfAnalysis(self.context)

    @cached_property
    def overlap(self) -> OverlapAnalysis:
        return OverlapAnalysis(self.context)

    @cached_property
    def ixp_share(self) -> IXPShareAnalysis:
        return IXPShareAnalysis(self.context)

    @cached_property
    def geo(self) -> GeoAnalysis:
        return GeoAnalysis(self.context)

    @cached_property
    def bands(self) -> BandBoundaries:
        return derive_bands(self.ixp_share)

    @cached_property
    def crown(self) -> CrownReport:
        return crown_report(self.context, self.ixp_share, self.bands)

    @cached_property
    def trunk(self) -> TrunkReport:
        return trunk_report(self.context, self.ixp_share, self.bands)

    @cached_property
    def root(self) -> RootReport:
        return root_report(self.context, self.ixp_share, self.bands, self.geo)

    # ------------------------------------------------------------------
    # Tables (Chapter 2)
    # ------------------------------------------------------------------
    def table_2_1(self) -> str:
        """Render Table 2.1 (IXP tagging counts)."""
        summary = self.dataset.tag_summary().ixp
        return ascii_table(
            ["on-IXP", "not-on-IXP"],
            [[summary.on_ixp, summary.not_on_ixp]],
            title="Table 2.1: Summary of IXP tagging results",
        )

    def table_2_2(self) -> str:
        """Render Table 2.2 (geographic tagging counts)."""
        summary = self.dataset.tag_summary().geo
        return ascii_table(
            ["National", "Continental", "Worldwide", "Unknown"],
            [[summary.national, summary.continental, summary.worldwide, summary.unknown]],
            title="Table 2.2: Summary of geographic tagging results",
        )

    # ------------------------------------------------------------------
    # Figures (Chapter 4)
    # ------------------------------------------------------------------
    def figure_4_1(self) -> str:
        """Render Figure 4.1 (community count vs k) plus its headline."""
        series = [(float(k), float(n)) for k, n in self.census.series()]
        chart = ascii_scatter(
            {"communities": series},
            title="Figure 4.1: Number of k-clique communities vs k",
            log_y=True,
            y_label="# communities",
        )
        footer = (
            f"total communities: {self.census.total_communities}; "
            f"unique orders: {self.census.unique_orders()}"
        )
        return f"{chart}\n{footer}"

    def figure_4_2(self, *, max_children: int = 6) -> str:
        """Render Figure 4.2 (the community tree) as annotated ASCII."""
        tree = self.context.tree
        header = (
            "Figure 4.2: k-clique community tree "
            f"(root<=k{self.bands.root_max}, trunk, crown>=k{self.bands.crown_min}; "
            "* marks main communities)"
        )
        return f"{header}\n{tree.to_ascii(max_children=max_children)}"

    def figure_4_3(self) -> str:
        """Render Figure 4.3 (community size vs k)."""
        main = [(float(k), float(s)) for k, s in self.sizes.main_series()]
        parallel = [(float(k), float(s)) for k, s in self.sizes.parallel_points()]
        return ascii_scatter(
            {"main": main, "parallel": parallel},
            title="Figure 4.3: Size of k-clique communities vs k",
            log_y=True,
            y_label="community size",
        )

    def figure_4_4a(self) -> str:
        """Render Figure 4.4(a) (link density vs k)."""
        main = [(float(k), v) for k, v in self.density_odf.main_density_series()]
        parallel = [(float(k), v) for k, v in self.density_odf.parallel_density_points()]
        return ascii_scatter(
            {"main": main, "parallel": parallel},
            title="Figure 4.4(a): Link density vs k",
            y_label="link density",
        )

    def figure_4_4b(self) -> str:
        """Render Figure 4.4(b) (average ODF vs k)."""
        main = [(float(k), v) for k, v in self.density_odf.main_odf_series()]
        parallel = [(float(k), v) for k, v in self.density_odf.parallel_odf_points()]
        return ascii_scatter(
            {"main": main, "parallel": parallel},
            title="Figure 4.4(b): Average ODF vs k",
            y_label="average ODF",
        )

    # ------------------------------------------------------------------
    # Section 4 text blocks
    # ------------------------------------------------------------------
    def overlap_summary(self) -> str:
        """Render the Section 4 overlap-fraction table and headline stats."""
        rows = [
            [
                row.k,
                row.n_parallel,
                row.mean_parallel_main_fraction,
                row.zero_overlap_parallels,
                row.mean_parallel_parallel_fraction
                if row.mean_parallel_parallel_fraction is not None
                else "-",
            ]
            for row in self.overlap.rows
        ]
        table = ascii_table(
            ["k", "#parallel", "mean frac vs main", "zero-overlap", "mean frac par-par"],
            rows,
            title="Section 4: overlap fractions at equal k",
        )
        footer = (
            f"parallel<->main over k: mean={self.overlap.parallel_main_mean_over_k():.3f} "
            f"var={self.overlap.parallel_main_variance_over_k():.3f} "
            f"min={self.overlap.parallel_main_min_over_k():.3f}; "
            f"zero-overlap exceptions: {self.overlap.total_zero_overlap_exceptions()}; "
            f"par<->par var: {self.overlap.parallel_parallel_variance_over_k():.3f}"
        )
        return f"{table}\n{footer}"

    def ixp_share_summary(self) -> str:
        """Render the Section 4 IXP-share findings."""
        threshold = self.ixp_share.high_on_ixp_threshold()
        full = self.ixp_share.full_share_communities()
        gap = self.ixp_share.no_full_share_band()
        lines = [
            "Section 4: IXP share analysis",
            f"every community with k >= {threshold} has >= 90% on-IXP members",
            f"communities with a full-share IXP: {len(full)}",
            f"no-full-share band (trunk): k in {gap}",
        ]
        return "\n".join(lines)

    def band_reports(self) -> str:
        """Render the Sections 4.1-4.3 crown/trunk/root findings."""
        crown, trunk, root = self.crown, self.trunk, self.root
        named = self.dataset
        lines = [
            f"CROWN (k in [{crown.k_range[0]}, {crown.k_range[1]}]): "
            f"{crown.n_communities} communities",
            f"  apex {crown.apex_label}: {crown.apex_size} ASes, max-share "
            f"{crown.apex_max_share_ixp} ({crown.apex_max_share_fraction:.0%}), "
            f"full-share: {crown.apex_has_full_share}",
            f"  max-share IXPs: {sorted(crown.max_share_ixps)}",
            f"  non-European members: "
            f"{sorted(named.name_of(a) for a in crown.non_european_members)}",
            f"  members in no IXP: {len(crown.non_ixp_members)}",
            f"  case study at k={crown.case_study_k}:",
        ]
        par_share_min = trunk.parallel_max_share_min
        for label, ixp, fraction, full_share, is_main in crown.case_study:
            role = "main" if is_main else "parallel"
            lines.append(
                f"    {label} [{role}]: max-share {ixp} ({fraction:.0%})"
                + (", full-share" if full_share else "")
            )
        lines += [
            f"TRUNK (k in [{trunk.k_range[0]}, {trunk.k_range[1]}]): "
            f"{trunk.n_communities} communities",
            f"  any full-share IXP: {trunk.any_full_share}",
            f"  min on-IXP fraction: {trunk.min_on_ixp_fraction:.0%}",
            f"  parallel max-share fractions all >= "
            f"{par_share_min if par_share_min is None else round(par_share_min, 2)}",
            f"  mean member degree: {trunk.mean_member_degree:.1f}",
            f"  worldwide/continental member fraction: "
            f"{trunk.worldwide_or_continental_fraction:.0%}",
            f"  longest nested parallel branch: {trunk.longest_branch}",
            f"ROOT (k in [{root.k_range[0]}, {root.k_range[1]}]): "
            f"{root.n_communities} communities",
            f"  mean parallel size: {root.mean_parallel_size:.2f}",
            f"  parallel communities with a full-share IXP: {root.full_share_parallels}",
            f"  full-share IXP countries: {sorted(root.full_share_ixp_countries)}",
            f"  country-contained parallel communities: {root.country_contained_parallels}",
        ]
        return "\n".join(lines)

    def full_report(self) -> str:
        """Everything, in paper order."""
        blocks = [
            f"Dataset: {self.dataset!r}",
            self.table_2_1(),
            self.table_2_2(),
            self.figure_4_1(),
            self.figure_4_3(),
            self.figure_4_4a(),
            self.figure_4_4b(),
            self.overlap_summary(),
            self.ixp_share_summary(),
            self.band_reports(),
        ]
        return "\n\n".join(blocks)
