"""Whole-graph statistics used to validate AS-level topologies.

The Internet AS graph has well-known structural invariants — a
heavy-tailed degree distribution, high clustering, disassortative
degree mixing, a small dense core — that any synthetic stand-in must
reproduce for the paper's community analysis to transfer.  This module
implements the estimators the validation benchmark reports:

* degree histogram and complementary CDF;
* maximum-likelihood power-law exponent (Clauset-Shalizi-Newman
  discrete MLE for a given x_min);
* global and average-local clustering coefficients;
* degree assortativity (Pearson correlation over edges);
* rich-club style top-degree density.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

from .undirected import Graph

__all__ = [
    "degree_histogram",
    "degree_ccdf",
    "powerlaw_alpha_mle",
    "global_clustering",
    "average_local_clustering",
    "degree_assortativity",
    "top_degree_density",
    "GraphSummary",
    "summarize_graph",
]


def degree_histogram(graph: Graph) -> dict[int, int]:
    """``degree -> number of nodes`` (ascending degree)."""
    counts = Counter(graph.degree(n) for n in graph.nodes())
    return dict(sorted(counts.items()))


def degree_ccdf(graph: Graph) -> list[tuple[int, float]]:
    """Complementary CDF: (d, P[degree >= d]) for each observed degree."""
    histogram = degree_histogram(graph)
    total = sum(histogram.values())
    if total == 0:
        return []
    ccdf = []
    remaining = total
    for degree, count in histogram.items():
        ccdf.append((degree, remaining / total))
        remaining -= count
    return ccdf


def powerlaw_alpha_mle(graph: Graph, *, x_min: int = 3) -> float:
    """Discrete power-law exponent via the CSN approximate MLE.

    alpha = 1 + n / sum(ln(d / (x_min - 0.5))) over degrees d >= x_min.
    Returns 0.0 when fewer than two nodes reach ``x_min`` (no tail to
    fit).  The AS graph's published exponent is around 2.1.
    """
    degrees = [graph.degree(n) for n in graph.nodes() if graph.degree(n) >= x_min]
    if len(degrees) < 2:
        return 0.0
    shift = x_min - 0.5
    return 1.0 + len(degrees) / sum(math.log(d / shift) for d in degrees)


def _triangles_and_wedges(graph: Graph) -> tuple[int, int]:
    triangles = 0
    wedges = 0
    for node in graph.nodes():
        neighbors = graph.neighbors(node)
        d = len(neighbors)
        wedges += d * (d - 1) // 2
        neighbor_list = list(neighbors)
        for i, u in enumerate(neighbor_list):
            u_neighbors = graph.neighbors(u)
            for v in neighbor_list[i + 1 :]:
                if v in u_neighbors:
                    triangles += 1
    # Each triangle is counted once per corner.
    return triangles // 3, wedges


def global_clustering(graph: Graph) -> float:
    """Transitivity: 3 * triangles / wedges (0.0 for wedge-free graphs)."""
    triangles, wedges = _triangles_and_wedges(graph)
    if wedges == 0:
        return 0.0
    return 3.0 * triangles / wedges


def average_local_clustering(graph: Graph) -> float:
    """Mean of per-node clustering coefficients (degree < 2 counts 0)."""
    total = 0.0
    n = 0
    for node in graph.nodes():
        neighbors = list(graph.neighbors(node))
        n += 1
        d = len(neighbors)
        if d < 2:
            continue
        links = 0
        for i, u in enumerate(neighbors):
            u_neighbors = graph.neighbors(u)
            for v in neighbors[i + 1 :]:
                if v in u_neighbors:
                    links += 1
        total += 2.0 * links / (d * (d - 1))
    return total / n if n else 0.0


def degree_assortativity(graph: Graph) -> float:
    """Pearson correlation of endpoint degrees over edges.

    The Internet AS graph is disassortative (hubs attach to low-degree
    stubs): expect a clearly negative value.  Returns 0.0 for graphs
    with no degree variance.
    """
    xs: list[int] = []
    ys: list[int] = []
    for u, v in graph.edges():
        du, dv = graph.degree(u), graph.degree(v)
        # Symmetrise: each edge contributes both orientations.
        xs.extend((du, dv))
        ys.extend((dv, du))
    if not xs:
        return 0.0
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def top_degree_density(graph: Graph, *, fraction: float = 0.01) -> float:
    """Link density among the top-degree ``fraction`` of nodes.

    A rich-club indicator: the AS graph's top carriers are densely
    interconnected (the substrate of the paper's crown communities).
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    nodes = sorted(graph.nodes(), key=graph.degree, reverse=True)
    top = nodes[: max(2, int(len(nodes) * fraction))]
    from ..core.metrics import link_density  # local import avoids a cycle

    return link_density(graph, top)


@dataclass(frozen=True)
class GraphSummary:
    """One-shot structural profile of a topology graph."""

    n_nodes: int
    n_edges: int
    mean_degree: float
    max_degree: int
    powerlaw_alpha: float
    global_clustering: float
    average_local_clustering: float
    assortativity: float
    top_degree_density: float


def summarize_graph(graph: Graph) -> GraphSummary:
    """Compute the full :class:`GraphSummary` of a graph."""
    degrees = [graph.degree(n) for n in graph.nodes()]
    return GraphSummary(
        n_nodes=graph.number_of_nodes,
        n_edges=graph.number_of_edges,
        mean_degree=(sum(degrees) / len(degrees)) if degrees else 0.0,
        max_degree=max(degrees, default=0),
        powerlaw_alpha=powerlaw_alpha_mle(graph),
        global_clustering=global_clustering(graph),
        average_local_clustering=average_local_clustering(graph),
        assortativity=degree_assortativity(graph),
        top_degree_density=top_degree_density(graph),
    )
