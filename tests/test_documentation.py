"""Documentation quality gate.

Deliverable (e) requires doc comments on every public item; this test
walks the installed package and fails on any public module, class or
function without a docstring — keeping the guarantee mechanical rather
than aspirational.
"""

import importlib
import inspect
import pkgutil

import repro


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it would execute the CLI
        yield importlib.import_module(info.name)


def _public_members(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.isclass(member) or inspect.isfunction(member):
            if getattr(member, "__module__", None) == module.__name__:
                yield name, member


class TestDocstrings:
    def test_every_module_has_a_docstring(self):
        missing = [m.__name__ for m in _iter_modules() if not inspect.getdoc(m)]
        assert not missing, f"modules without docstrings: {missing}"

    def test_every_public_class_and_function_has_a_docstring(self):
        missing = []
        for module in _iter_modules():
            for name, member in _public_members(module):
                if not inspect.getdoc(member):
                    missing.append(f"{module.__name__}.{name}")
        assert not missing, f"public items without docstrings: {missing}"

    def test_public_methods_documented(self):
        """Public methods of public classes carry docstrings too
        (dataclass-generated and inherited members excluded)."""
        missing = []
        for module in _iter_modules():
            for class_name, cls in _public_members(module):
                if not inspect.isclass(cls):
                    continue
                for name, method in vars(cls).items():
                    if name.startswith("_") or not inspect.isfunction(method):
                        continue
                    if not inspect.getdoc(method):
                        missing.append(f"{module.__name__}.{class_name}.{name}")
        assert not missing, f"public methods without docstrings: {missing}"
