"""Cover-comparison metrics: Jaccard matching, recall at threshold,
and the chance-corrected Omega index for overlapping covers.
"""

from .covers import MatchResult, jaccard, match_covers, omega_index, recall_at

__all__ = ["jaccard", "match_covers", "MatchResult", "recall_at", "omega_index"]
