"""k-dense vs k-clique community structure (the sibling paper [12]).

The same authors analysed the same April-2010 topology with the
k-dense decomposition ("k-dense Communities in the Internet AS-Level
Topology", COMSNETS 2011 — reference [12] of this paper), finding the
same IXP-driven story at coarser granularity.  This module runs the
comparison the two papers imply but never print side by side:

* both hierarchies on one dataset — counts per k, maximum order;
* the sandwich property CPM(k) ⊆ dense(k) ⊆ core(k-1), per order;
* IXP participation of the innermost k-dense community vs the CPM
  crown (both papers: the well-connected zones are the IXP fabrics);
* granularity: the k-dense innermost zone is coarser (bigger, fewer
  components) than the CPM apex at comparable depth.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.kdense import KDenseDecomposition
from ..core.communities import CommunityHierarchy
from ..graph.degeneracy import k_core
from .context import AnalysisContext

__all__ = ["KDenseComparison", "compare_with_kdense"]


@dataclass
class KDenseComparison:
    """Side-by-side structure of the two decompositions."""

    clique_counts: dict[int, int]
    dense_counts: dict[int, int]
    clique_max_k: int
    dense_max_k: int
    sandwich_holds: bool
    innermost_dense_size: int
    innermost_dense_on_ixp_fraction: float
    apex_size: int
    apex_on_ixp_fraction: float

    @property
    def dense_is_coarser(self) -> bool:
        """The innermost dense zone is at least as large as the CPM apex."""
        return self.innermost_dense_size >= self.apex_size


def compare_with_kdense(
    context: AnalysisContext,
    *,
    max_dense_k: int | None = None,
) -> KDenseComparison:
    """Run the k-dense decomposition and compare it with the CPM output."""
    graph = context.graph
    hierarchy: CommunityHierarchy = context.hierarchy
    decomposition = KDenseDecomposition(graph, max_k=max_dense_k)

    sandwich = True
    for k in range(3, min(hierarchy.max_k, decomposition.max_k) + 1):
        if k not in decomposition.levels:
            continue
        dense_nodes = set(decomposition.levels[k].nodes())
        core_nodes = set(k_core(graph, k - 1).nodes())
        cpm_nodes: set = set()
        if k in hierarchy:
            for community in hierarchy[k]:
                cpm_nodes |= set(community.members)
        if not (cpm_nodes <= dense_nodes <= core_nodes):
            sandwich = False
            break

    innermost = decomposition.levels[decomposition.max_k]
    innermost_nodes = set(innermost.nodes())
    on_ixp = context.dataset.ixps.on_ixp_ases()
    apex = context.tree.apex.community
    apex_members = set(apex.members)
    return KDenseComparison(
        clique_counts=hierarchy.counts_by_k(),
        dense_counts=decomposition.counts_by_k(),
        clique_max_k=hierarchy.max_k,
        dense_max_k=decomposition.max_k,
        sandwich_holds=sandwich,
        innermost_dense_size=len(innermost_nodes),
        innermost_dense_on_ixp_fraction=(
            len(innermost_nodes & on_ixp) / len(innermost_nodes)
            if innermost_nodes
            else 0.0
        ),
        apex_size=apex.size,
        apex_on_ixp_fraction=(
            len(apex_members & on_ixp) / len(apex_members) if apex_members else 0.0
        ),
    )
