"""k-core decomposition baseline ([26] Seidman; used on the AS graph by
[3] and [6]).

The k-core of a graph is the maximal subgraph with all degrees >= k.
Unlike k-clique communities the k-cores form a single nested chain (a
partition refinement, not a cover): every node has one shell index, and
overlap is impossible.  Chapter 1 of the paper contrasts exactly this:
partition methods cannot express, e.g., an AS sitting in several IXP
communities at once.

The decomposition itself lives in :mod:`repro.graph.degeneracy`; this
module wraps it in the same reporting shape as the CPM output so the
baseline-contrast benchmark can compare like with like.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass

from ..graph.degeneracy import core_numbers
from ..graph.undirected import Graph

__all__ = ["KCoreDecomposition", "ShellRow"]


@dataclass(frozen=True)
class ShellRow:
    """One shell of the decomposition."""

    k: int
    shell_size: int
    core_size: int


class KCoreDecomposition:
    """The full k-core hierarchy of a graph."""

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self.core_of: dict[Hashable, int] = core_numbers(graph)

    @property
    def degeneracy(self) -> int:
        return max(self.core_of.values(), default=0)

    def core_members(self, k: int) -> set[Hashable]:
        """Nodes of the k-core (core number >= k)."""
        return {node for node, core in self.core_of.items() if core >= k}

    def shell_members(self, k: int) -> set[Hashable]:
        """Nodes with core number exactly k (the k-shell)."""
        return {node for node, core in self.core_of.items() if core == k}

    def rows(self) -> list[ShellRow]:
        """Shell and core sizes for every k up to the degeneracy."""
        out = []
        for k in range(self.degeneracy + 1):
            out.append(
                ShellRow(
                    k=k,
                    shell_size=len(self.shell_members(k)),
                    core_size=len(self.core_members(k)),
                )
            )
        return out

    def is_partition(self) -> bool:
        """Shells partition the node set — the structural contrast with
        the overlapping CPM cover (always True; exposed for the
        baseline-contrast benchmark's assertion)."""
        total = sum(len(self.shell_members(k)) for k in range(self.degeneracy + 1))
        return total == self.graph.number_of_nodes
