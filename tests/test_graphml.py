"""Tests for the GraphML exporter."""

import xml.etree.ElementTree as ET

import pytest

from repro.analysis import IXPShareAnalysis, derive_bands
from repro.report.graphml import graphml_document, write_graphml

_NS = {"g": "http://graphml.graphdrawing.org/xmlns"}


@pytest.fixture(scope="module")
def document(tiny_context):
    bands = derive_bands(IXPShareAnalysis(tiny_context), fallback=(6, 10))
    return graphml_document(tiny_context, k=4, bands=bands)


class TestGraphml:
    def test_valid_xml_with_all_nodes_and_edges(self, document, tiny_context):
        root = ET.fromstring(document)
        nodes = root.findall(".//g:node", _NS)
        edges = root.findall(".//g:edge", _NS)
        assert len(nodes) == tiny_context.graph.number_of_nodes
        assert len(edges) == tiny_context.graph.number_of_edges

    def test_keys_declared(self, document):
        root = ET.fromstring(document)
        names = {key.get("attr.name") for key in root.findall("g:key", _NS)}
        assert {"role", "countries", "on_ixp", "communities", "band"} <= names

    def test_membership_attributes(self, document, tiny_context):
        root = ET.fromstring(document)
        cover = tiny_context.hierarchy[4]
        member = next(iter(cover[0].members))
        node = next(
            n for n in root.findall(".//g:node", _NS) if n.get("id") == f"AS{member}"
        )
        data = {d.get("key"): d.text for d in node.findall("g:data", _NS)}
        # d4 is 'communities' (fifth declared key).
        assert any("k4id" in (text or "") for text in data.values())

    def test_invalid_order_rejected(self, tiny_context):
        with pytest.raises(KeyError):
            graphml_document(tiny_context, k=99)

    def test_write_to_file(self, tiny_context, tmp_path):
        target = tmp_path / "topology.graphml"
        write_graphml(tiny_context, target, k=3)
        assert target.exists()
        ET.fromstring(target.read_text())  # parses cleanly
