"""Ablation — LP-CPM scaling with topology size (DESIGN.md §5).

The paper's CPM run was feasible only because of the lightweight
formulation; this bench sweeps the generator's ``scale`` knob and
reports how clique count and CPM time grow with the AS population while
the community-tree depth (driven by the fixed IXP core sizes) stays
constant — the property that makes scaled-down reproduction valid.
"""

import gc

from repro.core._blocks_compat import HAVE_NUMPY
from repro.core.lightweight import LightweightParallelCPM
from repro.obs import Tracer
from repro.report.figures import ascii_table
from repro.topology.generator import GeneratorConfig, generate_topology


def _run_at_scale(scale: float, kernel: str):
    dataset = generate_topology(GeneratorConfig(scale=scale), seed=42)
    cpm = LightweightParallelCPM(dataset.graph, kernel=kernel)
    hierarchy = cpm.run()
    return dataset, cpm.stats, hierarchy


def test_cpm_scaling_sweep(benchmark, emit, bench_record, bench_kernel):
    rows = []
    results = {}
    for scale in (0.25, 0.5, 1.0):
        dataset, stats, hierarchy = _run_at_scale(scale, bench_kernel)
        results[scale] = (dataset, stats, hierarchy)
        # Per-scale CPM wall time, persisted in the manifest config so
        # check_bench_regression.py can gate on it commit-to-commit.
        bench_record[f"cpm_seconds_scale_{scale}"] = round(stats.total_seconds, 4)
        rows.append(
            [
                scale,
                dataset.n_ases,
                dataset.n_links,
                stats.n_cliques,
                round(stats.total_seconds, 3),
                hierarchy.max_k,
                hierarchy.total_communities,
            ]
        )
    # The timed target: the reference scale.
    benchmark(lambda: LightweightParallelCPM(results[1.0][0].graph, kernel=bench_kernel).run())

    table = ascii_table(
        ["scale", "ASes", "links", "maximal cliques", "CPM seconds", "max k", "communities"],
        rows,
        title="LP-CPM scaling sweep (depth fixed by IXP cores; population scales)",
    )
    emit("cpm_scaling", table)

    # Clique count grows with population; tree depth does not.
    assert results[0.25][1].n_cliques < results[1.0][1].n_cliques
    assert results[0.25][2].max_k == results[1.0][2].max_k == 36


def test_cpm_kernel_comparison(dataset, emit, bench_record):
    """bitset vs blocks on the reference-scale graph, one manifest.

    Each kernel runs the full pipeline three times under its own live
    tracer (the instrumented conditions CI gates in) with a
    ``gc.collect()`` first, and the *fastest* run's wall time lands in
    the manifest config as ``cpm_run_seconds_<kernel>`` — min-of-N on
    a collected heap measures the kernels rather than whatever garbage
    the earlier benches left behind or whatever the host stole from a
    shared vCPU, which keeps the committed baseline reproducible
    enough for a 1.25x gate.
    check_bench_regression.py gates each kernel's trajectory
    separately, so a committed baseline where blocks runs ~3x faster
    than bitset keeps that margin from silently eroding.  The per-run
    tracers are deliberately *not* merged into the manifest: two
    kernels would write colliding ``cpm.*`` span names and the gate
    only reads the first.
    """
    kernels = ["bitset"] + (["blocks"] if HAVE_NUMPY else [])
    rows = []
    seconds = {}
    for kernel in kernels:
        best = None
        for _ in range(3):
            gc.collect()
            tracer = Tracer()
            cpm = LightweightParallelCPM(dataset.graph, kernel=kernel, tracer=tracer)
            hierarchy = cpm.run()
            tracer.close()
            if best is None or cpm.stats.total_seconds < best[0].stats.total_seconds:
                best = (cpm, hierarchy)
        cpm, hierarchy = best
        seconds[kernel] = cpm.stats.total_seconds
        bench_record[f"cpm_run_seconds_{kernel}"] = round(cpm.stats.total_seconds, 4)
        rows.append(
            [
                kernel,
                cpm.stats.n_cliques,
                round(cpm.stats.total_seconds, 3),
                hierarchy.max_k,
                hierarchy.total_communities,
            ]
        )
    if "blocks" in seconds:
        # Informational (not gated): bigger is better, so the wall-time
        # gate on cpm_run_seconds_blocks is what protects the speedup.
        bench_record["cpm_blocks_speedup"] = round(
            seconds["bitset"] / seconds["blocks"], 2
        )

    table = ascii_table(
        ["kernel", "maximal cliques", "CPM seconds", "max k", "communities"],
        rows,
        title="LP-CPM kernel comparison (reference scale, instrumented)",
    )
    emit("cpm_kernel_comparison", table)

    # Every kernel extracts the identical hierarchy.
    assert len({(r[1], r[3], r[4]) for r in rows}) == 1
