"""Tests for the community graph, its statistics and membership queries."""

import pytest

from repro.analysis import community_graph, community_graph_stats
from repro.core import CommunityCover, extract_hierarchy, k_clique_communities
from repro.graph import Graph, overlapping_cliques, ring_of_cliques


def _cover(k, member_sets):
    return CommunityCover(k, [frozenset(m) for m in member_sets])


class TestCommunityGraph:
    def test_disjoint_cover_has_no_edges(self):
        cover = _cover(3, [{1, 2, 3}, {4, 5, 6}])
        graph = community_graph(cover)
        assert graph.number_of_nodes == 2
        assert graph.number_of_edges == 0

    def test_overlapping_pair_gets_an_edge(self):
        cover = _cover(3, [{1, 2, 3}, {3, 4, 5}])
        graph = community_graph(cover)
        assert graph.number_of_edges == 1

    def test_hub_community_degree(self):
        cover = _cover(3, [{1, 2, 3, 4, 5, 6}, {1, 10, 11}, {2, 20, 21}, {3, 30, 31}])
        graph = community_graph(cover)
        assert graph.degree("k3id0") == 3


class TestStats:
    @pytest.fixture(scope="class")
    def stats(self):
        # Two pentagon communities sharing 2 nodes + an isolated one.
        g = overlapping_cliques([5, 5], 2)
        extra = [(100, 101), (101, 102), (100, 102), (100, 103), (101, 103), (102, 103)]
        for u, v in extra:
            g.add_edge(u, v)
        return community_graph_stats(k_clique_communities(g, 4))

    def test_distribution_totals(self, stats):
        assert sum(stats.size_distribution.values()) == stats.n_communities
        assert sum(stats.membership_distribution.values()) == 12  # covered nodes

    def test_membership_counts_overlap(self, stats):
        # The 2 shared nodes belong to both pentagon communities.
        assert stats.membership_distribution.get(2) == 2
        assert stats.overlapping_nodes() == 2
        assert stats.max_membership == 2

    def test_overlap_distribution(self, stats):
        assert stats.overlap_distribution == {2: 1}

    def test_community_degree(self, stats):
        # Two overlapping communities (degree 1 each) + isolated (0).
        assert stats.community_degree_distribution == {0: 1, 1: 2}
        assert stats.mean_community_degree() == pytest.approx(2 / 3)

    def test_on_dataset_cover(self, default_context):
        stats = community_graph_stats(default_context.hierarchy[4])
        assert stats.n_communities == len(default_context.hierarchy[4])
        assert stats.overlapping_nodes() > 0  # covers overlap by design
        assert stats.max_membership >= 2


class TestMembershipQuery:
    def test_membership_spans_orders(self):
        h = extract_hierarchy(ring_of_cliques(3, 5))
        memberships = h.membership_of(0)
        assert sorted(memberships) == [2, 3, 4, 5]
        assert memberships[2] == ["k2id0"]

    def test_uncovered_node(self):
        g = Graph([(1, 2), (2, 3), (1, 3)])
        g.add_edge(3, 99)  # 99 is in no triangle
        h = extract_hierarchy(g)
        memberships = h.membership_of(99)
        assert 3 not in memberships
        assert 2 in memberships

    def test_unknown_node_is_empty(self):
        h = extract_hierarchy(ring_of_cliques(2, 4))
        assert h.membership_of("nope") == {}
