"""Every example must run end-to-end — examples are living documentation
and this is what keeps them from rotting."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys, monkeypatch):
    """Run the example as __main__ with default arguments."""
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100, f"{script.name} produced almost no output"


def test_example_inventory():
    """The README's example table and the directory stay in sync."""
    names = {p.stem for p in EXAMPLES}
    expected = {
        "quickstart",
        "internet_analysis",
        "ixp_communities",
        "regional_communities",
        "measurement_merge",
        "evolution_study",
        "routing_study",
        "baselines_comparison",
        "weighted_traffic",
        "tutorial",
        "what_if_planning",
    }
    assert expected <= names
