"""Baseline contrast — why the paper picks CPM (Chapter 1).

Three checkable claims:

* **k-core / k-dense are partitions** — one nested chain per k, no
  overlap — while the CPM cover holds overlapping communities (ASes in
  several IXP communities at once);
* **the Tier-1 full mesh** is a CPM community even though its members'
  degree is overwhelmingly external — internal-degree methods (GCE's
  fitness, label propagation) do not isolate it;
* **EAGLE's clique-size threshold** discards the small regional cliques
  that CPM reports as root communities.

The CPM/Tier-1 check runs on the default-profile topology (the Tier-1
mesh needs enough carriers around it to stand out as a parallel
community); the expensive expansion/agglomeration baselines run on the
tiny profile, which shows the same partition-vs-cover structure.
"""

from repro.baselines import (
    EagleConfig,
    GCEConfig,
    KCoreDecomposition,
    KDenseDecomposition,
    eagle,
    greedy_clique_expansion,
    label_propagation,
)
from repro.core.lightweight import LightweightParallelCPM
from repro.report.figures import ascii_table
from repro.topology.generator import GeneratorConfig, InternetTopologyGenerator


def _tier1_of(config, seed):
    generator = InternetTopologyGenerator(config, seed=seed)
    dataset = generator.generate()
    return dataset, frozenset(generator.roles["tier1"])


def test_baseline_contrast(benchmark, context, emit):
    # --- CPM side: the default dataset of the whole benchmark suite.
    hierarchy = benchmark(lambda: LightweightParallelCPM(context.graph).run())
    _, tier1 = _tier1_of(GeneratorConfig.default(), 42)

    tier1_communities = [
        (k, c.label, c.size)
        for k in hierarchy.orders
        for c in hierarchy[k]
        if tier1 <= set(c.members) and c.size <= len(tier1) + 3
    ]
    cpm_finds_tier1 = bool(tier1_communities)

    from collections import Counter

    cover4 = [set(c.members) for c in hierarchy[4]]
    node_counts = Counter(n for community in cover4 for n in community)
    overlapping_ases = sum(1 for c in node_counts.values() if c > 1)

    # --- baseline side: the tiny dataset keeps GCE/EAGLE tractable.
    tiny_dataset, tiny_tier1 = _tier1_of(GeneratorConfig.tiny(), 7)
    graph = tiny_dataset.graph
    kcore = KCoreDecomposition(graph)
    kdense = KDenseDecomposition(graph, max_k=8)
    gce = greedy_clique_expansion(graph, GCEConfig(min_clique_size=4))
    gce_keeps_tier1 = any(set(c) == set(tiny_tier1) for c in gce)
    eagle_result = eagle(graph, EagleConfig(min_clique_size=4))
    lp = label_propagation(graph, seed=0)
    lp_keeps_tier1 = any(set(c) == set(tiny_tier1) for c in lp)

    rows = [
        ["CPM (ours)", f"{hierarchy.total_communities} communities",
         "yes (overlap allowed)",
         f"yes, parallel at k={[k for k, _, _ in tier1_communities]}"
         if cpm_finds_tier1 else "no"],
        ["k-core", f"degeneracy {kcore.degeneracy}", "no (partition)", "no"],
        ["k-dense", f"max k {kdense.max_k}", "no (partition per k)", "no"],
        ["GCE", f"{len(gce)} communities", "yes",
         "yes" if gce_keeps_tier1 else "no (fitness rejects it)"],
        ["EAGLE", f"{len(eagle_result.communities)} communities "
                  f"({eagle_result.n_subordinate_vertices} subordinates)",
         "yes", "-"],
        ["label propagation", f"{len(lp)} communities", "no (partition)",
         "yes" if lp_keeps_tier1 else "no"],
    ]
    table = ascii_table(
        ["method", "output", "overlapping cover?", "isolates Tier-1 mesh?"],
        rows,
        title="Baseline contrast (Chapter 1): who can express Internet communities",
    )
    footer = (
        f"CPM cover at k=4 has {overlapping_ases} ASes in >1 community; "
        f"EAGLE discarded {eagle_result.n_subordinate_vertices} ASes as subordinate "
        "(the paper's critique: small regional cliques are lost)"
    )
    emit("baseline_contrast", f"{table}\n{footer}")

    assert cpm_finds_tier1, "CPM must isolate the Tier-1-mesh community"
    assert not gce_keeps_tier1, "GCE's fitness should reject the pure Tier-1 mesh"
    assert not lp_keeps_tier1
    assert overlapping_ases > 0
    assert eagle_result.n_subordinate_vertices > 0
