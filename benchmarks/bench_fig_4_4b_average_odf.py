"""Figure 4.4(b) — average Out Degree Fraction vs k.

Paper: members of the huge low-k main communities keep most links
internal (low ODF); crown communities are cohesive carrier sets whose
members direct most links outside (high ODF); small low-k parallels
are variable.
"""

import statistics

from repro.analysis.density_odf import DensityOdfAnalysis
from repro.report.figures import ascii_scatter, ascii_table


def test_figure_4_4b_average_odf(benchmark, context, emit):
    analysis = benchmark(lambda: DensityOdfAnalysis(context))
    chart = ascii_scatter(
        {
            "main": [(float(k), v) for k, v in analysis.main_odf_series()],
            "parallel": [(float(k), v) for k, v in analysis.parallel_odf_points()],
        },
        title="Figure 4.4(b): Average ODF vs k",
        y_label="average ODF",
    )
    table = ascii_table(
        ["k", "main avg ODF"],
        [[k, round(v, 4)] for k, v in analysis.main_odf_series()],
        title="Main-community average ODF (paper: low until the crown, high at the top)",
    )
    emit("figure_4_4b", f"{chart}\n\n{table}")

    series = dict(analysis.main_odf_series())
    assert series[2] == 0.0
    assert analysis.main_odf_increases_to_crown()
    # Crown main ODF well above the low-k plateau.
    low_band = [v for k, v in series.items() if 3 <= k <= 10]
    assert series[context.hierarchy.max_k] > 2 * statistics.mean(low_band)
