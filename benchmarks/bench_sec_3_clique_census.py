"""Section 3 / Chapter 1 — maximal clique census and LP-CPM runtime.

Paper: 2,730,916 maximal cliques in the Topology dataset, 88% with
sizes in [18, 28]; LP-CPM took ~93 hours on 48 cores.  Shape to hold on
the scaled dataset: a dominant mid/low size band (clique counts track
the population, not the core sizes) and an LP-CPM runtime report with
the enumerate/overlap/percolate split.
"""

from repro.core.cliques import CliqueCensus, maximal_cliques
from repro.core.lightweight import LightweightParallelCPM
from repro.report.figures import ascii_table


def test_section_3_maximal_clique_census(benchmark, dataset, emit):
    cliques = benchmark(lambda: maximal_cliques(dataset.graph, min_size=2))
    census = CliqueCensus(cliques)
    band = census.dominant_band(11)  # the paper's [18, 28] is 11 wide
    rows = [[size, count] for size, count in census.histogram.items()]
    table = ascii_table(
        ["clique size", "count"],
        rows,
        title=(
            f"Maximal clique census: {census.total} cliques "
            "(paper: 2,730,916; 88% in sizes [18, 28])"
        ),
    )
    footer = (
        f"dominant 11-wide band: {band} covering "
        f"{census.share_in_band(*band):.0%} of cliques"
    )
    emit("section_3_clique_census", f"{table}\n{footer}")

    assert census.total > 1000
    assert census.max_size == 36
    assert census.share_in_band(*band) > 0.5


def test_section_3_lpcpm_runtime(benchmark, dataset, emit):
    def run():
        cpm = LightweightParallelCPM(dataset.graph)
        cpm.run()
        return cpm.stats

    stats = benchmark(run)
    table = ascii_table(
        ["phase", "seconds"],
        [
            ["enumerate maximal cliques", round(stats.enumerate_seconds, 4)],
            ["overlap counting", round(stats.overlap_seconds, 4)],
            ["per-k percolation", round(stats.percolate_seconds, 4)],
            ["total", round(stats.total_seconds, 4)],
        ],
        title=(
            "LP-CPM phase timings (paper: ~93 h on 48 cores for the "
            "35,390-AS / 2.7M-clique dataset)"
        ),
    )
    emit("section_3_lpcpm_runtime", table)
    assert stats.n_cliques > 1000
    assert stats.total_seconds > 0
