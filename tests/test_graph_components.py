"""Unit tests for connectivity algorithms."""

from repro.graph import (
    Graph,
    bfs_order,
    complete_graph,
    connected_components,
    is_connected,
    largest_connected_component,
    node_component,
    path_graph,
)


class TestBfs:
    def test_bfs_reaches_component(self):
        g = Graph([(1, 2), (2, 3), (4, 5)])
        assert set(bfs_order(g, 1)) == {1, 2, 3}

    def test_bfs_level_order(self):
        g = path_graph(4)
        assert list(bfs_order(g, 0)) == [0, 1, 2, 3]


class TestComponents:
    def test_single_component(self):
        assert len(connected_components(complete_graph(4))) == 1

    def test_multiple_components_sorted_by_size(self):
        g = Graph([(1, 2), (2, 3), (10, 11)])
        components = connected_components(g)
        assert [len(c) for c in components] == [3, 2]

    def test_isolated_nodes_are_components(self):
        g = Graph()
        g.add_nodes_from([1, 2])
        assert len(connected_components(g)) == 2

    def test_empty_graph(self):
        assert connected_components(Graph()) == []

    def test_node_component(self):
        g = Graph([(1, 2), (3, 4)])
        assert node_component(g, 3) == {3, 4}


class TestIsConnected:
    def test_connected(self):
        assert is_connected(path_graph(5))

    def test_disconnected(self):
        assert not is_connected(Graph([(1, 2), (3, 4)]))

    def test_empty_graph_not_connected(self):
        assert not is_connected(Graph())

    def test_single_node_connected(self):
        g = Graph()
        g.add_node(1)
        assert is_connected(g)


class TestGiantComponent:
    def test_keeps_largest(self):
        g = Graph([(1, 2), (2, 3), (10, 11)])
        giant = largest_connected_component(g)
        assert set(giant.nodes()) == {1, 2, 3}
        assert giant.number_of_edges == 2

    def test_empty_graph(self):
        assert len(largest_connected_component(Graph())) == 0
