"""Tests for the k-dense comparison and CSV export features."""

import csv
import io
import json

import pytest

from repro.analysis import compare_with_kdense


class TestKDenseComparison:
    @pytest.fixture(scope="class")
    def comparison(self, tiny_context):
        return compare_with_kdense(tiny_context, max_dense_k=10)

    def test_sandwich_property(self, comparison):
        """CPM(k) ⊆ dense(k) ⊆ core(k-1) — both papers' consistency."""
        assert comparison.sandwich_holds

    def test_dense_is_coarser(self, comparison):
        assert comparison.dense_is_coarser
        assert comparison.dense_max_k <= comparison.clique_max_k

    def test_innermost_zones_are_ixp_fabric(self, comparison):
        """Both papers' shared finding: the deepest zone is on-IXP."""
        assert comparison.innermost_dense_on_ixp_fraction > 0.5
        assert comparison.apex_on_ixp_fraction > 0.8

    def test_counts_present(self, comparison):
        assert comparison.clique_counts[2] == 1
        assert comparison.dense_counts
        assert min(comparison.dense_counts) == 2


class TestCsvExport:
    @pytest.fixture(scope="class")
    def csvs(self, paper_run):
        from repro.report import figure_csvs

        return figure_csvs(paper_run)

    def test_all_series_present(self, csvs):
        assert set(csvs) == {
            "table_2_1.csv",
            "table_2_2.csv",
            "figure_4_1.csv",
            "figure_4_3.csv",
            "figure_4_4.csv",
            "section_4_overlap.csv",
            "communities.csv",
        }

    def test_figure_4_1_parses_and_matches(self, csvs, paper_run):
        rows = list(csv.reader(io.StringIO(csvs["figure_4_1.csv"])))
        assert rows[0] == ["k", "n_communities"]
        parsed = {int(k): int(n) for k, n in rows[1:]}
        assert parsed == dict(paper_run.census.series())

    def test_communities_csv_covers_hierarchy(self, csvs, paper_run):
        rows = list(csv.reader(io.StringIO(csvs["communities.csv"])))
        assert len(rows) - 1 == paper_run.context.hierarchy.total_communities
        header = rows[0]
        assert header == ["label", "k", "size", "is_main", "band"]
        bands = {row[4] for row in rows[1:]}
        assert bands == {"root", "trunk", "crown"}

    def test_write_to_directory(self, paper_run, tmp_path):
        from repro.report import write_figure_csvs

        files = write_figure_csvs(paper_run, tmp_path / "csv")
        assert "manifest.json" in files
        manifest = json.loads((tmp_path / "csv" / "manifest.json").read_text())
        assert set(manifest["files"]) == set(files) - {"manifest.json"}
        for name in manifest["files"]:
            assert (tmp_path / "csv" / name).exists()

    def test_cli_csv_dir(self, paper_run, tmp_path, capsys):
        from repro.cli import main

        dataset_dir = tmp_path / "ds"
        paper_run.dataset.save(dataset_dir)
        out = tmp_path / "csvs"
        assert main(["paper", "--dataset", str(dataset_dir), "--csv-dir", str(out)]) == 0
        assert (out / "figure_4_1.csv").exists()
        assert "CSV" in capsys.readouterr().out
