"""Section 4.3 — root k-clique communities.

Paper: 554 communities with k in [2, 14]; parallel communities average
5.09 ASes; 14 parallel communities have a full-share IXP, several of
them outside Europe (WIX, SIX, PIPE-NSW, NIXI-Delhi, PTTMETRO-SP, …);
382 root communities are fully contained in a country-induced
subgraph — regional environments.
"""

from repro.analysis.bands import derive_bands, root_report
from repro.analysis.geo import GeoAnalysis
from repro.analysis.ixp_share import IXPShareAnalysis
from repro.report.figures import ascii_table


def test_section_4_3_root(benchmark, context, emit):
    ixp_share = IXPShareAnalysis(context)
    bands = derive_bands(ixp_share)
    geo = GeoAnalysis(context)
    report = benchmark(lambda: root_report(context, ixp_share, bands, geo))

    table = ascii_table(
        ["metric", "measured", "paper"],
        [
            ["root band", f"k in {report.k_range}", "k in [2, 14]"],
            ["communities", report.n_communities, 554],
            ["mean parallel size", round(report.mean_parallel_size, 2), 5.09],
            ["full-share parallels", report.full_share_parallels, 14],
            ["full-share IXP countries", len(report.full_share_ixp_countries), 12],
            ["country-contained parallels", report.country_contained_parallels, 382],
        ],
        title="Section 4.3: root community statistics",
    )
    footer = (
        f"full-share IXP countries: {sorted(report.full_share_ixp_countries)}; "
        f"non-European full-share IXPs exist: {report.non_european_full_share_exists} "
        "(paper: WIX/NZ, SIX/US, PIPE-NSW/AU, NIXI-Delhi/IN, PTTMETRO/BR, ...)"
    )
    emit("section_4_3_root", f"{table}\n{footer}")

    assert report.n_communities > 100  # root dominates the census
    assert report.mean_parallel_size < 15
    assert report.full_share_parallels >= 10
    assert report.non_european_full_share_exists
    assert report.country_contained_parallels > 50
