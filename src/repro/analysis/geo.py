"""Geographic containment analysis (Sections 4.1 and 4.3).

A community is *country-contained* when all of its members have a
geographical presence in one common country — equivalently, when it is
a subgraph of that country-induced subgraph [24].  The paper found 382
root communities with this property ("most of the root k-clique
communities are likely to be originated by regional environments"),
and that all crown ASes are European except four.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..topology.geography import Continent, GeoRegistry
from .context import AnalysisContext

__all__ = ["CommunityGeo", "GeoAnalysis", "common_countries", "common_continents"]


def common_countries(registry: GeoRegistry, members: set[int]) -> frozenset[str]:
    """Countries where *every* member has a presence (empty if none).

    An AS with unknown geography has no presence anywhere, so its
    community cannot be country-contained — matching the paper's
    handling of unknown ASes.
    """
    common: frozenset[str] | None = None
    for asn in members:
        countries = registry.countries(asn)
        if not countries:
            return frozenset()
        common = countries if common is None else (common & countries)
        if not common:
            return frozenset()
    return common if common is not None else frozenset()


def common_continents(registry: GeoRegistry, members: set[int]) -> frozenset[Continent]:
    """Continents where every member has at least one presence."""
    common: frozenset[Continent] | None = None
    for asn in members:
        continents = registry.continents(asn)
        if not continents:
            return frozenset()
        common = continents if common is None else (common & continents)
        if not common:
            return frozenset()
    return common if common is not None else frozenset()


@dataclass(frozen=True)
class CommunityGeo:
    """Per-community geography record."""

    label: str
    k: int
    size: int
    is_main: bool
    common_countries: frozenset[str]
    common_continents: frozenset[Continent]
    n_unknown_members: int

    @property
    def is_country_contained(self) -> bool:
        return bool(self.common_countries)

    @property
    def is_continent_contained(self) -> bool:
        return bool(self.common_continents)


class GeoAnalysis:
    """Geographic records for every community."""

    def __init__(self, context: AnalysisContext) -> None:
        self.context = context
        registry = context.dataset.geography
        tree = context.tree
        self.records: list[CommunityGeo] = []
        for community in context.hierarchy.all_communities():
            members = set(community.members)
            self.records.append(
                CommunityGeo(
                    label=community.label,
                    k=community.k,
                    size=community.size,
                    is_main=tree.is_main(community),
                    common_countries=common_countries(registry, members),
                    common_continents=common_continents(registry, members),
                    n_unknown_members=sum(1 for a in members if a not in registry),
                )
            )

    def country_contained(
        self, *, k_max: int | None = None, parallel_only: bool = False
    ) -> list[CommunityGeo]:
        """Country-contained communities, optionally bounded / parallel-only.

        With ``k_max`` set to the root boundary this is the paper's
        '382 root communities fully included in country-induced
        subgraphs'.
        """
        return [
            r
            for r in self.records
            if r.is_country_contained
            and (k_max is None or r.k <= k_max)
            and (not parallel_only or not r.is_main)
        ]

    def continent_membership_fraction(
        self, continent: Continent, *, k_min: int
    ) -> float:
        """Fraction of distinct ASes in communities of order >= k_min
        with a presence in ``continent`` (the paper: crown ASes are all
        European but four)."""
        registry = self.context.dataset.geography
        members: set[int] = set()
        for community in self.context.hierarchy.all_communities():
            if community.k >= k_min:
                members |= set(community.members)
        if not members:
            return 0.0
        present = sum(1 for a in members if continent in registry.continents(a))
        return present / len(members)

    def non_continent_members(self, continent: Continent, *, k_min: int) -> set[int]:
        """ASes in communities of order >= k_min with no presence in
        ``continent`` — the paper's four crown exceptions."""
        registry = self.context.dataset.geography
        members: set[int] = set()
        for community in self.context.hierarchy.all_communities():
            if community.k >= k_min:
                members |= set(community.members)
        return {a for a in members if continent not in registry.continents(a)}
