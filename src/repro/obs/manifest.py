"""One JSON artifact per run: fingerprint, config, versions, spans, metrics.

A :class:`RunManifest` is the unit of the performance trajectory: every
instrumented CLI run and every benchmark writes one, and comparing two
manifests answers "did this PR make the pipeline faster / leaner and on
the same input?".  It bundles:

* ``fingerprint`` — node/edge counts plus a content checksum of the
  graph, so before/after comparisons are provably about the same input;
* ``config`` — the run's parameters (CLI arguments, generator profile,
  worker count …), free-form JSON;
* ``settings`` — the *comparability-critical* subset of the config
  (which kernel, which analysis engine, how many workers): ``repro obs
  diff`` refuses to silently compare manifests whose settings differ,
  because a bitset-vs-set delta is a kernel change, not a regression;
* ``versions`` — Python, platform and ``repro`` versions;
* ``spans`` — the closed spans of the run's :class:`~repro.obs.tracing.
  Tracer` (per-phase wall/CPU/peak-memory);
* ``metrics`` — the ``to_dict`` export of the run's
  :class:`~repro.obs.metrics.MetricsRegistry`;
* ``resources`` — the :class:`~repro.obs.resources.ResourceMonitor`
  sample series (RSS / CPU over the run), when one was attached.

Manifests round-trip losslessly through JSON
(:meth:`RunManifest.save` / :meth:`RunManifest.load`).  Schema history:
version 1 had neither ``settings`` nor ``resources``; version 2 added
both (old files load fine — the new blocks default to empty).
"""

from __future__ import annotations

import hashlib
import json
import platform
import sys
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["RunManifest", "graph_fingerprint", "library_versions"]

#: Version of the manifest JSON layout, bumped on breaking changes.
SCHEMA_VERSION = 2


def graph_fingerprint(graph) -> dict:
    """Node/edge counts plus an order-independent content checksum.

    The checksum is a BLAKE2b digest over the sorted ``repr`` forms of
    all edges (endpoints sorted within each edge), so two graphs built
    in different insertion orders — or in different processes — get the
    same fingerprint iff they have the same edge set.
    """
    digest = hashlib.blake2b(digest_size=16)
    edge_keys = sorted(
        "|".join(sorted((repr(u), repr(v)))) for u, v in graph.edges()
    )
    for key in edge_keys:
        digest.update(key.encode("utf-8"))
        digest.update(b"\n")
    return {
        "nodes": graph.number_of_nodes,
        "edges": graph.number_of_edges,
        "checksum": digest.hexdigest(),
    }


def library_versions() -> dict:
    """Python / platform / repro versions, for manifest comparability."""
    from .. import __version__

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "repro": __version__,
        "argv0": Path(sys.argv[0]).name if sys.argv else "",
    }


@dataclass
class RunManifest:
    """All observability artifacts of one run, as one JSON document."""

    label: str = ""
    fingerprint: dict | None = None
    config: dict = field(default_factory=dict)
    settings: dict = field(default_factory=dict)
    versions: dict = field(default_factory=library_versions)
    spans: list[dict] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    resources: dict = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    @classmethod
    def collect(
        cls,
        *,
        label: str = "",
        graph=None,
        config: dict | None = None,
        settings: dict | None = None,
        tracer=None,
        metrics=None,
        resources: dict | None = None,
    ) -> "RunManifest":
        """Assemble a manifest from live objects.

        ``graph`` (fingerprinted), ``tracer`` (its closed spans),
        ``metrics`` (its ``to_dict``), ``settings`` (the recording
        kernel/engine configuration) and ``resources`` (a
        :class:`~repro.obs.resources.ResourceMonitor` series) are each
        optional, so partial manifests — e.g. a benchmark that only
        times itself — are valid.
        """
        return cls(
            label=label,
            fingerprint=graph_fingerprint(graph) if graph is not None else None,
            config=dict(config or {}),
            settings=dict(settings or {}),
            spans=tracer.to_dicts() if tracer is not None else [],
            metrics=metrics.to_dict() if metrics is not None else {},
            resources=dict(resources or {}),
        )

    # ------------------------------------------------------------------
    # Round-trip
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """The manifest as a JSON-serialisable dict."""
        return {
            "schema_version": self.schema_version,
            "label": self.label,
            "fingerprint": self.fingerprint,
            "config": self.config,
            "settings": self.settings,
            "versions": self.versions,
            "spans": self.spans,
            "metrics": self.metrics,
            "resources": self.resources,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunManifest":
        """Rebuild a manifest from its ``to_dict`` form."""
        return cls(
            label=data.get("label", ""),
            fingerprint=data.get("fingerprint"),
            config=dict(data.get("config", {})),
            settings=dict(data.get("settings", {})),
            versions=dict(data.get("versions", {})),
            spans=list(data.get("spans", [])),
            metrics=dict(data.get("metrics", {})),
            resources=dict(data.get("resources", {})),
            schema_version=data.get("schema_version", SCHEMA_VERSION),
        )

    def save(self, path) -> Path:
        """Write the manifest as pretty-printed JSON; returns the path."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(self.to_dict(), indent=2, default=repr) + "\n", encoding="utf-8"
        )
        return target

    @classmethod
    def load(cls, path) -> "RunManifest":
        """Read a manifest previously written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))

    def to_prometheus(self, *, namespace: str = "repro") -> str:
        """The manifest's metrics block as Prometheus exposition text.

        The same rendering the live server's ``/metrics`` endpoint
        uses (:func:`~repro.obs.exposition.render_exposition`), so a
        batch run's frozen counters/gauges/histogram summaries and a
        served artifact's scrape speak identical metric names.
        """
        from .exposition import render_exposition

        return render_exposition(self.metrics, namespace=namespace)

    # ------------------------------------------------------------------
    # Reading helpers
    # ------------------------------------------------------------------
    def span(self, name: str) -> dict | None:
        """The first span with the given name, or None."""
        for record in self.spans:
            if record.get("name") == name:
                return record
        return None

    def phase_table(self) -> list[tuple[str, float, float, int]]:
        """(name, wall, cpu, peak_alloc) for every top-level phase span.

        Top-level means depth 1 — the direct children of the run span —
        which for LP-CPM are the enumerate / overlap / percolate /
        hierarchy phases.
        """
        return [
            (
                record["name"],
                record["wall_seconds"],
                record["cpu_seconds"],
                record["peak_alloc_bytes"],
            )
            for record in self.spans
            if record.get("depth") == 1
        ]
