"""Graph substrate: undirected simple graphs plus the algorithms the
Clique Percolation Method and the paper's analysis layers are built on.
"""

from .components import (
    bfs_order,
    connected_components,
    is_connected,
    largest_connected_component,
    node_component,
)
from .csr import CSRGraph
from .degeneracy import core_numbers, degeneracy, degeneracy_ordering, k_core
from .generators import (
    barabasi_albert,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    overlapping_cliques,
    path_graph,
    ring_of_cliques,
    star_graph,
)
from .io import format_edgelist, parse_edgelist, read_edgelist, write_edgelist
from .nullmodel import degree_preserving_null, double_edge_swap
from .stats import (
    GraphSummary,
    average_local_clustering,
    degree_assortativity,
    degree_ccdf,
    degree_histogram,
    global_clustering,
    powerlaw_alpha_mle,
    summarize_graph,
    top_degree_density,
)
from .subgraph import containment_fraction, tag_induced_node_sets, tag_induced_subgraph
from .undirected import Graph, GraphError
from .weighted import WeightedGraph

__all__ = [
    "Graph",
    "GraphError",
    "WeightedGraph",
    "CSRGraph",
    "bfs_order",
    "connected_components",
    "is_connected",
    "largest_connected_component",
    "node_component",
    "core_numbers",
    "degeneracy",
    "degeneracy_ordering",
    "k_core",
    "complete_graph",
    "cycle_graph",
    "path_graph",
    "star_graph",
    "erdos_renyi",
    "barabasi_albert",
    "ring_of_cliques",
    "overlapping_cliques",
    "parse_edgelist",
    "read_edgelist",
    "format_edgelist",
    "write_edgelist",
    "tag_induced_subgraph",
    "GraphSummary",
    "summarize_graph",
    "degree_histogram",
    "degree_ccdf",
    "powerlaw_alpha_mle",
    "global_clustering",
    "average_local_clustering",
    "degree_assortativity",
    "top_degree_density",
    "double_edge_swap",
    "degree_preserving_null",
    "tag_induced_node_sets",
    "containment_fraction",
]
