"""Bitset metric engine vs the set-based reference — exact equality.

The :class:`~repro.analysis.engine.MetricsEngine` promises *bit
identical* numbers to the oracles it replaces: ``core/metrics.py``
(density / ODF) and :meth:`Community.overlap_fraction` (pairwise
overlaps).  Every assertion here is ``==`` — no tolerances — across

* the session generator datasets (tiny + default profile),
* structured and randomized oracle graphs,
* serial and ``workers > 1`` sweeps (whose tasks cross a pickle
  boundary), and
* the two selectable engines end to end (context switch and
  ``PaperRun`` byte-identity).
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.analysis.context import AnalysisContext
from repro.analysis.engine import ENGINES, MetricsEngine
from repro.core._blocks_compat import HAVE_NUMPY
from repro.analysis.overlap import OverlapAnalysis
from repro.api import run_cpm
from repro.core.metrics import average_odf, link_density
from repro.core.tree import CommunityTree
from repro.graph import Graph
from repro.report.paper import PaperRun

from .conftest import random_graph

#: Engine modes, with the numpy-backed one skipped on minimal installs.
ENGINE_MODES = [
    pytest.param(
        mode,
        id=mode,
        marks=pytest.mark.skipif(
            mode == "blocks" and not HAVE_NUMPY, reason="blocks engine needs numpy"
        ),
    )
    for mode in ENGINES
]


def _available_modes():
    return [m for m in ENGINES if m != "blocks" or HAVE_NUMPY]


def _engine_for(graph: Graph, *, engine: str = "bitset", workers: int = 1) -> MetricsEngine:
    """Run CPM on ``graph`` and build a metric engine over the result."""
    result = run_cpm(graph)
    tree = CommunityTree(result.hierarchy)
    return MetricsEngine(
        result.hierarchy,
        tree,
        graph,
        engine=engine,
        csr=result.csr,
        workers=workers,
    )


def _assert_rows_match_oracle(engine: MetricsEngine) -> None:
    """Every table row equals the core/metrics.py oracle exactly."""
    rows = engine.rows()
    communities = list(engine.hierarchy.all_communities())
    assert len(rows) == len(communities)
    for row, community in zip(rows, communities):
        assert row.label == community.label
        assert row.k == community.k
        assert row.size == community.size
        assert row.is_main == engine.tree.is_main(community)
        assert row.link_density == link_density(engine.graph, community.members)
        assert row.average_odf == average_odf(engine.graph, community.members)


def _assert_overlaps_match_oracle(engine: MetricsEngine) -> None:
    """Every overlap fraction equals Community.overlap_fraction exactly."""
    from itertools import combinations

    overlaps = engine.order_overlaps()
    for k in engine.hierarchy.orders:
        cover = engine.hierarchy[k]
        if len(cover) < 2:
            assert k not in overlaps
            continue
        order = overlaps[k]
        main = engine.tree.main_community(k)
        parallels = [c for c in cover if c.label != main.label]
        assert order.main_label == main.label
        assert order.parallel_labels == tuple(c.label for c in parallels)
        assert order.main_fractions == tuple(p.overlap_fraction(main) for p in parallels)
        assert order.pair_fractions == tuple(
            a.overlap_fraction(b) for a, b in combinations(parallels, 2)
        )


# ----------------------------------------------------------------------
# Generator datasets (the shapes the paper pipeline actually analyses)
# ----------------------------------------------------------------------
def test_default_dataset_rows_match_oracle(default_context):
    _assert_rows_match_oracle(default_context.engine)


def test_default_dataset_overlaps_match_oracle(default_context):
    _assert_overlaps_match_oracle(default_context.engine)


def test_tiny_dataset_matches_oracle(tiny_context):
    _assert_rows_match_oracle(tiny_context.engine)
    _assert_overlaps_match_oracle(tiny_context.engine)


def test_engines_agree_on_default_dataset(default_context):
    """The bitset table equals the set-based table, row for row."""
    set_context = dataclasses.replace(default_context, analysis_engine="set")
    assert set_context.metrics_rows() == default_context.metrics_rows()
    assert set_context.engine.order_overlaps() == default_context.engine.order_overlaps()


def test_overlap_analysis_matches_pre_engine_reference(default_context):
    """OverlapAnalysis rows equal the pre-engine per-pair recomputation."""
    import statistics
    from itertools import combinations

    analysis = OverlapAnalysis(default_context)
    tree = default_context.tree
    by_k = {row.k: row for row in analysis.rows}
    for k in default_context.hierarchy.orders:
        cover = default_context.hierarchy[k]
        if len(cover) < 2:
            assert k not in by_k
            continue
        main = tree.main_community(k)
        parallels = [c for c in cover if c.label != main.label]
        main_fracs = [p.overlap_fraction(main) for p in parallels]
        pp_fracs = [a.overlap_fraction(b) for a, b in combinations(parallels, 2)]
        row = by_k[k]
        assert row.n_parallel == len(parallels)
        assert row.mean_parallel_main_fraction == statistics.mean(main_fracs)
        assert row.zero_overlap_parallels == sum(1 for f in main_fracs if f == 0.0)
        if pp_fracs:
            assert row.mean_parallel_parallel_fraction == statistics.mean(pp_fracs)
        else:
            assert row.mean_parallel_parallel_fraction is None


def test_overlap_findings_match_re_enumeration(default_context):
    """Findings (b)/(c) equal the re-enumerating implementation they replaced."""
    from itertools import combinations

    analysis = OverlapAnalysis(default_context)
    tree = default_context.tree
    disjoint = False
    strong = 0
    for k in default_context.hierarchy.orders:
        parallels = tree.parallel_communities(k)
        for a, b in combinations(parallels, 2):
            if a.overlap(b) == 0:
                disjoint = True
            if a.overlap_fraction(b) >= 0.5:
                strong += 1
    assert analysis.disjoint_parallel_pairs_exist() == disjoint
    assert analysis.strongly_overlapping_parallel_pairs() == strong


# ----------------------------------------------------------------------
# Oracle graphs: structured and randomized
# ----------------------------------------------------------------------
def test_ring_of_cliques_all_engines(ring_graph):
    for mode in _available_modes():
        engine = _engine_for(ring_graph, engine=mode)
        _assert_rows_match_oracle(engine)
        _assert_overlaps_match_oracle(engine)


@pytest.mark.parametrize("seed", [11, 23, 47])
def test_random_graphs_match_oracle(seed):
    graph = random_graph(80, 0.15, seed)
    reference = _engine_for(graph, engine="set")
    for mode in _available_modes():
        if mode == "set":
            continue
        fast = _engine_for(graph, engine=mode)
        _assert_rows_match_oracle(fast)
        _assert_overlaps_match_oracle(fast)
        assert fast.rows() == reference.rows()
        assert fast.order_overlaps() == reference.order_overlaps()


def test_randomized_hierarchy_shuffled_members():
    """Member sets built in randomized insertion order still match."""
    rng = random.Random(99)
    cliques = [list(range(i * 6, i * 6 + 6)) for i in range(5)]
    graph = Graph()
    for clique in cliques:
        rng.shuffle(clique)
        for i, u in enumerate(clique):
            for v in clique[i + 1 :]:
                graph.add_edge(u, v)
    for a, b in zip(cliques, cliques[1:]):
        graph.add_edge(a[0], b[0])
    for mode in _available_modes():
        engine = _engine_for(graph, engine=mode)
        _assert_rows_match_oracle(engine)
        _assert_overlaps_match_oracle(engine)


# ----------------------------------------------------------------------
# Parallel sweeps: results must not depend on worker scheduling
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", ENGINE_MODES)
def test_workers_match_serial(default_dataset, mode):
    serial = _engine_for(default_dataset.graph, engine=mode, workers=1)
    pooled = _engine_for(default_dataset.graph, engine=mode, workers=2)
    assert pooled.rows() == serial.rows()
    assert pooled.order_overlaps() == serial.order_overlaps()


def test_context_workers_match_serial(default_dataset, default_context):
    pooled = AnalysisContext.from_dataset(default_dataset, workers=2)
    assert pooled.metrics_rows() == default_context.metrics_rows()
    assert pooled.engine.order_overlaps() == default_context.engine.order_overlaps()


# ----------------------------------------------------------------------
# End to end: both engines render the same report bytes
# ----------------------------------------------------------------------
def test_paper_outputs_engine_independent(tiny_dataset):
    bitset_run = PaperRun(tiny_dataset, analysis_engine="bitset")
    set_run = PaperRun(tiny_dataset, analysis_engine="set")
    assert bitset_run.figure_4_3() == set_run.figure_4_3()
    assert bitset_run.figure_4_4a() == set_run.figure_4_4a()
    assert bitset_run.figure_4_4b() == set_run.figure_4_4b()
    assert bitset_run.overlap_summary() == set_run.overlap_summary()
    assert bitset_run.band_reports() == set_run.band_reports()


def test_engine_rejects_unknown_mode(tiny_context):
    with pytest.raises(ValueError):
        MetricsEngine(
            tiny_context.hierarchy,
            tiny_context.tree,
            tiny_context.graph,
            engine="numpy",
        )
    with pytest.raises(ValueError):
        MetricsEngine(
            tiny_context.hierarchy,
            tiny_context.tree,
            tiny_context.graph,
            workers=0,
        )
