"""Incremental CPM sessions: byte-identity, persistence, API and CLI.

The load-bearing guarantee of :mod:`repro.incremental` is that a
session advanced by edge deltas is indistinguishable — hierarchy,
community tree, query artifact, byte for byte — from re-running the
batch pipeline on the mutated graph.  The fuzz tests here drive random
insert/delete batches against every kernel and check exactly that
after every batch.
"""

import json
import random

import pytest

from repro.api import open_session, run_cpm
from repro.cli import main
from repro.core.cache import CliqueCache
from repro.core.serialize import hierarchy_to_dict
from repro.core.tree import CommunityTree
from repro.graph.generators import ring_of_cliques
from repro.graph.undirected import Graph
from repro.incremental import (
    CPMSession,
    CPMUpdate,
    EdgeDelta,
    diff_covers,
    load_session,
)
from repro.runner.checkpoint import CheckpointError, CheckpointStore

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:
    HAVE_NUMPY = False

KERNELS = ["set", "bitset"] + (["blocks"] if HAVE_NUMPY else [])


def hierarchy_bytes(hierarchy) -> bytes:
    """Canonical serialisation of a hierarchy (None-safe)."""
    if hierarchy is None:
        return b"<empty>"
    return json.dumps(hierarchy_to_dict(hierarchy), sort_keys=True).encode()


def random_graph(n: int, p: float, seed: int) -> Graph:
    """An Erdos-Renyi-ish labelled graph (deterministic per seed)."""
    rng = random.Random(seed)
    graph = Graph()
    graph.add_nodes_from(range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                graph.add_edge(u, v)
    return graph


def random_delta(graph: Graph, rng: random.Random, *, n_ins=3, n_del=3) -> EdgeDelta:
    """A random applicable batch: existing edges out, absent edges in."""
    edges = sorted(tuple(sorted(edge)) for edge in graph.edges())
    deletions = rng.sample(edges, min(n_del, len(edges)))
    nodes = sorted(graph.nodes())
    present = {frozenset(edge) for edge in edges}
    insertions: list[tuple] = []
    for _ in range(200):
        if len(insertions) >= n_ins:
            break
        u, v = rng.sample(nodes, 2)
        key = frozenset((u, v))
        if key not in present and key not in map(frozenset, insertions):
            insertions.append((u, v))
    return EdgeDelta(insertions=insertions, deletions=deletions)


def apply_to_graph(graph: Graph, delta: EdgeDelta) -> None:
    """Mirror a delta onto a plain graph (the fuzz oracle's copy)."""
    for u, v in delta.deletions:
        graph.remove_edge(u, v)
    for u, v in delta.insertions:
        graph.add_edge(u, v)


def fresh_bytes(graph: Graph, kernel: str) -> bytes:
    """Hierarchy bytes of a from-scratch run (empty marker when none)."""
    try:
        return hierarchy_bytes(run_cpm(graph, kernel=kernel).hierarchy)
    except ValueError:
        return b"<empty>"


class TestEdgeDelta:
    def test_normalizes_and_counts(self):
        delta = EdgeDelta(insertions=[(1, 2), (3, 4)], deletions=[(5, 6)])
        assert delta.n_edges == 3
        assert bool(delta)
        assert not EdgeDelta()

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            EdgeDelta(insertions=[(1, 1)])

    def test_rejects_duplicate_edge(self):
        with pytest.raises(ValueError, match="duplicate"):
            EdgeDelta(deletions=[(1, 2), (2, 1)])

    def test_rejects_contradictory_edge(self):
        with pytest.raises(ValueError, match="both insertions and deletions"):
            EdgeDelta(insertions=[(1, 2)], deletions=[(2, 1)])

    def test_between_is_the_edge_set_difference(self):
        old = random_graph(12, 0.3, seed=1)
        new = old.copy()
        delta0 = random_delta(new, random.Random(2))
        apply_to_graph(new, delta0)
        delta = EdgeDelta.between(old, new)
        rebuilt = old.copy()
        apply_to_graph(rebuilt, delta)
        assert {frozenset(e) for e in rebuilt.edges()} == {
            frozenset(e) for e in new.edges()
        }
        # deterministic: same pair, same delta
        assert delta == EdgeDelta.between(old, new)


class TestDiffCovers:
    def test_identical_covers_produce_nothing(self):
        cover = (frozenset({1, 2, 3}), frozenset({3, 4, 5}))
        assert diff_covers(3, cover, cover) == ()

    def test_birth_and_death(self):
        before = (frozenset({1, 2, 3}),)
        after = (frozenset({7, 8, 9}),)
        kinds = [c.kind for c in diff_covers(3, before, after)]
        assert kinds == ["born", "died"]

    def test_growth_pairs_by_jaccard(self):
        before = (frozenset({1, 2, 3}),)
        after = (frozenset({1, 2, 3, 4}),)
        (change,) = diff_covers(3, before, after)
        assert change.kind == "grown"
        assert change.size_before == 3 and change.size_after == 4
        assert change.jaccard == pytest.approx(0.75)

    def test_merge_and_split(self):
        a, b = frozenset(range(0, 5)), frozenset(range(5, 10))
        merged = a | b
        changes = diff_covers(4, (a, b), (merged,))
        assert "merged" in [c.kind for c in changes]
        changes = diff_covers(4, (merged,), (a, b))
        assert "split" in [c.kind for c in changes]


class TestSessionBasics:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_initial_state_matches_batch_run(self, kernel):
        graph = ring_of_cliques(4, 5)
        session = CPMSession(graph, kernel=kernel)
        fresh = run_cpm(graph, kernel=kernel)
        assert hierarchy_bytes(session.result().hierarchy) == hierarchy_bytes(
            fresh.hierarchy
        )
        assert session.result().stats.n_cliques == fresh.stats.n_cliques
        assert session.result().stats.kernel == kernel

    def test_update_reports_movement(self):
        session = CPMSession(ring_of_cliques(4, 5))
        update = session.apply(EdgeDelta(insertions=[(0, 10)]))
        assert isinstance(update, CPMUpdate)
        assert update.inserted_edges == 1 and update.deleted_edges == 0
        assert update.batch == 0
        assert update.affected_orders and update.affected_orders[0] == 2
        assert "batch 0" in update.summary()
        assert session.applied_batches == 1

    def test_inapplicable_batch_is_atomic(self):
        session = CPMSession(ring_of_cliques(3, 4))
        before = hierarchy_bytes(session.hierarchy)
        with pytest.raises(ValueError, match="already present"):
            session.apply(EdgeDelta(insertions=[(0, 1)]))
        with pytest.raises(ValueError, match="not present"):
            session.apply(EdgeDelta(deletions=[(0, 99)]))
        with pytest.raises(TypeError, match="EdgeDelta"):
            session.apply([(0, 99)])
        assert session.applied_batches == 0
        assert hierarchy_bytes(session.hierarchy) == before

    def test_edgeless_graph_has_no_result(self):
        graph = Graph()
        graph.add_nodes_from(range(4))
        session = CPMSession(graph)
        assert session.hierarchy is None
        with pytest.raises(ValueError, match="no clique of size >= 2"):
            session.result()
        session.apply(EdgeDelta(insertions=[(0, 1), (1, 2), (0, 2)]))
        assert session.result().hierarchy.orders == [2, 3]
        session.apply(EdgeDelta(deletions=[(0, 1), (1, 2), (0, 2)]))
        assert session.hierarchy is None and session.n_cliques == 0

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_reuses_run_cpm_clique_cache(self, tmp_path, kernel):
        graph = ring_of_cliques(4, 5)
        cache = CliqueCache(tmp_path)
        fresh = run_cpm(graph, kernel=kernel, cache=cache)
        session = CPMSession(graph, kernel=kernel, cache=cache)
        assert session.cache_hit
        assert hierarchy_bytes(session.result().hierarchy) == hierarchy_bytes(
            fresh.hierarchy
        )
        # the reused overlap state keeps working through mutations
        session.apply(EdgeDelta(deletions=[(0, 1)]))
        mutated = graph.copy()
        mutated.remove_edge(0, 1)
        assert hierarchy_bytes(session.result().hierarchy) == fresh_bytes(
            mutated, kernel
        )

    def test_describe_reports_census(self):
        session = CPMSession(ring_of_cliques(4, 5))
        info = session.describe()
        assert info["max_clique_size"] == 5
        assert info["orders"] == [2, 3, 4, 5]
        assert info["applied_batches"] == 0
        assert set(info["fingerprint"]) == {"nodes", "edges", "checksum"}


class TestDeltaFuzz:
    """The core guarantee: byte-identity with run_cpm after every batch."""

    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_batches_on_random_graph(self, kernel, seed):
        rng = random.Random(1000 + seed)
        graph = random_graph(28, 0.22, seed=seed)
        session = CPMSession(graph, kernel=kernel)
        oracle = graph.copy()
        for _ in range(6):
            delta = random_delta(oracle, rng)
            session.apply(delta)
            apply_to_graph(oracle, delta)
            session_bytes = (
                b"<empty>"
                if session.hierarchy is None
                else hierarchy_bytes(session.result().hierarchy)
            )
            assert session_bytes == fresh_bytes(oracle, kernel)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_random_batches_on_generator_graph(self, kernel):
        rng = random.Random(7)
        graph = ring_of_cliques(6, 6)
        session = CPMSession(graph, kernel=kernel)
        oracle = graph.copy()
        for _ in range(6):
            delta = random_delta(oracle, rng, n_ins=4, n_del=4)
            session.apply(delta)
            apply_to_graph(oracle, delta)
            assert hierarchy_bytes(session.result().hierarchy) == fresh_bytes(
                oracle, kernel
            )

    def test_tree_and_query_artifact_bytes_match(self):
        from repro.api import build_query_artifact

        rng = random.Random(42)
        graph = ring_of_cliques(5, 6)
        session = CPMSession(graph)
        oracle = graph.copy()
        for _ in range(3):
            delta = random_delta(oracle, rng)
            session.apply(delta)
            apply_to_graph(oracle, delta)
            ours, fresh = session.result(), run_cpm(oracle)
            assert CommunityTree(ours.hierarchy).to_dot() == CommunityTree(
                fresh.hierarchy
            ).to_dot()
            assert (
                build_query_artifact(ours, oracle).to_bytes()
                == build_query_artifact(fresh, oracle).to_bytes()
            )

    def test_deletion_only_and_insertion_only_batches(self):
        graph = ring_of_cliques(5, 5)
        session = CPMSession(graph)
        oracle = graph.copy()
        rng = random.Random(3)
        for n_ins, n_del in [(0, 5), (5, 0), (0, 5), (5, 0)]:
            delta = random_delta(oracle, rng, n_ins=n_ins, n_del=n_del)
            session.apply(delta)
            apply_to_graph(oracle, delta)
            assert hierarchy_bytes(session.result().hierarchy) == fresh_bytes(
                oracle, "bitset"
            )


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        session = CPMSession(ring_of_cliques(4, 5))
        session.apply(EdgeDelta(insertions=[(0, 10)], deletions=[(0, 1)]))
        session.save(tmp_path / "sess")
        loaded = load_session(tmp_path / "sess")
        assert hierarchy_bytes(loaded.result().hierarchy) == hierarchy_bytes(
            session.result().hierarchy
        )
        assert loaded.applied_batches == session.applied_batches
        assert loaded.kernel == session.kernel
        # both copies evolve identically afterwards
        update_a = session.apply(EdgeDelta(insertions=[(2, 12)]))
        update_b = loaded.apply(EdgeDelta(insertions=[(2, 12)]))
        assert update_a == update_b
        assert hierarchy_bytes(loaded.result().hierarchy) == hierarchy_bytes(
            session.result().hierarchy
        )

    def test_missing_directory_fails_cleanly(self, tmp_path):
        with pytest.raises(CheckpointError, match="META.json is missing"):
            load_session(tmp_path / "nothing")

    def test_pipeline_checkpoint_is_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.open(checksum="abc", kernel="bitset", resume=False)
        with pytest.raises(CheckpointError, match="pipeline checkpoint"):
            load_session(tmp_path / "ckpt")

    def test_future_schema_is_rejected(self, tmp_path):
        session = CPMSession(ring_of_cliques(3, 4))
        session.save(tmp_path / "sess")
        store = CheckpointStore(tmp_path / "sess")
        payload = store.load_phase("session")
        payload["schema"] = 999
        store.store_phase("session", payload)
        with pytest.raises(CheckpointError, match="schema"):
            load_session(tmp_path / "sess")

    def test_tampered_graph_fails_integrity_check(self, tmp_path):
        session = CPMSession(ring_of_cliques(3, 4))
        session.save(tmp_path / "sess")
        store = CheckpointStore(tmp_path / "sess")
        payload = store.load_phase("session")
        payload["edges"] = payload["edges"][:-1]
        store.store_phase("session", payload)
        with pytest.raises(CheckpointError, match="integrity"):
            load_session(tmp_path / "sess")


class TestFacade:
    def test_open_session_from_graph(self):
        graph = ring_of_cliques(4, 5)
        session = open_session(graph)
        assert isinstance(session, CPMSession)
        assert hierarchy_bytes(session.result().hierarchy) == fresh_bytes(
            graph, "bitset"
        )

    def test_open_session_from_result(self):
        graph = ring_of_cliques(4, 5)
        result = run_cpm(graph)
        session = open_session(result)
        assert hierarchy_bytes(session.result().hierarchy) == hierarchy_bytes(
            result.hierarchy
        )

    def test_open_session_needs_a_csr_snapshot(self):
        result = run_cpm(ring_of_cliques(4, 5), kernel="set")
        with pytest.raises(ValueError, match="no CSR snapshot"):
            open_session(result)

    def test_open_session_rejects_other_types(self):
        with pytest.raises(TypeError, match="Graph or CPMResult"):
            open_session("a graph, honest")

    def test_facade_load_session(self, tmp_path):
        from repro.api import load_session as facade_load

        session = open_session(ring_of_cliques(3, 4))
        session.save(tmp_path / "sess")
        loaded = facade_load(tmp_path / "sess")
        assert hierarchy_bytes(loaded.result().hierarchy) == hierarchy_bytes(
            session.result().hierarchy
        )


class TestObservability:
    def test_incr_spans_and_counters(self):
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.tracing import Tracer

        tracer, metrics = Tracer(), MetricsRegistry()
        session = CPMSession(ring_of_cliques(4, 5), tracer=tracer, metrics=metrics)
        session.apply(EdgeDelta(insertions=[(0, 10)]))
        tracer.close()
        names = {record.name for record in tracer.records}
        assert {"incr.open", "incr.apply", "incr.mutate", "incr.percolate"} <= names
        counters = metrics.to_dict()["counters"]
        assert counters["incr.sessions_opened"] == 1
        assert counters["incr.batches"] == 1
        assert counters["incr.edges_inserted"] == 1
        assert counters["incr.cliques_born"] >= 1


class TestSessionCLI:
    @pytest.fixture(scope="class")
    def dataset_dir(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("ds") / "tiny"
        assert main(["generate", str(out), "--profile", "tiny", "--seed", "5"]) == 0
        return str(out)

    def test_open_apply_status(self, dataset_dir, tmp_path, capsys):
        sess = str(tmp_path / "sess")
        assert main(["session", "open", dataset_dir, sess]) == 0
        assert "opened session" in capsys.readouterr().out
        from repro.topology import ASDataset

        edge = sorted(
            tuple(sorted(e)) for e in ASDataset.load(dataset_dir).graph.edges()
        )[0]
        assert (
            main(
                [
                    "session",
                    "apply",
                    sess,
                    "--insert",
                    "1,2000000",
                    "--delete",
                    f"{edge[0]},{edge[1]}",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "+1/-1 edges" in out
        assert main(["session", "status", sess]) == 0
        out = capsys.readouterr().out
        assert "applied batches" in out and "1" in out

    def test_apply_accepts_delta_file(self, dataset_dir, tmp_path, capsys):
        sess = str(tmp_path / "sess")
        assert main(["session", "open", dataset_dir, sess]) == 0
        delta_file = tmp_path / "delta.json"
        delta_file.write_text(json.dumps({"insertions": [[1, 2000000]]}))
        assert main(["session", "apply", sess, "--delta", str(delta_file)]) == 0
        assert "+1/-0 edges" in capsys.readouterr().out

    def test_apply_rejects_empty_delta(self, dataset_dir, tmp_path, capsys):
        sess = str(tmp_path / "sess")
        assert main(["session", "open", dataset_dir, sess]) == 0
        capsys.readouterr()
        assert main(["session", "apply", sess]) == 2
        assert "empty delta" in capsys.readouterr().err

    def test_status_on_missing_session_exits_2(self, tmp_path, capsys):
        assert main(["session", "status", str(tmp_path / "nope")]) == 2
        assert "META.json is missing" in capsys.readouterr().err


class TestQueryBuildGuard:
    @pytest.fixture(scope="class")
    def two_datasets(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("guard")
        a, b = root / "a", root / "b"
        assert main(["generate", str(a), "--profile", "tiny", "--seed", "5"]) == 0
        assert main(["generate", str(b), "--profile", "tiny", "--seed", "6"]) == 0
        return str(a), str(b)

    def test_refuses_stale_overwrite_without_force(
        self, two_datasets, tmp_path, capsys
    ):
        ds_a, ds_b = two_datasets
        artifact = str(tmp_path / "art.rqa")
        assert main(["query", "build", ds_a, artifact]) == 0
        capsys.readouterr()
        # same dataset: rebuild is a refresh, not a clobber
        assert main(["query", "build", ds_a, artifact]) == 0
        capsys.readouterr()
        # different dataset: refuse...
        assert main(["query", "build", ds_b, artifact]) == 2
        err = capsys.readouterr().err
        assert "different graph" in err and "--force" in err
        # ...unless forced
        assert main(["query", "build", ds_b, artifact, "--force"]) == 0

    def test_refuses_unreadable_existing_file(self, two_datasets, tmp_path, capsys):
        ds_a, _ = two_datasets
        bogus = tmp_path / "bogus.rqa"
        bogus.write_bytes(b"not an artifact")
        assert main(["query", "build", ds_a, str(bogus)]) == 2
        assert "not a readable query artifact" in capsys.readouterr().err


class TestBlocksSweepParity:
    """percolate_orders_blocks is a drop-in twin of sweep_wire.

    The session's blocks path re-sweeps its persistent wire with the
    vectorised kernel instead of the union-find; this fuzz feeds both
    sweeps identical random wires — prefix *and* explicit-id eligible
    forms, arbitrary member orderings — and requires exactly equal
    group lists at every order (sizes, members, ordering, tie-breaks).
    """

    @staticmethod
    def _random_wire(rng, n_cliques, shift=12):
        from array import array

        from repro.core.overlap import OverlapWire

        max_k = rng.randint(3, 9)
        buckets = {}
        n_pairs = 0
        for k_act in range(2, max_k + 1):
            if rng.random() < 0.3:
                continue
            arr = array("q")
            for _ in range(rng.randint(0, 12)):
                a, b = rng.sample(range(n_cliques), 2)
                arr.append((max(a, b) << shift) | min(a, b))
            if arr:
                buckets[k_act] = arr.tobytes()
                n_pairs += len(arr)
        chains = array("q")
        ids = sorted(rng.sample(range(n_cliques), rng.randint(0, n_cliques)))
        for prev, cur in zip(ids, ids[1:]):
            if rng.random() < 0.5:
                chains.append((prev << shift) | cur)
        wire = OverlapWire(
            n_cliques=n_cliques,
            shift=shift,
            n_pairs=n_pairs,
            n_chain_pairs=len(chains),
            buckets=buckets,
            chains=chains.tobytes(),
        )
        return wire, max_k

    @pytest.mark.skipif(not HAVE_NUMPY, reason="blocks kernel needs numpy")
    @pytest.mark.parametrize("seed", range(8))
    def test_random_wires_explicit_ids(self, seed):
        from repro.core.blocks import percolate_orders_blocks
        from repro.core.percolation import sweep_wire

        rng = random.Random(4200 + seed)
        n_cliques = rng.randint(4, 40)
        wire, max_k = self._random_wire(rng, n_cliques)
        orders = sorted(rng.sample(range(2, max_k + 2), rng.randint(1, max_k)),
                        reverse=True)
        # Explicit ids in arbitrary (shuffled) order: the session's
        # stable ids are not size-sorted, and groups_of's tie-breaks
        # depend on first appearance — the twin must replicate both.
        eligibles = []
        for _ in orders:
            ids = rng.sample(range(n_cliques), rng.randint(0, n_cliques))
            eligibles.append(ids)
        expected, _merges, _applied = sweep_wire(orders, eligibles, wire)
        actual, _stats = percolate_orders_blocks(orders, eligibles, wire)
        assert actual == expected

    @pytest.mark.skipif(not HAVE_NUMPY, reason="blocks kernel needs numpy")
    @pytest.mark.parametrize("seed", range(8))
    def test_random_wires_prefix_counts(self, seed):
        from repro.core.blocks import percolate_orders_blocks
        from repro.core.percolation import sweep_wire

        rng = random.Random(8600 + seed)
        n_cliques = rng.randint(4, 40)
        wire, max_k = self._random_wire(rng, n_cliques)
        orders = sorted(rng.sample(range(2, max_k + 2), rng.randint(1, max_k)),
                        reverse=True)
        eligibles = [rng.randint(0, n_cliques) for _ in orders]
        expected, _merges, _applied = sweep_wire(orders, eligibles, wire)
        actual, _stats = percolate_orders_blocks(orders, eligibles, wire)
        assert actual == expected
