"""Prometheus text exposition for registries and manifests.

One rendering path serves two producers:

* the live query server's ``/metrics`` endpoint renders its (merged,
  thread-safe) :class:`~.metrics.MetricsRegistry` on every scrape;
* a saved :class:`~.manifest.RunManifest` renders its frozen
  ``metrics`` block after the fact (``RunManifest.to_prometheus`` /
  ``repro obs export --format prometheus``), so batch runs and served
  artifacts speak the same metric names to the same dashboards.

The mapping follows the Prometheus exposition format v0.0.4:

* counters  -> ``<name>_total`` with ``# TYPE ... counter``;
* gauges    -> ``<name>`` with ``# TYPE ... gauge``;
* histograms -> a *summary* family: ``<name>{quantile="0.5|0.9|0.99"}``
  plus ``<name>_count`` / ``<name>_sum`` (quantiles come from the
  log-bucketed :class:`~.metrics.Histogram`, already merged across
  threads/workers, so no client-side aggregation is needed).

Registry names are dotted (``query.lookup.band``); exposition
sanitises them to ``query_lookup_band``.  Per-endpoint (and any other
labelled) series use the **inline-label convention**: a registry
instrument named ``query.request_seconds{endpoint="membership"}`` is
one instrument per label set, and the renderer splits the braces back
into real Prometheus labels — grouped under one ``# TYPE`` line per
family, as the format requires.

:func:`parse_exposition` is the inverse used by ``repro obs tail``:
it reads a scrape back into ``{(name, labels): value}`` so the tail
view can difference two scrapes into rates.
"""

from __future__ import annotations

import math
import re

__all__ = [
    "render_exposition",
    "parse_exposition",
    "sanitize_metric_name",
    "split_labels",
]

#: Quantiles emitted for every histogram family.
SUMMARY_QUANTILES = (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99"))

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_PAIR = re.compile(r'(\w+)="((?:[^"\\]|\\.)*)"')
_SAMPLE_LINE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$")


def sanitize_metric_name(name: str) -> str:
    """A registry name as a valid Prometheus metric name.

    Dots (the registry convention) and any other invalid characters
    become underscores; a leading digit gets an underscore prefix.
    """
    cleaned = _INVALID_CHARS.sub("_", name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def split_labels(name: str) -> tuple[str, tuple[tuple[str, str], ...]]:
    """Split an inline-labelled registry name into (bare name, labels).

    ``'query.request_seconds{endpoint="membership"}'`` ->
    ``('query.request_seconds', (('endpoint', 'membership'),))``; a
    name without braces returns an empty label tuple.  Label order is
    preserved as written (instrument names are constructed, not typed,
    so one family always orders its labels identically).
    """
    brace = name.find("{")
    if brace == -1 or not name.endswith("}"):
        return name, ()
    bare = name[:brace]
    labels = tuple(
        (key, value.replace('\\"', '"').replace("\\\\", "\\"))
        for key, value in _LABEL_PAIR.findall(name[brace + 1 : -1])
    )
    return bare, labels


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def _format_labels(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{key}="{_escape(value)}"' for key, value in labels)
    return "{" + body + "}"


def _format_value(value) -> str:
    number = float(value)
    if math.isnan(number):
        return "NaN"
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def render_exposition(
    metrics,
    *,
    namespace: str = "repro",
    extra_gauges: dict | None = None,
) -> str:
    """Render a registry (or its ``to_dict`` form) as Prometheus text.

    ``metrics`` is a :class:`~.metrics.MetricsRegistry` or the dict
    its ``to_dict`` produces (the shape stored in manifests).
    ``extra_gauges`` adds scrape-time gauges — the query server passes
    its process RSS/CPU/uptime here so resource series need no
    registry round-trip.  Families are emitted name-sorted, each under
    one ``# TYPE`` line, terminated by a trailing newline.
    """
    data = metrics if isinstance(metrics, dict) else metrics.to_dict()
    prefix = f"{namespace}_" if namespace else ""
    lines: list[str] = []

    def _family(kind: str, items: dict, suffix: str = "") -> None:
        families: dict[str, list[tuple[tuple[tuple[str, str], ...], object]]] = {}
        for name, value in items.items():
            bare, labels = split_labels(name)
            family = prefix + sanitize_metric_name(bare) + suffix
            families.setdefault(family, []).append((labels, value))
        for family in sorted(families):
            lines.append(f"# TYPE {family} {kind}")
            for labels, value in families[family]:
                lines.append(f"{family}{_format_labels(labels)} {_format_value(value)}")

    counters = data.get("counters") or {}
    gauges = dict(data.get("gauges") or {})
    if extra_gauges:
        gauges.update(extra_gauges)
    histograms = data.get("histograms") or {}

    _family("counter", counters, suffix="_total")
    _family("gauge", gauges)

    # Histograms render as summaries: one # TYPE per family, then the
    # quantile series of every label set, then _count and _sum.
    families: dict[str, list[tuple[tuple[tuple[str, str], ...], dict]]] = {}
    for name, summary in histograms.items():
        bare, labels = split_labels(name)
        family = prefix + sanitize_metric_name(bare)
        families.setdefault(family, []).append((labels, summary))
    for family in sorted(families):
        lines.append(f"# TYPE {family} summary")
        for labels, summary in families[family]:
            for quantile, key in SUMMARY_QUANTILES:
                value = summary.get(key)
                if value is None:
                    continue
                q_labels = labels + (("quantile", quantile),)
                lines.append(f"{family}{_format_labels(q_labels)} {_format_value(value)}")
            lines.append(
                f"{family}_count{_format_labels(labels)} "
                f"{_format_value(summary.get('count', 0))}"
            )
            lines.append(
                f"{family}_sum{_format_labels(labels)} "
                f"{_format_value(summary.get('sum', 0.0))}"
            )
    return "\n".join(lines) + "\n" if lines else ""


def parse_exposition(text: str) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Parse Prometheus text back into ``{(name, labels): value}``.

    The inverse of :func:`render_exposition` to the extent ``repro obs
    tail`` needs: comment/``# TYPE`` lines are skipped, label values
    are unescaped, sample values become floats (``NaN``/``+Inf``
    included).  Unparseable lines are ignored rather than fatal — a
    tail must survive scraping a newer server.
    """
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            continue
        name, label_body, raw_value = match.groups()
        labels = tuple(
            (key, value.replace('\\"', '"').replace("\\\\", "\\"))
            for key, value in _LABEL_PAIR.findall(label_body or "")
        )
        try:
            samples[(name, labels)] = float(raw_value)
        except ValueError:
            continue
    return samples
