"""Hierarchy serialisation.

The paper's community extraction took days; persisting the result is
what made the analysis iterable.  This module round-trips a
:class:`CommunityHierarchy` (member sets, labels, parent provenance)
through a stable JSON document so expensive CPM runs can be cached and
the analysis layers re-run offline::

    save_hierarchy(hierarchy, "communities.json")
    hierarchy = load_hierarchy("communities.json")

Only int and str members are supported (AS numbers are ints); mixed
member types raise, rather than silently producing an unloadable file.
"""

from __future__ import annotations

import json
from pathlib import Path

from .communities import CommunityCover, CommunityHierarchy

__all__ = ["hierarchy_to_dict", "hierarchy_from_dict", "save_hierarchy", "load_hierarchy"]

_FORMAT = "repro.k-clique-hierarchy/1"


def hierarchy_to_dict(hierarchy: CommunityHierarchy) -> dict:
    """A JSON-ready document (deterministic member ordering)."""
    covers = {}
    for k in hierarchy.orders:
        members_per_community = []
        for community in hierarchy[k]:
            members = sorted(community.members)
            for member in members:
                if not isinstance(member, (int, str)):
                    raise TypeError(
                        f"only int/str members serialise; {community.label} "
                        f"holds {type(member).__name__}"
                    )
            members_per_community.append(members)
        covers[str(k)] = members_per_community
    return {
        "format": _FORMAT,
        "covers": covers,
        "parent_labels": dict(sorted(hierarchy.parent_labels.items())),
    }


def hierarchy_from_dict(document: dict) -> CommunityHierarchy:
    """Rebuild a hierarchy from :func:`hierarchy_to_dict` output."""
    if document.get("format") != _FORMAT:
        raise ValueError(f"unrecognised hierarchy format: {document.get('format')!r}")
    covers = {}
    for k_str, member_lists in document["covers"].items():
        k = int(k_str)
        covers[k] = CommunityCover(k, [frozenset(members) for members in member_lists])
    return CommunityHierarchy(covers, parent_labels=document.get("parent_labels"))


def save_hierarchy(hierarchy: CommunityHierarchy, path: str | Path) -> None:
    """Write a hierarchy to ``path`` as stable JSON."""
    Path(path).write_text(
        json.dumps(hierarchy_to_dict(hierarchy), indent=1, sort_keys=True),
        encoding="utf-8",
    )


def load_hierarchy(path: str | Path) -> CommunityHierarchy:
    """Read a hierarchy previously written by :func:`save_hierarchy`."""
    return hierarchy_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))
