"""Unit tests for the k-clique community tree and the nesting theorem."""

import random

import pytest

from repro.core import (
    CommunityCover,
    CommunityHierarchy,
    CommunityTree,
    NestingViolation,
    extract_hierarchy,
    find_parent,
    verify_nesting,
)
from repro.graph import erdos_renyi, overlapping_cliques, ring_of_cliques


class TestNestingTheorem:
    @pytest.mark.parametrize("seed", range(8))
    def test_holds_on_random_graphs(self, seed):
        g = erdos_renyi(30, 0.35, random.Random(seed))
        h = extract_hierarchy(g)
        checked = verify_nesting(h)
        expected = sum(len(h[k]) for k in h.orders if k > h.min_k)
        assert checked == expected

    def test_holds_on_clique_chain(self):
        h = extract_hierarchy(overlapping_cliques([6, 6, 6], 5))
        assert verify_nesting(h) == 4  # one community at each k in [3..6]

    def test_violation_detected_on_forged_hierarchy(self):
        covers = {
            2: CommunityCover(2, [frozenset({1, 2, 3})]),
            3: CommunityCover(3, [frozenset({7, 8, 9})]),  # not nested!
        }
        h = CommunityHierarchy(covers)
        with pytest.raises(NestingViolation):
            verify_nesting(h)

    def test_provenance_violation_detected(self):
        covers = {
            2: CommunityCover(2, [frozenset({1, 2, 3}), frozenset({7, 8, 9})]),
            3: CommunityCover(3, [frozenset({1, 2, 3})]),
        }
        # Forged provenance pointing at the wrong parent.
        h = CommunityHierarchy(covers, parent_labels={"k3id0": "k2id1"})
        with pytest.raises(NestingViolation):
            verify_nesting(h)


class TestFindParent:
    def test_uses_provenance_when_present(self):
        h = extract_hierarchy(ring_of_cliques(4, 5))
        for k in (3, 4, 5):
            for community in h[k]:
                parent = find_parent(h, community)
                assert parent.k == k - 1
                assert community.members <= parent.members

    def test_fallback_without_provenance(self):
        covers = {
            2: CommunityCover(2, [frozenset(range(10))]),
            3: CommunityCover(3, [frozenset(range(5))]),
        }
        h = CommunityHierarchy(covers)
        assert find_parent(h, h[3][0]).label == "k2id0"

    def test_fallback_prefers_smallest_container(self):
        covers = {
            2: CommunityCover(2, [frozenset(range(10)), frozenset(range(6))]),
            3: CommunityCover(3, [frozenset(range(4))]),
        }
        h = CommunityHierarchy(covers)
        assert find_parent(h, h[3][0]).size == 6

    def test_missing_level_raises(self):
        covers = {3: CommunityCover(3, [frozenset(range(4))])}
        h = CommunityHierarchy(covers)
        with pytest.raises(KeyError):
            find_parent(h, h[3][0])


class TestTreeStructure:
    @pytest.fixture(scope="class")
    def tree(self):
        return CommunityTree(extract_hierarchy(ring_of_cliques(4, 5)))

    def test_single_root_on_connected_graph(self, tree):
        assert len(tree.roots) == 1
        assert tree.roots[0].k == 2

    def test_node_count(self, tree):
        # 1 + 4 + 4 + 4 communities at k = 2..5.
        assert len(tree) == 13

    def test_apex_is_max_order(self, tree):
        assert tree.apex.k == 5

    def test_main_chain_is_one_per_order(self, tree):
        chain = tree.main_chain()
        assert [n.k for n in chain] == [2, 3, 4, 5]
        assert all(tree.is_main(n.community) for n in chain)

    def test_main_community_lookup(self, tree):
        assert tree.main_community(3).k == 3
        with pytest.raises(KeyError):
            tree.main_community(99)

    def test_parallel_communities(self, tree):
        # At each k in [3, 5]: 4 communities, 1 main, 3 parallel.
        assert len(tree.parallel_communities(5)) == 3
        assert len(tree.parallel_communities()) == 9

    def test_parallel_branches_in_ring(self, tree):
        branches = tree.parallel_branches(min_length=2)
        # The three non-main cliques each form a k=3..5 nested chain.
        assert len(branches) == 3
        assert all(len(b) == 3 for b in branches)
        assert all(b[0].k == 3 and b[-1].k == 5 for b in branches)

    def test_node_lookup(self, tree):
        node = tree.node(tree.apex.label)
        assert node is tree.apex
        with pytest.raises(KeyError):
            tree.node("k99id0")

    def test_ancestors_and_descendants(self, tree):
        apex = tree.apex
        ancestors = list(apex.ancestors())
        assert [n.k for n in ancestors] == [4, 3, 2]
        root = tree.roots[0]
        assert len(list(root.descendants())) == 12


class TestRendering:
    @pytest.fixture(scope="class")
    def tree(self):
        return CommunityTree(extract_hierarchy(ring_of_cliques(3, 4)))

    def test_dot_output(self, tree):
        dot = tree.to_dot()
        assert dot.startswith("digraph")
        assert '"k2id0"' in dot
        assert "style=filled" in dot
        # One edge per non-root community.
        assert dot.count("->") == len(tree) - len(tree.roots)

    def test_ascii_output_marks_main(self, tree):
        text = tree.to_ascii()
        assert "* k2id0" in text
        assert text.count("\n") + 1 == len(tree)

    def test_ascii_truncation(self, tree):
        text = tree.to_ascii(max_children=1)
        assert "... " in text
