"""Benchmark fixtures.

Every benchmark consumes the same synthetic April-2010-like dataset
(default profile, seed 42) and the shared CPM run, so fixture cost is
paid once per session and the timed portions measure exactly the
computation each table/figure needs.

Each benchmark *prints and saves* the rows/series it regenerates —
the textual equivalents of the paper's tables and figures land in
``benchmarks/output/<name>.txt``.

Observability: the shared CPM run is instrumented with a session-wide
:class:`repro.obs.Tracer` + :class:`repro.obs.MetricsRegistry`, and an
autouse fixture times every benchmark test and writes one
``benchmarks/output/BENCH_<test>.json`` :class:`repro.obs.RunManifest`
per test (plus ``BENCH__session.json`` with the shared CPM spans at
session end) — the JSON trajectory CI uploads as artifacts so every PR
records its perf numbers.  Set ``REPRO_OBS_MEMORY=1`` to also sample
allocation peaks (tracemalloc slows allocation-heavy code — the bitset
kernel most of all — so it is off by default *and in CI* to keep the
timings that ``check_bench_regression.py`` gates on honest).
"""

from __future__ import annotations

import os
import re
from pathlib import Path

import pytest

from repro.analysis.context import AnalysisContext
from repro.obs import MetricsRegistry, RunManifest, Tracer, graph_fingerprint
from repro.report.paper import PaperRun
from repro.topology.generator import GeneratorConfig, generate_topology

OUTPUT_DIR = Path(__file__).parent / "output"

_TRACE_MEMORY = bool(os.environ.get("REPRO_OBS_MEMORY"))
# Which CPM kernel the benchmarks exercise; recorded in every manifest
# so the perf trajectory stays attributable across kernel changes.
_KERNEL = os.environ.get("REPRO_BENCH_KERNEL", "bitset")
_SESSION_TRACER = Tracer(memory=_TRACE_MEMORY)
_SESSION_METRICS = MetricsRegistry()
_SESSION_FINGERPRINT: dict = {}


def _manifest_path(label: str) -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR / f"BENCH_{re.sub(r'[^A-Za-z0-9_.-]+', '_', label)}.json"


def _trace_path(label: str) -> Path:
    """Per-test span trace (JSONL) beside the manifest.

    Not committed (wall-clock timestamps churn every run; see
    .gitignore) — CI uploads these as artifacts so any bench run can be
    opened with ``repro obs view`` / exported to Perfetto after the
    fact.
    """
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR / f"BENCH_{re.sub(r'[^A-Za-z0-9_.-]+', '_', label)}.trace.jsonl"


@pytest.fixture(scope="session")
def dataset():
    dataset = generate_topology(GeneratorConfig.default(), seed=42)
    _SESSION_FINGERPRINT.update(graph_fingerprint(dataset.graph))
    return dataset


@pytest.fixture(scope="session")
def context(dataset):
    # REPRO_BENCH_CACHE=1 opts the shared CPM run into the on-disk
    # clique cache ($REPRO_CACHE_DIR or ~/.cache/repro, keyed by the
    # graph fingerprint).  CI sets it with an actions/cache-restored
    # directory so warm runs skip enumeration; committed baselines are
    # recorded without it, so a cache hit can only make the gated
    # timings faster, never mask a regression.
    cache = None
    if os.environ.get("REPRO_BENCH_CACHE"):
        from repro.core.cache import CliqueCache

        cache = CliqueCache()
    return AnalysisContext.from_dataset(
        dataset,
        kernel=_KERNEL,
        cache=cache,
        tracer=_SESSION_TRACER,
        metrics=_SESSION_METRICS,
    )


@pytest.fixture(scope="session")
def bench_kernel() -> str:
    """The CPM kernel under benchmark (``REPRO_BENCH_KERNEL``, default bitset)."""
    return _KERNEL


@pytest.fixture(scope="session")
def paper_run(dataset, context):
    run = PaperRun.__new__(PaperRun)
    run.dataset = dataset
    run.context = context
    return run


@pytest.fixture()
def bench_record(request):
    """Mutable mapping of scalar results a benchmark wants persisted.

    Whatever a test stores here (e.g. per-scale CPM seconds) lands in
    its ``BENCH_<test>.json`` manifest's config — the numbers
    ``check_bench_regression.py`` compares across commits.
    """
    record: dict = {}
    request.node._bench_record = record
    return record


@pytest.fixture()
def bench_tracer(request):
    """Per-test tracer whose spans merge into the test's manifest.

    Hand it to the code under benchmark (e.g. a
    :class:`~repro.analysis.engine.MetricsEngine`) and its spans —
    ``analysis.sweep`` and friends — land in ``BENCH_<test>.json``
    alongside the autouse timing span, where
    ``check_bench_regression.py`` can gate on them.
    """
    tracer = Tracer(memory=_TRACE_MEMORY)
    request.node._bench_tracer = tracer
    return tracer


@pytest.fixture()
def bench_metrics(request):
    """Per-test metric registry persisted in the test's manifest."""
    registry = MetricsRegistry()
    request.node._bench_metrics = registry
    return registry


@pytest.fixture(autouse=True)
def bench_manifest(request):
    """Time each benchmark test and archive its manifest under output/.

    The per-test manifest carries one span (the whole test: wall, CPU,
    peak memory), the kernel variant, any ``bench_record`` scalars, and
    the session dataset's fingerprint once known — the accumulating
    ``BENCH_*.json`` perf trajectory.
    """
    tracer = Tracer(memory=_TRACE_MEMORY)
    with tracer.span("bench", nodeid=request.node.nodeid):
        yield
    tracer.close()
    extra_tracer = getattr(request.node, "_bench_tracer", None)
    if extra_tracer is not None:
        extra_tracer.close()
        tracer.records.extend(extra_tracer.records)
    config = {"kernel": _KERNEL}
    config.update(getattr(request.node, "_bench_record", {}))
    manifest = RunManifest.collect(
        label=request.node.name,
        config=config,
        settings={"kernel": _KERNEL, "memory": _TRACE_MEMORY},
        tracer=tracer,
        metrics=getattr(request.node, "_bench_metrics", None),
    )
    manifest.fingerprint = dict(_SESSION_FINGERPRINT) or None
    manifest.save(_manifest_path(request.node.name))
    tracer.write_jsonl(_trace_path(request.node.name))


def pytest_sessionfinish(session):
    """Write the shared CPM run's spans/metrics as the session manifest."""
    if not _SESSION_TRACER.records and not _SESSION_METRICS.to_dict()["counters"]:
        return
    manifest = RunManifest.collect(
        label="session",
        config={"kernel": _KERNEL},
        settings={"kernel": _KERNEL, "memory": _TRACE_MEMORY},
        tracer=_SESSION_TRACER,
        metrics=_SESSION_METRICS,
    )
    manifest.fingerprint = dict(_SESSION_FINGERPRINT) or None
    manifest.save(_manifest_path("_session"))
    _SESSION_TRACER.write_jsonl(_trace_path("_session"))
    _SESSION_TRACER.close()


@pytest.fixture(scope="session")
def emit():
    """Print a regenerated artefact and archive it under output/."""

    OUTPUT_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return _emit
