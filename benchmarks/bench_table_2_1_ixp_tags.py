"""Table 2.1 — on-IXP vs not-on-IXP AS counts.

Paper (35,390 ASes): on-IXP 4,462 / not-on-IXP 30,928 (12.6% on-IXP).
Shape to hold: a small minority of ASes participates in IXPs, yet
(Sections 4.1-4.2) they dominate every well-connected community.
"""

from repro.report.figures import ascii_table
from repro.topology.tags import summarize_tags


def test_table_2_1_ixp_tagging(benchmark, dataset, emit):
    summary = benchmark(
        lambda: summarize_tags(dataset.graph.nodes(), dataset.ixps, dataset.geography)
    )
    table = ascii_table(
        ["on-IXP", "not-on-IXP", "on-IXP share"],
        [[summary.ixp.on_ixp, summary.ixp.not_on_ixp, f"{summary.ixp.on_ixp_fraction:.1%}"]],
        title="Table 2.1: Summary of tagging results (paper: 4,462 / 30,928 = 12.6%)",
    )
    emit("table_2_1", table)
    assert summary.ixp.on_ixp > 0
    assert summary.ixp.on_ixp_fraction < 0.5  # minority, as in the paper
