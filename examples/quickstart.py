"""Quickstart: extract k-clique communities from a small graph.

Builds the toy structure from the paper's Section 3 — overlapping
cliques chained through shared nodes — extracts every k-clique
community with the Lightweight Parallel CPM, verifies the nesting
theorem, and prints the community tree.

Run:  python examples/quickstart.py
"""

from repro import CommunityTree, LightweightParallelCPM, verify_nesting
from repro.graph import Graph


def build_demo_graph() -> Graph:
    """Two dense zones sharing a border, plus a periphery.

    Zone A: a 5-clique {0..4}.  Zone B: a 5-clique {3..7} sharing
    {3, 4} with A.  A triangle {20, 21, 22} hangs off node 0.
    """
    g = Graph()
    zone_a = list(range(5))
    zone_b = list(range(3, 8))
    for zone in (zone_a, zone_b):
        for i, u in enumerate(zone):
            for v in zone[i + 1 :]:
                if not g.has_edge(u, v):
                    g.add_edge(u, v)
    g.add_edges_from([(20, 21), (21, 22), (20, 22), (0, 20)])
    return g


def main() -> None:
    graph = build_demo_graph()
    print(f"graph: {graph.number_of_nodes} nodes, {graph.number_of_edges} edges\n")

    cpm = LightweightParallelCPM(graph)
    hierarchy = cpm.run()
    print(f"maximal cliques: {cpm.stats.n_cliques}")
    print(f"k-clique communities per order: {hierarchy.counts_by_k()}\n")

    for k in hierarchy.orders:
        for community in hierarchy[k]:
            members = sorted(community.members)
            print(f"  {community.label}: {members}")
    print()

    # The two 5-cliques share 2 nodes: one community for k <= 3
    # (overlap 2 >= k-1), two overlapping communities at k in {4, 5}.
    k4 = hierarchy[4]
    shared = set(k4[0].members) & set(k4[1].members)
    print(f"the two 4-clique communities overlap in {sorted(shared)} — "
          "overlap is allowed, unlike partition methods\n")

    edges_checked = verify_nesting(hierarchy)
    print(f"nesting theorem verified on {edges_checked} containment edges")

    tree = CommunityTree(hierarchy)
    print("\ncommunity tree (* = main chain):")
    print(tree.to_ascii())


if __name__ == "__main__":
    main()
