"""Sharded pipeline: planning, shard-count invariance, resilience.

The contract of :mod:`repro.shard` is *byte-identity*: for every
kernel, running with any shard count — serial dispatch or a worker
pool, interrupted and resumed mid-shard, or degraded by worker kills —
must produce the same hierarchy document, the same community tree and
the same packed query artifact as the single-process pipeline.  These
tests pin that contract on a ring-of-cliques oracle small enough to
sweep every combination.
"""

import json
import pickle

import pytest

from repro.api import build_query_artifact, run_cpm
from repro.core._blocks_compat import HAVE_NUMPY
from repro.core.lightweight import KERNELS, LightweightParallelCPM
from repro.core.serialize import hierarchy_to_dict
from repro.core.tree import CommunityTree
from repro.graph import ring_of_cliques
from repro.obs.inspect import diff_manifests
from repro.runner import CheckpointStore, FaultPlan
from repro.shard import ShardPlan, plan_shards, resolve_shards

#: Every kernel, with 'blocks' skipped on numpy-less installs.
KERNEL_PARAMS = [
    pytest.param(
        kernel,
        marks=pytest.mark.skipif(
            kernel == "blocks" and not HAVE_NUMPY, reason="blocks kernel needs numpy"
        ),
    )
    for kernel in KERNELS
]


@pytest.fixture(scope="module")
def graph():
    return ring_of_cliques(6, 6)


@pytest.fixture(scope="module")
def baselines(graph):
    """Serial (shards=1, workers=1) documents, one per available kernel."""
    return {
        kernel: hierarchy_to_dict(LightweightParallelCPM(graph, kernel=kernel).run())
        for kernel in KERNELS
        if kernel != "blocks" or HAVE_NUMPY
    }


class TestResolveShards:
    def test_auto_matches_workers(self):
        assert resolve_shards("auto", 4) == 4
        assert resolve_shards("auto", 1) == 1
        assert resolve_shards("AUTO", 0) == 1

    def test_integer_strings_parse(self):
        assert resolve_shards("3", 8) == 3
        assert resolve_shards(" 2 ", 1) == 2

    def test_integers_pass_through(self):
        assert resolve_shards(5, 1) == 5

    @pytest.mark.parametrize("bad", [0, -1, "0", "none", "1.5"])
    def test_invalid_requests_raise(self, bad):
        with pytest.raises(ValueError):
            resolve_shards(bad, 4)


class TestPlanShards:
    def test_every_vertex_owned_exactly_once(self):
        degrees = [5, 0, 3, 3, 1, 8, 2, 0, 4, 1]
        plan = plan_shards(degrees, 3)
        owned = [v for shard in plan.owners for v in shard]
        assert sorted(owned) == list(range(len(degrees)))
        assert plan.n_shards == 3
        assert plan.n_vertices == len(degrees)

    def test_owners_ascend_within_each_shard(self):
        plan = plan_shards([3, 1, 4, 1, 5, 9, 2, 6], 2)
        for shard in plan.owners:
            assert list(shard) == sorted(shard)

    def test_lpt_balances_uniform_costs(self):
        # 12 equal-cost vertices over 4 shards: a level plan exists and
        # LPT must find it.
        plan = plan_shards([2] * 12, 4)
        assert plan.imbalance() == 1.0
        assert {len(shard) for shard in plan.owners} == {3}

    def test_costs_are_superlinear_in_forward_degree(self):
        # One heavyweight vertex must not drag its shard's cheap
        # vertices along: LPT places it alone when the rest balance.
        plan = plan_shards([10, 1, 1, 1, 1], 2)
        heavy_shard = next(s for s in plan.owners if 0 in s)
        assert heavy_shard == (0,)

    def test_more_shards_than_vertices_clamps(self):
        plan = plan_shards([1, 1], 8)
        assert plan.n_shards == 2

    def test_empty_graph_plans_one_empty_shard(self):
        plan = plan_shards([], 4)
        assert plan.n_shards == 1
        assert plan.owners == ((),)
        assert plan.imbalance() == 1.0

    def test_imbalance_reports_max_over_mean(self):
        plan = ShardPlan(n_shards=2, owners=((0,), (1,)), costs=(3, 1))
        assert plan.imbalance() == pytest.approx(1.5)


@pytest.mark.parametrize("kernel", KERNEL_PARAMS)
@pytest.mark.parametrize("shards", [1, 2, 4, "auto"])
class TestShardCountInvariance:
    def test_hierarchy_is_byte_identical(self, graph, baselines, kernel, shards):
        cpm = LightweightParallelCPM(graph, kernel=kernel, shards=shards)
        assert hierarchy_to_dict(cpm.run()) == baselines[kernel]

    def test_pool_execution_is_byte_identical(self, graph, baselines, kernel, shards):
        cpm = LightweightParallelCPM(graph, kernel=kernel, workers=2, shards=shards)
        assert hierarchy_to_dict(cpm.run()) == baselines[kernel]
        assert not cpm.stats.degraded


@pytest.mark.parametrize("kernel", KERNEL_PARAMS)
class TestDownstreamArtifacts:
    """Tree and query artifact built from a sharded run match serial."""

    def test_tree_and_artifact_bytes_match(self, graph, kernel):
        serial = run_cpm(graph, kernel=kernel)
        sharded = run_cpm(graph, kernel=kernel, shards=4)
        assert CommunityTree(serial.hierarchy).to_dot() == (
            CommunityTree(sharded.hierarchy).to_dot()
        )
        a = build_query_artifact(serial, graph)
        b = build_query_artifact(sharded, graph)
        try:
            assert a.to_bytes() == b.to_bytes()
        finally:
            a.close()
            b.close()


class TestShardResume:
    def _sharded(self, graph, store, *, resume=False, shards=4):
        return LightweightParallelCPM(
            graph, kernel="bitset", shards=shards, checkpoint=store, resume=resume
        )

    def test_mid_shard_checkpoint_resumes_byte_identical(
        self, graph, baselines, tmp_path
    ):
        """A shard_enumerate checkpoint holding only *some* shards'
        results is completed, not recomputed from scratch."""
        store = CheckpointStore(tmp_path / "ckpt")
        self._sharded(graph, store).run()
        partial = pickle.loads(store.phase_path("shard_enumerate").read_bytes())
        assert partial["signature"] == 4 and len(partial["done"]) == 4
        partial["done"] = dict(sorted(partial["done"].items())[:2])
        store.store_phase("shard_enumerate", partial)
        for phase in ("enumerate", "shard_overlap", "overlap", "shard_percolate", "percolate"):
            store.phase_path(phase).unlink(missing_ok=True)

        resumed = self._sharded(graph, store, resume=True)
        assert hierarchy_to_dict(resumed.run()) == baselines["bitset"]
        assert "shard_enumerate" in resumed.stats.resumed_phases

    def test_signature_mismatch_discards_partials(self, graph, baselines, tmp_path):
        """Resuming under a different shard count must not trust the
        old partition's partial results."""
        store = CheckpointStore(tmp_path / "ckpt")
        self._sharded(graph, store).run()
        for phase in ("enumerate", "shard_overlap", "overlap", "shard_percolate", "percolate"):
            store.phase_path(phase).unlink(missing_ok=True)
        resumed = self._sharded(graph, store, resume=True, shards=2)
        assert hierarchy_to_dict(resumed.run()) == baselines["bitset"]
        assert "shard_enumerate" not in resumed.stats.resumed_phases

    def test_serial_and_sharded_share_assembled_checkpoints(
        self, graph, baselines, tmp_path
    ):
        """Assembled phases are stored unprefixed, so a serial run can
        resume from a sharded run's checkpoint and vice versa."""
        store = CheckpointStore(tmp_path / "ckpt")
        self._sharded(graph, store).run()
        resumed = LightweightParallelCPM(
            graph, kernel="bitset", checkpoint=store, resume=True
        )
        assert hierarchy_to_dict(resumed.run()) == baselines["bitset"]
        assert "enumerate" in resumed.stats.resumed_phases


class TestShardFaults:
    def test_worker_kill_retries_byte_identical(self, graph, baselines):
        """Killing shard 0's worker once heals under retry."""
        plan = FaultPlan.parse("enumerate:shard=0:kill:times=1")
        cpm = LightweightParallelCPM(
            graph, kernel="bitset", workers=2, shards=4, fault_plan=plan
        )
        assert hierarchy_to_dict(cpm.run()) == baselines["bitset"]
        assert not cpm.stats.degraded

    def test_permanent_kill_degrades_byte_identical(self, graph, baselines):
        """A permanently killed shard falls back to in-driver execution
        — degraded, but the output does not change."""
        plan = FaultPlan.parse("enumerate:shard=1:kill")
        cpm = LightweightParallelCPM(
            graph, kernel="bitset", workers=2, shards=4, fault_plan=plan
        )
        assert hierarchy_to_dict(cpm.run()) == baselines["bitset"]
        assert cpm.stats.degraded


class TestObsDiffShards:
    def test_shards_mismatch_warns_explicitly(self):
        base = {"settings": {"shards": 1}, "metrics": {"counters": {}}}
        fresh = {"settings": {"shards": 4}, "metrics": {"counters": {}}}
        out = diff_manifests(base, fresh)
        assert "shards mismatch" in out
        assert "not a regression" in out

    def test_matching_shards_do_not_warn(self):
        base = {"settings": {"shards": 4}, "metrics": {"counters": {}}}
        fresh = {"settings": {"shards": 4}, "metrics": {"counters": {}}}
        assert "shards mismatch" not in diff_manifests(base, fresh)


class TestCLISettings:
    @pytest.fixture(scope="class")
    def saved_dataset(self, tmp_path_factory, tiny_dataset):
        path = tmp_path_factory.mktemp("data") / "bundle"
        tiny_dataset.save(path)
        return str(path)

    def test_manifest_records_resolved_shards(self, saved_dataset, tmp_path, capsys):
        from repro.cli import main

        manifest_path = tmp_path / "manifest.json"
        code = main(
            [
                "communities",
                saved_dataset,
                "--shards",
                "2",
                "--metrics",
                str(manifest_path),
            ]
        )
        assert code == 0
        settings = json.loads(manifest_path.read_text())["settings"]
        assert settings["shards"] == 2

    def test_auto_shards_resolve_to_worker_count(self, saved_dataset, tmp_path, capsys):
        from repro.cli import main

        manifest_path = tmp_path / "manifest.json"
        code = main(
            [
                "communities",
                saved_dataset,
                "--shards",
                "auto",
                "--workers",
                "2",
                "--metrics",
                str(manifest_path),
            ]
        )
        assert code == 0
        settings = json.loads(manifest_path.read_text())["settings"]
        assert settings["shards"] == 2
