"""Operator workflow: atlas + counterfactuals.

Uses the library the way a planner would: profile the dataset with the
atlas, pick a country without an exchange, simulate opening one, and
quantify what the new IXP does to the community structure — then run
the opposite counterfactual, a big-IXP fabric outage.

Run:  python examples/what_if_planning.py
"""

from repro.analysis import AnalysisContext
from repro.compare import match_covers
from repro.core import LightweightParallelCPM
from repro.report import build_atlas
from repro.topology import GeneratorConfig, add_ixp, generate_topology, remove_ixp_fabric


def main() -> None:
    dataset = generate_topology(GeneratorConfig.tiny(), seed=7)
    context = AnalysisContext.from_dataset(dataset)
    atlas = build_atlas(context)
    print(atlas.render(top=6))

    # Pick a populated country that hosts no IXP.
    hosted = {ixp.country for ixp in dataset.ixps}
    candidate = next(
        profile.country
        for profile in atlas.countries
        if profile.country not in hosted and profile.n_ases >= 15
    )
    print(f"\ncountry without an exchange: {candidate} "
          f"({atlas.country(candidate).n_ases} ASes)")

    # Counterfactual 1: the country opens an IXP.
    before = context.hierarchy
    opened = add_ixp(dataset, name=f"{candidate}-IX", country=candidate, n_members=8, seed=2)
    after = LightweightParallelCPM(opened.graph).run()
    members = set(opened.ixps[f"{candidate}-IX"].participants)
    new_holder = next(
        (c for c in after[8] if members <= set(c.members)), None
    )
    print(f"after opening {candidate}-IX (8 members): "
          f"communities {before.total_communities} -> {after.total_communities}; "
          f"the mesh surfaces at k=8 in "
          f"{new_holder.label if new_holder else 'nothing (unexpected)'}")
    for k in (4, 6, 8):
        before_cover = [set(c.members) for c in before[k]] if k in before else []
        after_cover = [set(c.members) for c in after[k]] if k in after else []
        result = match_covers(before_cover, after_cover)
        print(f"  k={k}: {len(before_cover)} -> {len(after_cover)} communities, "
              f"{len(result.unmatched_b)} new")

    # Counterfactual 2: the biggest fabric fails.
    failed = remove_ixp_fabric(dataset, "AMS-IX")
    collapsed = LightweightParallelCPM(failed.graph).run()
    print(f"\nAMS-IX fabric outage: max k {before.max_k} -> {collapsed.max_k}, "
          f"communities {before.total_communities} -> {collapsed.total_communities}")
    print("the crown is the fabric — membership contracts alone hold no "
          "community together")


if __name__ == "__main__":
    main()
