"""Degree-preserving null model (configuration-model rewiring).

Used to show the paper's communities are *not* a degree artifact: a
double-edge-swap randomisation keeps every AS's degree exactly while
destroying the correlated clique structure.  k-clique communities at
k ≥ 4 collapse on the rewired graph even though its degree sequence —
the usual suspect for structural claims — is untouched.

``double_edge_swap`` performs the standard Markov-chain randomisation:
pick two edges (a, b), (c, d), replace with (a, d), (c, b) when neither
new edge exists nor creates a self-loop.
"""

from __future__ import annotations

import random

from .undirected import Graph

__all__ = ["double_edge_swap", "degree_preserving_null"]


def double_edge_swap(
    graph: Graph,
    *,
    n_swaps: int,
    rng: random.Random,
    max_attempts_factor: int = 20,
) -> int:
    """Rewire ``graph`` in place with up to ``n_swaps`` successful swaps.

    Returns the number of swaps performed (fewer than requested when
    the attempt budget runs out — dense or tiny graphs reject many
    proposals).
    """
    edges = [tuple(sorted(e)) for e in graph.edges()]
    if len(edges) < 2:
        return 0
    performed = 0
    attempts = 0
    budget = n_swaps * max_attempts_factor
    while performed < n_swaps and attempts < budget:
        attempts += 1
        i, j = rng.randrange(len(edges)), rng.randrange(len(edges))
        if i == j:
            continue
        a, b = edges[i]
        c, d = edges[j]
        # Direction choice doubles the reachable configuration space.
        if rng.random() < 0.5:
            c, d = d, c
        if len({a, b, c, d}) < 4:
            continue
        if graph.has_edge(a, d) or graph.has_edge(c, b):
            continue
        graph.remove_edge(a, b)
        graph.remove_edge(c, d)
        graph.add_edge(a, d)
        graph.add_edge(c, b)
        edges[i] = tuple(sorted((a, d)))
        edges[j] = tuple(sorted((c, b)))
        performed += 1
    return performed


def degree_preserving_null(
    graph: Graph,
    *,
    rng: random.Random,
    swaps_per_edge: float = 10.0,
) -> Graph:
    """A randomised copy with the exact same degree sequence.

    ``swaps_per_edge`` ~ 10 is the usual mixing heuristic for the
    double-edge-swap chain.
    """
    null = graph.copy()
    double_edge_swap(null, n_swaps=int(graph.number_of_edges * swaps_per_edge), rng=rng)
    return null
