"""Structural metrics for communities (Figures 4.3 and 4.4).

* **size** — number of ASes in the community (Figure 4.3);
* **link density** [17] — existing intra-community edges over the
  full-mesh count, in [0, 1] (Figure 4.4(a));
* **Out Degree Fraction** [20] — per node, the fraction of its degree
  directed *outside* the community (Leskovec et al.).  The paper's
  Chapter 4 wording ("the ratio between its degree within the subgraph
  and its overall degree") describes the complementary internal
  fraction, but its *interpretation* of Figure 4.4(b) — crown carriers
  with thousands of customer links score high, members of the huge
  low-k main communities score low — matches the out-degree reading of
  [20], which we therefore implement; ``node_internal_fraction``
  exposes the complement;
* **overlap / overlap fraction** — shared members between two
  communities of the same order, raw and normalised by the smaller
  community's size (Section 4 text).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from dataclasses import dataclass

from ..graph.undirected import Graph
from .communities import Community

__all__ = [
    "link_density",
    "node_odf",
    "node_internal_fraction",
    "average_odf",
    "overlap",
    "overlap_fraction",
    "CommunityMetrics",
    "community_metrics",
]


def link_density(graph: Graph, members: Iterable[Hashable]) -> float:
    """Fraction of existing to possible connections within ``members``.

    1.0 for a full mesh; defined as 0.0 for fewer than two members.
    Set/frozenset inputs are used as-is — community member sets are
    already frozensets, and rebuilding them on this hot path costs a
    copy per call for nothing.
    """
    member_set = members if isinstance(members, (set, frozenset)) else set(members)
    n = len(member_set)
    if n < 2:
        return 0.0
    return 2.0 * graph.edge_count_within(member_set) / (n * (n - 1))


def node_internal_fraction(graph: Graph, node: Hashable, members: set[Hashable]) -> float:
    """Fraction of ``node``'s degree directed inside ``members``.

    Nodes with zero total degree (isolated) are defined to score 0.0.
    """
    total = graph.degree(node)
    if total == 0:
        return 0.0
    # The node itself never counts (simple graph, no self-loops).
    return graph.degree_within(node, members) / total


def node_odf(graph: Graph, node: Hashable, members: set[Hashable]) -> float:
    """Per-node Out Degree Fraction [20]: external degree over total degree.

    1.0 means every connection leaves the community (a Tier-1 whose
    links are almost all customer links); 0.0 means all links stay
    inside.  Isolated nodes are defined to score 0.0.
    """
    total = graph.degree(node)
    if total == 0:
        return 0.0
    return 1.0 - graph.degree_within(node, members) / total


def average_odf(graph: Graph, members: Iterable[Hashable]) -> float:
    """Average per-member ODF — the y-axis of Figure 4.4(b).

    High values mean members direct most connections *outside* the
    community (crown communities: cohesive carrier meshes with huge
    customer cones); low values mean members keep their degree inside
    (the giant low-k main communities).  Set/frozenset inputs are used
    as-is (no copy); the float summation runs in *sorted member order*
    so the result is independent of set-table layout — equal member
    sets give bit-identical averages in any process.
    """
    member_set = members if isinstance(members, (set, frozenset)) else set(members)
    if not member_set:
        return 0.0
    total = sum(node_odf(graph, node, member_set) for node in sorted(member_set))
    return total / len(member_set)


def overlap(a: Community, b: Community) -> int:
    """Number of members shared by two communities."""
    return a.overlap(b)


def overlap_fraction(a: Community, b: Community) -> float:
    """Overlap normalised by the smaller community's size, in [0, 1]."""
    return a.overlap_fraction(b)


@dataclass(frozen=True)
class CommunityMetrics:
    """The per-community record behind Figures 4.3 and 4.4."""

    label: str
    k: int
    size: int
    link_density: float
    average_odf: float

    def as_row(self) -> tuple:
        """The record as a (label, k, size, density, odf) tuple."""
        return (self.label, self.k, self.size, self.link_density, self.average_odf)


def community_metrics(graph: Graph, community: Community) -> CommunityMetrics:
    """Compute the full metric record for one community."""
    members = community.members
    return CommunityMetrics(
        label=community.label,
        k=community.k,
        size=community.size,
        link_density=link_density(graph, members),
        average_odf=average_odf(graph, members),
    )
