"""Tests for the figure renderers and the paper-run driver."""

from repro.report import ascii_scatter, ascii_table, format_number


class TestFormatNumber:
    def test_ints_with_separators(self):
        assert format_number(35390) == "35,390"

    def test_floats(self):
        assert format_number(0.704) == "0.704"
        assert format_number(3.14159) == "3.14"
        assert format_number(0) == "0"
        assert format_number(12345.6) == "12,346"


class TestAsciiTable:
    def test_alignment_and_title(self):
        text = ascii_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len({len(l) for l in lines[1:]}) == 1  # aligned widths


class TestAsciiScatter:
    def test_renders_series_and_legend(self):
        text = ascii_scatter(
            {"main": [(2, 10), (3, 5)], "parallel": [(3, 3)]},
            title="Fig",
            width=30,
            height=8,
        )
        assert text.startswith("Fig")
        assert "*=main" in text and "o=parallel" in text
        assert "k: 2 .. 3" in text

    def test_log_scale_with_zero(self):
        text = ascii_scatter({"s": [(1, 0), (2, 100)]}, log_y=True, width=20, height=5)
        assert "log scale" in text

    def test_empty_series(self):
        assert "(no data)" in ascii_scatter({"s": []}, title="x")

    def test_single_point(self):
        text = ascii_scatter({"s": [(5, 5)]}, width=10, height=4)
        assert "*" in text


class TestPaperRun:
    def test_tables_have_paper_shape(self, paper_run):
        t1 = paper_run.table_2_1()
        assert "on-IXP" in t1 and "Table 2.1" in t1
        t2 = paper_run.table_2_2()
        for column in ("National", "Continental", "Worldwide", "Unknown"):
            assert column in t2

    def test_figure_4_1(self, paper_run):
        text = paper_run.figure_4_1()
        assert "Figure 4.1" in text
        assert "total communities:" in text
        assert "unique orders:" in text

    def test_figure_4_2_tree(self, paper_run):
        text = paper_run.figure_4_2(max_children=3)
        assert "Figure 4.2" in text
        assert "k2id0" in text
        assert "*" in text  # main communities marked

    def test_figures_4_3_and_4_4(self, paper_run):
        assert "Figure 4.3" in paper_run.figure_4_3()
        assert "link density" in paper_run.figure_4_4a()
        assert "average ODF" in paper_run.figure_4_4b()

    def test_overlap_summary(self, paper_run):
        text = paper_run.overlap_summary()
        assert "mean frac vs main" in text
        assert "zero-overlap exceptions:" in text

    def test_ixp_share_summary(self, paper_run):
        text = paper_run.ixp_share_summary()
        assert "full-share" in text

    def test_band_reports_mention_all_bands(self, paper_run):
        text = paper_run.band_reports()
        for band in ("CROWN", "TRUNK", "ROOT"):
            assert band in text
        assert "AMS-IX" in text

    def test_full_report_collates_everything(self, paper_run):
        text = paper_run.full_report()
        for marker in ("Table 2.1", "Table 2.2", "Figure 4.1", "Figure 4.3",
                       "Figure 4.4(a)", "Figure 4.4(b)", "CROWN", "ROOT"):
            assert marker in text

    def test_analyses_are_cached(self, paper_run):
        assert paper_run.census is paper_run.census
        assert paper_run.bands is paper_run.bands
