"""Regional root communities (Section 4.3).

Finds the small, country-local k-clique communities at the bottom of
the tree: multi-homing cliques of customers around national providers
and the communities living entirely inside small regional IXPs — then
checks their country containment, like the paper's 382-community
finding.

Run:  python examples/regional_communities.py
"""

from collections import Counter

from repro import AnalysisContext, generate_topology
from repro.analysis import GeoAnalysis, IXPShareAnalysis, derive_bands


def main() -> None:
    dataset = generate_topology(seed=42)
    context = AnalysisContext.from_dataset(dataset)
    share = IXPShareAnalysis(context)
    bands = derive_bands(share)
    geo = GeoAnalysis(context)

    print(f"root band: k <= {bands.root_max}\n")

    contained = geo.country_contained(k_max=bands.root_max, parallel_only=True)
    print(
        f"parallel root communities fully inside one country: "
        f"{len(contained)} (paper: 382)"
    )
    by_country = Counter(
        sorted(r.common_countries)[0] for r in contained if r.common_countries
    )
    print("top countries by community count:")
    for country, count in by_country.most_common(10):
        print(f"  {country}: {count}")
    print()

    # Communities that are subsets of a small IXP's participant list.
    full_share = [
        r for r in share.records
        if r.k <= bands.root_max and not r.is_main and r.has_full_share
    ]
    print(f"root parallel communities with a full-share IXP: {len(full_share)}")
    for record in full_share[:12]:
        ixp = dataset.ixps[record.full_share_ixps[0]]
        print(
            f"  {record.label} (k={record.k}, size {record.size}) ⊆ "
            f"{ixp.name} ({ixp.country})"
        )
    print()

    # A concrete regional community, interpreted.
    samples = [r for r in contained if 4 <= r.k <= 6]
    if samples:
        sample = samples[0]
        community = context.hierarchy.find(sample.label)
        country = sorted(sample.common_countries)[0]
        degrees = {a: dataset.graph.degree(a) for a in community.members}
        providers = [a for a, d in degrees.items() if d > 10]
        customers = [a for a, d in degrees.items() if d <= 10]
        print(f"example: {sample.label} — all members present in {country}")
        print(f"  likely providers (degree > 10): {sorted(providers)}")
        print(f"  likely multi-homed customers:  {sorted(customers)}")
        print(
            "  the paper's reading: 'small groups of customers and "
            "providers forming a clique because of multi-homing'"
        )


if __name__ == "__main__":
    main()
