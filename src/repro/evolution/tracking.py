"""Community tracking across snapshots.

Given a sequence of growing topology snapshots, extract the k-clique
communities of a fixed order k in each, match communities between
consecutive snapshots by Jaccard similarity, and classify the life
events of each community, following the taxonomy of Palla, Barabási &
Vicsek's community-evolution study:

* **birth** — a community with no counterpart in the previous snapshot;
* **death** — a community with no counterpart in the next one (rare in
  a strictly growing topology, but splits can starve a branch);
* **continuation** — a matched pair, annotated as *growth* /
  *contraction* / *stable* by relative size change;
* **merge** — a community absorbing the bulk of two or more previous
  communities;
* **split** — two or more communities each inheriting the bulk of one
  previous community.

Two extraction strategies produce the covers (and therefore identical
events — the strategies are interchangeable, pinned by a parity test):

* ``"incremental"`` (default) — one :class:`~repro.incremental
  .CPMSession` opened on the first snapshot and advanced by
  :meth:`~repro.incremental.EdgeDelta.between` deltas; per-snapshot
  cost scales with the change, not the graph;
* ``"replay"`` — the pre-session behaviour: an independent
  :func:`repro.run_cpm` per snapshot.

Both also emit one :class:`~repro.incremental.CPMUpdate` per
transition (``tracker.updates``), built uniformly from the covers so
the records are strategy-independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..compare.covers import jaccard, match_covers
from ..graph.undirected import Graph
from ..incremental import CPMSession, CPMUpdate, EdgeDelta, diff_covers

__all__ = [
    "EventKind",
    "CommunityEvent",
    "CommunityTimeline",
    "EvolutionTracker",
    "STRATEGIES",
]

#: The cover-extraction strategies :class:`EvolutionTracker` accepts.
STRATEGIES = ("incremental", "replay")


class EventKind(str, Enum):
    BIRTH = "birth"
    DEATH = "death"
    GROWTH = "growth"
    CONTRACTION = "contraction"
    STABLE = "stable"
    MERGE = "merge"
    SPLIT = "split"


@dataclass(frozen=True)
class CommunityEvent:
    """One life event between snapshots ``step`` and ``step + 1``."""

    kind: EventKind
    step: int
    #: Community indices in the earlier snapshot's cover (empty for births).
    before: tuple[int, ...]
    #: Community indices in the later snapshot's cover (empty for deaths).
    after: tuple[int, ...]
    jaccard: float = 0.0


@dataclass
class CommunityTimeline:
    """One community followed through consecutive snapshots."""

    timeline_id: int
    #: (step, community index within that snapshot's cover, size).
    path: list[tuple[int, int, int]] = field(default_factory=list)

    @property
    def born_at(self) -> int:
        return self.path[0][0]

    @property
    def last_seen(self) -> int:
        return self.path[-1][0]

    @property
    def final_size(self) -> int:
        return self.path[-1][2]

    def sizes(self) -> list[int]:
        """Community size at each step of the timeline."""
        return [size for _, _, size in self.path]


class EvolutionTracker:
    """Track k-clique communities of one order k over snapshots.

    ``strategy`` selects how the per-snapshot covers are produced —
    ``"incremental"`` (one session advanced by edge deltas, the
    default) or ``"replay"`` (an independent CPM run per snapshot).
    The covers, events and timelines are identical either way; only
    the cost profile differs.  ``tracker.updates`` carries one
    :class:`~repro.incremental.CPMUpdate` per snapshot transition.
    """

    def __init__(
        self,
        snapshots: list[Graph],
        *,
        k: int,
        strategy: str = "incremental",
        match_threshold: float = 0.3,
        absorb_threshold: float = 0.5,
        size_change: float = 0.25,
    ) -> None:
        if len(snapshots) < 2:
            raise ValueError("need at least two snapshots to track")
        if strategy not in STRATEGIES:
            raise ValueError(
                f"strategy must be one of {STRATEGIES}, got {strategy!r}"
            )
        self.k = k
        self.strategy = strategy
        self.match_threshold = match_threshold
        self.absorb_threshold = absorb_threshold
        self.size_change = size_change
        if strategy == "replay":
            self.covers: list[list[set]] = [
                self._extract(graph) for graph in snapshots
            ]
        else:
            self.covers = self._extract_incremental(snapshots)
        self.updates: list[CPMUpdate] = self._build_updates(snapshots)
        self.events: list[CommunityEvent] = []
        self.timelines: list[CommunityTimeline] = []
        self._track()

    def _extract(self, graph: Graph) -> list[set]:
        """One replay-strategy cover: an independent CPM run at order k."""
        from ..api import run_cpm

        try:
            result = run_cpm(graph, k_range=(self.k, self.k))
        except ValueError:  # snapshot too small to hold any k-clique
            return []
        if self.k not in result:
            return []
        return [set(c.members) for c in result[self.k]]

    def _extract_incremental(self, snapshots: list[Graph]) -> list[list[set]]:
        """All covers from one session advanced snapshot to snapshot.

        The session's hierarchy is byte-identical to a from-scratch run
        on each snapshot (the incremental package's core guarantee), so
        these covers equal the replay strategy's exactly.
        """
        session = CPMSession(snapshots[0])
        covers = [self._cover_of(session)]
        for previous, current in zip(snapshots, snapshots[1:]):
            session.apply(EdgeDelta.between(previous, current))
            covers.append(self._cover_of(session))
        return covers

    def _cover_of(self, session: CPMSession) -> list[set]:
        """The session's current order-k cover (empty when k is absent)."""
        hierarchy = session.hierarchy
        if hierarchy is None or self.k not in hierarchy:
            return []
        return [set(c.members) for c in hierarchy[self.k]]

    def _build_updates(self, snapshots: list[Graph]) -> list[CPMUpdate]:
        """One strategy-independent CPMUpdate per snapshot transition.

        Built uniformly from the covers (via :func:`~repro.incremental
        .diff_covers`) and the snapshot edge deltas, so both strategies
        report the same records.  The clique counters are zero at this
        level — the replay strategy cannot observe clique churn; use a
        :class:`~repro.incremental.CPMSession` directly when that
        telemetry matters.
        """
        updates = []
        for step in range(len(self.covers) - 1):
            delta = EdgeDelta.between(snapshots[step], snapshots[step + 1])
            changes = diff_covers(
                self.k,
                [frozenset(m) for m in self.covers[step]],
                [frozenset(m) for m in self.covers[step + 1]],
                absorb_threshold=self.absorb_threshold,
            )
            updates.append(
                CPMUpdate(
                    batch=step,
                    inserted_edges=len(delta.insertions),
                    deleted_edges=len(delta.deletions),
                    cliques_born=0,
                    cliques_retired=0,
                    affected_orders=(self.k,) if changes else (),
                    changes=changes,
                )
            )
        return updates

    # ------------------------------------------------------------------
    # Tracking
    # ------------------------------------------------------------------
    def _track(self) -> None:
        # timeline id currently carrying each community index of the
        # latest processed snapshot.
        carrier: dict[int, int] = {}
        for index, members in enumerate(self.covers[0]):
            timeline = CommunityTimeline(timeline_id=len(self.timelines))
            timeline.path.append((0, index, len(members)))
            self.timelines.append(timeline)
            carrier[index] = timeline.timeline_id

        for step in range(len(self.covers) - 1):
            before, after = self.covers[step], self.covers[step + 1]
            result = match_covers(before, after)
            matched_pairs = [
                (i, j, score) for i, j, score in result.pairs if score >= self.match_threshold
            ]
            matched_before = {i for i, _, _ in matched_pairs}
            matched_after = {j for _, j, _ in matched_pairs}
            next_carrier: dict[int, int] = {}

            for i, j, score in matched_pairs:
                size_before, size_after = len(before[i]), len(after[j])
                kind = EventKind.STABLE
                if size_after >= size_before * (1 + self.size_change):
                    kind = EventKind.GROWTH
                elif size_after <= size_before * (1 - self.size_change):
                    kind = EventKind.CONTRACTION
                self.events.append(
                    CommunityEvent(kind=kind, step=step, before=(i,), after=(j,), jaccard=score)
                )
                timeline_id = carrier[i]
                self.timelines[timeline_id].path.append((step + 1, j, size_after))
                next_carrier[j] = timeline_id

            self._detect_merges(step, before, after, matched_after)
            self._detect_splits(step, before, after, matched_before)

            for j, members in enumerate(after):
                if j in matched_after:
                    continue
                self.events.append(
                    CommunityEvent(kind=EventKind.BIRTH, step=step, before=(), after=(j,))
                )
                timeline = CommunityTimeline(timeline_id=len(self.timelines))
                timeline.path.append((step + 1, j, len(members)))
                self.timelines.append(timeline)
                next_carrier[j] = timeline.timeline_id
            for i in range(len(before)):
                if i not in matched_before:
                    self.events.append(
                        CommunityEvent(kind=EventKind.DEATH, step=step, before=(i,), after=())
                    )
            carrier = next_carrier

    def _detect_merges(self, step, before, after, matched_after) -> None:
        """A later community absorbing >= absorb_threshold of >= 2
        earlier communities is a merge."""
        for j, members in enumerate(after):
            absorbed = tuple(
                i
                for i, earlier in enumerate(before)
                if earlier and len(earlier & members) / len(earlier) >= self.absorb_threshold
            )
            if len(absorbed) >= 2:
                self.events.append(
                    CommunityEvent(
                        kind=EventKind.MERGE, step=step, before=absorbed, after=(j,)
                    )
                )

    def _detect_splits(self, step, before, after, matched_before) -> None:
        """Two or more later communities each drawing the bulk of their
        membership from one earlier community is a split."""
        for i, earlier in enumerate(before):
            heirs = tuple(
                j
                for j, members in enumerate(after)
                if members and len(members & earlier) / len(members) >= self.absorb_threshold
            )
            if len(heirs) >= 2:
                self.events.append(
                    CommunityEvent(kind=EventKind.SPLIT, step=step, before=(i,), after=heirs)
                )

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def event_counts(self) -> dict[EventKind, int]:
        """Event kind -> number of occurrences (all kinds present)."""
        counts: dict[EventKind, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return {kind: counts.get(kind, 0) for kind in EventKind}

    def longest_timeline(self) -> CommunityTimeline:
        """The timeline spanning the most snapshots (largest final size on ties)."""
        return max(self.timelines, key=lambda t: (len(t.path), t.final_size))

    def communities_at(self, step: int) -> list[set]:
        """The member sets of the cover at the given snapshot index."""
        return self.covers[step]
