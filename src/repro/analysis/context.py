"""Shared analysis context.

Every experiment in Chapter 4 consumes the same three artefacts: the
dataset bundle, the full k-clique community hierarchy, and the
community tree.  :class:`AnalysisContext` computes them once (CPM is
the expensive step) and hands them to the per-figure analyses, so a
full paper run costs one extraction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.lightweight import CPMRunStats, LightweightParallelCPM
from ..core.communities import Community, CommunityHierarchy
from ..core.tree import CommunityTree
from ..topology.dataset import ASDataset

__all__ = ["AnalysisContext"]


@dataclass
class AnalysisContext:
    """Dataset + hierarchy + tree, the inputs of every Chapter 4 analysis."""

    dataset: ASDataset
    hierarchy: CommunityHierarchy
    tree: CommunityTree
    cpm_stats: CPMRunStats | None = None

    @classmethod
    def from_dataset(
        cls,
        dataset: ASDataset,
        *,
        workers: int = 1,
        min_k: int = 2,
        max_k: int | None = None,
    ) -> "AnalysisContext":
        """Run LP-CPM on the dataset and build the community tree."""
        cpm = LightweightParallelCPM(dataset.graph, workers=workers)
        hierarchy = cpm.run(min_k=min_k, max_k=max_k)
        return cls(
            dataset=dataset,
            hierarchy=hierarchy,
            tree=CommunityTree(hierarchy),
            cpm_stats=cpm.stats,
        )

    def is_main(self, community: Community) -> bool:
        """True iff ``community`` lies on the main chain of the tree."""
        return self.tree.is_main(community)

    @property
    def graph(self):
        return self.dataset.graph
