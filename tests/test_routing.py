"""Unit tests for relationships, Gao-Rexford routing, and routing analyses."""

import pytest

from repro.graph import Graph
from repro.routing import (
    BGPSimulator,
    Relationship,
    RelationshipMap,
    RouteKind,
    infer_relationships,
    measure_locality,
    measure_path_inflation,
)


def _chain_topology():
    """c1 - p1 - t - p2 - c2 with a peering edge p1-p2.

    The classic valley/peering scenario: c1→c2 legally goes
    c1 ↑ p1 ↔ p2 ↓ c2, while p1 may not resell the p2 peering to t.
    """
    g = Graph([("c1", "p1"), ("p1", "t"), ("t", "p2"), ("p2", "c2"), ("p1", "p2")])
    rel = RelationshipMap()
    rel.add_customer_provider("c1", "p1")
    rel.add_customer_provider("p1", "t")
    rel.add_customer_provider("p2", "t")
    rel.add_customer_provider("c2", "p2")
    rel.add_peering("p1", "p2")
    return g, rel


class TestRelationshipMap:
    def test_orientations(self):
        rel = RelationshipMap()
        rel.add_customer_provider("c", "p")
        assert rel.kind("c", "p") is Relationship.PROVIDER
        assert rel.kind("p", "c") is Relationship.CUSTOMER
        rel.add_peering("a", "b")
        assert rel.kind("a", "b") is Relationship.PEER
        assert len(rel) == 2

    def test_missing_annotation(self):
        with pytest.raises(KeyError):
            RelationshipMap().kind(1, 2)

    def test_neighbor_queries(self):
        g, rel = _chain_topology()
        assert rel.providers_of("c1", g) == ["p1"]
        assert set(rel.customers_of("t", g)) == {"p1", "p2"}
        assert rel.peers_of("p1", g) == ["p2"]


class TestValleyFree:
    def test_uphill_peer_downhill_is_valid(self):
        _, rel = _chain_topology()
        assert rel.is_valley_free(["c1", "p1", "p2", "c2"])

    def test_valley_rejected(self):
        _, rel = _chain_topology()
        # Down to a customer then back up: the canonical valley.
        assert not rel.is_valley_free(["p1", "c1", "p1"]) or True  # repeated node: not a path
        rel2 = RelationshipMap()
        rel2.add_customer_provider("s", "p1")
        rel2.add_customer_provider("s", "p2")
        assert not rel2.is_valley_free(["p1", "s", "p2"])

    def test_two_peer_hops_rejected(self):
        rel = RelationshipMap()
        rel.add_peering("a", "b")
        rel.add_peering("b", "c")
        assert not rel.is_valley_free(["a", "b", "c"])

    def test_up_after_peer_rejected(self):
        _, rel = _chain_topology()
        assert not rel.is_valley_free(["p1", "p2", "t"])

    def test_pure_uphill_and_downhill(self):
        _, rel = _chain_topology()
        assert rel.is_valley_free(["c1", "p1", "t"])
        assert rel.is_valley_free(["t", "p2", "c2"])


class TestBGPSimulator:
    def test_prefers_customer_routes(self):
        g, rel = _chain_topology()
        sim = BGPSimulator(g, rel)
        routes = sim.routes_to("c2")
        # t reaches c2 through its customer p2.
        assert routes["t"].kind is RouteKind.CUSTOMER
        assert routes["t"].path == ("t", "p2", "c2")

    def test_peer_route_over_provider_route(self):
        g, rel = _chain_topology()
        sim = BGPSimulator(g, rel)
        routes = sim.routes_to("c2")
        # p1 could go up through t (provider) but the peering with p2
        # is preferred even at equal length — and here it's also valid.
        assert routes["p1"].kind is RouteKind.PEER
        assert routes["p1"].path == ("p1", "p2", "c2")

    def test_full_paths_are_valley_free(self):
        g, rel = _chain_topology()
        sim = BGPSimulator(g, rel)
        for destination in g.nodes():
            for route in sim.routes_to(destination).values():
                assert rel.is_valley_free(route.path)

    def test_peer_routes_do_not_propagate(self):
        """A route learned from a peer is only exported to customers."""
        g = Graph([("a", "b"), ("b", "c"), ("d", "c")])
        rel = RelationshipMap()
        rel.add_peering("a", "b")
        rel.add_peering("b", "c")
        rel.add_customer_provider("d", "c")
        sim = BGPSimulator(g, rel)
        routes = sim.routes_to("a")
        assert "b" in routes          # direct peer
        assert "c" not in routes      # would need two peer hops
        assert "d" not in routes      # downstream of the missing route

    def test_unknown_destination(self):
        g, rel = _chain_topology()
        with pytest.raises(KeyError):
            BGPSimulator(g, rel).routes_to("nope")

    def test_path_helper(self):
        g, rel = _chain_topology()
        sim = BGPSimulator(g, rel)
        assert sim.path("c1", "c2") == ("c1", "p1", "p2", "c2")
        g.add_node("island")
        rel_g = rel
        assert BGPSimulator(g, rel_g).path("island", "c2") is None


class TestInferredRelationships:
    def test_all_edges_annotated(self, tiny_dataset):
        rel = infer_relationships(tiny_dataset)
        assert len(rel) == tiny_dataset.graph.number_of_edges

    def test_stub_buys_from_provider(self, tiny_dataset):
        rel = infer_relationships(tiny_dataset)
        graph = tiny_dataset.graph
        stubs = [a for a, r in tiny_dataset.as_roles.items() if r == "stub"]
        stub = stubs[0]
        for neighbor in graph.neighbors(stub):
            assert rel.kind(stub, neighbor) is Relationship.PROVIDER

    def test_tier1_mesh_is_peering(self, tiny_dataset):
        rel = infer_relationships(tiny_dataset)
        tier1 = [a for a, r in tiny_dataset.as_roles.items() if r == "tier1"]
        for i, u in enumerate(tier1):
            for v in tier1[i + 1 :]:
                if tiny_dataset.graph.has_edge(u, v):
                    assert rel.kind(u, v) is Relationship.PEER

    def test_routing_reaches_nearly_everyone(self, tiny_dataset):
        rel = infer_relationships(tiny_dataset)
        inflation = measure_path_inflation(
            tiny_dataset.graph, rel, n_destinations=12, sources_per_destination=30, seed=3
        )
        assert inflation.valley_violations == 0
        assert inflation.unrouted_pairs < 0.05 * (inflation.n_pairs + inflation.unrouted_pairs)
        # Valley-free never beats shortest, so inflation is >= 0.
        assert inflation.mean_inflation >= 0

    def test_intra_country_traffic_is_local(self, tiny_dataset):
        rel = infer_relationships(tiny_dataset)
        localities = []
        for country in sorted(tiny_dataset.geography.all_countries()):
            providers = [
                a
                for a in tiny_dataset.geography.ases_in_country(country)
                if tiny_dataset.as_roles.get(a) == "provider"
            ]
            if len(providers) >= 3:
                localities.append(
                    measure_locality(tiny_dataset, rel, country, max_pairs=20, seed=2)
                )
        assert localities
        assert sum(localities) / len(localities) > 0.7

    def test_locality_of_absent_country(self, tiny_dataset):
        """A country with fewer than two registered ASes scores 0."""
        rel = infer_relationships(tiny_dataset)
        empty = [
            c
            for c in ("FJ", "LU", "AO", "PA")
            if len(tiny_dataset.geography.ases_in_country(c)) < 2
        ]
        assert empty, "expected at least one unused country code"
        assert measure_locality(tiny_dataset, rel, empty[0], max_pairs=5) == 0.0
