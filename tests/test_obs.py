"""Tests for the observability subsystem (tracing, metrics, manifests).

Covers the contract the rest of the pipeline relies on: the no-op
tracer really is free, spans nest, manifests survive a JSON round
trip, the instrumented LP-CPM run is oblivious to worker count (same
hierarchy, complete trace either way), and the percolation prefilter
drops exactly the pairs that cannot merge anything.

Telemetry v2 contracts live here too: failed runs still flush complete
traces (dangling spans close), worker captures graft into the driver
trace with pid/worker attribution, the Perfetto export round-trips
through its own schema validator, manifest diffs print every shared
scalar and warn on incomparable settings, and the resource monitor
samples a consistent series.
"""

import json
import os
import time

import pytest

from repro.cli import main
from repro.core.lightweight import LightweightParallelCPM, _percolate_orders
from repro.obs import (
    NULL_TRACER,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullTracer,
    ResourceMonitor,
    RunManifest,
    Tracer,
    capture,
    current_metrics,
    diff_manifests,
    graph_fingerprint,
    load_trace,
    render_tree,
    to_perfetto,
    validate_trace_events,
    worker_span,
    write_perfetto,
)
from repro.obs.inspect import manifest_scalars


@pytest.fixture(scope="module")
def saved_dataset(tmp_path_factory, tiny_dataset):
    path = tmp_path_factory.mktemp("obs-data") / "bundle"
    tiny_dataset.save(path)
    return str(path)


def _hierarchy_signature(hierarchy):
    return {
        k: sorted(sorted(c.members) for c in cover)
        for k, cover in hierarchy.items()
    }


class TestNullTracer:
    def test_span_is_singleton_noop(self):
        a = NULL_TRACER.span("anything", attr=1)
        b = NULL_TRACER.span("else")
        assert a is b
        with a as span:
            span.set("x", 1)
            span.add("y")
        assert NULL_TRACER.records == []
        assert not NULL_TRACER.enabled

    def test_fresh_instance_also_noop(self):
        tracer = NullTracer()
        with tracer.span("phase"):
            pass
        assert tracer.records == []

    def test_no_measurable_overhead(self):
        """10⁵ no-op spans must cost ~nothing (well under a second)."""
        n = 100_000
        start = time.perf_counter()
        for _ in range(n):
            with NULL_TRACER.span("hot"):
                pass
        elapsed = time.perf_counter() - start
        # A real tracer does ~1-2 µs of bookkeeping per span; the no-op
        # path is an order of magnitude cheaper.  The bound is generous
        # so a loaded CI machine cannot flake it.
        assert elapsed < 2.0


class TestTracer:
    def test_spans_nest(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner.a"):
                pass
            with tracer.span("inner.b") as b:
                b.add("count", 3)
            outer.set("phases", 2)
        records = {r.name: r for r in tracer.records}
        assert set(records) == {"outer", "inner.a", "inner.b"}
        outer_rec = records["outer"]
        assert outer_rec.parent_id is None
        assert outer_rec.depth == 0
        for name in ("inner.a", "inner.b"):
            assert records[name].parent_id == outer_rec.span_id
            assert records[name].depth == 1
        # Children close before the parent, and the parent's wall time
        # covers both children.
        assert tracer.records[-1].name == "outer"
        child_wall = records["inner.a"].wall_seconds + records["inner.b"].wall_seconds
        assert outer_rec.wall_seconds >= child_wall
        assert outer_rec.attrs["phases"] == 2
        assert records["inner.b"].attrs["count"] == 3

    def test_memory_peaks_fold_into_parent(self):
        tracer = Tracer(memory=True)
        with tracer.span("parent"):
            with tracer.span("child"):
                blob = [0] * 200_000  # ~1.6 MB of list payload
                del blob
        tracer.close()
        records = {r.name: r for r in tracer.records}
        assert records["child"].peak_alloc_bytes > 1_000_000
        # The child's peak happened while the parent was open too.
        assert records["parent"].peak_alloc_bytes >= records["child"].peak_alloc_bytes

    def test_write_jsonl(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a", k=5):
            pass
        out = tracer.write_jsonl(tmp_path / "trace.jsonl")
        lines = out.read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["name"] == "a"
        assert record["attrs"] == {"k": 5}
        assert record["wall_seconds"] >= 0

    def test_find(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        with tracer.span("x"):
            pass
        assert len(tracer.find("x")) == 2
        assert tracer.find("missing") == []


class TestMetrics:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.inc("c", 2)
        registry.inc("c")
        registry.set_gauge("g", 7.5)
        registry.observe("h", 1.0)
        registry.observe("h", 3.0)
        payload = registry.to_dict()
        assert payload["counters"]["c"] == 3
        assert payload["gauges"]["g"] == 7.5
        hist = payload["histograms"]["h"]
        assert hist["count"] == 2
        assert hist["min"] == 1.0
        assert hist["max"] == 3.0

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("c", 1)
        b.inc("c", 2)
        a.set_gauge("g", 1.0)
        b.set_gauge("g", 9.0)
        a.observe("h", 5.0)
        b.observe("h", 1.0)
        a.merge(b)
        merged = a.to_dict()
        assert merged["counters"]["c"] == 3
        assert merged["gauges"]["g"] == 9.0
        assert merged["histograms"]["h"]["count"] == 2
        assert merged["histograms"]["h"]["min"] == 1.0

    def test_repr_smoke(self):
        assert "c" in repr(Counter("c"))
        assert "g" in repr(Gauge("g"))
        assert "h" in repr(Histogram("h"))

    def test_write_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.inc("done")
        out = registry.write_json(tmp_path / "metrics.json")
        assert json.loads(out.read_text())["counters"]["done"] == 1


class TestRunManifest:
    def test_round_trip(self, tmp_path, ring_graph):
        tracer = Tracer()
        with tracer.span("cpm.run"):
            with tracer.span("cpm.enumerate"):
                pass
        registry = MetricsRegistry()
        registry.inc("cliques.enumerated", 4)
        manifest = RunManifest.collect(
            label="test",
            graph=ring_graph,
            config={"workers": 2, "max_k": 6},
            tracer=tracer,
            metrics=registry,
        )
        path = manifest.save(tmp_path / "manifest.json")
        loaded = RunManifest.load(path)
        assert loaded.to_dict() == manifest.to_dict()
        assert loaded.label == "test"
        assert loaded.config["workers"] == 2
        assert loaded.fingerprint == graph_fingerprint(ring_graph)
        assert loaded.metrics["counters"]["cliques.enumerated"] == 4
        assert loaded.span("cpm.enumerate")["name"] == "cpm.enumerate"
        names = [name for name, _, _, _ in loaded.phase_table()]
        assert names == ["cpm.enumerate"]

    def test_fingerprint_is_order_independent(self, ring_graph):
        fp = graph_fingerprint(ring_graph)
        assert fp["nodes"] == 20
        assert fp["edges"] == 44
        again = graph_fingerprint(ring_graph)
        assert fp == again


class TestInstrumentedRun:
    EXPECTED_SPANS = {
        "cpm.run",
        "cpm.enumerate",
        "cpm.overlap",
        "cpm.overlap.index",
        "cpm.percolate",
        "cpm.hierarchy",
        "hierarchy.build",
    }

    def _run(self, graph, workers, kernel="bitset"):
        tracer = Tracer()
        metrics = MetricsRegistry()
        cpm = LightweightParallelCPM(
            graph, workers=workers, kernel=kernel, tracer=tracer, metrics=metrics
        )
        hierarchy = cpm.run(max_k=6)
        tracer.close()
        return hierarchy, tracer, metrics

    @pytest.mark.parametrize("kernel", ["bitset", "set"])
    def test_worker_count_is_invisible(self, ring_graph, kernel):
        h1, t1, m1 = self._run(ring_graph, 1, kernel)
        h2, t2, m2 = self._run(ring_graph, 2, kernel)
        assert _hierarchy_signature(h1) == _hierarchy_signature(h2)
        assert h1.parent_labels == h2.parent_labels
        for tracer in (t1, t2):
            assert self.EXPECTED_SPANS <= {r.name for r in tracer.records}
        for metrics in (m1, m2):
            counters = metrics.to_dict()["counters"]
            # 4 pentagons + 4 connecting-edge cliques.
            assert counters["cliques.enumerated"] == 8
            if kernel == "set":
                # Every clique pair sharing a node is counted.
                assert counters["overlap.pairs"] == 12
            else:
                # The pentagons share no nodes with each other, so all 12
                # co-occurring pairs involve a 2-clique connector — excluded
                # from truncated counting; order-2 connectivity is carried
                # by the chain pairs instead (docs/performance.md).
                assert counters["overlap.pairs"] == 0
                assert counters["overlap.chain_pairs"] == 8
            assert counters["hierarchy.communities"] > 0

    def test_kernels_emit_identical_hierarchies(self, ring_graph):
        hb, _, _ = self._run(ring_graph, 1, "bitset")
        hs, _, _ = self._run(ring_graph, 1, "set")
        assert _hierarchy_signature(hb) == _hierarchy_signature(hs)
        assert hb.parent_labels == hs.parent_labels

    def test_run_span_records_kernel(self, ring_graph):
        for kernel in ("bitset", "set"):
            _, tracer, _ = self._run(ring_graph, 1, kernel)
            run_record = next(r for r in tracer.records if r.name == "cpm.run")
            assert run_record.attrs["kernel"] == kernel

    def test_default_run_is_unobserved(self, ring_graph):
        cpm = LightweightParallelCPM(ring_graph)
        assert cpm.tracer is NULL_TRACER
        hierarchy = cpm.run(max_k=6)
        assert len(hierarchy[5]) == 4


class TestPercolatePrefilter:
    def test_matches_unfiltered_reference(self):
        # 6 cliques, overlaps spanning 1..4 so several thresholds bite.
        sizes = [6, 6, 5, 5, 4, 4]
        pairs = [
            (0, 1, 4),
            (0, 2, 3),
            (1, 2, 2),
            (2, 3, 2),
            (3, 4, 1),
            (4, 5, 1),
        ]

        def reference(order):
            # Direct per-order union-find over all pairs, no prefilter.
            parent = list(range(len(sizes)))

            def find(x):
                while parent[x] != x:
                    parent[x] = parent[parent[x]]
                    x = parent[x]
                return x

            members = [i for i, s in enumerate(sizes) if s >= order]
            alive = set(members)
            for i, j, ov in pairs:
                if ov >= order - 1 and i in alive and j in alive:
                    parent[find(i)] = find(j)
            groups = {}
            for i in members:
                groups.setdefault(find(i), []).append(i)
            return sorted(sorted(g) for g in groups.values())

        result, stats = _percolate_orders([3, 4, 5], sizes, pairs)
        for order in (3, 4, 5):
            assert sorted(sorted(g) for g in result[order]) == reference(order)
        # min(orders) - 1 == 2, so the two overlap-1 pairs are dropped.
        assert stats["skipped_pairs"] == 2
        assert stats["pairs_in"] == len(pairs)

    def test_low_order_batch_skips_nothing(self):
        sizes = [3, 3]
        pairs = [(0, 1, 1)]
        result, stats = _percolate_orders([2], sizes, pairs)
        assert stats["skipped_pairs"] == 0
        assert result[2] == [[0, 1]]


class TestCLIObservability:
    def test_trace_and_metrics_flags(self, tmp_path, saved_dataset, capsys):
        trace = tmp_path / "trace.jsonl"
        manifest_path = tmp_path / "manifest.json"
        code = main(
            [
                "communities",
                saved_dataset,
                "--max-k",
                "5",
                "--trace",
                str(trace),
                "--metrics",
                str(manifest_path),
            ]
        )
        capsys.readouterr()
        assert code == 0
        span_names = {json.loads(line)["name"] for line in trace.read_text().splitlines()}
        assert "cpm.run" in span_names
        assert "cpm.enumerate" in span_names
        manifest = RunManifest.load(manifest_path)
        assert manifest.label == "cli.communities"
        assert manifest.fingerprint is not None
        assert manifest.metrics["counters"]["cliques.enumerated"] > 0
        phases = manifest.phase_table()
        assert phases, "expected depth-1 phase spans in the manifest"

    def test_metrics_flag_alone(self, tmp_path, saved_dataset, capsys):
        manifest_path = tmp_path / "manifest.json"
        assert main(["tree", saved_dataset, "--metrics", str(manifest_path)]) == 0
        capsys.readouterr()
        manifest = RunManifest.load(manifest_path)
        assert manifest.metrics["counters"]["tree.nodes"] > 0


class TestTracerLifecycle:
    def test_error_attr_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert tracer.records[0].attrs["error"] == "RuntimeError"

    def test_context_manager_closes_dangling_spans(self):
        with Tracer() as tracer:
            tracer.span("left.open", k=4).__enter__()  # never exited
        assert [r.name for r in tracer.records] == ["left.open"]
        record = tracer.records[0]
        assert record.attrs["dangling"] is True
        assert record.attrs["k"] == 4
        assert record.wall_seconds >= 0.0

    def test_dangling_spans_close_innermost_first(self):
        tracer = Tracer()
        tracer.span("outer").__enter__()
        tracer.span("inner").__enter__()
        tracer.close()
        assert [r.name for r in tracer.records] == ["inner", "outer"]
        records = {r.name: r for r in tracer.records}
        assert records["inner"].parent_id == records["outer"].span_id

    def test_close_is_idempotent(self):
        tracer = Tracer()
        tracer.span("open").__enter__()
        tracer.close()
        tracer.close()
        assert len(tracer.records) == 1

    def test_closed_trace_is_flushable(self, tmp_path):
        tracer = Tracer()
        tracer.span("phase").__enter__()
        tracer.close()
        out = tracer.write_jsonl(tmp_path / "crash.jsonl")
        record = json.loads(out.read_text().splitlines()[0])
        assert record["attrs"]["dangling"] is True


class TestAbsorb:
    def _worker_spans(self):
        worker = Tracer()
        with worker.span("worker.task", batch=0):
            with worker.span("worker.percolate.orders", orders=3):
                pass
        return worker.to_dicts()

    def test_grafts_under_open_span(self):
        driver = Tracer()
        with driver.span("runner.supervise"):
            driver.absorb(self._worker_spans(), pid=4242, worker_id=0)
        driver.close()
        records = {r.name: r for r in driver.records}
        supervise = records["runner.supervise"]
        task = records["worker.task"]
        child = records["worker.percolate.orders"]
        # Re-parented: worker roots hang off the open driver span, and
        # the worker-internal parent link survives re-identification.
        assert task.parent_id == supervise.span_id
        assert child.parent_id == task.span_id
        assert task.depth == 1 and child.depth == 2
        # Attribution is stamped on every grafted record.
        for record in (task, child):
            assert record.attrs["pid"] == 4242
            assert record.attrs["worker_id"] == 0
        assert child.attrs["orders"] == 3
        # Ids stay unique across native and absorbed spans.
        ids = [r.span_id for r in driver.records]
        assert len(ids) == len(set(ids))

    def test_absorb_without_open_span_makes_roots(self):
        driver = Tracer()
        driver.absorb(self._worker_spans(), pid=7)
        records = {r.name: r for r in driver.records}
        assert records["worker.task"].parent_id is None
        assert records["worker.percolate.orders"].parent_id == records["worker.task"].span_id

    def test_absorb_two_batches_keeps_ids_distinct(self):
        driver = Tracer()
        with driver.span("runner.supervise"):
            driver.absorb(self._worker_spans(), pid=1001, worker_id=0)
            driver.absorb(self._worker_spans(), pid=1002, worker_id=1)
        driver.close()
        ids = [r.span_id for r in driver.records]
        assert len(ids) == len(set(ids))
        tasks = driver.find("worker.task")
        assert {r.attrs["pid"] for r in tasks} == {1001, 1002}

    def test_null_tracer_absorb_is_noop(self):
        NULL_TRACER.absorb(self._worker_spans(), pid=1)
        assert NULL_TRACER.records == []


class TestWorkerTelemetryContext:
    def test_unobserved_helpers_are_noop(self):
        assert current_metrics() is None
        span = worker_span("worker.anything", n=1)
        assert span is NULL_TRACER.span("other")
        with span:
            span.set("ignored", 1)

    def test_capture_activates_and_exports(self):
        with capture("percolate", 3, 1) as ctx:
            registry = current_metrics()
            assert registry is ctx.metrics
            with worker_span("worker.inner", n=1):
                registry.inc("worker.test.calls")
        assert current_metrics() is None
        payload = ctx.export()
        assert payload["pid"] == os.getpid()
        names = {s["name"] for s in payload["spans"]}
        assert names == {"worker.task", "worker.inner"}
        task = next(s for s in payload["spans"] if s["name"] == "worker.task")
        assert task["attrs"] == {"phase": "percolate", "batch": 3, "attempt": 1}
        assert payload["metrics"]["counters"]["worker.test.calls"] == 1

    def test_capture_deactivates_on_error(self):
        with pytest.raises(RuntimeError):
            with capture("overlap", 0, 0):
                raise RuntimeError("boom")
        assert current_metrics() is None


class TestWorkerAttribution:
    @pytest.mark.parametrize("kernel", ["bitset", "set"])
    def test_parallel_run_ships_worker_spans(self, ring_graph, kernel):
        tracer = Tracer()
        metrics = MetricsRegistry()
        cpm = LightweightParallelCPM(
            ring_graph, workers=2, kernel=kernel, tracer=tracer, metrics=metrics
        )
        cpm.run(max_k=6)
        tracer.close()
        by_id = {r.span_id: r for r in tracer.records}
        tasks = tracer.find("worker.task")
        assert tasks, "expected worker.task spans grafted from the pool"
        for record in tasks:
            assert record.attrs["pid"] != os.getpid()
            assert record.attrs["worker_id"] >= 0
            assert by_id[record.parent_id].name == "runner.supervise"
        # Worker-internal spans parent to their task span, never float.
        for record in tracer.records:
            if record.name.startswith("worker.") and record.name != "worker.task":
                assert by_id[record.parent_id].name == "worker.task"
        # Percolation always dispatches through the pool here; the
        # bitset kernel's truncated overlap index can collapse to one
        # shard on a graph this small (serial path), so the overlap
        # worker span is only guaranteed for the set kernel.
        names = {r.name for r in tracer.records}
        assert names & {"worker.percolate.orders", "worker.percolate.packed"}
        if kernel == "set":
            assert "worker.overlap.count" in names
        # Worker counters merged into the driver registry under the
        # worker.* namespace (distinct from the stats-dict aggregates).
        counters = metrics.to_dict()["counters"]
        assert counters.get("worker.percolate.orders_done", 0) > 0

    def test_serial_run_has_no_worker_spans(self, ring_graph):
        tracer = Tracer()
        cpm = LightweightParallelCPM(ring_graph, workers=1, tracer=tracer)
        cpm.run(max_k=6)
        tracer.close()
        assert tracer.find("worker.task") == []


class TestResourceMonitor:
    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError, match="interval"):
            ResourceMonitor(interval=0)
        with pytest.raises(ValueError, match="interval"):
            ResourceMonitor(interval=-1.0)

    def test_samples_and_series(self):
        with ResourceMonitor(interval=0.01) as monitor:
            time.sleep(0.06)
        series = monitor.series()
        assert series["interval"] == 0.01
        samples = series["samples"]
        assert len(samples) >= 2  # one leading + one trailing at minimum
        for sample in samples:
            assert set(sample) == {"wall", "rss_kib", "max_rss_kib", "cpu_seconds"}
        walls = [s["wall"] for s in samples]
        assert walls == sorted(walls)
        # Linux always reports a positive high-water RSS.
        assert samples[-1]["max_rss_kib"] > 0

    def test_stop_is_idempotent(self):
        monitor = ResourceMonitor(interval=0.01).start()
        monitor.stop()
        count = len(monitor.samples)
        monitor.stop()
        assert len(monitor.samples) == count


class TestManifestV2:
    def test_settings_and_resources_round_trip(self, tmp_path):
        monitor = ResourceMonitor(interval=0.01).start()
        monitor.stop()
        manifest = RunManifest.collect(
            label="v2",
            settings={"kernel": "bitset", "workers": 4},
            resources=monitor.series(),
        )
        loaded = RunManifest.load(manifest.save(tmp_path / "m.json"))
        assert loaded.schema_version == 2
        assert loaded.settings == {"kernel": "bitset", "workers": 4}
        assert loaded.resources["interval"] == 0.01
        assert loaded.resources["samples"]
        assert loaded.to_dict() == manifest.to_dict()

    def test_v1_document_loads_with_empty_blocks(self):
        loaded = RunManifest.from_dict({"schema_version": 1, "label": "old"})
        assert loaded.settings == {}
        assert loaded.resources == {}
        assert loaded.schema_version == 1


class TestPerfettoExport:
    def _spans(self):
        driver = Tracer()
        with driver.span("cpm.run", kernel="bitset"):
            with driver.span("runner.supervise", phase="percolate"):
                worker = Tracer()
                with worker.span("worker.task", phase="percolate", batch=0, attempt=0):
                    pass
                driver.absorb(worker.to_dicts(), pid=4242, worker_id=0)
        driver.close()
        return driver.to_dicts()

    def test_round_trip_validates(self, tmp_path):
        spans = self._spans()
        resources = {
            "interval": 0.01,
            "samples": [
                {
                    "wall": spans[-1]["start_wall"],
                    "rss_kib": 100,
                    "max_rss_kib": 200,
                    "cpu_seconds": 0.5,
                }
            ],
        }
        out = write_perfetto(
            spans, tmp_path / "t.perfetto.json", resources=resources, label="t"
        )
        # The written file must survive a JSON round trip *and* the
        # trace-event schema check — what ui.perfetto.dev will parse.
        document = json.loads(out.read_text())
        validate_trace_events(document)
        events = document["traceEvents"]
        assert {e["ph"] for e in events} == {"X", "C", "M"}
        track_names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert "t driver" in track_names
        assert "t worker 4242 (w0)" in track_names
        spans_x = [e for e in events if e["ph"] == "X"]
        # Timestamps rebase to the earliest span: the trace starts at 0.
        assert min(e["ts"] for e in spans_x) == 0.0
        worker_events = [e for e in spans_x if e["pid"] == 4242]
        assert [e["name"] for e in worker_events] == ["worker.task"]
        assert worker_events[0]["args"]["worker_id"] == 0
        counters = {e["name"] for e in events if e["ph"] == "C"}
        assert counters == {"rss_kib", "max_rss_kib", "cpu_seconds"}

    def test_driver_spans_stay_on_driver_track(self):
        document = to_perfetto(self._spans())
        run = next(
            e for e in document["traceEvents"]
            if e["ph"] == "X" and e["name"] == "cpm.run"
        )
        assert run["pid"] == 1
        assert run["args"]["kernel"] == "bitset"

    def test_validator_rejects_malformed_documents(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_trace_events({})
        with pytest.raises(ValueError, match="object"):
            validate_trace_events([])
        with pytest.raises(ValueError, match="unknown phase"):
            validate_trace_events(
                {"traceEvents": [{"ph": "Q", "name": "x", "pid": 1, "tid": 0}]}
            )
        with pytest.raises(ValueError, match="name"):
            validate_trace_events(
                {"traceEvents": [{"ph": "X", "name": "", "pid": 1, "tid": 0,
                                  "ts": 0, "dur": 0}]}
            )
        with pytest.raises(ValueError, match="integer pid"):
            validate_trace_events(
                {"traceEvents": [{"ph": "M", "name": "n", "pid": "one", "tid": 0}]}
            )
        with pytest.raises(ValueError, match="non-negative numeric ts"):
            validate_trace_events(
                {"traceEvents": [{"ph": "X", "name": "x", "pid": 1, "tid": 0,
                                  "ts": -1.0, "dur": 0}]}
            )
        with pytest.raises(ValueError, match="dur"):
            validate_trace_events(
                {"traceEvents": [{"ph": "X", "name": "x", "pid": 1, "tid": 0,
                                  "ts": 0}]}
            )


class TestInspect:
    def test_load_trace_jsonl(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        path = tracer.write_jsonl(tmp_path / "t.jsonl")
        spans, document = load_trace(path)
        assert [s["name"] for s in spans] == ["a"]
        assert document is None

    def test_load_trace_manifest(self, tmp_path):
        tracer = Tracer()
        with tracer.span("cpm.run"):
            pass
        manifest = RunManifest.collect(label="m", tracer=tracer)
        path = manifest.save(tmp_path / "m.json")
        spans, document = load_trace(path)
        assert [s["name"] for s in spans] == ["cpm.run"]
        assert document["schema_version"] == 2

    def test_render_tree_structure(self):
        tracer = Tracer()
        with tracer.span("cpm.run"):
            with tracer.span("cpm.enumerate"):
                pass
            with pytest.raises(ValueError):
                with tracer.span("cpm.overlap"):
                    raise ValueError("boom")
        tracer.close()
        lines = render_tree(tracer.to_dicts(), hot_count=1).splitlines()
        assert lines[0].startswith("cpm.run")  # roots carry no connector
        assert lines[1].startswith("|- cpm.enumerate")
        assert lines[2].startswith("`- cpm.overlap [error=ValueError]")
        for line in lines:
            assert "total=" in line and "self=" in line
        assert sum("<== hot" in line for line in lines) == 1

    def test_render_tree_orphan_becomes_root(self):
        spans = [
            {"name": "orphan", "span_id": 9, "parent_id": 12345,
             "start_wall": 0.0, "wall_seconds": 0.5},
        ]
        assert render_tree(spans).startswith("orphan")

    def test_render_tree_empty(self):
        assert render_tree([]) == "(empty trace)"

    def test_manifest_scalars_namespacing(self):
        manifest = {
            "spans": [
                {"name": "cpm.run", "wall_seconds": 2.0},
                {"name": "cpm.run", "wall_seconds": 9.0},  # dup: first wins
            ],
            "config": {"workers": 2, "kernel": "bitset", "flag": True},
            "metrics": {
                "counters": {"cliques.enumerated": 8},
                "gauges": {"runner.degraded": 0.0},
            },
        }
        assert manifest_scalars(manifest) == {
            "span:cpm.run.wall": 2.0,
            "config:workers": 2.0,
            "counter:cliques.enumerated": 8.0,
            "gauge:runner.degraded": 0.0,
        }

    def test_diff_prints_every_shared_scalar_and_warns(self):
        base = {
            "schema_version": 2,
            "settings": {"kernel": "bitset"},
            "spans": [{"name": "cpm.run", "wall_seconds": 1.0}],
            "config": {"workers": 2},
            "metrics": {"counters": {"c": 10}},
        }
        fresh = {
            "schema_version": 3,
            "settings": {"kernel": "set"},
            "spans": [{"name": "cpm.run", "wall_seconds": 1.5}],
            "config": {"workers": 2},
            "metrics": {"counters": {"c": 5, "d": 1}},
        }
        text = diff_manifests(base, fresh, names=("base", "fresh"))
        assert "WARNING: schema_version mismatch" in text
        # Kernel gets its own message: the timing deltas measure the
        # kernel swap itself, not a regression.
        assert "WARNING: kernel mismatch" in text
        assert "not a regression" in text
        for scalar in ("span:cpm.run.wall", "config:workers", "counter:c"):
            assert scalar in text
        assert "+50.0%" in text  # the span regressed by half
        assert "only in fresh: counter:d" in text

    def test_diff_identical_manifests_has_no_warnings(self):
        doc = {
            "schema_version": 2,
            "settings": {"kernel": "bitset"},
            "spans": [{"name": "cpm.run", "wall_seconds": 1.0}],
        }
        text = diff_manifests(doc, doc)
        assert "WARNING" not in text
        assert "span:cpm.run.wall" in text


class TestObsCLI:
    @pytest.fixture()
    def artifacts(self, tmp_path, saved_dataset, capsys):
        """One instrumented 2-worker CLI run's trace + manifest."""
        trace = tmp_path / "trace.jsonl"
        manifest = tmp_path / "manifest.json"
        code = main(
            [
                "communities", saved_dataset, "--max-k", "5", "--workers", "2",
                "--trace", str(trace), "--metrics", str(manifest),
                "--resource-interval", "0.01",
            ]
        )
        capsys.readouterr()
        assert code == 0
        return trace, manifest

    def test_run_records_settings_resources_and_worker_spans(self, artifacts):
        trace, manifest_path = artifacts
        manifest = RunManifest.load(manifest_path)
        assert manifest.settings["workers"] == 2
        assert manifest.settings["kernel"]
        assert manifest.resources["samples"], "resource monitor recorded no samples"
        spans = [json.loads(line) for line in trace.read_text().splitlines()]
        workers = {
            s["attrs"]["pid"] for s in spans if s["name"] == "worker.task"
        }
        assert workers, "expected worker-attributed spans in the CLI trace"

    def test_obs_view(self, artifacts, capsys):
        trace, _ = artifacts
        assert main(["obs", "view", str(trace), "--hot", "1"]) == 0
        out = capsys.readouterr().out
        assert "cpm.run" in out
        assert "worker.task" in out
        assert "<== hot" in out

    def test_obs_view_reads_manifests_too(self, artifacts, capsys):
        _, manifest_path = artifacts
        assert main(["obs", "view", str(manifest_path)]) == 0
        assert "cpm.run" in capsys.readouterr().out

    def test_obs_diff(self, artifacts, tmp_path, capsys):
        _, manifest_path = artifacts
        assert main(["obs", "diff", str(manifest_path), str(manifest_path)]) == 0
        out = capsys.readouterr().out
        assert "WARNING" not in out
        assert "span:cpm.run.wall" in out
        assert "counter:cliques.enumerated" in out

    def test_obs_export(self, artifacts, tmp_path, capsys):
        trace, _ = artifacts
        out_path = tmp_path / "out.perfetto.json"
        assert main(["obs", "export", str(trace), "--out", str(out_path)]) == 0
        assert "perfetto" in capsys.readouterr().out
        document = json.loads(out_path.read_text())
        validate_trace_events(document)
        worker_pids = {
            e["pid"] for e in document["traceEvents"]
            if e["ph"] == "X" and e["name"] == "worker.task"
        }
        assert worker_pids and 1 not in worker_pids

    def test_obs_history_worktree_fallback(self, artifacts, tmp_path, capsys):
        _, manifest_path = artifacts
        bench_dir = tmp_path / "bench"
        bench_dir.mkdir()
        (bench_dir / "BENCH_sample.json").write_text(manifest_path.read_text())
        assert main(["obs", "history", str(bench_dir)]) == 0
        out = capsys.readouterr().out
        assert "BENCH_sample.json" in out
        assert "worktree" in out
        assert "span:cpm.run.wall" in out
