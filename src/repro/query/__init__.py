"""Community query service: serveable artifact + lookup engine + server.

The batch pipeline (``run_cpm`` -> analysis) computes the paper's
community hierarchy; this package *serves* it.  Three layers:

* :mod:`repro.query.artifact` — the immutable, mmap-friendly
  :class:`QueryArtifact`: community tree, per-community membership
  bitsets, per-node posting lists and the memoized Chapter-4 metric
  table, packed into one binary file keyed by the source graph's
  fingerprint;
* :mod:`repro.query.engine` — :class:`LookupEngine` point queries
  (memberships per k, crown/trunk/root band, lowest common community,
  top-N by density/ODF/size) with zero CPM recompute;
* :mod:`repro.query.server` — a stdlib HTTP server exposing those
  lookups as JSON endpoints, instrumented with ``query.*`` spans and
  counters.

CLI: ``repro query build | lookup | serve`` (see
``docs/query-service.md``); facade: :func:`repro.api
.build_query_artifact` / :func:`repro.api.load_query_artifact`.
"""

from .artifact import ARTIFACT_VERSION, ArtifactError, BandSpec, QueryArtifact, build_artifact
from .engine import TOP_METRICS, LookupEngine
from .server import QueryServer, make_server

__all__ = [
    "ARTIFACT_VERSION",
    "ArtifactError",
    "BandSpec",
    "QueryArtifact",
    "build_artifact",
    "LookupEngine",
    "TOP_METRICS",
    "QueryServer",
    "make_server",
]
