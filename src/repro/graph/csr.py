"""Integer-relabelled CSR + bitset snapshot of a :class:`Graph`.

The integer fast path of the LP-CPM pipeline (``docs/performance.md``)
never touches Python sets or hashable node objects in its hot loops:
it relabels the graph once and runs on dense integers.  A
:class:`CSRGraph` is that immutable snapshot:

* **labels** — dense id → original node object.  Ids are assigned in
  *degeneracy order* (Eppstein–Löffler–Strash), so the Bron–Kerbosch
  outer loop can split each node's neighborhood into "later" (candidate)
  and "earlier" (excluded) ids with two shifts instead of set scans.
* **indptr / indices** — classic compressed-sparse-row adjacency.
  ``indices[indptr[i]:indptr[i+1]]`` are the neighbor ids of ``i``,
  ascending; both are ``array`` objects, so the structure pickles as
  flat memory buffers.
* **bitsets** — per-node neighborhood masks as arbitrary-precision
  Python ints (bit ``j`` set iff ``{i, j}`` is an edge).  CPython's
  big-int ``&``/``|``/``bit_count`` run word-at-a-time in C, which is
  what makes the bitset Bron–Kerbosch kernel fast without numpy.

The snapshot is derived data: mutate the source :class:`Graph` and
build a new snapshot.
"""

from __future__ import annotations

from array import array
from collections.abc import Hashable, Sequence

from .degeneracy import degeneracy_ordering
from .undirected import Graph

__all__ = ["CSRGraph"]


class CSRGraph:
    """Dense-integer CSR + bitset view of an undirected simple graph.

    >>> from repro.graph import complete_graph
    >>> csr = CSRGraph.from_graph(complete_graph(4))
    >>> csr.n, csr.degree(0)
    (4, 3)
    >>> bin(csr.bitsets[0])
    '0b1110'
    """

    __slots__ = ("labels", "indptr", "indices", "bitsets", "_rank", "_degrees", "_blocks")

    def __init__(
        self,
        labels: Sequence[Hashable],
        indptr: array,
        indices: array,
        bitsets: list[int],
    ) -> None:
        self.labels = list(labels)
        self.indptr = indptr
        self.indices = indices
        self.bitsets = bitsets
        self._rank: dict | None = None
        self._degrees: list[int] | None = None
        self._blocks = None

    @classmethod
    def from_graph(cls, graph: Graph) -> "CSRGraph":
        """Snapshot ``graph`` with ids assigned in degeneracy order."""
        order = degeneracy_ordering(graph)
        rank = {node: i for i, node in enumerate(order)}
        indptr = array("q", [0])
        indices = array("i")
        bitsets: list[int] = []
        for node in order:
            nbrs = sorted(rank[w] for w in graph.neighbors(node))
            indices.extend(nbrs)
            indptr.append(len(indices))
            mask = 0
            for j in nbrs:
                mask |= 1 << j
            bitsets.append(mask)
        return cls(order, indptr, indices, bitsets)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self.labels)

    def __len__(self) -> int:
        return len(self.labels)

    @property
    def n_edges(self) -> int:
        return len(self.indices) // 2

    def degree(self, i: int) -> int:
        """Number of neighbors of ``i``."""
        return self.indptr[i + 1] - self.indptr[i]

    def neighbors(self, i: int) -> array:
        """Neighbor ids of ``i``, ascending (a slice of the CSR arrays)."""
        return self.indices[self.indptr[i] : self.indptr[i + 1]]

    def has_edge(self, i: int, j: int) -> bool:
        """True iff ``{i, j}`` is an edge (one bitset probe)."""
        return bool((self.bitsets[i] >> j) & 1)

    def to_labels(self, ids) -> list[Hashable]:
        """Map dense ids back to the original node objects."""
        labels = self.labels
        return [labels[i] for i in ids]

    def rank(self) -> dict:
        """Original node object → dense id, built lazily and cached.

        The inverse of :attr:`labels`; consumers that translate member
        sets to dense ids (the analysis engine) share one dict per
        snapshot instead of rebuilding it per sweep.
        """
        if self._rank is None:
            self._rank = {node: i for i, node in enumerate(self.labels)}
        return self._rank

    def degrees(self) -> list[int]:
        """Per-node degree list, built lazily from ``indptr`` and cached."""
        if self._degrees is None:
            indptr = self.indptr
            self._degrees = [indptr[i + 1] - indptr[i] for i in range(len(self.labels))]
        return self._degrees

    def blocks(self):
        """The adjacency as a numpy uint64 block matrix, lazily cached.

        Shape ``(n, ceil(n/64))``, little-endian within and across
        words: bit ``j`` of row ``i`` (word ``j // 64``, bit ``j % 64``)
        is set iff ``{i, j}`` is an edge — the exact bytes of
        :attr:`bitsets`, so the two views agree by construction on any
        host.  The ``blocks`` CPM kernel and the ``blocks`` analysis
        engine batch their popcounts over this matrix.

        Requires the ``[perf]`` extra; raises
        :class:`~repro.core._blocks_compat.BlocksUnavailableError`
        without numpy.
        """
        if self._blocks is None:
            from ..core._blocks_compat import require_numpy

            np = require_numpy("CSRGraph.blocks()")
            n_words = max(1, (self.n + 63) >> 6)
            row_bytes = n_words * 8
            buf = b"".join(mask.to_bytes(row_bytes, "little") for mask in self.bitsets)
            self._blocks = np.frombuffer(buf, dtype="<u8").reshape(self.n, n_words)
        return self._blocks

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSRGraph(n={self.n}, edges={self.n_edges})"
