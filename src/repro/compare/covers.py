"""Quantitative comparison of community covers.

Used in two places:

* the baseline-contrast experiments (how close are GCE / EAGLE /
  label-propagation covers to the CPM cover?), and
* the measurement-robustness analysis (how much of the true community
  structure survives partial observation?).

Metrics:

* **Jaccard matching** — greedy best-pair matching by Jaccard
  similarity; cheap, works at any scale;
* **recall / precision at τ** — the fraction of reference communities
  with a match above a Jaccard threshold (and vice versa);
* **Omega index** (Collins & Dent) — the overlap-aware generalisation
  of the adjusted Rand index: chance-corrected agreement on *how many*
  communities each node pair shares.  Quadratic in the universe size;
  intended for comparison at a fixed order k or on small graphs.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Hashable, Iterable, Sequence
from dataclasses import dataclass

__all__ = ["MatchResult", "jaccard", "match_covers", "recall_at", "omega_index"]


def jaccard(a: Iterable[Hashable], b: Iterable[Hashable]) -> float:
    """|A ∩ B| / |A ∪ B| (1.0 for two empty sets)."""
    set_a, set_b = set(a), set(b)
    union = set_a | set_b
    if not union:
        return 1.0
    return len(set_a & set_b) / len(union)


@dataclass(frozen=True)
class MatchResult:
    """Outcome of greedy cover matching."""

    pairs: tuple[tuple[int, int, float], ...]  # (index_a, index_b, jaccard)
    unmatched_a: tuple[int, ...]
    unmatched_b: tuple[int, ...]

    @property
    def mean_jaccard(self) -> float:
        if not self.pairs:
            return 0.0
        return sum(score for _, _, score in self.pairs) / len(self.pairs)

    def matched_fraction_a(self, *, threshold: float = 0.0) -> float:
        """Share of cover A's communities matched above ``threshold``."""
        total = len(self.pairs) + len(self.unmatched_a)
        if total == 0:
            return 0.0
        good = sum(1 for _, _, s in self.pairs if s > threshold)
        return good / total


def match_covers(
    cover_a: Sequence[Iterable[Hashable]],
    cover_b: Sequence[Iterable[Hashable]],
) -> MatchResult:
    """Greedy one-to-one matching by descending Jaccard similarity.

    Candidate pairs are generated through a shared-member index, so
    disjoint communities are never scored.
    """
    sets_a = [set(c) for c in cover_a]
    sets_b = [set(c) for c in cover_b]
    index_b: dict[Hashable, list[int]] = {}
    for j, members in enumerate(sets_b):
        for node in members:
            index_b.setdefault(node, []).append(j)
    scored: list[tuple[float, int, int]] = []
    for i, members in enumerate(sets_a):
        candidates = {j for node in members for j in index_b.get(node, ())}
        for j in candidates:
            scored.append((jaccard(members, sets_b[j]), i, j))
    scored.sort(key=lambda t: (-t[0], t[1], t[2]))
    used_a: set[int] = set()
    used_b: set[int] = set()
    pairs: list[tuple[int, int, float]] = []
    for score, i, j in scored:
        if i in used_a or j in used_b:
            continue
        used_a.add(i)
        used_b.add(j)
        pairs.append((i, j, score))
    return MatchResult(
        pairs=tuple(pairs),
        unmatched_a=tuple(i for i in range(len(sets_a)) if i not in used_a),
        unmatched_b=tuple(j for j in range(len(sets_b)) if j not in used_b),
    )


def recall_at(
    reference: Sequence[Iterable[Hashable]],
    candidate: Sequence[Iterable[Hashable]],
    *,
    threshold: float = 0.5,
) -> float:
    """Fraction of reference communities matched above ``threshold``.

    Each reference community may claim its best candidate independently
    (no one-to-one constraint): the question is "was this community
    found?", not "is the mapping a bijection".
    """
    if not reference:
        return 1.0
    sets_candidate = [set(c) for c in candidate]
    index: dict[Hashable, list[int]] = {}
    for j, members in enumerate(sets_candidate):
        for node in members:
            index.setdefault(node, []).append(j)
    found = 0
    for community in reference:
        members = set(community)
        candidates = {j for node in members for j in index.get(node, ())}
        best = max((jaccard(members, sets_candidate[j]) for j in candidates), default=0.0)
        if best >= threshold:
            found += 1
    return found / len(reference)


def omega_index(
    cover_a: Sequence[Iterable[Hashable]],
    cover_b: Sequence[Iterable[Hashable]],
    universe: Iterable[Hashable],
) -> float:
    """Chance-corrected pairwise agreement between two covers.

    For each unordered node pair, count in how many communities of each
    cover the pair co-occurs; the covers agree on a pair when these
    counts are equal.  Omega = (observed - expected) / (1 - expected),
    with the expectation from independently shuffled covers (Collins &
    Dent 1988).  Returns 1.0 for identical covers; ~0 for independent
    ones; can be negative.  O(|universe|²) memory-free streaming over
    co-occurrence counters.
    """
    nodes = sorted(set(universe), key=repr)
    n_pairs = len(nodes) * (len(nodes) - 1) // 2
    if n_pairs == 0:
        return 1.0

    def pair_counts(cover) -> Counter:
        counts: Counter[tuple, int] = Counter()
        for community in cover:
            members = sorted(set(community) & set(nodes), key=repr)
            for x in range(len(members)):
                for y in range(x + 1, len(members)):
                    counts[(members[x], members[y])] += 1
        return counts

    counts_a = pair_counts(cover_a)
    counts_b = pair_counts(cover_b)

    # Distribution of co-occurrence multiplicities per cover.
    dist_a = Counter(counts_a.values())
    dist_a[0] = n_pairs - sum(dist_a.values())
    dist_b = Counter(counts_b.values())
    dist_b[0] = n_pairs - sum(dist_b.values())

    observed = 0
    for pair, count in counts_a.items():
        if counts_b.get(pair, 0) == count:
            observed += 1
    # Pairs sharing zero communities in both covers also agree.
    observed += n_pairs - len(set(counts_a) | set(counts_b))
    observed_fraction = observed / n_pairs

    expected_fraction = sum(
        (dist_a.get(level, 0) / n_pairs) * (dist_b.get(level, 0) / n_pairs)
        for level in set(dist_a) | set(dist_b)
    )
    if expected_fraction == 1.0:
        return 1.0
    return (observed_fraction - expected_fraction) / (1.0 - expected_fraction)
