"""Ablation — LP-CPM scaling with topology size (DESIGN.md §5).

The paper's CPM run was feasible only because of the lightweight
formulation; this bench sweeps the generator's ``scale`` knob and
reports how clique count and CPM time grow with the AS population while
the community-tree depth (driven by the fixed IXP core sizes) stays
constant — the property that makes scaled-down reproduction valid.
"""

from repro.core.lightweight import LightweightParallelCPM
from repro.report.figures import ascii_table
from repro.topology.generator import GeneratorConfig, generate_topology


def _run_at_scale(scale: float, kernel: str):
    dataset = generate_topology(GeneratorConfig(scale=scale), seed=42)
    cpm = LightweightParallelCPM(dataset.graph, kernel=kernel)
    hierarchy = cpm.run()
    return dataset, cpm.stats, hierarchy


def test_cpm_scaling_sweep(benchmark, emit, bench_record, bench_kernel):
    rows = []
    results = {}
    for scale in (0.25, 0.5, 1.0):
        dataset, stats, hierarchy = _run_at_scale(scale, bench_kernel)
        results[scale] = (dataset, stats, hierarchy)
        # Per-scale CPM wall time, persisted in the manifest config so
        # check_bench_regression.py can gate on it commit-to-commit.
        bench_record[f"cpm_seconds_scale_{scale}"] = round(stats.total_seconds, 4)
        rows.append(
            [
                scale,
                dataset.n_ases,
                dataset.n_links,
                stats.n_cliques,
                round(stats.total_seconds, 3),
                hierarchy.max_k,
                hierarchy.total_communities,
            ]
        )
    # The timed target: the reference scale.
    benchmark(lambda: LightweightParallelCPM(results[1.0][0].graph, kernel=bench_kernel).run())

    table = ascii_table(
        ["scale", "ASes", "links", "maximal cliques", "CPM seconds", "max k", "communities"],
        rows,
        title="LP-CPM scaling sweep (depth fixed by IXP cores; population scales)",
    )
    emit("cpm_scaling", table)

    # Clique count grows with population; tree depth does not.
    assert results[0.25][1].n_cliques < results[1.0][1].n_cliques
    assert results[0.25][2].max_k == results[1.0][2].max_k == 36
