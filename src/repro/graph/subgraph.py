"""Tag-induced subgraphs (Palla et al. [24], Section 2.4 of the paper).

A subgraph of G induced by the tag alpha is made up of all the edges of
G whose endpoints are **both** tagged alpha.  The paper builds
IXP-induced subgraphs (both endpoints participate in one given IXP) and
country-induced subgraphs (both endpoints have a presence in one given
country), then asks which k-clique communities are fully contained in
them — the core of the crown/trunk/root analysis.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Iterable

from .undirected import Graph

__all__ = ["tag_induced_subgraph", "tag_induced_node_sets", "containment_fraction"]


def tag_induced_subgraph(graph: Graph, tagged_nodes: Iterable[Hashable]) -> Graph:
    """The subgraph induced by the nodes carrying a tag.

    Per [24] the tag-induced subgraph keeps exactly the edges whose two
    endpoints are both tagged; isolated tagged nodes are kept as
    isolated nodes so that membership queries remain meaningful.
    """
    return graph.subgraph(tagged_nodes)


def tag_induced_node_sets(
    universe: Iterable[Hashable],
    tags_of: Callable[[Hashable], Iterable[Hashable]],
) -> dict[Hashable, set[Hashable]]:
    """Invert a node→tags mapping into tag→node-set.

    ``tags_of`` returns the tags of a node (e.g. the IXPs an AS
    participates in, or the countries where it has a point of
    presence).  The result indexes, for every tag, the node set whose
    induced subgraph [24] defines that tag's community substrate.
    """
    by_tag: dict[Hashable, set[Hashable]] = {}
    for node in universe:
        for tag in tags_of(node):
            by_tag.setdefault(tag, set()).add(node)
    return by_tag


def containment_fraction(members: set[Hashable], tag_nodes: set[Hashable]) -> float:
    """Fraction of ``members`` inside ``tag_nodes``.

    1.0 means the community is a subgraph of the tag-induced subgraph
    (a *full-share* tag in the paper's IXP terminology); the tag
    maximising this value over a registry is the *max-share* tag.
    Empty communities are defined to have containment 0.0.
    """
    if not members:
        return 0.0
    return len(members & tag_nodes) / len(members)
