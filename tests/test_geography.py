"""Unit tests for the geography registry and tags."""

import pytest

from repro.topology import COUNTRY_CONTINENT, Continent, GeoRegistry, GeoTag, continent_of


class TestCountryTable:
    def test_paper_ixp_countries_present(self):
        # Every country hosting an IXP named in Sections 4.1-4.3.
        codes = ("NL", "DE", "GB", "RU", "NZ", "US", "SK", "AU", "IN", "BR", "CZ", "CH", "IT", "AT")
        for code in codes:
            assert code in COUNTRY_CONTINENT

    def test_continent_of(self):
        assert continent_of("NL") is Continent.EUROPE
        assert continent_of("BR") is Continent.SOUTH_AMERICA
        with pytest.raises(KeyError):
            continent_of("XX")


class TestGeoRegistry:
    def test_assign_and_lookup(self):
        reg = GeoRegistry()
        reg.assign(100, ["IT", "FR"])
        assert reg.countries(100) == {"IT", "FR"}
        assert reg.continents(100) == {Continent.EUROPE}

    def test_constructor_mapping(self):
        reg = GeoRegistry({1: ["US"], 2: ["DE", "JP"]})
        assert len(reg) == 2
        assert 1 in reg and 3 not in reg

    def test_unknown_as(self):
        reg = GeoRegistry()
        assert reg.countries(9) == frozenset()
        assert reg.tag(9) is GeoTag.UNKNOWN

    def test_invalid_country_rejected(self):
        reg = GeoRegistry()
        with pytest.raises(KeyError):
            reg.assign(1, ["ZZ"])

    def test_empty_country_list_rejected(self):
        with pytest.raises(ValueError):
            GeoRegistry().assign(1, [])

    def test_tags(self):
        reg = GeoRegistry(
            {
                1: ["IT"],                 # national
                2: ["IT", "FR"],           # continental
                3: ["IT", "US"],           # worldwide
            }
        )
        assert reg.tag(1) is GeoTag.NATIONAL
        assert reg.tag(2) is GeoTag.CONTINENTAL
        assert reg.tag(3) is GeoTag.WORLDWIDE

    def test_ases_in_country(self):
        reg = GeoRegistry({1: ["IT"], 2: ["IT", "FR"], 3: ["DE"]})
        assert reg.ases_in_country("IT") == {1, 2}
        assert reg.ases_in_country("JP") == set()

    def test_all_countries(self):
        reg = GeoRegistry({1: ["IT"], 2: ["FR"]})
        assert reg.all_countries() == {"IT", "FR"}

    def test_tsv_round_trip(self):
        reg = GeoRegistry({5: ["IT", "FR"], 10: ["US"]})
        loaded = GeoRegistry.from_tsv(reg.to_tsv())
        assert loaded.countries(5) == {"FR", "IT"}
        assert loaded.countries(10) == {"US"}
        assert len(loaded) == 2

    def test_tsv_skips_comments(self):
        loaded = GeoRegistry.from_tsv("# comment\n1\tIT\n")
        assert loaded.countries(1) == {"IT"}
