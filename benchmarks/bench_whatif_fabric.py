"""Extension — IXP fabric criticality, counterfactually.

Chapter 5 concludes that crown communities "are made up almost
exclusively of ASes participating in AMS-IX, DE-CIX and LINX".  The
counterfactual test of that interpretation: delete one IXP's peering
mesh (membership kept — only the infrastructure fails) and re-extract.
Removing a big-three fabric guts the top of the tree; removing a small
regional IXP's fabric leaves the crown untouched and only erases local
root communities.
"""

from repro.core.lightweight import LightweightParallelCPM
from repro.report.figures import ascii_table
from repro.topology import remove_ixp_fabric
from repro.topology.generator import GeneratorConfig, generate_topology

_DATASET = generate_topology(GeneratorConfig.tiny(), seed=7)


def test_ixp_fabric_criticality(benchmark, emit):
    baseline = benchmark.pedantic(
        lambda: LightweightParallelCPM(_DATASET.graph).run(), rounds=1, iterations=1
    )
    rows = [["(none — baseline)", baseline.max_k, baseline.total_communities]]
    results = {}
    for name in ("AMS-IX", "LINX", "MSK-IX", "VIX"):
        stripped = remove_ixp_fabric(_DATASET, name)
        hierarchy = LightweightParallelCPM(stripped.graph).run()
        results[name] = hierarchy
        rows.append([name, hierarchy.max_k, hierarchy.total_communities])
    table = ascii_table(
        ["fabric removed", "max k", "total communities"],
        rows,
        title="Counterfactual IXP outages vs community structure",
    )
    footer = (
        "big-three outages collapse the crown; a regional IXP outage "
        "only prunes root communities — the tree bands localise impact"
    )
    emit("whatif_fabric", f"{table}\n{footer}")

    assert results["AMS-IX"].max_k < baseline.max_k
    assert results["VIX"].max_k == baseline.max_k
    # Regional outage costs communities but not depth.
    assert results["VIX"].total_communities <= baseline.total_communities
