"""Sharded pipeline scale sweep and sharded-vs-serial speedup gate.

The ROADMAP north-star is CPM "as fast as the hardware allows" on
graphs far beyond the paper's reference scale.  This bench drives the
degeneracy-partitioned pipeline (``repro.shard``) at scale-1/4/10 and
records the wall-time curve as ``cpm_sharded_seconds_scale_<scale>``
scalars, gated by ``check_bench_regression.py`` like the serial curve —
the scale-10 run is the "completes far past bench scale" proof, with
its wall time in the committed manifest.

The speedup test compares serial against 4-shard/4-worker runs at
scale-4 and records ``cpm_shard_speedup`` (gated *higher-is-better* by
``check_bench_regression.py``).  The ``>= 2x`` assertion only arms when
``REPRO_BENCH_REQUIRE_SPEEDUP`` is set — CI's shard-smoke runner sets
it on 4-vCPU machines; on fewer cores real parallel speedup is
physically impossible and the scalar is recorded without asserting
(committed baselines then honestly carry the host's ratio, and the
gate watches its trajectory instead).
"""

import os

from repro.core.serialize import hierarchy_to_dict
from repro.core.lightweight import LightweightParallelCPM
from repro.report.figures import ascii_table
from repro.topology.generator import GeneratorConfig, generate_topology

_WORKERS = 4
_SHARDS = 4
_SPEEDUP_SCALE = 4.0
_REQUIRED_SPEEDUP = 2.0


def _dataset_at(scale: float):
    return generate_topology(GeneratorConfig(scale=scale), seed=42)


def _run(graph, kernel: str, *, workers: int = 1, shards: int = 1):
    cpm = LightweightParallelCPM(graph, kernel=kernel, workers=workers, shards=shards)
    hierarchy = cpm.run()
    return cpm.stats, hierarchy


def test_cpm_sharded_sweep(emit, bench_record, bench_kernel):
    """Scale-1/4/10 wall-time curve under the sharded pipeline."""
    rows = []
    max_ks = set()
    for scale in (1.0, 4.0, 10.0):
        dataset = _dataset_at(scale)
        stats, hierarchy = _run(
            dataset.graph, bench_kernel, workers=_WORKERS, shards=_SHARDS
        )
        bench_record[f"cpm_sharded_seconds_scale_{scale:g}"] = round(
            stats.total_seconds, 4
        )
        max_ks.add(hierarchy.max_k)
        rows.append(
            [
                scale,
                dataset.n_ases,
                dataset.n_links,
                stats.n_cliques,
                round(stats.total_seconds, 3),
                hierarchy.max_k,
                hierarchy.total_communities,
            ]
        )
    bench_record["shards"] = _SHARDS
    bench_record["workers"] = _WORKERS
    table = ascii_table(
        ["scale", "ASes", "links", "maximal cliques", "CPM seconds", "max k", "communities"],
        rows,
        title=f"Sharded LP-CPM sweep ({_SHARDS} shards, {_WORKERS} workers)",
    )
    emit("cpm_sharded_sweep", table)

    # The tree depth is pinned by the fixed IXP cores at every scale.
    assert max_ks == {36}
    # Clique count keeps growing with population under the sharded path.
    assert rows[0][3] < rows[1][3] < rows[2][3]


def test_cpm_shard_speedup(emit, bench_record, bench_kernel):
    """Sharded-vs-serial wall time at scale-4, byte-identical output."""
    dataset = _dataset_at(_SPEEDUP_SCALE)
    serial_stats, serial_hierarchy = _run(dataset.graph, bench_kernel)
    sharded_stats, sharded_hierarchy = _run(
        dataset.graph, bench_kernel, workers=_WORKERS, shards=_SHARDS
    )
    # The sharded pipeline must not buy speed with a different answer.
    assert hierarchy_to_dict(sharded_hierarchy) == hierarchy_to_dict(serial_hierarchy)

    speedup = serial_stats.total_seconds / sharded_stats.total_seconds
    bench_record["cpm_serial_seconds_scale_4"] = round(serial_stats.total_seconds, 4)
    bench_record[f"cpm_sharded_seconds_scale_{_SPEEDUP_SCALE:g}"] = round(
        sharded_stats.total_seconds, 4
    )
    bench_record["cpm_shard_speedup"] = round(speedup, 3)
    bench_record["shards"] = _SHARDS
    bench_record["workers"] = _WORKERS

    emit(
        "cpm_shard_speedup",
        f"scale-{_SPEEDUP_SCALE:g}: serial {serial_stats.total_seconds:.2f}s, "
        f"{_SHARDS}-shard/{_WORKERS}-worker {sharded_stats.total_seconds:.2f}s "
        f"-> {speedup:.2f}x",
    )

    if os.environ.get("REPRO_BENCH_REQUIRE_SPEEDUP"):
        # Armed in CI on >= 4-vCPU runners; a host with fewer cores
        # cannot produce a real parallel speedup, so locally the scalar
        # is recorded (and regression-gated) without this floor.
        assert speedup >= _REQUIRED_SPEEDUP, (
            f"sharded speedup {speedup:.2f}x below the {_REQUIRED_SPEEDUP}x gate"
        )
