"""Chrome/Perfetto trace-event export for repro traces.

Our JSONL span schema is compact and greppable, but nobody should have
to eyeball a 10k-span run as raw JSON.  :func:`to_perfetto` converts a
trace (span dicts, optionally plus a resource series) into the Chrome
trace-event JSON object format, which ``ui.perfetto.dev`` and
``chrome://tracing`` open directly:

* every span becomes one complete event (``"ph": "X"``) with
  microsecond ``ts``/``dur`` on a shared timeline (``start_wall`` is
  ``time.perf_counter``, a system-wide monotonic clock on Linux, so
  driver and worker spans align without adjustment);
* spans are grouped into one track per process — the driver plus one
  per worker pid (worker spans carry the ``pid`` attribute the
  supervisor stamps when it grafts telemetry) — with ``process_name``
  metadata events labelling each track;
* a :class:`~.resources.ResourceMonitor` series becomes Perfetto
  counter events (``"ph": "C"``) so RSS and CPU draw as graphs under
  the span tracks.

:func:`validate_trace_events` is the schema check the round-trip test
pins down: it verifies the structural contract of the trace-event
format (required keys per phase type, numeric timestamps, integer
pid/tid) so an export that would render blank in Perfetto fails
loudly here instead.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["to_perfetto", "validate_trace_events", "write_perfetto"]

#: pid assigned to the driver process's track (worker tracks use the
#: real worker pid, which can never be 1 in any container we run in —
#: pid 1 is the init process).
DRIVER_TRACK_PID = 1


def _microseconds(seconds: float) -> float:
    """Trace-event timestamps are microseconds (doubles are allowed)."""
    return round(seconds * 1e6, 3)


def to_perfetto(
    spans: list[dict],
    *,
    resources: dict | None = None,
    label: str = "repro",
) -> dict:
    """Convert span dicts (+ optional resource series) to trace-event JSON.

    Returns the JSON object format: ``{"traceEvents": [...]}`` plus
    ``displayTimeUnit``.  Timestamps are rebased to the earliest span
    (or resource sample) so traces start at t=0.
    """
    samples = (resources or {}).get("samples", [])
    origins = [s["start_wall"] for s in spans if "start_wall" in s]
    origins += [s["wall"] for s in samples if "wall" in s]
    origin = min(origins, default=0.0)

    events: list[dict] = []
    seen_pids: dict[int, str] = {}

    def track(pid: int, name: str) -> int:
        if pid not in seen_pids:
            seen_pids[pid] = name
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": name},
                }
            )
        return pid

    track(DRIVER_TRACK_PID, f"{label} driver")
    for span in spans:
        attrs = span.get("attrs", {}) or {}
        worker_pid = attrs.get("pid")
        if isinstance(worker_pid, int) and worker_pid != DRIVER_TRACK_PID:
            worker_id = attrs.get("worker_id")
            suffix = f" (w{worker_id})" if worker_id is not None else ""
            pid = track(worker_pid, f"{label} worker {worker_pid}{suffix}")
        else:
            pid = DRIVER_TRACK_PID
        args = {
            key: value
            for key, value in attrs.items()
            if isinstance(value, (str, int, float, bool)) or value is None
        }
        args["cpu_seconds"] = span.get("cpu_seconds", 0.0)
        events.append(
            {
                "ph": "X",
                "name": span.get("name", "span"),
                "cat": "span",
                "ts": _microseconds(span.get("start_wall", origin) - origin),
                "dur": max(0.0, _microseconds(span.get("wall_seconds", 0.0))),
                "pid": pid,
                "tid": 1,
                "args": args,
            }
        )

    for sample in samples:
        ts = _microseconds(sample.get("wall", origin) - origin)
        for counter in ("rss_kib", "max_rss_kib", "cpu_seconds"):
            if counter in sample:
                events.append(
                    {
                        "ph": "C",
                        "name": counter,
                        "ts": ts,
                        "pid": DRIVER_TRACK_PID,
                        "tid": 0,
                        "args": {counter: sample[counter]},
                    }
                )

    return {"displayTimeUnit": "ms", "traceEvents": events}


#: Phase types this exporter emits; validation rejects anything else.
_KNOWN_PHASES = {"X", "C", "M"}


def validate_trace_events(document: dict) -> None:
    """Raise ValueError unless ``document`` is valid trace-event JSON.

    Checks the structural contract of the Chrome trace-event object
    format for the phases this exporter produces: a ``traceEvents``
    list whose entries all carry ``ph``/``name``/``pid``/``tid``,
    numeric non-negative ``ts`` (plus ``dur`` for complete events),
    and dict ``args`` where present.
    """
    if not isinstance(document, dict):
        raise ValueError("trace document must be a JSON object")
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace document must carry a traceEvents list")
    for position, event in enumerate(events):
        where = f"traceEvents[{position}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where} is not an object")
        phase = event.get("ph")
        if phase not in _KNOWN_PHASES:
            raise ValueError(f"{where} has unknown phase {phase!r}")
        if not isinstance(event.get("name"), str) or not event["name"]:
            raise ValueError(f"{where} needs a non-empty string name")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                raise ValueError(f"{where} needs an integer {key}")
        if phase in ("X", "C"):
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                raise ValueError(f"{where} needs a non-negative numeric ts")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"{where} needs a non-negative numeric dur")
        if "args" in event and not isinstance(event["args"], dict):
            raise ValueError(f"{where} args must be an object")


def write_perfetto(
    spans: list[dict],
    path,
    *,
    resources: dict | None = None,
    label: str = "repro",
) -> Path:
    """Convert, validate and write a trace; returns the output path."""
    document = to_perfetto(spans, resources=resources, label=label)
    validate_trace_events(document)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(document, indent=1) + "\n", encoding="utf-8")
    return target
