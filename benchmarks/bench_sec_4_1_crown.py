"""Section 4.1 — crown k-clique communities.

Paper: 42 communities with k in [29, 36]; the 36-clique community has
38 ASes, max-share AMS-IX at 89%, no full-share IXP; every crown AS is
European (4 exceptions) and on-IXP (3 exceptions); crown max-share
IXPs are exactly {AMS-IX, DE-CIX, LINX}; the nine 34-clique communities
split into the AMS-IX main plus LINX/DE-CIX full-share parallels that
overlap through the IXPs' shared participants.
"""

from repro.analysis.bands import crown_report, derive_bands
from repro.analysis.ixp_share import IXPShareAnalysis
from repro.report.figures import ascii_table


def test_section_4_1_crown(benchmark, context, dataset, emit):
    ixp_share = IXPShareAnalysis(context)
    bands = derive_bands(ixp_share)
    report = benchmark(lambda: crown_report(context, ixp_share, bands))

    case_rows = [
        [label, "main" if is_main else "parallel", ixp, f"{fraction:.0%}",
         "yes" if full else "no"]
        for label, ixp, fraction, full, is_main in report.case_study
    ]
    table = ascii_table(
        ["community", "role", "max-share IXP", "share", "full-share"],
        case_rows,
        title=(
            f"Crown case study at k={report.case_study_k} "
            "(paper: nine 34-clique communities — AMS-IX main at 92%, "
            "4x LINX + 3x DE-CIX full-share, 1x DE-CIX 98%)"
        ),
    )
    summary = (
        f"crown band k in {report.k_range} (paper [29, 36]); "
        f"{report.n_communities} communities (paper 42); "
        f"apex {report.apex_label}: {report.apex_size} ASes (paper 38), "
        f"max-share {report.apex_max_share_ixp} {report.apex_max_share_fraction:.0%} "
        f"(paper AMS-IX 89%), full-share={report.apex_has_full_share} (paper no); "
        f"max-share IXPs {sorted(report.max_share_ixps)} (paper the big three); "
        f"non-EU members: {sorted(dataset.name_of(a) for a in report.non_european_members)} "
        f"(paper 4); in no IXP: {len(report.non_ixp_members)} (paper 3)"
    )
    emit("section_4_1_crown", f"{table}\n{summary}")

    assert report.max_share_ixps == {"AMS-IX", "DE-CIX", "LINX"}
    assert report.apex_max_share_ixp == "AMS-IX"
    assert not report.apex_has_full_share
    assert not report.main_has_full_share
    assert len(report.non_european_members) == 4
    assert len(report.non_ixp_members) == 3
    parallels = [row for row in report.case_study if not row[4]]
    assert any(row[3] for row in parallels)  # full-share parallels exist
