"""Unit tests for CPM, cross-checked against networkx and the direct
definition oracle."""

import random

import networkx as nx
import pytest

from repro.core import (
    CliqueOverlapIndex,
    extract_hierarchy,
    k_clique_communities,
    k_clique_communities_direct,
)
from repro.graph import (
    Graph,
    complete_graph,
    erdos_renyi,
    overlapping_cliques,
    path_graph,
    ring_of_cliques,
)


def _nx_communities(g: Graph, k: int) -> list[list]:
    G = nx.Graph(list(g.edges()))
    G.add_nodes_from(g.nodes())
    return sorted(sorted(c) for c in nx.community.k_clique_communities(G, k))


class TestKnownStructures:
    def test_ring_of_cliques(self):
        g = ring_of_cliques(4, 5)
        cover = k_clique_communities(g, 5)
        assert len(cover) == 4
        assert all(c.size == 5 for c in cover)

    def test_ring_is_single_community_at_k2(self):
        cover = k_clique_communities(ring_of_cliques(4, 5), 2)
        assert len(cover) == 1
        assert cover[0].size == 20

    def test_clique_chain_is_one_community(self):
        g = overlapping_cliques([6, 6, 6], 5)
        cover = k_clique_communities(g, 6)
        assert len(cover) == 1
        assert cover[0].size == 8

    def test_chain_with_small_overlap_splits_at_high_k(self):
        g = overlapping_cliques([5, 5], 2)
        assert len(k_clique_communities(g, 5)) == 2
        assert len(k_clique_communities(g, 3)) == 1  # overlap 2 >= k-1

    def test_complete_graph_one_community_every_k(self):
        g = complete_graph(6)
        for k in range(2, 7):
            cover = k_clique_communities(g, k)
            assert len(cover) == 1
            assert cover[0].size == 6

    def test_path_graph_k3_empty(self):
        assert len(k_clique_communities(path_graph(5), 3)) == 0

    def test_k2_communities_are_nontrivial_components(self):
        g = Graph([(1, 2), (3, 4), (4, 5)])
        g.add_node(99)  # isolated: in no 2-clique community
        cover = k_clique_communities(g, 2)
        assert sorted(sorted(c.members) for c in cover) == [[1, 2], [3, 4, 5]]

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            k_clique_communities(path_graph(3), 1)


class TestOracleEquivalence:
    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_three_implementations_agree(self, seed, k):
        g = erdos_renyi(28, 0.3, random.Random(seed))
        fast = sorted(sorted(c.members) for c in k_clique_communities(g, k))
        direct = sorted(sorted(c.members) for c in k_clique_communities_direct(g, k))
        assert fast == direct == _nx_communities(g, k)

    def test_direct_validates_k(self):
        with pytest.raises(ValueError):
            k_clique_communities_direct(path_graph(3), 1)

    def test_direct_empty_result(self):
        assert len(k_clique_communities_direct(path_graph(4), 3)) == 0


class TestOverlapIndex:
    def test_overlaps_of_ring(self):
        index = CliqueOverlapIndex.from_graph(ring_of_cliques(4, 4))
        overlaps = index.overlaps()
        # Bridge edges each share one node with two cliques.
        assert all(v >= 1 for v in overlaps.values())
        assert index.max_clique_size == 4

    def test_eligible_prefix(self):
        # 4 cliques of size 4 plus 4 bridge edges (size-2 cliques).
        index = CliqueOverlapIndex.from_graph(ring_of_cliques(4, 4))
        assert index._eligible_count(4) == 4
        assert index._eligible_count(2) == 8
        assert index._eligible_count(5) == 0

    def test_empty_graph(self):
        index = CliqueOverlapIndex([])
        assert index.max_clique_size == 0
        assert index.percolate(3) == []


class TestHierarchy:
    def test_orders_cover_full_range(self):
        h = extract_hierarchy(ring_of_cliques(3, 5))
        assert h.orders == [2, 3, 4, 5]

    def test_min_max_k_window(self):
        h = extract_hierarchy(ring_of_cliques(3, 5), min_k=3, max_k=4)
        assert h.orders == [3, 4]

    def test_raises_when_nothing_to_extract(self):
        g = Graph()
        g.add_node(1)
        with pytest.raises(ValueError):
            extract_hierarchy(g)

    def test_invalid_min_k(self):
        with pytest.raises(ValueError):
            extract_hierarchy(ring_of_cliques(2, 3), min_k=1)

    def test_shared_index_gives_same_result(self):
        g = ring_of_cliques(3, 5)
        index = CliqueOverlapIndex.from_graph(g)
        a = extract_hierarchy(g)
        b = extract_hierarchy(g, index=index)
        assert a.counts_by_k() == b.counts_by_k()

    def test_parent_labels_attached(self):
        h = extract_hierarchy(ring_of_cliques(3, 5))
        # Every community above min_k has a parent link.
        expected = sum(len(h[k]) for k in h.orders if k > h.min_k)
        assert len(h.parent_labels) == expected
        for child, parent in h.parent_labels.items():
            assert h.find(child).members <= h.find(parent).members
