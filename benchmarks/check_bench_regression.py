"""Gate pipeline wall-time regressions against committed bench baselines.

Compares the fresh ``benchmarks/output/BENCH_*.json`` manifests (what a
bench run just wrote to the working tree) against the versions
committed at a git ref (default ``HEAD``): every ``cpm.*`` and
``analysis.*`` span and every ``cpm_seconds_*`` / ``analysis_seconds_*``
config scalar present in both is checked, and the run fails when a
fresh value exceeds baseline x tolerance (default 1.25, i.e. a >25%
wall-time regression in a gated phase).

Tiny baselines (< ``--min-seconds``, default 0.05 s) are reported but
never fail the gate — at that magnitude the comparison measures
scheduler noise, not the pipeline.  Environment overrides
``REPRO_BENCH_TOLERANCE`` / ``REPRO_BENCH_MIN_SECONDS`` let a noisy or
differently-classed machine relax the gate without editing CI.

Usage::

    python benchmarks/check_bench_regression.py [--ref HEAD]
        [--tolerance 1.25] [--min-seconds 0.05]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

OUTPUT_DIR = Path(__file__).parent / "output"
REPO_ROOT = Path(__file__).resolve().parent.parent


def _git(*argv: str) -> str:
    return subprocess.check_output(("git", *argv), cwd=REPO_ROOT, text=True)


def committed_manifests(ref: str) -> dict[str, dict]:
    """name -> parsed manifest for every BENCH_*.json committed at ``ref``."""
    try:
        listing = _git("ls-tree", "--name-only", ref, "benchmarks/output/")
    except subprocess.CalledProcessError:
        return {}
    manifests = {}
    for line in listing.splitlines():
        name = Path(line).name
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        try:
            manifests[name] = json.loads(_git("show", f"{ref}:{line}"))
        except (subprocess.CalledProcessError, json.JSONDecodeError):
            continue
    return manifests


#: Gated measurement families: span-name prefixes and config-scalar
#: prefixes.  ``cpm.*`` covers extraction phases; ``analysis.*`` covers
#: the metric-engine sweep (``bench_analysis_metrics.py``); ``query.*``
#: and ``query_lookup_seconds_*`` cover the query-service read path
#: (``bench_query_service.py``); ``cpm_run_seconds_<kernel>`` gates
#: each CPM kernel's end-to-end wall time separately
#: (``bench_cpm_scaling.py``), so the blocks kernel's speed margin
#: over bitset cannot silently erode; ``cpm_seconds_scale_<scale>``
#: gates every point of the scaling curve (``bench_cpm_scaling.py``'s
#: sweep), not just the reference scale, and
#: ``cpm_sharded_seconds_scale_<scale>`` does the same for the sharded
#: pipeline's sweep (``bench_cpm_sharded.py``); ``incr_apply_seconds_*``
#: gates the incremental session's edge-delta apply path as aggregate
#: scalars (``bench_incremental.py`` — individual ``incr.*`` spans are
#: per-batch and too small/noisy to gate one-by-one);
#: ``query_throughput_rps`` (higher-is-better) and
#: ``query_p99_seconds_*`` gate the live server's concurrent serving
#: path (``bench_query_service.py``'s HTTP load section) — removing
#: the global request lock must not silently give the throughput back,
#: and per-endpoint tail latency rides in the same table (sub-ms p99s
#: fall under the tiny-baseline skip but stay visible per run).
SPAN_PREFIXES = ("cpm.", "analysis.", "query.")
SCALAR_PREFIXES = (
    "cpm_seconds",
    # Explicit, though "cpm_seconds" already prefix-matches it: the
    # per-scale scaling curve is a gated family in its own right and
    # must survive any future tightening of the parent prefix.
    "cpm_seconds_scale_",
    "cpm_run_seconds",
    "cpm_sharded_seconds",
    "cpm_shard_speedup",
    "analysis_seconds",
    "query_lookup_seconds",
    "query_throughput_rps",
    "query_p99_seconds",
    "incr_apply_seconds",
)

#: Scalars where *bigger* is better (ratios like sharded-vs-serial
#: speedup, served requests/second): the gate inverts for these — a
#: regression is the fresh value dropping below baseline / tolerance —
#: and the tiny-baseline skip does not apply (a ratio's magnitude is
#: not scheduler noise).
HIGHER_IS_BETTER_PREFIXES = ("cpm_shard_speedup", "query_throughput_rps")


def cpm_measurements(manifest: dict) -> dict[str, float]:
    """The gated wall-time measurements of one manifest.

    ``cpm.*`` / ``analysis.*`` / ``query.*`` spans (first occurrence
    per name, matching ``RunManifest.span``) plus any scalar a bench
    recorded in its config under one of ``SCALAR_PREFIXES``.
    """
    out: dict[str, float] = {}
    for span in manifest.get("spans") or []:
        name = span.get("name", "")
        if name.startswith(SPAN_PREFIXES) and name not in out:
            out[name] = float(span.get("wall_seconds", 0.0))
    for key, value in (manifest.get("config") or {}).items():
        if key.startswith(SCALAR_PREFIXES) and isinstance(value, (int, float)):
            out[key] = float(value)
    return out


def compare(
    baselines: dict[str, dict],
    output_dir: Path,
    tolerance: float,
    min_seconds: float,
) -> tuple[list[tuple], int]:
    """All (manifest, measurement, base, fresh, verdict) rows + fail count."""
    rows: list[tuple] = []
    failures = 0
    for name in sorted(baselines):
        fresh_path = output_dir / name
        if not fresh_path.is_file():
            continue  # bench not run this time; nothing to gate
        try:
            fresh_manifest = json.loads(fresh_path.read_text())
        except (OSError, json.JSONDecodeError):
            rows.append((name, "-", 0.0, 0.0, "UNREADABLE"))
            failures += 1
            continue
        base_m = cpm_measurements(baselines[name])
        fresh_m = cpm_measurements(fresh_manifest)
        for key in sorted(base_m):
            if key not in fresh_m:
                continue
            base, fresh = base_m[key], fresh_m[key]
            if key.startswith(HIGHER_IS_BETTER_PREFIXES):
                if base <= 0:
                    verdict = "skip (tiny)"
                elif fresh < base / tolerance:
                    verdict = "REGRESSION"
                    failures += 1
                else:
                    verdict = "ok"
            elif base < min_seconds:
                verdict = "skip (tiny)"
            elif fresh > base * tolerance:
                verdict = "REGRESSION"
                failures += 1
            else:
                verdict = "ok"
            rows.append((name, key, base, fresh, verdict))
    return rows, failures


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; exit code 1 iff any gated phase regressed."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ref", default="HEAD", help="git ref holding the baselines")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_TOLERANCE", "1.25")),
        help="fail when fresh > baseline x tolerance (default 1.25)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_MIN_SECONDS", "0.05")),
        help="baselines below this never fail the gate (default 0.05)",
    )
    parser.add_argument(
        "--output-dir", default=str(OUTPUT_DIR), help="directory with fresh manifests"
    )
    args = parser.parse_args(argv)

    baselines = committed_manifests(args.ref)
    if not baselines:
        print(f"no committed BENCH_*.json baselines at {args.ref}; nothing to gate")
        return 0
    rows, failures = compare(
        baselines, Path(args.output_dir), args.tolerance, args.min_seconds
    )
    if not rows:
        print("no overlapping gated measurements between baselines and fresh manifests")
        return 0

    width = max(len(r[1]) for r in rows)
    print(f"bench regression gate (ref={args.ref}, tolerance={args.tolerance:g}):")
    for name, key, base, fresh, verdict in rows:
        print(
            f"  {name}: {key:<{width}}  base={base:8.4f}s  "
            f"fresh={fresh:8.4f}s  {verdict}"
        )
    if failures:
        # Rank the offenders worst-first so the triage order is the
        # read order: the scalar with the largest fresh/base ratio is
        # the regression (or the regression's symptom) to chase.
        offenders = sorted(
            (r for r in rows if r[4] in ("REGRESSION", "UNREADABLE")),
            key=lambda r: (r[3] / r[2]) if r[2] else float("inf"),
            reverse=True,
        )
        print(f"FAILED: {failures} measurement(s) regressed past the gate")
        print("offending scalars (worst regression first):")
        for name, key, base, fresh, verdict in offenders:
            ratio = f"{fresh / base:5.2f}x" if base else "  n/a"
            print(f"  {ratio}  {name}: {key}  base={base:.4f}s fresh={fresh:.4f}s")
        return 1
    print("all gated measurements within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
