"""The k-clique community tree (Figure 4.2) and the nesting theorem.

Theorem 1 of the paper: for each k-clique community there is exactly
one (k-1)-clique community containing it.  Consequently the communities
of all orders form a forest under containment — a tree when the graph
is connected, rooted at the single 2-clique community.

On top of the tree the paper defines:

* **main communities** — the apex (the community of maximum order,
  largest if tied) and all of its ancestors: the filled nodes of
  Figure 4.2, exactly one per order;
* **parallel communities** — every other node: the side branches.

This module builds the tree from a :class:`CommunityHierarchy`,
classifies main vs parallel, extracts parallel branches (the nested
chains like the MSK-IX k=20/19/18 example of Section 4.2), verifies the
nesting theorem empirically, and renders the tree as ASCII or DOT.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

from ..obs.metrics import MetricsRegistry
from ..obs.tracing import NULL_TRACER, Tracer
from .communities import Community, CommunityHierarchy

__all__ = ["CommunityTree", "TreeNode", "NestingViolation", "verify_nesting", "find_parent"]


class NestingViolation(AssertionError):
    """Raised when the empirical containment structure contradicts Theorem 1."""


def find_parent(hierarchy: CommunityHierarchy, community: Community) -> Community:
    """The (k-1)-clique community that structurally contains ``community``.

    When the hierarchy carries percolation provenance
    (``hierarchy.parent_labels``, produced by the extraction layer) the
    parent is resolved exactly: it is the (k-1)-community that the
    child's maximal cliques percolated into — the unique parent of
    Theorem 1.

    Without provenance the parent is resolved by node-set containment.
    Containment is guaranteed by Theorem 1, but because communities
    overlap, *several* (k-1)-communities can contain the child's member
    set; only one of them is the structural parent, and member sets
    alone cannot tell which.  In that ambiguous case the smallest
    containing community is returned (the most specific candidate; for
    hierarchies produced by this library's extractors the ambiguity
    never arises because provenance is always attached).
    """
    k = community.k
    if k - 1 not in hierarchy:
        raise KeyError(
            f"hierarchy has no order {k - 1}; cannot resolve parent of {community.label}"
        )
    parent_label = hierarchy.parent_labels.get(community.label)
    if parent_label is not None:
        return hierarchy.find(parent_label)
    witness = next(iter(community.members))
    candidates = hierarchy[k - 1].communities_of(witness)
    parents = [c for c in candidates if community.members <= c.members]
    if not parents:
        raise NestingViolation(
            f"{community.label} has no containing community at order {k - 1}; "
            "Theorem 1 requires exactly one"
        )
    return min(parents, key=lambda c: (c.size, c.index))


def verify_nesting(hierarchy: CommunityHierarchy) -> int:
    """Check Theorem 1 for every community above the minimum order.

    Asserts, for each community, that a containing (k-1)-community
    exists, and — when provenance is attached — that the structural
    parent does contain the child's member set.  Returns the number of
    containment edges verified; raises :class:`NestingViolation` on the
    first counterexample.  This is the library's executable proof-check
    of Section 3.1.
    """
    checked = 0
    for k in hierarchy.orders:
        if k == hierarchy.min_k:
            continue
        for community in hierarchy[k]:
            parent = find_parent(hierarchy, community)
            if not community.members <= parent.members:
                raise NestingViolation(
                    f"{community.label} is not contained in its structural parent {parent.label}"
                )
            if parent.k != k - 1:
                raise NestingViolation(
                    f"parent of {community.label} is {parent.label}, expected order {k - 1}"
                )
            checked += 1
    return checked


@dataclass
class TreeNode:
    """One node of the community tree."""

    community: Community
    parent: "TreeNode | None" = None
    children: list["TreeNode"] = field(default_factory=list)

    @property
    def label(self) -> str:
        return self.community.label

    @property
    def k(self) -> int:
        return self.community.k

    def ancestors(self) -> Iterator["TreeNode"]:
        """Yield ancestors from parent to root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def descendants(self) -> Iterator["TreeNode"]:
        """Yield every node of this subtree (excluding itself)."""
        stack = list(self.children)
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children)


class CommunityTree:
    """The containment forest over all k-clique communities.

    Construction resolves each community's unique parent (Theorem 1);
    communities at the minimum order are roots.  On the AS-level graph
    (connected, so one 2-clique community) this is a single tree — the
    object drawn in Figure 4.2.
    """

    def __init__(
        self,
        hierarchy: CommunityHierarchy,
        *,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        tracer = tracer if tracer is not None else NULL_TRACER
        self.hierarchy = hierarchy
        self._nodes: dict[str, TreeNode] = {}
        self.roots: list[TreeNode] = []
        with tracer.span("tree.build") as span:
            for k in hierarchy.orders:
                for community in hierarchy[k]:
                    node = TreeNode(community)
                    self._nodes[community.label] = node
                    if k == hierarchy.min_k:
                        self.roots.append(node)
                    else:
                        parent_community = find_parent(hierarchy, community)
                        parent = self._nodes[parent_community.label]
                        node.parent = parent
                        parent.children.append(node)
            self._apex = self._find_apex()
            self._main_labels = self._resolve_main_labels()
            span.set("nodes", len(self._nodes))
            span.set("roots", len(self.roots))
        if metrics is not None:
            metrics.inc("tree.nodes", len(self._nodes))
            metrics.inc("tree.parallel", len(self._nodes) - len(self._main_labels))
            metrics.set_gauge("tree.depth", hierarchy.max_k - hierarchy.min_k + 1)

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def node(self, label: str) -> TreeNode:
        """The tree node labelled ``label`` (raises KeyError if absent)."""
        try:
            return self._nodes[label]
        except KeyError as exc:
            raise KeyError(f"no community {label!r} in tree") from exc

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[TreeNode]:
        return iter(self._nodes.values())

    def _find_apex(self) -> TreeNode:
        """The maximum-order community (index 0, i.e. largest, if tied)."""
        top_cover = self.hierarchy[self.hierarchy.max_k]
        return self._nodes[top_cover[0].label]

    def _resolve_main_labels(self) -> set[str]:
        labels = {self._apex.label}
        labels.update(node.label for node in self._apex.ancestors())
        return labels

    @property
    def apex(self) -> TreeNode:
        """The deepest community — the paper's 36-clique community."""
        return self._apex

    def is_main(self, community: Community | str) -> bool:
        """True iff the community is on the apex's ancestor chain.

        These are the paper's *main communities*: there is exactly one
        per order, and each contains all main communities of higher
        order (Section 4, by recursive application of Expression 3.1).
        """
        label = community if isinstance(community, str) else community.label
        return label in self._main_labels

    def main_chain(self) -> list[TreeNode]:
        """Main communities ascending in k (root first, apex last)."""
        chain = [self._apex, *self._apex.ancestors()]
        chain.reverse()
        return chain

    def main_community(self, k: int) -> Community:
        """The main community of order ``k``."""
        for node in self.main_chain():
            if node.k == k:
                return node.community
        raise KeyError(f"no main community at order {k}")

    def parallel_communities(self, k: int | None = None) -> list[Community]:
        """All parallel (non-main) communities, optionally at one order."""
        return [
            node.community
            for node in self._nodes.values()
            if node.label not in self._main_labels and (k is None or node.k == k)
        ]

    def parallel_branches(self, *, min_length: int = 2) -> list[list[TreeNode]]:
        """Maximal descending chains of parallel communities.

        A *branch* is a path k, k+1, ... of nested parallel communities
        where each node is its parent's continuation (the paper's
        [11:17], [18:20], [26:29], [31:35] branch ranges in Figure 4.3,
        and the MSK-IX k=18/19/20 example).  A chain starts at a
        parallel community whose parent is main (or a root) and follows
        single-child descent; only chains of at least ``min_length``
        nodes are reported.
        """
        branches: list[list[TreeNode]] = []
        for node in self._nodes.values():
            if node.label in self._main_labels:
                continue
            parent = node.parent
            starts_branch = parent is None or self.is_main(parent.community)
            if not starts_branch:
                continue
            chain = [node]
            cursor = node
            while len(cursor.children) == 1 and not self.is_main(cursor.children[0].community):
                cursor = cursor.children[0]
                chain.append(cursor)
            if len(chain) >= min_length:
                branches.append(chain)
        branches.sort(key=lambda c: (-len(c), c[0].label))
        return branches

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def to_dot(self, *, band_of=None) -> str:
        """Graphviz DOT source in the style of Figure 4.2.

        Main communities are filled; parallel communities unfilled.
        Nodes of equal order share a rank (the figure's horizontal
        layers).  ``band_of``, if given, maps an order k to a band name
        ('root' / 'trunk' / 'crown') used to colour the layers like the
        figure's three brackets.
        """
        band_colors = {"root": "#d9e8f5", "trunk": "#e9f5d9", "crown": "#f5e0d9"}
        lines = ["digraph kclique_community_tree {", "  rankdir=TB;", '  node [shape=circle];']
        by_order: dict[int, list[TreeNode]] = {}
        for node in self._nodes.values():
            by_order.setdefault(node.k, []).append(node)
        for k in sorted(by_order):
            fill = ""
            if band_of is not None:
                color = band_colors.get(band_of(k))
                if color:
                    fill = f' fillcolor="{color}"'
            for node in sorted(by_order[k], key=lambda n: n.label):
                if node.label in self._main_labels:
                    style = '"filled,bold"' if fill else "filled"
                else:
                    style = "filled" if fill else "solid"
                lines.append(f'  "{node.label}" [style={style}{fill}];')
            ranked = sorted(by_order[k], key=lambda n: n.label)
            members = " ".join(f'"{node.label}";' for node in ranked)
            lines.append(f"  {{ rank=same; {members} }}")
        for node in self._nodes.values():
            if node.parent is not None:
                lines.append(f'  "{node.parent.label}" -> "{node.label}";')
        lines.append("}")
        return "\n".join(lines)

    def to_ascii(self, *, max_children: int | None = None) -> str:
        """Indented text rendering; ``max_children`` truncates wide levels.

        Main communities are marked with ``*`` (the filled nodes of the
        figure).
        """
        out: list[str] = []

        def render(node: TreeNode, depth: int) -> None:
            mark = "*" if node.label in self._main_labels else " "
            out.append(f"{'  ' * depth}{mark} {node.label} (size={node.community.size})")
            children = sorted(node.children, key=lambda c: (not self.is_main(c.community), c.label))
            shown = children if max_children is None else children[:max_children]
            for child in shown:
                render(child, depth + 1)
            hidden = len(children) - len(shown)
            if hidden > 0:
                out.append(f"{'  ' * (depth + 1)}  ... {hidden} more")

        for root in sorted(self.roots, key=lambda r: r.label):
            render(root, 0)
        return "\n".join(out)

    def __repr__(self) -> str:
        return (
            f"CommunityTree(nodes={len(self._nodes)}, roots={len(self.roots)}, "
            f"apex={self._apex.label})"
        )
