"""Extension — AS failure impact follows the community tree.

Failing one AS and re-routing shows which layer of the tree carries the
Internet: a crown carrier's failure touches many policy paths (almost
all of which reroute — multi-homing works), a national provider's
touches few, a stub's none.  The impact ranking is the routing-side
reading of the crown/trunk/root hierarchy.
"""

from repro.report.figures import ascii_table
from repro.routing import infer_relationships, simulate_as_failure
from repro.topology.generator import GeneratorConfig, InternetTopologyGenerator

_GENERATOR = InternetTopologyGenerator(GeneratorConfig.tiny(), seed=7)
_DATASET = _GENERATOR.generate()


def test_as_failure_impact_by_role(benchmark, emit):
    relationships = infer_relationships(_DATASET)
    graph = _DATASET.graph

    targets = {
        "pool_carrier (crown)": _GENERATOR.roles["pool_carrier"][0],
        "tier1": _GENERATOR.roles["tier1"][0],
        "provider (root)": _GENERATOR.roles["provider"][0],
        "stub": next(
            a for a in _GENERATOR.roles["stub"] if graph.degree(a) == 1
        ),
    }
    impacts = {}
    for label, asn in targets.items():
        impacts[label] = simulate_as_failure(graph, relationships, asn, seed=3)
    benchmark.pedantic(
        lambda: simulate_as_failure(
            graph, relationships, targets["pool_carrier (crown)"], seed=3
        ),
        rounds=1,
        iterations=1,
    )

    rows = [
        [
            label,
            impact.n_pairs_sampled,
            impact.lost_pairs,
            impact.rerouted_pairs,
            round(impact.mean_stretch, 2),
        ]
        for label, impact in impacts.items()
    ]
    table = ascii_table(
        ["failed AS (role)", "paths affected", "lost", "rerouted", "mean stretch"],
        rows,
        title="Single-AS failure impact under Gao-Rexford rerouting",
    )
    footer = (
        "impact ranking mirrors the tree: crown carriers > tier-1/provider "
        "> stubs; multi-homing reroutes nearly everything at small stretch"
    )
    emit("as_resilience", f"{table}\n{footer}")

    assert impacts["stub"].n_pairs_sampled == 0
    assert (
        impacts["pool_carrier (crown)"].n_pairs_sampled
        >= impacts["provider (root)"].n_pairs_sampled
    )
    for label in ("pool_carrier (crown)", "tier1"):
        impact = impacts[label]
        if impact.n_pairs_sampled:
            assert impact.rerouted_pairs >= impact.lost_pairs
