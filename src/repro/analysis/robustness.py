"""Measurement-robustness analysis.

The paper's community structure is computed on a *measured* topology —
a merge of incomplete campaigns (Section 2.1) — and its related work
([3]) warns about measurement biases.  This module quantifies how the
k-clique community structure degrades under partial observation:

1. observe the ground truth through the simulated campaigns (or a
   uniform edge sample);
2. re-run CPM on the observed graph;
3. match each true community to its best counterpart by Jaccard
   similarity, per order k;
4. report recall per tree band.

Expected (and benchmarked) shape: crown communities — exact cliques at
IXPs, traversed by every path — survive essentially intact, while the
sparse root-band periphery is where coverage loss bites first.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..compare.covers import recall_at
from ..core.lightweight import LightweightParallelCPM
from ..graph.undirected import Graph
from .bands import BandBoundaries

__all__ = ["BandRecall", "RobustnessReport", "uniform_edge_sample", "community_recall"]


def uniform_edge_sample(graph: Graph, keep_fraction: float, rng: random.Random) -> Graph:
    """Keep each edge independently with the given probability."""
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError(f"keep_fraction must be in (0, 1], got {keep_fraction}")
    sampled = Graph()
    sampled.add_nodes_from(graph.nodes())
    for u, v in graph.edges():
        if rng.random() < keep_fraction:
            sampled.add_edge(u, v)
    return sampled


@dataclass(frozen=True)
class BandRecall:
    band: str
    k_range: tuple[int, int]
    n_reference_communities: int
    recall: float


@dataclass
class RobustnessReport:
    """Per-band and per-order recall of true communities."""

    per_k: dict[int, float]
    per_band: list[BandRecall]
    observed_max_k: int
    reference_max_k: int

    def overall_recall(self) -> float:
        """Unweighted mean of the per-order recalls."""
        if not self.per_k:
            return 0.0
        return sum(self.per_k.values()) / len(self.per_k)


def community_recall(
    truth: Graph,
    observed: Graph,
    bands: BandBoundaries,
    *,
    threshold: float = 0.5,
    min_k: int = 3,
) -> RobustnessReport:
    """How much of the true community structure the observation keeps.

    Communities at k = 2 are excluded by default (the giant component
    is trivially 'recalled').  Orders missing entirely from the
    observed hierarchy score recall 0.
    """
    truth_hierarchy = LightweightParallelCPM(truth).run()
    observed_hierarchy = LightweightParallelCPM(observed).run()

    per_k: dict[int, float] = {}
    counts: dict[int, int] = {}
    for k in truth_hierarchy.orders:
        if k < min_k:
            continue
        reference = [set(c.members) for c in truth_hierarchy[k]]
        counts[k] = len(reference)
        if k not in observed_hierarchy:
            per_k[k] = 0.0
            continue
        candidate = [set(c.members) for c in observed_hierarchy[k]]
        per_k[k] = recall_at(reference, candidate, threshold=threshold)

    def band_row(name: str, lo: int, hi: int) -> BandRecall:
        orders = [k for k in per_k if lo <= k <= hi]
        weight = sum(counts[k] for k in orders)
        if weight == 0:
            return BandRecall(name, (lo, hi), 0, 0.0)
        recall = sum(per_k[k] * counts[k] for k in orders) / weight
        return BandRecall(name, (lo, hi), weight, recall)

    max_k = truth_hierarchy.max_k
    per_band = [
        band_row("root", min_k, bands.root_max),
        band_row("trunk", bands.root_max + 1, bands.crown_min - 1),
        band_row("crown", bands.crown_min, max_k),
    ]
    return RobustnessReport(
        per_k=per_k,
        per_band=per_band,
        observed_max_k=observed_hierarchy.max_k,
        reference_max_k=max_k,
    )
