"""Extension — communities are not a degree artifact.

Degree distributions explain much of the AS graph's structure, so a
fair question about Chapter 4 is whether k-clique communities are just
what any graph with this degree sequence would show.  The null test:
double-edge-swap randomisation preserves every AS's degree exactly
while destroying correlated structure.  If the communities were a
degree artifact they would survive; instead the tree collapses — the
maximum order plummets and the mid-k covers empty out, while the real
topology's IXP meshes put it far outside the null ensemble.
"""

import random

from repro.core.lightweight import LightweightParallelCPM
from repro.graph import degree_preserving_null
from repro.report.figures import ascii_table
from repro.topology.generator import GeneratorConfig, generate_topology

_DATASET = generate_topology(GeneratorConfig.tiny(), seed=7)


def test_degree_preserving_null_model(benchmark, emit):
    real = _DATASET.graph
    null = benchmark.pedantic(
        lambda: degree_preserving_null(real, rng=random.Random(5)),
        rounds=1,
        iterations=1,
    )
    assert null.degrees() == real.degrees()

    real_hierarchy = LightweightParallelCPM(real).run()
    null_hierarchy = LightweightParallelCPM(null).run()

    rows = []
    for k in (3, 4, 5, 6, 8, 10, 12):
        real_n = len(real_hierarchy[k]) if k in real_hierarchy else 0
        null_n = len(null_hierarchy[k]) if k in null_hierarchy else 0
        rows.append([k, real_n, null_n])
    table = ascii_table(
        ["k", "communities (real)", "communities (degree-matched null)"],
        rows,
        title="k-clique communities: real topology vs degree-preserving rewiring",
    )
    footer = (
        f"max order: real {real_hierarchy.max_k} vs null {null_hierarchy.max_k}; "
        f"total communities: real {real_hierarchy.total_communities} vs "
        f"null {null_hierarchy.total_communities} — same degree sequence, "
        "no IXP meshes, no community tree"
    )
    emit("null_model", f"{table}\n{footer}")

    assert null_hierarchy.max_k < 0.7 * real_hierarchy.max_k
    deep_real = sum(len(real_hierarchy[k]) for k in real_hierarchy.orders if k >= 6)
    deep_null = sum(len(null_hierarchy[k]) for k in null_hierarchy.orders if k >= 6)
    assert deep_null < deep_real
