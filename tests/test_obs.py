"""Tests for the observability subsystem (tracing, metrics, manifests).

Covers the contract the rest of the pipeline relies on: the no-op
tracer really is free, spans nest, manifests survive a JSON round
trip, the instrumented LP-CPM run is oblivious to worker count (same
hierarchy, complete trace either way), and the percolation prefilter
drops exactly the pairs that cannot merge anything.
"""

import json
import time

import pytest

from repro.cli import main
from repro.core.lightweight import LightweightParallelCPM, _percolate_orders
from repro.obs import (
    NULL_TRACER,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullTracer,
    RunManifest,
    Tracer,
    graph_fingerprint,
)


@pytest.fixture(scope="module")
def saved_dataset(tmp_path_factory, tiny_dataset):
    path = tmp_path_factory.mktemp("obs-data") / "bundle"
    tiny_dataset.save(path)
    return str(path)


def _hierarchy_signature(hierarchy):
    return {
        k: sorted(sorted(c.members) for c in cover)
        for k, cover in hierarchy.items()
    }


class TestNullTracer:
    def test_span_is_singleton_noop(self):
        a = NULL_TRACER.span("anything", attr=1)
        b = NULL_TRACER.span("else")
        assert a is b
        with a as span:
            span.set("x", 1)
            span.add("y")
        assert NULL_TRACER.records == []
        assert not NULL_TRACER.enabled

    def test_fresh_instance_also_noop(self):
        tracer = NullTracer()
        with tracer.span("phase"):
            pass
        assert tracer.records == []

    def test_no_measurable_overhead(self):
        """10⁵ no-op spans must cost ~nothing (well under a second)."""
        n = 100_000
        start = time.perf_counter()
        for _ in range(n):
            with NULL_TRACER.span("hot"):
                pass
        elapsed = time.perf_counter() - start
        # A real tracer does ~1-2 µs of bookkeeping per span; the no-op
        # path is an order of magnitude cheaper.  The bound is generous
        # so a loaded CI machine cannot flake it.
        assert elapsed < 2.0


class TestTracer:
    def test_spans_nest(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner.a"):
                pass
            with tracer.span("inner.b") as b:
                b.add("count", 3)
            outer.set("phases", 2)
        records = {r.name: r for r in tracer.records}
        assert set(records) == {"outer", "inner.a", "inner.b"}
        outer_rec = records["outer"]
        assert outer_rec.parent_id is None
        assert outer_rec.depth == 0
        for name in ("inner.a", "inner.b"):
            assert records[name].parent_id == outer_rec.span_id
            assert records[name].depth == 1
        # Children close before the parent, and the parent's wall time
        # covers both children.
        assert tracer.records[-1].name == "outer"
        child_wall = records["inner.a"].wall_seconds + records["inner.b"].wall_seconds
        assert outer_rec.wall_seconds >= child_wall
        assert outer_rec.attrs["phases"] == 2
        assert records["inner.b"].attrs["count"] == 3

    def test_memory_peaks_fold_into_parent(self):
        tracer = Tracer(memory=True)
        with tracer.span("parent"):
            with tracer.span("child"):
                blob = [0] * 200_000  # ~1.6 MB of list payload
                del blob
        tracer.close()
        records = {r.name: r for r in tracer.records}
        assert records["child"].peak_alloc_bytes > 1_000_000
        # The child's peak happened while the parent was open too.
        assert records["parent"].peak_alloc_bytes >= records["child"].peak_alloc_bytes

    def test_write_jsonl(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a", k=5):
            pass
        out = tracer.write_jsonl(tmp_path / "trace.jsonl")
        lines = out.read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["name"] == "a"
        assert record["attrs"] == {"k": 5}
        assert record["wall_seconds"] >= 0

    def test_find(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        with tracer.span("x"):
            pass
        assert len(tracer.find("x")) == 2
        assert tracer.find("missing") == []


class TestMetrics:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.inc("c", 2)
        registry.inc("c")
        registry.set_gauge("g", 7.5)
        registry.observe("h", 1.0)
        registry.observe("h", 3.0)
        payload = registry.to_dict()
        assert payload["counters"]["c"] == 3
        assert payload["gauges"]["g"] == 7.5
        hist = payload["histograms"]["h"]
        assert hist["count"] == 2
        assert hist["min"] == 1.0
        assert hist["max"] == 3.0

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("c", 1)
        b.inc("c", 2)
        a.set_gauge("g", 1.0)
        b.set_gauge("g", 9.0)
        a.observe("h", 5.0)
        b.observe("h", 1.0)
        a.merge(b)
        merged = a.to_dict()
        assert merged["counters"]["c"] == 3
        assert merged["gauges"]["g"] == 9.0
        assert merged["histograms"]["h"]["count"] == 2
        assert merged["histograms"]["h"]["min"] == 1.0

    def test_repr_smoke(self):
        assert "c" in repr(Counter("c"))
        assert "g" in repr(Gauge("g"))
        assert "h" in repr(Histogram("h"))

    def test_write_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.inc("done")
        out = registry.write_json(tmp_path / "metrics.json")
        assert json.loads(out.read_text())["counters"]["done"] == 1


class TestRunManifest:
    def test_round_trip(self, tmp_path, ring_graph):
        tracer = Tracer()
        with tracer.span("cpm.run"):
            with tracer.span("cpm.enumerate"):
                pass
        registry = MetricsRegistry()
        registry.inc("cliques.enumerated", 4)
        manifest = RunManifest.collect(
            label="test",
            graph=ring_graph,
            config={"workers": 2, "max_k": 6},
            tracer=tracer,
            metrics=registry,
        )
        path = manifest.save(tmp_path / "manifest.json")
        loaded = RunManifest.load(path)
        assert loaded.to_dict() == manifest.to_dict()
        assert loaded.label == "test"
        assert loaded.config["workers"] == 2
        assert loaded.fingerprint == graph_fingerprint(ring_graph)
        assert loaded.metrics["counters"]["cliques.enumerated"] == 4
        assert loaded.span("cpm.enumerate")["name"] == "cpm.enumerate"
        names = [name for name, _, _, _ in loaded.phase_table()]
        assert names == ["cpm.enumerate"]

    def test_fingerprint_is_order_independent(self, ring_graph):
        fp = graph_fingerprint(ring_graph)
        assert fp["nodes"] == 20
        assert fp["edges"] == 44
        again = graph_fingerprint(ring_graph)
        assert fp == again


class TestInstrumentedRun:
    EXPECTED_SPANS = {
        "cpm.run",
        "cpm.enumerate",
        "cpm.overlap",
        "cpm.overlap.index",
        "cpm.percolate",
        "cpm.hierarchy",
        "hierarchy.build",
    }

    def _run(self, graph, workers, kernel="bitset"):
        tracer = Tracer()
        metrics = MetricsRegistry()
        cpm = LightweightParallelCPM(
            graph, workers=workers, kernel=kernel, tracer=tracer, metrics=metrics
        )
        hierarchy = cpm.run(max_k=6)
        tracer.close()
        return hierarchy, tracer, metrics

    @pytest.mark.parametrize("kernel", ["bitset", "set"])
    def test_worker_count_is_invisible(self, ring_graph, kernel):
        h1, t1, m1 = self._run(ring_graph, 1, kernel)
        h2, t2, m2 = self._run(ring_graph, 2, kernel)
        assert _hierarchy_signature(h1) == _hierarchy_signature(h2)
        assert h1.parent_labels == h2.parent_labels
        for tracer in (t1, t2):
            assert self.EXPECTED_SPANS <= {r.name for r in tracer.records}
        for metrics in (m1, m2):
            counters = metrics.to_dict()["counters"]
            # 4 pentagons + 4 connecting-edge cliques.
            assert counters["cliques.enumerated"] == 8
            if kernel == "set":
                # Every clique pair sharing a node is counted.
                assert counters["overlap.pairs"] == 12
            else:
                # The pentagons share no nodes with each other, so all 12
                # co-occurring pairs involve a 2-clique connector — excluded
                # from truncated counting; order-2 connectivity is carried
                # by the chain pairs instead (docs/performance.md).
                assert counters["overlap.pairs"] == 0
                assert counters["overlap.chain_pairs"] == 8
            assert counters["hierarchy.communities"] > 0

    def test_kernels_emit_identical_hierarchies(self, ring_graph):
        hb, _, _ = self._run(ring_graph, 1, "bitset")
        hs, _, _ = self._run(ring_graph, 1, "set")
        assert _hierarchy_signature(hb) == _hierarchy_signature(hs)
        assert hb.parent_labels == hs.parent_labels

    def test_run_span_records_kernel(self, ring_graph):
        for kernel in ("bitset", "set"):
            _, tracer, _ = self._run(ring_graph, 1, kernel)
            run_record = next(r for r in tracer.records if r.name == "cpm.run")
            assert run_record.attrs["kernel"] == kernel

    def test_default_run_is_unobserved(self, ring_graph):
        cpm = LightweightParallelCPM(ring_graph)
        assert cpm.tracer is NULL_TRACER
        hierarchy = cpm.run(max_k=6)
        assert len(hierarchy[5]) == 4


class TestPercolatePrefilter:
    def test_matches_unfiltered_reference(self):
        # 6 cliques, overlaps spanning 1..4 so several thresholds bite.
        sizes = [6, 6, 5, 5, 4, 4]
        pairs = [
            (0, 1, 4),
            (0, 2, 3),
            (1, 2, 2),
            (2, 3, 2),
            (3, 4, 1),
            (4, 5, 1),
        ]

        def reference(order):
            # Direct per-order union-find over all pairs, no prefilter.
            parent = list(range(len(sizes)))

            def find(x):
                while parent[x] != x:
                    parent[x] = parent[parent[x]]
                    x = parent[x]
                return x

            members = [i for i, s in enumerate(sizes) if s >= order]
            alive = set(members)
            for i, j, ov in pairs:
                if ov >= order - 1 and i in alive and j in alive:
                    parent[find(i)] = find(j)
            groups = {}
            for i in members:
                groups.setdefault(find(i), []).append(i)
            return sorted(sorted(g) for g in groups.values())

        result, stats = _percolate_orders([3, 4, 5], sizes, pairs)
        for order in (3, 4, 5):
            assert sorted(sorted(g) for g in result[order]) == reference(order)
        # min(orders) - 1 == 2, so the two overlap-1 pairs are dropped.
        assert stats["skipped_pairs"] == 2
        assert stats["pairs_in"] == len(pairs)

    def test_low_order_batch_skips_nothing(self):
        sizes = [3, 3]
        pairs = [(0, 1, 1)]
        result, stats = _percolate_orders([2], sizes, pairs)
        assert stats["skipped_pairs"] == 0
        assert result[2] == [[0, 1]]


class TestCLIObservability:
    def test_trace_and_metrics_flags(self, tmp_path, saved_dataset, capsys):
        trace = tmp_path / "trace.jsonl"
        manifest_path = tmp_path / "manifest.json"
        code = main(
            [
                "communities",
                saved_dataset,
                "--max-k",
                "5",
                "--trace",
                str(trace),
                "--metrics",
                str(manifest_path),
            ]
        )
        capsys.readouterr()
        assert code == 0
        span_names = {json.loads(line)["name"] for line in trace.read_text().splitlines()}
        assert "cpm.run" in span_names
        assert "cpm.enumerate" in span_names
        manifest = RunManifest.load(manifest_path)
        assert manifest.label == "cli.communities"
        assert manifest.fingerprint is not None
        assert manifest.metrics["counters"]["cliques.enumerated"] > 0
        phases = manifest.phase_table()
        assert phases, "expected depth-1 phase spans in the manifest"

    def test_metrics_flag_alone(self, tmp_path, saved_dataset, capsys):
        manifest_path = tmp_path / "manifest.json"
        assert main(["tree", saved_dataset, "--metrics", str(manifest_path)]) == 0
        capsys.readouterr()
        manifest = RunManifest.load(manifest_path)
        assert manifest.metrics["counters"]["tree.nodes"] > 0
