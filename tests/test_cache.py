"""Tests for the on-disk clique/overlap cache.

The contract: a second run over the same graph skips enumeration +
overlap entirely (no ``cpm.enumerate``/``cpm.overlap`` spans, a
``cache.hits`` counter instead) while producing the identical
hierarchy; a different graph, kernel, or schema version misses; torn
entries degrade to misses.
"""

import json
import pickle

import pytest

from repro.core import CliqueCache
from repro.core.cache import CACHE_SCHEMA_VERSION, default_cache_dir
from repro.core.lightweight import LightweightParallelCPM
from repro.graph import ring_of_cliques
from repro.obs import MetricsRegistry, RunManifest, Tracer

from .conftest import random_graph


def _signature(hierarchy):
    return {
        k: sorted(sorted(map(repr, c.members)) for c in cover)
        for k, cover in hierarchy.items()
    }


def _run(graph, cache, kernel="bitset", workers=1):
    tracer = Tracer()
    metrics = MetricsRegistry()
    cpm = LightweightParallelCPM(
        graph, workers=workers, kernel=kernel, cache=cache, tracer=tracer, metrics=metrics
    )
    hierarchy = cpm.run()
    tracer.close()
    return hierarchy, cpm, tracer, metrics


class TestCliqueCacheStore:
    def test_round_trip(self, tmp_path):
        cache = CliqueCache(tmp_path)
        assert cache.load("deadbeef", "bitset") is None
        cache.store("deadbeef", "bitset", {"answer": 42})
        assert cache.load("deadbeef", "bitset") == {"answer": 42}

    def test_kernel_and_schema_partition_the_key(self, tmp_path):
        cache = CliqueCache(tmp_path)
        cache.store("abc", "bitset", 1)
        assert cache.load("abc", "set") is None
        assert f"v{CACHE_SCHEMA_VERSION}" in cache.path_for("abc", "bitset").name

    def test_torn_entry_is_a_miss(self, tmp_path):
        cache = CliqueCache(tmp_path)
        cache.store("abc", "bitset", [1, 2, 3])
        path = cache.path_for("abc", "bitset")
        path.write_bytes(pickle.dumps([1, 2, 3])[:-4])
        assert cache.load("abc", "bitset") is None

    def test_env_var_overrides_location(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "alt"))
        assert default_cache_dir() == tmp_path / "alt"
        assert CliqueCache().root == tmp_path / "alt"


class TestCachedRuns:
    @pytest.mark.parametrize("kernel", ["bitset", "set"])
    def test_second_run_skips_enumeration_and_overlap(self, tmp_path, kernel):
        graph = ring_of_cliques(4, 5)
        cache = CliqueCache(tmp_path)

        h1, cpm1, t1, m1 = _run(graph, cache, kernel)
        counters1 = m1.to_dict()["counters"]
        assert counters1["cache.misses"] == 1
        assert counters1["cache.writes"] == 1
        assert not cpm1.stats.cache_hit
        assert {"cpm.enumerate", "cpm.overlap"} <= {r.name for r in t1.records}

        h2, cpm2, t2, m2 = _run(graph, cache, kernel)
        counters2 = m2.to_dict()["counters"]
        assert counters2["cache.hits"] == 1
        assert "cache.writes" not in counters2
        assert cpm2.stats.cache_hit
        names2 = {r.name for r in t2.records}
        assert "cpm.enumerate" not in names2
        assert "cpm.overlap" not in names2
        assert {"cpm.percolate", "cpm.hierarchy"} <= names2
        run_span = next(r for r in t2.records if r.name == "cpm.run")
        assert run_span.attrs["cache"] == "hit"

        assert _signature(h1) == _signature(h2)
        assert h1.parent_labels == h2.parent_labels
        assert cpm1.stats.n_cliques == cpm2.stats.n_cliques
        assert cpm1.stats.n_overlap_pairs == cpm2.stats.n_overlap_pairs

    def test_cached_run_matches_uncached_on_random_graph(self, tmp_path):
        graph = random_graph(50, 0.25, seed=17)
        cache = CliqueCache(tmp_path)
        fresh, _, _, _ = _run(graph, None)
        _run(graph, cache)
        cached, cpm, _, _ = _run(graph, cache, workers=4)
        assert cpm.stats.cache_hit
        assert _signature(fresh) == _signature(cached)
        assert fresh.parent_labels == cached.parent_labels

    def test_different_graphs_do_not_collide(self, tmp_path):
        cache = CliqueCache(tmp_path)
        _run(ring_of_cliques(4, 5), cache)
        _, cpm, _, metrics = _run(ring_of_cliques(5, 4), cache)
        assert not cpm.stats.cache_hit
        assert metrics.to_dict()["counters"]["cache.misses"] == 1

    def test_no_cache_emits_no_cache_counters(self):
        _, cpm, _, metrics = _run(ring_of_cliques(3, 4), None)
        counters = metrics.to_dict()["counters"]
        assert not any(name.startswith("cache.") for name in counters)
        assert not cpm.stats.cache_hit


class TestCacheCLI:
    @pytest.fixture()
    def saved_dataset(self, tmp_path_factory, tiny_dataset):
        path = tmp_path_factory.mktemp("cache-cli") / "bundle"
        tiny_dataset.save(path)
        return str(path)

    def test_cache_flag_round_trip(self, tmp_path, monkeypatch, saved_dataset, capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        manifest1 = tmp_path / "m1.json"
        manifest2 = tmp_path / "m2.json"
        args = ["communities", saved_dataset, "--max-k", "5", "--cache"]

        assert main(args + ["--metrics", str(manifest1)]) == 0
        first = capsys.readouterr().out
        assert "clique cache: hit" not in first
        loaded1 = RunManifest.load(manifest1)
        assert loaded1.metrics["counters"]["cache.misses"] == 1
        assert loaded1.span("cpm.enumerate") is not None

        assert main(args + ["--metrics", str(manifest2)]) == 0
        second = capsys.readouterr().out
        assert "clique cache: hit" in second
        loaded2 = RunManifest.load(manifest2)
        assert loaded2.metrics["counters"]["cache.hits"] == 1
        assert loaded2.span("cpm.enumerate") is None
        assert loaded2.span("cpm.overlap") is None
        assert loaded2.span("cpm.percolate") is not None
        assert loaded2.config["cache"] is True

    def test_no_cache_restores_default_behaviour(
        self, tmp_path, monkeypatch, saved_dataset, capsys
    ):
        from repro.cli import main

        cache_dir = tmp_path / "cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
        manifest = tmp_path / "m.json"
        code = main(
            [
                "communities",
                saved_dataset,
                "--max-k",
                "5",
                "--no-cache",
                "--metrics",
                str(manifest),
            ]
        )
        capsys.readouterr()
        assert code == 0
        payload = json.loads(manifest.read_text())
        assert not any(
            name.startswith("cache.") for name in payload["metrics"]["counters"]
        )
        assert not cache_dir.exists()
