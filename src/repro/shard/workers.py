"""Worker-side task functions of the sharded CPM pipeline.

Every function here is a module-level picklable callable dispatched
through :class:`~repro.runner.supervise.PoolSupervisor` (or invoked
directly in the driver when ``workers == 1``).  Static per-phase
payload travels once per worker process via the pool initializer
(:func:`install_shared`); tasks carry only their shard-specific part.

Memory model: enumeration workers never receive the bitset adjacency
(O(n²/8) bytes per process at scale).  They receive the CSR arrays
(~12 bytes per edge) and lazily materialise big-int adjacency rows for
the forward-neighborhood closure of the vertices they own, memoised
per process — a shard's resident footprint is its closure, not the
graph.
"""

from __future__ import annotations

import time
from bisect import bisect_right

from ..core.cliques import _bron_kerbosch_pivot
from ..core.unionfind import IntUnionFind
from ..graph.undirected import Graph
from ..obs.tracing import max_rss_kib
from ..obs.worker import current_metrics, worker_span

__all__ = [
    "install_shared",
    "enumerate_shard_bitset",
    "enumerate_shard_set",
    "count_shard_words",
    "reduce_shard_bucket",
]

# Installed once per worker process by the pool initializer; the driver
# installs the same payload before dispatch so serial execution and the
# supervisor's in-driver fallback hit identical state.
_SHARED: dict = {}


def install_shared(payload: dict) -> None:
    """Install the phase payload this process's shard tasks read.

    Runs as the worker-pool initializer (once per worker, not per
    task) and in the driver process itself, so serial dispatch and the
    supervisor's degradation fallback see the same shared state.
    Replacing the dict wholesale also drops any per-process memos
    (``_rows``/``_graph``) built against a previous phase's payload.
    """
    global _SHARED
    _SHARED = payload


# ----------------------------------------------------------------------
# Enumeration
# ----------------------------------------------------------------------
def _bitset_rows() -> dict[int, int]:
    """The process-local adjacency-row memo (survives across tasks)."""
    rows = _SHARED.get("_rows")
    if rows is None:
        rows = _SHARED["_rows"] = {}
    return rows


def _build_rows(vertices: list[int], rows: dict[int, int]) -> int:
    """Materialise big-int adjacency rows for ``vertices`` + neighbors.

    The Bron–Kerbosch subtree rooted at ``v`` only reads rows inside
    ``{v} ∪ N(v)`` (candidates, excluded set and pivot scans all live
    in ``N(v)``), so building the one-hop closure up front lets the
    recursion index ``rows`` like the serial kernel indexes
    ``csr.bitsets``.  Returns the number of rows built.
    """
    indptr = _SHARED["indptr"]
    indices = _SHARED["indices"]
    row_bytes = _SHARED["row_bytes"]
    built = 0
    pending = []
    for v in vertices:
        if v not in rows:
            pending.append(v)
        pending.extend(u for u in indices[indptr[v] : indptr[v + 1]] if u not in rows)
    for u in pending:
        if u in rows:
            continue
        buf = bytearray(row_bytes)
        for w in indices[indptr[u] : indptr[u + 1]]:
            buf[w >> 3] |= 1 << (w & 7)
        rows[u] = int.from_bytes(buf, "little")
        built += 1
    return built


def _vertex_cliques_bitset(v: int, rows: dict[int, int], emit, counters: dict) -> None:
    """The serial bitset kernel's per-vertex subtree, over memoised rows."""
    stack = [v]

    def expand(p: int, x: int) -> None:
        counters["calls"] += 1
        if not p:
            if not x and len(stack) >= 2:
                emit(tuple(stack))
            return
        cand = p | x
        best = -1
        pivot_nbrs = 0
        m = cand
        while m:
            low = m & -m
            count = (rows[low.bit_length() - 1] & p).bit_count()
            if count > best:
                best = count
                pivot_nbrs = rows[low.bit_length() - 1]
            m ^= low
        branch = p & ~pivot_nbrs
        counters["pivot_candidates"] += cand.bit_count()
        counters["branches"] += branch.bit_count()
        while branch:
            low = branch & -branch
            nv = rows[low.bit_length() - 1]
            stack.append(low.bit_length() - 1)
            expand(p & nv, x & nv)
            stack.pop()
            p ^= low
            x |= low
            branch ^= low

    nv = rows[v]
    later = (nv >> (v + 1)) << (v + 1)
    earlier = nv & ((1 << v) - 1)
    expand(later, earlier)


def enumerate_shard_bitset(task: tuple[int, tuple[int, ...]]) -> tuple[dict, dict]:
    """Worker: enumerate the Bron–Kerbosch subtrees one shard owns.

    Returns ``{vertex: [clique tuples]}`` so the driver can reassemble
    cliques in global degeneracy order — the serial kernel's exact
    emission sequence — regardless of shard boundaries.
    """
    shard_id, owned = task
    t0, c0 = time.perf_counter(), time.process_time()
    with worker_span(
        "worker.shard.enumerate", shard=shard_id, vertices=len(owned)
    ) as span:
        rows = _bitset_rows()
        rows_built = _build_rows(list(owned), rows)
        counters = {"calls": 0, "branches": 0, "pivot_candidates": 0}
        by_vertex: dict[int, list[tuple[int, ...]]] = {}
        n_cliques = 0
        for v in owned:
            out: list[tuple[int, ...]] = []
            _vertex_cliques_bitset(v, rows, out.append, counters)
            by_vertex[v] = out
            n_cliques += len(out)
        span.set("cliques", n_cliques)
        span.set("rows_built", rows_built)
        registry = current_metrics()
        if registry is not None:
            registry.inc("worker.shard.cliques", n_cliques)
            registry.observe("worker.shard.rows_built", rows_built)
    stats = {
        "shard": shard_id,
        "vertices": len(owned),
        "cliques": n_cliques,
        "rows_built": rows_built,
        "bk_calls": counters["calls"],
        "bk_branches": counters["branches"],
        "bk_pivot_candidates": counters["pivot_candidates"],
        "wall_seconds": time.perf_counter() - t0,
        "cpu_seconds": time.process_time() - c0,
        "max_rss_kib": max_rss_kib(),
    }
    return by_vertex, stats


def _set_graph() -> tuple[Graph, dict]:
    """Rebuild (once per process) the label graph and rank map."""
    graph = _SHARED.get("_graph")
    if graph is None:
        graph = Graph(_SHARED["edges"])
        graph.add_nodes_from(_SHARED["nodes"])
        _SHARED["_graph"] = graph
        _SHARED["_rank"] = {node: i for i, node in enumerate(_SHARED["order"])}
    return graph, _SHARED["_rank"]


def enumerate_shard_set(task: tuple[int, tuple[int, ...]]) -> tuple[dict, dict]:
    """Worker: the set-oracle twin of :func:`enumerate_shard_bitset`.

    ``owned`` holds degeneracy-order *positions*; cliques come back as
    frozensets of node labels keyed by position.
    """
    shard_id, owned = task
    t0, c0 = time.perf_counter(), time.process_time()
    with worker_span(
        "worker.shard.enumerate", shard=shard_id, vertices=len(owned)
    ) as span:
        graph, rank = _set_graph()
        order = _SHARED["order"]
        by_vertex: dict[int, list[frozenset]] = {}
        n_cliques = 0
        for pos in owned:
            node = order[pos]
            neighbors = graph.neighbors(node)
            later = {v for v in neighbors if rank[v] > pos}
            earlier = {v for v in neighbors if rank[v] < pos}
            out: list[frozenset] = []
            _bron_kerbosch_pivot(graph, {node}, later, earlier, 2, out.append)
            by_vertex[pos] = out
            n_cliques += len(out)
        span.set("cliques", n_cliques)
        registry = current_metrics()
        if registry is not None:
            registry.inc("worker.shard.cliques", n_cliques)
    stats = {
        "shard": shard_id,
        "vertices": len(owned),
        "cliques": n_cliques,
        "rows_built": 0,
        "bk_calls": 0,
        "bk_branches": 0,
        "bk_pivot_candidates": 0,
        "wall_seconds": time.perf_counter() - t0,
        "cpu_seconds": time.process_time() - c0,
        "max_rss_kib": max_rss_kib(),
    }
    return by_vertex, stats


# ----------------------------------------------------------------------
# Overlap counting, bucketed by i-shard
# ----------------------------------------------------------------------
def count_shard_words(task: tuple[int, list[list[int]]]) -> tuple[list[dict], dict]:
    """Worker: co-occurrence counts over one chunk of the node index,
    partitioned by the ``i``-shard of each packed pair word.

    ``task`` carries one chunk of per-node counting-eligible clique-id
    lists; the shared payload carries the pair-packing ``shift`` and
    the ascending clique-id ``bounds`` that split ``[0, n_counting)``
    into i-shards.  Returning one word→count dict *per i-shard* lets
    the driver merge and bucketize one shard at a time instead of
    materialising the global counter — the Baudin truncation already
    capped j, this caps the merge's working set.
    """
    chunk_id, lists = task
    shift = _SHARED["shift"]
    bounds = _SHARED["bounds"]
    t0, c0 = time.perf_counter(), time.process_time()
    with worker_span("worker.shard.count", shard=chunk_id, nodes=len(lists)) as span:
        by_shard: list[dict[int, int]] = [{} for _ in range(len(bounds) - 1)]
        incidences = 0
        pair_updates = 0
        for cids in lists:
            n = len(cids)
            incidences += n
            pair_updates += n * (n - 1) // 2
            for a in range(n):
                ca = cids[a]
                counts = by_shard[bisect_right(bounds, ca) - 1]
                base = ca << shift
                for b in range(a + 1, n):
                    word = base | cids[b]
                    counts[word] = counts.get(word, 0) + 1
        distinct = sum(len(counts) for counts in by_shard)
        span.set("pairs", distinct)
        registry = current_metrics()
        if registry is not None:
            registry.inc("worker.overlap.pair_updates", pair_updates)
            registry.inc("worker.overlap.distinct_pairs", distinct)
            registry.observe("worker.overlap.shard_nodes", len(lists))
    stats = {
        "nodes": len(lists),
        "incidences": incidences,
        "pair_updates": pair_updates,
        "distinct_pairs": distinct,
        "wall_seconds": time.perf_counter() - t0,
        "cpu_seconds": time.process_time() - c0,
        "max_rss_kib": max_rss_kib(),
    }
    return by_shard, stats


# ----------------------------------------------------------------------
# Percolation: per-bucket union-find reduction
# ----------------------------------------------------------------------
def reduce_shard_bucket(task: tuple[int, int, bytes]) -> tuple[int, bytes, dict]:
    """Worker: contract one (activation order, i-shard) slice of pairs.

    Runs a local union-find over the slice's packed words and re-emits
    each connected component as a spanning chain of consecutive-pair
    words — at most ``touched - 1`` words out, however dense the slice
    was.  Because every original word is spanned by its component's
    chain, unioning the reduced slices of all shards reproduces the
    exact connectivity of the unsharded bucket, so the driver's single
    stitching sweep yields identical components.
    """
    chunk_id, k_act, blob = task
    n_cliques = _SHARED["n_cliques"]
    shift = _SHARED["shift"]
    t0, c0 = time.perf_counter(), time.process_time()
    from array import array

    with worker_span("worker.shard.reduce", shard=chunk_id, k_act=k_act) as span:
        words = array("q")
        words.frombytes(blob)
        uf = IntUnionFind(n_cliques)
        merges = uf.union_packed(words, shift)
        mask = (1 << shift) - 1
        touched = sorted({w >> shift for w in words} | {w & mask for w in words})
        out = array("q")
        for group in uf.groups_of(touched):
            prev = group[0]
            for cur in group[1:]:
                out.append((prev << shift) | cur)
                prev = cur
        span.set("pairs_in", len(words))
        span.set("pairs_out", len(out))
        registry = current_metrics()
        if registry is not None:
            registry.inc("worker.shard.reduced_pairs_in", len(words))
            registry.inc("worker.shard.reduced_pairs_out", len(out))
    stats = {
        "k_act": k_act,
        "pairs_in": len(words),
        "pairs_out": len(out),
        "union_merges": merges,
        "wall_seconds": time.perf_counter() - t0,
        "cpu_seconds": time.process_time() - c0,
        "max_rss_kib": max_rss_kib(),
    }
    return k_act, out.tobytes(), stats
