"""Persistent on-disk cache for the enumeration + overlap phases.

Enumerating maximal cliques and counting their overlaps is pure
function of the graph: the paper burned 93 hours of cluster time on
it, and every re-run of an analysis over the same topology snapshot
repeats it verbatim.  The cache memoises those two phases on disk so a
second run over the same graph goes straight to percolation.

Keying: the BLAKE2b graph fingerprint already computed by
:func:`repro.obs.manifest.graph_fingerprint` (order-independent over
the edge set), combined with the kernel name and a schema version.
Anything that changes the payload layout must bump
``CACHE_SCHEMA_VERSION`` — old entries then simply miss.

Location: ``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``.
Writes go through a same-directory temp file + ``os.replace`` so a
crashed run can never leave a torn entry; concurrent writers race
benignly (last rename wins, both wrote identical bytes).
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Any

__all__ = [
    "CliqueCache",
    "CACHE_SCHEMA_VERSION",
    "default_cache_dir",
    "atomic_pickle_dump",
    "atomic_bytes_dump",
]

CACHE_SCHEMA_VERSION = 1

_ENV_VAR = "REPRO_CACHE_DIR"


def atomic_bytes_dump(path: Path, data: bytes) -> Path:
    """Write ``data`` to ``path`` atomically (same-dir temp + rename).

    The write-then-``os.replace`` dance shared by the clique cache and
    the checkpoint store (:mod:`repro.runner.checkpoint`): a crash mid-
    write can never leave a torn file at ``path``, and concurrent
    writers race benignly (last rename wins).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def atomic_pickle_dump(path: Path, payload: Any) -> Path:
    """Atomically pickle ``payload`` to ``path`` (highest protocol)."""
    return atomic_bytes_dump(
        path, pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    )


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    override = os.environ.get(_ENV_VAR)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro"


class CliqueCache:
    """Pickle-per-entry cache of clique/overlap phase results.

    >>> import tempfile
    >>> cache = CliqueCache(tempfile.mkdtemp())
    >>> cache.load("abc", "bitset") is None
    True
    >>> cache.store("abc", "bitset", {"sizes": [3, 2]})
    >>> cache.load("abc", "bitset")["sizes"]
    [3, 2]
    """

    def __init__(self, root: str | os.PathLike | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    def path_for(self, checksum: str, kernel: str) -> Path:
        """Entry path for a graph checksum + kernel variant."""
        return self.root / f"cpm-v{CACHE_SCHEMA_VERSION}-{kernel}-{checksum}.pickle"

    def load(self, checksum: str, kernel: str) -> Any | None:
        """The stored payload, or None on miss or an unreadable entry."""
        path = self.path_for(checksum, kernel)
        try:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            # A torn or stale-schema entry is a miss, not an error; the
            # rewrite after recomputation repairs it.
            return None

    def store(self, checksum: str, kernel: str, payload: Any) -> Path:
        """Atomically persist ``payload`` for this graph + kernel."""
        return atomic_pickle_dump(self.path_for(checksum, kernel), payload)
