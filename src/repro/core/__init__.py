"""Core contribution: the Clique Percolation Method, the community
model, the k-clique community tree and the structural metrics of the
paper's evaluation.
"""

from .cache import CACHE_SCHEMA_VERSION, CliqueCache, default_cache_dir
from .cliques import (
    CliqueCensus,
    CliqueEnumerationStats,
    clique_size_census,
    k_cliques,
    max_clique_size,
    maximal_cliques,
    maximal_cliques_bitset,
)
from .communities import Community, CommunityCover, CommunityHierarchy
from .filtering import communities_of_node, filter_communities, restrict_orders
from .lightweight import KERNELS, CPMRunStats, LightweightParallelCPM
from .overlap import OverlapWire
from .metrics import (
    CommunityMetrics,
    average_odf,
    community_metrics,
    link_density,
    node_internal_fraction,
    node_odf,
    overlap,
    overlap_fraction,
)
from .percolation import (
    CliqueOverlapIndex,
    build_hierarchy,
    extract_hierarchy,
    k_clique_communities,
    k_clique_communities_direct,
)
from .serialize import (
    hierarchy_from_dict,
    hierarchy_to_dict,
    load_hierarchy,
    save_hierarchy,
)
from .tree import CommunityTree, NestingViolation, TreeNode, find_parent, verify_nesting
from .unionfind import IntUnionFind, UnionFind
from .weighted import intensity_sweep, weighted_k_clique_communities

__all__ = [
    "maximal_cliques",
    "maximal_cliques_bitset",
    "max_clique_size",
    "k_cliques",
    "CliqueCensus",
    "CliqueEnumerationStats",
    "clique_size_census",
    "Community",
    "CommunityCover",
    "CommunityHierarchy",
    "CliqueOverlapIndex",
    "k_clique_communities",
    "k_clique_communities_direct",
    "extract_hierarchy",
    "build_hierarchy",
    "LightweightParallelCPM",
    "CPMRunStats",
    "KERNELS",
    "OverlapWire",
    "CliqueCache",
    "CACHE_SCHEMA_VERSION",
    "default_cache_dir",
    "CommunityTree",
    "TreeNode",
    "NestingViolation",
    "find_parent",
    "verify_nesting",
    "link_density",
    "node_odf",
    "node_internal_fraction",
    "average_odf",
    "overlap",
    "overlap_fraction",
    "CommunityMetrics",
    "community_metrics",
    "UnionFind",
    "IntUnionFind",
    "hierarchy_to_dict",
    "hierarchy_from_dict",
    "save_hierarchy",
    "load_hierarchy",
    "weighted_k_clique_communities",
    "intensity_sweep",
    "restrict_orders",
    "filter_communities",
    "communities_of_node",
]
