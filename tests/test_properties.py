"""Property-based tests (hypothesis) for the core invariants.

Strategy: random small graphs drawn as edge sets over a bounded node
universe.  Each property is one of the paper's formal claims (or a
definitional invariant of the data structures) checked against
arbitrary inputs rather than fixtures.
"""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CommunityTree,
    UnionFind,
    extract_hierarchy,
    k_clique_communities,
    k_clique_communities_direct,
    maximal_cliques,
    verify_nesting,
)
from repro.core.metrics import average_odf, link_density
from repro.graph import Graph, core_numbers


@st.composite
def graphs(draw, max_nodes: int = 12, min_edges: int = 0):
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), min_size=min_edges, max_size=len(possible), unique=True)
    )
    g = Graph()
    g.add_nodes_from(range(n))
    g.add_edges_from(edges)
    return g


def _as_nx(g: Graph) -> nx.Graph:
    G = nx.Graph(list(g.edges()))
    G.add_nodes_from(g.nodes())
    return G


class TestCliqueProperties:
    @given(graphs())
    @settings(max_examples=60, deadline=None)
    def test_maximal_cliques_match_networkx(self, g):
        ours = {frozenset(c) for c in maximal_cliques(g)}
        theirs = {frozenset(c) for c in nx.find_cliques(_as_nx(g))}
        assert ours == theirs

    @given(graphs())
    @settings(max_examples=60, deadline=None)
    def test_every_edge_in_some_maximal_clique(self, g):
        cliques = maximal_cliques(g)
        for u, v in g.edges():
            assert any(u in c and v in c for c in cliques)


class TestCpmProperties:
    @given(graphs(min_edges=1), st.integers(min_value=2, max_value=5))
    @settings(max_examples=50, deadline=None)
    def test_fast_equals_direct_equals_networkx(self, g, k):
        fast = sorted(sorted(c.members) for c in k_clique_communities(g, k))
        direct = sorted(sorted(c.members) for c in k_clique_communities_direct(g, k))
        theirs = sorted(sorted(c) for c in nx.community.k_clique_communities(_as_nx(g), k))
        assert fast == direct == theirs

    @given(graphs(min_edges=1))
    @settings(max_examples=50, deadline=None)
    def test_nesting_theorem(self, g):
        """Theorem 1 holds for arbitrary graphs."""
        h = extract_hierarchy(g)
        verify_nesting(h)  # raises on violation

    @given(graphs(min_edges=1))
    @settings(max_examples=40, deadline=None)
    def test_tree_main_chain_is_nested(self, g):
        h = extract_hierarchy(g)
        tree = CommunityTree(h)
        chain = tree.main_chain()
        for parent, child in zip(chain, chain[1:]):
            assert child.community.members <= parent.community.members

    @given(graphs(min_edges=1), st.integers(min_value=2, max_value=5))
    @settings(max_examples=50, deadline=None)
    def test_community_size_floor(self, g, k):
        """Every k-clique community has at least k members."""
        for community in k_clique_communities(g, k):
            assert community.size >= k

    @given(graphs(min_edges=1), st.integers(min_value=2, max_value=5))
    @settings(max_examples=50, deadline=None)
    def test_communities_are_unions_of_k_cliques(self, g, k):
        """Each member sits in a k-clique inside the community."""
        for community in k_clique_communities(g, k):
            members = set(community.members)
            sub = g.subgraph(members)
            covered = set()
            for clique in maximal_cliques(sub, min_size=k):
                covered |= clique
            assert covered == members


class TestCoreProperties:
    @given(graphs())
    @settings(max_examples=60, deadline=None)
    def test_core_numbers_match_networkx(self, g):
        assert core_numbers(g) == nx.core_number(_as_nx(g))


class TestMetricProperties:
    @given(graphs(min_edges=1), st.sets(st.integers(min_value=0, max_value=11), min_size=1))
    @settings(max_examples=60, deadline=None)
    def test_metric_bounds(self, g, members):
        members = {m for m in members if m in g}
        if not members:
            return
        assert 0.0 <= link_density(g, members) <= 1.0
        assert 0.0 <= average_odf(g, members) <= 1.0

    @given(graphs(min_edges=1))
    @settings(max_examples=40, deadline=None)
    def test_whole_graph_has_zero_odf(self, g):
        assert average_odf(g, set(g.nodes())) == 0.0


class TestUnionFindProperties:
    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_groups_partition_items(self, unions):
        uf = UnionFind()
        for a, b in unions:
            uf.union(a, b)
        groups = uf.groups()
        seen = set()
        for group in groups:
            assert not (group & seen)
            seen |= group
        # Connectivity agrees with group membership.
        for a, b in unions:
            assert any(a in group and b in group for group in groups)
