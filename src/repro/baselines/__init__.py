"""Baseline community-detection methods the paper compares against or
rejects: k-core [26], k-dense [25], GCE [18], EAGLE [27] and a
label-propagation partition representative.
"""

from .eagle import EagleConfig, EagleResult, eagle, extended_modularity
from .gce import GCEConfig, greedy_clique_expansion
from .kcore import KCoreDecomposition, ShellRow
from .kdense import KDenseDecomposition, k_dense_communities, k_dense_subgraph
from .labelprop import label_propagation

__all__ = [
    "KCoreDecomposition",
    "ShellRow",
    "KDenseDecomposition",
    "k_dense_subgraph",
    "k_dense_communities",
    "GCEConfig",
    "greedy_clique_expansion",
    "EagleConfig",
    "EagleResult",
    "eagle",
    "extended_modularity",
    "label_propagation",
]
