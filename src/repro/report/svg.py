"""Minimal SVG chart rendering (no plotting dependencies).

Produces the inline figures of the HTML report: scatter/line charts
with optional log-scale y axis, styled consistently, sized for an
article column.  Only what the paper's figures need — two series,
markers, axes, ticks, a legend.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

__all__ = ["svg_scatter"]

_COLORS = ["#1f6f8b", "#d1495b", "#66a182", "#8d6a9f"]
_WIDTH, _HEIGHT = 640, 360
_MARGIN = {"left": 64, "right": 16, "top": 28, "bottom": 44}


def _nice_ticks(lo: float, hi: float, count: int = 6) -> list[float]:
    if hi <= lo:
        return [lo]
    raw_step = (hi - lo) / max(count - 1, 1)
    magnitude = 10 ** math.floor(math.log10(raw_step))
    for multiplier in (1, 2, 5, 10):
        step = multiplier * magnitude
        if step >= raw_step:
            break
    start = math.ceil(lo / step) * step
    ticks = []
    tick = start
    while tick <= hi + 1e-12:
        ticks.append(round(tick, 12))
        tick += step
    return ticks or [lo]


def svg_scatter(
    series: dict[str, Sequence[tuple[float, float]]],
    *,
    title: str,
    x_label: str = "k",
    y_label: str = "",
    log_y: bool = False,
) -> str:
    """Render named (x, y) series as a standalone ``<svg>`` element."""
    named = [(name, list(points)) for name, points in series.items() if points]
    if not named:
        return (
            f'<svg width="{_WIDTH}" height="{_HEIGHT}">'
            f'<text x="20" y="40">{title}: no data</text></svg>'
        )

    all_x = [x for _, pts in named for x, _ in pts]
    all_y = [y for _, pts in named for _, y in pts]
    positive_y = [y for y in all_y if y > 0]

    def ty(y: float) -> float:
        if not log_y:
            return y
        floor = min(positive_y) if positive_y else 1e-9
        return math.log10(max(y, floor / 3.0))

    x_lo, x_hi = min(all_x), max(all_x)
    y_values = [ty(y) for y in all_y]
    y_lo, y_hi = min(y_values), max(y_values)
    if x_hi == x_lo:
        x_hi = x_lo + 1
    if y_hi == y_lo:
        y_hi = y_lo + 1

    plot_w = _WIDTH - _MARGIN["left"] - _MARGIN["right"]
    plot_h = _HEIGHT - _MARGIN["top"] - _MARGIN["bottom"]

    def px(x: float) -> float:
        return _MARGIN["left"] + (x - x_lo) / (x_hi - x_lo) * plot_w

    def py(y: float) -> float:
        return _MARGIN["top"] + plot_h - (ty(y) - y_lo) / (y_hi - y_lo) * plot_h

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" height="{_HEIGHT}" '
        f'viewBox="0 0 {_WIDTH} {_HEIGHT}" font-family="sans-serif" font-size="12">',
        f'<text x="{_WIDTH / 2}" y="18" text-anchor="middle" font-size="14" '
        f'font-weight="bold">{title}</text>',
        f'<rect x="{_MARGIN["left"]}" y="{_MARGIN["top"]}" width="{plot_w}" height="{plot_h}" '
        'fill="none" stroke="#888"/>',
    ]

    # Axis ticks.
    for tick in _nice_ticks(x_lo, x_hi):
        x = px(tick)
        parts.append(
            f'<line x1="{x:.1f}" y1="{_MARGIN["top"] + plot_h}" x2="{x:.1f}" '
            f'y2="{_MARGIN["top"] + plot_h + 5}" stroke="#888"/>'
            f'<text x="{x:.1f}" y="{_MARGIN["top"] + plot_h + 18}" '
            f'text-anchor="middle">{tick:g}</text>'
        )
    if log_y:
        lo_exp = math.floor(y_lo)
        hi_exp = math.ceil(y_hi)
        y_ticks = [10.0 ** e for e in range(int(lo_exp), int(hi_exp) + 1)]
    else:
        y_ticks = [t for t in _nice_ticks(y_lo, y_hi)]
    for tick in y_ticks:
        value = tick if not log_y else tick
        y = py(value)
        if not (_MARGIN["top"] - 1 <= y <= _MARGIN["top"] + plot_h + 1):
            continue
        parts.append(
            f'<line x1="{_MARGIN["left"] - 5}" y1="{y:.1f}" x2="{_MARGIN["left"]}" '
            f'y2="{y:.1f}" stroke="#888"/>'
            f'<text x="{_MARGIN["left"] - 8}" y="{y + 4:.1f}" text-anchor="end">{value:g}</text>'
        )

    # Axis labels.
    parts.append(
        f'<text x="{_MARGIN["left"] + plot_w / 2}" y="{_HEIGHT - 8}" '
        f'text-anchor="middle">{x_label}</text>'
    )
    if y_label:
        label = y_label + (" (log)" if log_y else "")
        parts.append(
            f'<text x="14" y="{_MARGIN["top"] + plot_h / 2}" text-anchor="middle" '
            f'transform="rotate(-90 14 {_MARGIN["top"] + plot_h / 2})">{label}</text>'
        )

    # Series markers + legend.
    for index, (name, points) in enumerate(named):
        color = _COLORS[index % len(_COLORS)]
        for x, y in points:
            parts.append(
                f'<circle cx="{px(x):.1f}" cy="{py(y):.1f}" r="3" '
                f'fill="{color}" fill-opacity="0.75"/>'
            )
        legend_x = _MARGIN["left"] + 10 + index * 130
        legend_y = _MARGIN["top"] + 12
        parts.append(
            f'<circle cx="{legend_x}" cy="{legend_y}" r="4" fill="{color}"/>'
            f'<text x="{legend_x + 9}" y="{legend_y + 4}">{name}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)
