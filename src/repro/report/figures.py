"""Plain-text figure renderers.

The benchmark harness prints the same series the paper plots; these
helpers render them as terminal-friendly charts (log-scale capable
scatter/line plots) and aligned tables, so every figure can be
regenerated without a plotting stack.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

__all__ = ["ascii_scatter", "ascii_table", "format_number"]


def format_number(value: float | int) -> str:
    """Human-friendly rendering of ints and floats for tables."""
    if isinstance(value, int):
        return f"{value:,}"
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) >= 1:
        return f"{value:.2f}"
    return f"{value:.3f}"


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """A github-markdown-style aligned table."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append(
            [format_number(v) if isinstance(v, (int, float)) else str(v) for v in row]
        )
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("-|-".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def ascii_scatter(
    series: dict[str, list[tuple[float, float]]],
    *,
    title: str = "",
    width: int = 72,
    height: int = 20,
    log_y: bool = False,
    x_label: str = "k",
    y_label: str = "",
) -> str:
    """Render one or more (x, y) series as a character plot.

    Each series gets its own marker (in declaration order: ``*``, ``o``,
    ``+``, ``x``); overlapping points show the later series' marker.
    ``log_y`` switches the y-axis to log10 (zeros clamped to the axis).
    """
    markers = "*o+x#@"
    points = [(name, pts) for name, pts in series.items() if pts]
    if not points:
        return f"{title}\n(no data)"
    all_x = [x for _, pts in points for x, _ in pts]
    all_y = [y for _, pts in points for _, y in pts]

    def ty(y: float) -> float:
        if not log_y:
            return y
        if y > 0:
            return math.log10(y)
        return math.log10(max(min(v for v in all_y if v > 0), 1e-9)) - 0.5

    x_lo, x_hi = min(all_x), max(all_x)
    y_values = [ty(y) for y in all_y]
    y_lo, y_hi = min(y_values), max(y_values)
    if x_hi == x_lo:
        x_hi = x_lo + 1
    if y_hi == y_lo:
        y_hi = y_lo + 1
    grid = [[" "] * width for _ in range(height)]
    for (name, pts), marker in zip(points, markers):
        for x, y in pts:
            col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((ty(y) - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = marker
    lines = []
    if title:
        lines.append(title)
    y_top = f"{(10 ** y_hi if log_y else y_hi):g}"
    y_bottom = f"{(10 ** y_lo if log_y else y_lo):g}"
    lines.append(f"{y_label} (top={y_top}, bottom={y_bottom}{', log scale' if log_y else ''})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_lo:g} .. {x_hi:g}")
    legend = "  ".join(
        f"{marker}={name}" for (name, _), marker in zip(points, markers)
    )
    lines.append(f" legend: {legend}")
    return "\n".join(lines)
