"""Tests for the serving-plane telemetry layers.

Four contracts pinned here:

* the log-bucketed :class:`~repro.obs.metrics.Histogram` — quantile
  accuracy (< 10% relative error), exact count/sum/min/max, the merge
  algebra (bucket-exact; ``sum`` drifts only by float associativity),
  and lock-safety under concurrent observers;
* :class:`~repro.obs.metrics.AtomicCounter` — no lost increments, and
  exactly one thread observes any given total via ``next()``;
* the Prometheus text exposition — naming/typing of counter, gauge
  and summary families, the inline-label convention, and the
  render -> parse round trip ``repro obs tail`` relies on;
* the structured JSON logger — event shape, run_id stamping, bound
  fields, interleaving-free concurrent writes, and the late-binding
  module-level handles.
"""

from __future__ import annotations

import io
import json
import random
import threading

import pytest

from repro.obs import logging as obs_logging
from repro.obs.exposition import (
    parse_exposition,
    render_exposition,
    sanitize_metric_name,
    split_labels,
)
from repro.obs.inspect import manifest_scalars, render_tail_frame
from repro.obs.metrics import (
    BUCKET_GROWTH,
    AtomicCounter,
    Histogram,
    MetricsRegistry,
    bucket_index,
    bucket_upper,
)


# ----------------------------------------------------------------------
# Log-bucketed histogram
# ----------------------------------------------------------------------
class TestBuckets:
    def test_upper_bound_is_inclusive(self):
        # Bucket i covers (growth**(i-1), growth**i]: an exact power
        # lands in its own bucket, a nudge above lands one up.
        for i in (-8, -1, 0, 1, 13):
            assert bucket_index(bucket_upper(i)) == i
            assert bucket_index(bucket_upper(i) * 1.001) == i + 1

    def test_monotone(self):
        values = [10.0 ** e for e in range(-9, 4)]
        indices = [bucket_index(v) for v in values]
        assert indices == sorted(indices)


class TestHistogram:
    def test_exact_scalars(self):
        h = Histogram("t")
        samples = [0.5, 1.5, 2.5, 0.25]
        for s in samples:
            h.observe(s)
        assert h.count == 4
        assert h.total == pytest.approx(sum(samples))
        assert h.min == 0.25
        assert h.max == 2.5
        assert h.mean == pytest.approx(sum(samples) / 4)

    def test_single_sample_quantiles(self):
        h = Histogram("t")
        h.observe(0.037)
        # Clamped to [min, max]: one sample answers every quantile.
        for q in (0.5, 0.9, 0.99, 1.0):
            assert h.quantile(q) == pytest.approx(0.037)

    def test_zeros_bin(self):
        h = Histogram("t")
        for _ in range(9):
            h.observe(0.0)
        h.observe(1.0)
        assert h.zeros == 9
        assert h.quantile(0.5) == 0.0
        assert h.quantile(1.0) == pytest.approx(1.0)

    def test_quantile_relative_error_bound(self):
        rng = random.Random(42)
        samples = [rng.lognormvariate(0.0, 2.0) for _ in range(5000)]
        h = Histogram("t")
        for s in samples:
            h.observe(s)
        ordered = sorted(samples)
        for q in (0.5, 0.9, 0.99):
            exact = ordered[max(0, int(q * len(ordered)) - 1)]
            approx = h.quantile(q)
            # Half-bucket midpoint error: strictly under one bucket width.
            assert abs(approx - exact) / exact < BUCKET_GROWTH - 1.0

    def test_quantile_validation(self):
        h = Histogram("t")
        with pytest.raises(ValueError):
            h.quantile(0.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)
        assert h.quantile(0.5) is None  # empty

    def test_merge_algebra(self):
        rng = random.Random(7)
        left_samples = [rng.expovariate(3.0) for _ in range(400)]
        right_samples = [rng.expovariate(0.5) for _ in range(300)] + [0.0, 0.0]
        union = Histogram("union")
        left, right = Histogram("left"), Histogram("right")
        for s in left_samples:
            left.observe(s)
            union.observe(s)
        for s in right_samples:
            right.observe(s)
            union.observe(s)
        left.merge_summary(right.summary())
        merged, direct = left.summary(), union.summary()
        # Bucket-exact: everything equal except sum, which drifts only
        # by float addition order.
        assert merged["count"] == direct["count"]
        assert merged["zeros"] == direct["zeros"]
        assert merged["min"] == direct["min"]
        assert merged["max"] == direct["max"]
        assert merged["buckets"] == direct["buckets"]
        assert merged["sum"] == pytest.approx(direct["sum"], rel=1e-12)
        for q in ("p50", "p90", "p99"):
            assert merged[q] == pytest.approx(direct[q])

    def test_merge_pre_bucket_payload(self):
        # Old worker envelopes carried count/sum/min/max only.
        h = Histogram("t")
        h.observe(1.0)
        h.merge_summary({"count": 3, "sum": 9.0, "min": 2.0, "max": 5.0})
        assert h.count == 4
        assert h.total == pytest.approx(10.0)
        assert h.min == 1.0
        assert h.max == 5.0
        # Ranks beyond the recorded buckets fall back to max.
        assert h.quantile(0.99) == 5.0

    def test_summary_is_json_safe(self):
        h = Histogram("t")
        h.observe(0.001)
        h.observe(3.0)
        document = json.loads(json.dumps(h.summary()))
        assert document["count"] == 2
        assert all(isinstance(k, str) for k in document["buckets"])


class TestConcurrency:
    N_THREADS = 8
    PER_THREAD = 500

    def _hammer(self, fn):
        threads = [
            threading.Thread(target=fn, args=(t,)) for t in range(self.N_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def test_counter_no_lost_updates(self):
        registry = MetricsRegistry()

        def work(_):
            for _ in range(self.PER_THREAD):
                registry.inc("hits")
                registry.inc("hits.more", 2)

        self._hammer(work)
        assert registry.counter("hits").value == self.N_THREADS * self.PER_THREAD
        assert registry.counter("hits.more").value == 2 * self.N_THREADS * self.PER_THREAD

    def test_histogram_no_lost_observations(self):
        registry = MetricsRegistry()

        def work(t):
            for i in range(self.PER_THREAD):
                registry.observe("lat", 0.001 * (t + 1) * (i + 1))

        self._hammer(work)
        summary = registry.histogram("lat").summary()
        assert summary["count"] == self.N_THREADS * self.PER_THREAD
        assert sum(summary["buckets"].values()) + summary["zeros"] == summary["count"]

    def test_concurrent_instrument_creation(self):
        registry = MetricsRegistry()

        def work(t):
            for i in range(100):
                registry.inc(f"c.{i}")
                registry.observe(f"h.{i % 10}", float(i + 1))

        self._hammer(work)
        data = registry.to_dict()
        assert len(data["counters"]) == 100
        assert all(v == self.N_THREADS for v in data["counters"].values())
        assert sum(h["count"] for h in data["histograms"].values()) == self.N_THREADS * 100

    def test_atomic_counter_unique_totals(self):
        counter = AtomicCounter()
        seen: list[int] = []
        lock = threading.Lock()

        def work(_):
            mine = [counter.next() for _ in range(self.PER_THREAD)]
            with lock:
                seen.extend(mine)

        self._hammer(work)
        total = self.N_THREADS * self.PER_THREAD
        assert counter.value == total
        # Every total was observed exactly once -> a drain trigger
        # keyed on `next() == limit` fires exactly once.
        assert sorted(seen) == list(range(1, total + 1))


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------
class TestNaming:
    def test_sanitize(self):
        assert sanitize_metric_name("query.lookup.band") == "query_lookup_band"
        assert sanitize_metric_name("3weird-name") == "_3weird_name"

    def test_split_labels(self):
        bare, labels = split_labels('query.request_seconds{endpoint="band"}')
        assert bare == "query.request_seconds"
        assert labels == (("endpoint", "band"),)
        assert split_labels("plain.name") == ("plain.name", ())


class TestRender:
    def _registry(self):
        registry = MetricsRegistry()
        registry.inc("query.requests", 7)
        registry.set_gauge("shard.count", 4)
        registry.observe('query.request_seconds{endpoint="band"}', 0.002)
        registry.observe('query.request_seconds{endpoint="band"}', 0.004)
        registry.observe('query.request_seconds{endpoint="top"}', 0.01)
        return registry

    def test_families_and_types(self):
        text = render_exposition(self._registry())
        assert "# TYPE repro_query_requests_total counter" in text
        assert "repro_query_requests_total 7" in text
        assert "# TYPE repro_shard_count gauge" in text
        assert "# TYPE repro_query_request_seconds summary" in text
        # One TYPE line per family even with two label sets.
        assert text.count("# TYPE repro_query_request_seconds summary") == 1
        assert 'repro_query_request_seconds_count{endpoint="band"} 2' in text
        assert 'repro_query_request_seconds{endpoint="band",quantile="0.5"}' in text
        assert text.endswith("\n")

    def test_extra_gauges(self):
        text = render_exposition(MetricsRegistry(), extra_gauges={"process.rss_kib": 123})
        assert "repro_process_rss_kib 123" in text

    def test_round_trip(self):
        text = render_exposition(self._registry())
        samples = parse_exposition(text)
        assert samples[("repro_query_requests_total", ())] == 7.0
        assert samples[
            ("repro_query_request_seconds_count", (("endpoint", "band"),))
        ] == 2.0
        q99 = samples[
            (
                "repro_query_request_seconds",
                (("endpoint", "band"), ("quantile", "0.99")),
            )
        ]
        assert q99 == pytest.approx(0.004, rel=0.1)

    def test_parse_skips_junk(self):
        samples = parse_exposition("# HELP x y\nnot a sample line\nok_metric 2\n")
        assert samples == {("ok_metric", ()): 2.0}

    def test_manifest_renders_identically(self):
        from repro.obs import RunManifest

        registry = self._registry()
        manifest = RunManifest.collect(label="t", metrics=registry)
        assert manifest.to_prometheus() == render_exposition(registry)


class TestManifestScalars:
    def test_histogram_scalars(self):
        registry = MetricsRegistry()
        registry.observe("shard.cost", 10.0)
        registry.observe("shard.cost", 30.0)
        scalars = manifest_scalars({"metrics": registry.to_dict()})
        assert scalars["hist:shard.cost.count"] == 2.0
        assert scalars["hist:shard.cost.mean"] == pytest.approx(20.0)
        assert "hist:shard.cost.p50" in scalars
        assert "hist:shard.cost.p99" in scalars


class TestTailFrame:
    def _scrape(self, requests: int, errors: int) -> dict:
        registry = MetricsRegistry()
        registry.inc("query.errors", errors)
        for _ in range(requests):
            registry.observe('query.request_seconds{endpoint="band"}', 0.002)
        return parse_exposition(
            render_exposition(registry, extra_gauges={"process.uptime_seconds": 5.0})
        )

    def test_first_frame_shows_totals(self):
        frame = render_tail_frame(
            self._scrape(4, 1), None, 0.0, health={"status": "ok", "served": 4}
        )
        assert "health=ok" in frame
        assert "band" in frame
        assert "errors: 1 total" in frame

    def test_rates_from_difference(self):
        frame = render_tail_frame(self._scrape(30, 2), self._scrape(10, 0), 2.0)
        # (30-10)/2 req/s and (2-0)/2 err/s.
        assert "10.0" in frame
        assert "errors: 1.00/s" in frame


# ----------------------------------------------------------------------
# Structured JSON logging
# ----------------------------------------------------------------------
class TestJsonLogger:
    def test_event_shape(self):
        stream = io.StringIO()
        logger = obs_logging.JsonLogger(stream, run_id="abc123def456")
        logger.info("unit.test", path="/x", status=200)
        record = json.loads(stream.getvalue())
        assert record["event"] == "unit.test"
        assert record["level"] == "info"
        assert record["run_id"] == "abc123def456"
        assert record["path"] == "/x"
        assert record["status"] == 200
        assert isinstance(record["ts"], float)

    def test_bind_merges_fields(self):
        stream = io.StringIO()
        logger = obs_logging.JsonLogger(stream, run_id="r", component="server")
        child = logger.bind(request_id=9)
        child.warning("x", request_id=10)  # per-call wins
        record = json.loads(stream.getvalue())
        assert record["component"] == "server"
        assert record["request_id"] == 10
        assert record["level"] == "warning"

    def test_concurrent_lines_never_interleave(self):
        stream = io.StringIO()
        logger = obs_logging.JsonLogger(stream, run_id="r")

        def work(t):
            for i in range(200):
                logger.info("spin", thread=t, i=i, payload="x" * 50)

        threads = [threading.Thread(target=work, args=(t,)) for t in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 6 * 200
        for line in lines:
            json.loads(line)  # every line is complete JSON

    def test_module_level_lifecycle(self, tmp_path):
        target = tmp_path / "events.jsonl"
        assert obs_logging.active_logger() is None
        assert obs_logging.current_run_id() is None
        handle = obs_logging.get_logger(component="t")
        handle.info("dropped.before.configure")  # no-op, no error
        logger = obs_logging.configure(target, run_id="runid0001aaaa")
        try:
            assert obs_logging.current_run_id() == "runid0001aaaa"
            handle.info("late.bound", n=1)
            obs_logging.log_event("direct", n=2)
            assert obs_logging.active_logger() is logger
        finally:
            obs_logging.shutdown()
        assert obs_logging.active_logger() is None
        events = [
            json.loads(line)
            for line in target.read_text(encoding="utf-8").strip().splitlines()
        ]
        assert [e["event"] for e in events] == ["late.bound", "direct"]
        assert events[0]["component"] == "t"
        assert all(e["run_id"] == "runid0001aaaa" for e in events)
        obs_logging.shutdown()  # idempotent

    def test_new_run_id_format(self):
        rid = obs_logging.new_run_id()
        assert len(rid) == 12
        int(rid, 16)  # hex
