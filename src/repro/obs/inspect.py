"""Terminal inspection of traces and manifests: view / diff / history.

The exporter (:mod:`.export`) hands traces to Perfetto; this module is
the zero-dependency path — everything renders as plain text in a
terminal, which is where regressions actually get triaged:

* :func:`render_tree` draws a trace (JSONL spans or a manifest's
  ``spans`` block) as an ASCII call tree annotated with total and
  *self* wall time (total minus the children), flagging the hottest
  spans so the expensive subtree is visible without arithmetic;
* :func:`diff_manifests` compares two :class:`~.manifest.RunManifest`
  documents scalar by scalar — span wall times, numeric config
  entries, counters, gauges — printing signed deltas with percent
  change, and *warns* when ``schema_version`` or the recorded
  ``settings`` (kernel, engine, workers) differ, because such a pair
  measures two different pipelines, not one regression;
* :func:`history` walks the git history of committed ``BENCH_*.json``
  manifests and prints each gated scalar's trajectory across commits
  (newest last, working tree included), turning the accumulated bench
  artifacts into a per-scalar time series.

All functions return strings; ``repro obs ...`` (see ``repro.cli``)
just prints them.
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path

__all__ = [
    "load_trace",
    "manifest_scalars",
    "render_tree",
    "diff_manifests",
    "history",
    "render_tail_frame",
]

#: Spans whose self time ranks in the top this-many get the hot marker.
HOT_COUNT = 3

#: Marker appended to hot-path lines (pure ASCII on purpose).
HOT_MARK = "  <== hot"


def load_trace(path) -> tuple[list[dict], dict | None]:
    """Load span dicts from a trace JSONL *or* a manifest JSON file.

    Returns ``(spans, manifest_dict_or_None)``: a file that parses as a
    single JSON object *and* looks like a :class:`~.manifest.RunManifest`
    (it carries a ``spans`` or ``schema_version`` key — a bare span
    line carries neither) yields its ``spans`` block alongside the full
    document; anything else is parsed as JSON Lines with one span per
    line.
    """
    text = Path(path).read_text(encoding="utf-8")
    stripped = text.strip()
    if stripped.startswith("{"):
        try:
            document = json.loads(stripped)
        except json.JSONDecodeError:
            document = None
        if isinstance(document, dict) and (
            "spans" in document or "schema_version" in document
        ):
            return list(document.get("spans") or []), document
    spans = []
    for line in stripped.splitlines():
        line = line.strip()
        if line:
            spans.append(json.loads(line))
    return spans, None


# ----------------------------------------------------------------------
# obs view — ASCII span tree
# ----------------------------------------------------------------------
def render_tree(spans: list[dict], *, hot_count: int = HOT_COUNT) -> str:
    """Render spans as an indented tree with total/self wall time.

    Children attach by ``parent_id`` and sort by ``start_wall``; spans
    whose parent is missing from the trace (or None) are roots.  Self
    time is a span's wall time minus its direct children's, clamped at
    zero (children of absorbed worker spans overlap the driver span
    that grafted them, so naive subtraction can go negative).  The
    ``hot_count`` largest self times are flagged with ``<== hot``.
    """
    if not spans:
        return "(empty trace)"
    by_id = {s.get("span_id"): s for s in spans if s.get("span_id") is not None}
    children: dict[int | None, list[dict]] = {}
    for span in spans:
        parent = span.get("parent_id")
        if parent is not None and parent not in by_id:
            parent = None
        children.setdefault(parent, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: s.get("start_wall", 0.0))

    self_times: dict[int, float] = {}
    for span in spans:
        kids = children.get(span.get("span_id"), [])
        child_wall = sum(k.get("wall_seconds", 0.0) for k in kids)
        self_times[id(span)] = max(0.0, span.get("wall_seconds", 0.0) - child_wall)
    hot = set(
        sorted(self_times, key=self_times.get, reverse=True)[:hot_count]
        if len(spans) > 1
        else []
    )

    lines: list[str] = []

    def label(span: dict) -> str:
        name = span.get("name", "?")
        attrs = span.get("attrs") or {}
        tags = [
            f"{key}={attrs[key]}"
            for key in ("phase", "batch", "worker_id", "pid", "error", "dangling")
            if key in attrs
        ]
        if tags:
            name += " [" + " ".join(tags) + "]"
        return name

    def walk(span: dict, prefix: str, tail: bool, is_root: bool) -> None:
        total = span.get("wall_seconds", 0.0)
        self_time = self_times[id(span)]
        connector = "" if is_root else ("`- " if tail else "|- ")
        mark = HOT_MARK if id(span) in hot else ""
        lines.append(
            f"{prefix}{connector}{label(span)}"
            f"  total={total:.4f}s self={self_time:.4f}s{mark}"
        )
        kids = children.get(span.get("span_id"), [])
        child_prefix = prefix if is_root else prefix + ("   " if tail else "|  ")
        for position, kid in enumerate(kids):
            walk(kid, child_prefix, position == len(kids) - 1, False)

    roots = children.get(None, [])
    for position, root in enumerate(roots):
        walk(root, "", position == len(roots) - 1, True)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# obs diff — manifest scalar deltas
# ----------------------------------------------------------------------
def manifest_scalars(manifest: dict) -> dict[str, float]:
    """Every numeric scalar of a manifest document, namespaced by origin.

    ``span:<name>.wall`` (first occurrence per name, matching
    ``RunManifest.span``), ``config:<key>`` for numeric config values,
    ``counter:<name>`` and ``gauge:<name>`` from the metrics block,
    and ``hist:<name>.p50/p99/mean/count`` from each histogram summary
    (quantiles come from the log-bucketed summaries, so two manifests'
    ``hist:`` rows are directly comparable).
    """
    out: dict[str, float] = {}
    for span in manifest.get("spans") or []:
        key = f"span:{span.get('name', '?')}.wall"
        if key not in out:
            out[key] = float(span.get("wall_seconds", 0.0))
    for key, value in (manifest.get("config") or {}).items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            out[f"config:{key}"] = float(value)
    metrics = manifest.get("metrics") or {}
    for family, prefix in (("counters", "counter"), ("gauges", "gauge")):
        for name, value in (metrics.get(family) or {}).items():
            if isinstance(value, (int, float)):
                out[f"{prefix}:{name}"] = float(value)
    for name, summary in (metrics.get("histograms") or {}).items():
        if not isinstance(summary, dict):
            continue
        count = summary.get("count", 0)
        out[f"hist:{name}.count"] = float(count)
        for field in ("p50", "p99", "mean"):
            value = summary.get(field)
            if isinstance(value, (int, float)):
                out[f"hist:{name}.{field}"] = float(value)
    return out


def diff_manifests(base: dict, fresh: dict, *, names: tuple[str, str] = ("a", "b")) -> str:
    """Signed per-scalar deltas between two manifest documents.

    Every scalar present in *both* manifests gets one row with the two
    values, the signed delta and the percent change.  Scalars unique to
    one side are listed separately.  Comparability warnings lead the
    output when the manifests disagree on ``schema_version`` or on any
    recorded ``settings`` key — those runs measured different
    configurations and their deltas are attribution, not regression.
    """
    lines: list[str] = []
    base_version = base.get("schema_version")
    fresh_version = fresh.get("schema_version")
    if base_version != fresh_version:
        lines.append(
            f"WARNING: schema_version mismatch ({names[0]}={base_version}, "
            f"{names[1]}={fresh_version}); fields may not correspond"
        )
    base_settings = base.get("settings") or {}
    fresh_settings = fresh.get("settings") or {}
    for key in sorted(set(base_settings) | set(fresh_settings)):
        left, right = base_settings.get(key), fresh_settings.get(key)
        if left == right:
            continue
        if key == "kernel":
            # The manifests record the *resolved* kernel (auto already
            # collapsed), so a mismatch here means the two runs executed
            # different CPM implementations end to end.
            lines.append(
                f"WARNING: kernel mismatch ({names[0]}={left!r}, "
                f"{names[1]}={right!r}); timing deltas measure the kernel "
                "swap, not a regression"
            )
        elif key == "shards":
            # Like the kernel, shards is recorded resolved (auto already
            # collapsed to a count): a mismatch means one run used the
            # sharded pipeline and the other did not (or used a different
            # partition width) — phase timings then measure the fan-out,
            # not a regression.
            lines.append(
                f"WARNING: shards mismatch ({names[0]}={left!r}, "
                f"{names[1]}={right!r}); the runs partitioned the pipeline "
                "differently and phase deltas measure the sharding, not a "
                "regression"
            )
        else:
            lines.append(
                f"WARNING: settings mismatch on {key!r} ({names[0]}={left!r}, "
                f"{names[1]}={right!r}); deltas compare different pipelines"
            )
    base_fp = (base.get("fingerprint") or {}).get("checksum")
    fresh_fp = (fresh.get("fingerprint") or {}).get("checksum")
    if base_fp and fresh_fp and base_fp != fresh_fp:
        lines.append(
            "WARNING: graph fingerprints differ; the runs used different inputs\n"
            f"  {names[0]}: checksum {base_fp}\n"
            f"  {names[1]}: checksum {fresh_fp}"
        )

    base_scalars = manifest_scalars(base)
    fresh_scalars = manifest_scalars(fresh)
    shared = sorted(set(base_scalars) & set(fresh_scalars))
    if not shared:
        lines.append("no shared scalars between the two manifests")
        return "\n".join(lines)

    width = max(len(key) for key in shared)
    lines.append(
        f"{'scalar':<{width}}  {names[0]:>12}  {names[1]:>12}  "
        f"{'delta':>12}  {'pct':>8}"
    )
    for key in shared:
        left, right = base_scalars[key], fresh_scalars[key]
        delta = right - left
        pct = f"{delta / left * 100.0:+.1f}%" if left else "   n/a"
        lines.append(
            f"{key:<{width}}  {left:>12.6g}  {right:>12.6g}  "
            f"{delta:>+12.6g}  {pct:>8}"
        )
    only_base = sorted(set(base_scalars) - set(fresh_scalars))
    only_fresh = sorted(set(fresh_scalars) - set(base_scalars))
    if only_base:
        lines.append(f"only in {names[0]}: {', '.join(only_base)}")
    if only_fresh:
        lines.append(f"only in {names[1]}: {', '.join(only_fresh)}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# obs history — scalar trajectories over git history
# ----------------------------------------------------------------------
def _git(repo: Path, *argv: str) -> str:
    return subprocess.check_output(
        ("git", *argv), cwd=repo, text=True, stderr=subprocess.DEVNULL
    )


def history(
    directory,
    *,
    max_commits: int = 10,
    prefixes: tuple[str, ...] = ("span:cpm.", "span:analysis.", "config:"),
) -> str:
    """Per-scalar trajectories of ``BENCH_*.json`` files across commits.

    Walks the last ``max_commits`` commits that touched ``directory``
    (oldest first), reads every committed ``BENCH_*.json`` at each, and
    prints the value of every scalar matching ``prefixes`` per commit,
    ending with the working-tree value when the file exists on disk.
    Without a usable git history the working tree alone is reported, so
    the command still works on an export of the repository.
    """
    root = Path(directory)
    lines: list[str] = []
    commits: list[str] = []
    try:
        # Git pathspecs resolve relative to the cwd (root), so "." scopes
        # the log — and ls-tree/show below — to the bench directory.
        out = _git(
            root, "log", f"--max-count={max_commits}",
            "--format=%h %ad", "--date=short", "--", ".",
        )
        commits = [line.strip() for line in out.splitlines() if line.strip()]
        commits.reverse()  # oldest first
    except (subprocess.CalledProcessError, OSError):
        pass

    def matching(scalars: dict[str, float]) -> dict[str, float]:
        return {
            key: value
            for key, value in scalars.items()
            if key.startswith(prefixes)
        }

    # series[(file, scalar)] -> list of (label, value)
    series: dict[tuple[str, str], list[tuple[str, float]]] = {}
    for commit in commits:
        short = commit.split()[0]
        try:
            listing = _git(root, "ls-tree", "--name-only", short, ".")
        except (subprocess.CalledProcessError, OSError):
            continue
        for entry in listing.splitlines():
            name = Path(entry).name
            if not (name.startswith("BENCH_") and name.endswith(".json")):
                continue
            try:
                # "<rev>:./<path>" resolves the path against the cwd.
                document = json.loads(_git(root, "show", f"{short}:./{entry}"))
            except (subprocess.CalledProcessError, OSError, json.JSONDecodeError):
                continue
            for key, value in matching(manifest_scalars(document)).items():
                series.setdefault((name, key), []).append((commit, value))

    worktree_files = sorted(root.glob("BENCH_*.json")) if root.is_dir() else []
    for path in worktree_files:
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        for key, value in matching(manifest_scalars(document)).items():
            series.setdefault((path.name, key), []).append(("worktree", value))

    if not series:
        return f"no BENCH_*.json scalars found under {root}"

    lines.append(
        f"bench scalar history ({len(commits)} commit(s) + working tree, "
        f"oldest first):"
    )
    for (file_name, key) in sorted(series):
        lines.append(f"  {file_name} :: {key}")
        points = series[(file_name, key)]
        first = points[0][1]
        for label, value in points:
            rel_pct = (
                f"  ({(value - first) / first * 100.0:+.1f}% vs first)"
                if first and label != points[0][0]
                else ""
            )
            lines.append(f"    {label:<24} {value:>12.6g}{rel_pct}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# obs tail — one frame of the live server view
# ----------------------------------------------------------------------
def _tail_series(
    samples: dict, family: str
) -> dict[str, float]:
    """Per-endpoint values of one sample family, keyed by endpoint label."""
    out: dict[str, float] = {}
    for (name, labels), value in samples.items():
        if name != family:
            continue
        label_map = dict(labels)
        if "quantile" in label_map:
            continue
        out[label_map.get("endpoint", "")] = value
    return out


def render_tail_frame(
    current: dict,
    previous: dict | None,
    elapsed: float,
    *,
    health: dict | None = None,
    namespace: str = "repro",
) -> str:
    """One frame of ``repro obs tail``: per-endpoint rate / errors / p99.

    ``current`` and ``previous`` are parsed scrapes
    (:func:`~.exposition.parse_exposition` output); ``elapsed`` is the
    wall seconds between them.  Counter families are differenced into
    rates (first frame, with no ``previous``, shows totals instead);
    quantiles are read straight off the summary series.  ``health`` is
    the ``/health`` JSON document, when available.
    """
    req_family = f"{namespace}_query_request_seconds"
    lines: list[str] = []
    if health:
        status = health.get("status", "?")
        lines.append(
            f"health={status}  nodes={health.get('nodes', '?')}  "
            f"communities={health.get('communities', '?')}  "
            f"served={health.get('served', '?')}"
        )
    uptime = current.get((f"{namespace}_process_uptime_seconds", ()))
    rss = current.get((f"{namespace}_process_rss_kib", ()))
    if uptime is not None or rss is not None:
        bits = []
        if uptime is not None:
            bits.append(f"uptime={uptime:.1f}s")
        if rss is not None:
            bits.append(f"rss={rss / 1024.0:.1f}MiB")
        cpu = current.get((f"{namespace}_process_cpu_seconds", ()))
        if cpu is not None:
            bits.append(f"cpu={cpu:.2f}s")
        lines.append("  ".join(bits))

    counts = _tail_series(current, f"{req_family}_count")
    prev_counts = _tail_series(previous or {}, f"{req_family}_count")
    errors = current.get((f"{namespace}_query_errors_total", ()), 0.0)
    prev_errors = (previous or {}).get((f"{namespace}_query_errors_total", ()), 0.0)

    rate_header = "req/s" if previous is not None else "total"
    lines.append(f"{'endpoint':<12} {rate_header:>10} {'p50':>10} {'p99':>10}")
    p99s: dict[str, float] = {}
    p50s: dict[str, float] = {}
    for (name, labels), value in current.items():
        if name != req_family:
            continue
        label_map = dict(labels)
        quantile = label_map.get("quantile")
        endpoint = label_map.get("endpoint", "")
        if quantile == "0.99":
            p99s[endpoint] = value
        elif quantile == "0.5":
            p50s[endpoint] = value
    for endpoint in sorted(counts):
        total = counts[endpoint]
        if previous is not None and elapsed > 0:
            rate = max(0.0, total - prev_counts.get(endpoint, 0.0)) / elapsed
            rate_cell = f"{rate:>10.1f}"
        else:
            rate_cell = f"{int(total):>10d}"
        p50 = p50s.get(endpoint)
        p99 = p99s.get(endpoint)
        lines.append(
            f"{endpoint:<12} {rate_cell} "
            f"{(f'{p50 * 1000:.2f}ms' if p50 is not None else '-'):>10} "
            f"{(f'{p99 * 1000:.2f}ms' if p99 is not None else '-'):>10}"
        )
    if not counts:
        lines.append("(no requests observed yet)")
    if previous is not None and elapsed > 0:
        lines.append(f"errors: {max(0.0, errors - prev_errors) / elapsed:.2f}/s")
    else:
        lines.append(f"errors: {int(errors)} total")
    return "\n".join(lines)
