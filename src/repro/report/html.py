"""Standalone HTML report: every table and figure in one file.

``render_html_report(run)`` lays the :class:`PaperRun` artefacts out as
a self-contained document — inline SVG figures, styled tables, the band
reports — suitable for sharing results without any toolchain.  The CLI
exposes it as ``python -m repro paper --html out.html``.
"""

from __future__ import annotations

import html

from .paper import PaperRun
from .svg import svg_scatter

__all__ = ["render_html_report"]

_STYLE = """
body { font-family: Georgia, serif; max-width: 860px; margin: 2em auto; color: #222; }
h1 { font-size: 1.5em; } h2 { font-size: 1.2em; margin-top: 2em; border-bottom: 1px solid #ccc; }
table { border-collapse: collapse; margin: 1em 0; font-size: 0.95em; }
th, td { border: 1px solid #bbb; padding: 4px 10px; text-align: right; }
th { background: #f0f0f0; }
td:first-child, th:first-child { text-align: left; }
pre { background: #f7f7f7; padding: 1em; overflow-x: auto; font-size: 0.8em; }
figure { margin: 1.5em 0; }
figcaption { font-size: 0.9em; color: #555; margin-top: 0.3em; }
"""


def _table(headers: list[str], rows: list[list], caption: str = "") -> str:
    head = "".join(f"<th>{html.escape(str(h))}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{html.escape(str(cell))}</td>" for cell in row) + "</tr>"
        for row in rows
    )
    caption_html = f"<caption>{html.escape(caption)}</caption>" if caption else ""
    return f"<table>{caption_html}<thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"


def render_html_report(run: PaperRun, *, title: str | None = None) -> str:
    """The full paper report as a standalone HTML document."""
    dataset = run.dataset
    census = run.census
    sizes = run.sizes
    density = run.density_odf
    overlap = run.overlap
    crown, trunk, root = run.crown, run.trunk, run.root

    heading = title or "k-clique Communities in the Internet AS-level Topology Graph — reproduction"
    tags = dataset.tag_summary()

    fig41 = svg_scatter(
        {"communities": [(float(k), float(n)) for k, n in census.series()]},
        title="Figure 4.1: number of k-clique communities vs k",
        y_label="# communities",
        log_y=True,
    )
    fig43 = svg_scatter(
        {
            "main": [(float(k), float(s)) for k, s in sizes.main_series()],
            "parallel": [(float(k), float(s)) for k, s in sizes.parallel_points()],
        },
        title="Figure 4.3: community size vs k",
        y_label="size",
        log_y=True,
    )
    fig44a = svg_scatter(
        {
            "main": [(float(k), v) for k, v in density.main_density_series()],
            "parallel": [(float(k), v) for k, v in density.parallel_density_points()],
        },
        title="Figure 4.4(a): link density vs k",
        y_label="link density",
    )
    fig44b = svg_scatter(
        {
            "main": [(float(k), v) for k, v in density.main_odf_series()],
            "parallel": [(float(k), v) for k, v in density.parallel_odf_points()],
        },
        title="Figure 4.4(b): average ODF vs k",
        y_label="average ODF",
    )

    overlap_rows = [
        [
            row.k,
            row.n_parallel,
            f"{row.mean_parallel_main_fraction:.3f}",
            row.zero_overlap_parallels,
        ]
        for row in overlap.rows
    ]
    case_rows = [
        [label, "main" if is_main else "parallel", ixp, f"{fraction:.0%}", "yes" if full else "no"]
        for label, ixp, fraction, full, is_main in crown.case_study
    ]

    sections = [
        f"<h1>{html.escape(heading)}</h1>",
        f"<p>Dataset: {dataset.n_ases:,} ASes, {dataset.n_links:,} links, "
        f"{len(dataset.ixps)} IXPs, {len(dataset.geography):,} geolocated ASes. "
        f"Communities: {census.total_communities} across k ∈ "
        f"[{run.context.hierarchy.min_k}, {run.context.hierarchy.max_k}].</p>",
        "<h2>Chapter 2 — tagging</h2>",
        _table(["on-IXP", "not-on-IXP"], [[tags.ixp.on_ixp, tags.ixp.not_on_ixp]],
               "Table 2.1"),
        _table(
            ["National", "Continental", "Worldwide", "Unknown"],
            [[tags.geo.national, tags.geo.continental, tags.geo.worldwide, tags.geo.unknown]],
            "Table 2.2",
        ),
        "<h2>Chapter 4 — figures</h2>",
        f"<figure>{fig41}<figcaption>Unique orders: {census.unique_orders()}"
        "</figcaption></figure>",
        f"<figure>{fig43}</figure>",
        f"<figure>{fig44a}</figure>",
        f"<figure>{fig44b}</figure>",
        "<h2>Overlap fractions</h2>",
        _table(["k", "# parallel", "mean fraction vs main", "zero-overlap"], overlap_rows),
        f"<p>Parallel↔main over k: mean {overlap.parallel_main_mean_over_k():.3f}, "
        f"variance {overlap.parallel_main_variance_over_k():.3f}; "
        f"zero-overlap exceptions: {overlap.total_zero_overlap_exceptions()}.</p>",
        "<h2>Crown / trunk / root</h2>",
        f"<p>Bands: root ≤ k{run.bands.root_max}, crown ≥ k{run.bands.crown_min}. "
        f"Apex {crown.apex_label}: {crown.apex_size} ASes, max-share "
        f"{crown.apex_max_share_ixp} ({crown.apex_max_share_fraction:.0%}).</p>",
        _table(
            ["community", "role", "max-share IXP", "share", "full-share"],
            case_rows,
            f"Crown case study at k = {crown.case_study_k}",
        ),
        _table(
            ["band", "k range", "communities", "note"],
            [
                ["crown", f"{crown.k_range[0]}–{crown.k_range[1]}", crown.n_communities,
                 f"max-share IXPs: {', '.join(sorted(crown.max_share_ixps))}"],
                ["trunk", f"{trunk.k_range[0]}–{trunk.k_range[1]}", trunk.n_communities,
                 f"no full-share; mean member degree {trunk.mean_member_degree:.1f}"],
                ["root", f"{root.k_range[0]}–{root.k_range[1]}", root.n_communities,
                 f"{root.country_contained_parallels} country-contained parallels"],
            ],
        ),
        "<h2>Community tree (Figure 4.2)</h2>",
        f"<pre>{html.escape(run.context.tree.to_ascii(max_children=5))}</pre>",
    ]
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>{html.escape(heading)}</title><style>{_STYLE}</style></head>"
        f"<body>{''.join(sections)}</body></html>"
    )
