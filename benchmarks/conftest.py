"""Benchmark fixtures.

Every benchmark consumes the same synthetic April-2010-like dataset
(default profile, seed 42) and the shared CPM run, so fixture cost is
paid once per session and the timed portions measure exactly the
computation each table/figure needs.

Each benchmark *prints and saves* the rows/series it regenerates —
the textual equivalents of the paper's tables and figures land in
``benchmarks/output/<name>.txt``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.context import AnalysisContext
from repro.report.paper import PaperRun
from repro.topology.generator import GeneratorConfig, generate_topology

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def dataset():
    return generate_topology(GeneratorConfig.default(), seed=42)


@pytest.fixture(scope="session")
def context(dataset):
    return AnalysisContext.from_dataset(dataset)


@pytest.fixture(scope="session")
def paper_run(dataset, context):
    run = PaperRun.__new__(PaperRun)
    run.dataset = dataset
    run.context = context
    return run


@pytest.fixture(scope="session")
def emit():
    """Print a regenerated artefact and archive it under output/."""

    OUTPUT_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return _emit
