"""Community evolution: watching the Internet's dense zones grow.

Extends the paper's single-snapshot analysis along the temporal axis of
its related work ([8], [22]): a synthetic Internet grows over six
campaign-style snapshots, and the k-clique communities of a fixed order
are tracked through birth, growth, merge and split events.

Run:  python examples/evolution_study.py [k]
"""

import sys

from repro.evolution import EventKind, EvolutionTracker, TopologyEvolution
from repro.topology import GeneratorConfig


def main() -> None:
    k = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    evolution = TopologyEvolution(GeneratorConfig.tiny(), seed=7, n_snapshots=6)

    print("ecosystem growth:")
    for t, nodes, edges in evolution.growth_series():
        bar = "#" * (nodes // 20)
        print(f"  t={t:.2f}  {nodes:5d} ASes {edges:6d} links  {bar}")
    print()

    tracker = EvolutionTracker(evolution.snapshots(), k=k)
    print(f"tracking {k}-clique communities across {len(tracker.covers)} snapshots")
    for step, cover in enumerate(tracker.covers):
        sizes = sorted((len(c) for c in cover), reverse=True)
        print(f"  snapshot {step}: {len(cover)} communities, sizes {sizes[:8]}")
    print()

    counts = tracker.event_counts()
    print("life events (Palla et al. taxonomy):")
    for kind in EventKind:
        print(f"  {kind.value:12s} {counts[kind]}")
    print()

    merges = [e for e in tracker.events if e.kind is EventKind.MERGE]
    if merges:
        event = merges[0]
        print(
            f"first merge: snapshot {event.step} -> {event.step + 1}, "
            f"communities {event.before} fused into {event.after} — "
            "regional cliques joining the growing IXP fabric"
        )

    longest = tracker.longest_timeline()
    print(
        f"\nlongest-lived community: appears at snapshot {longest.born_at}, "
        f"size trajectory {longest.sizes()}"
    )
    print(
        "the persistent, ever-growing community is the IXP core — the "
        "same structure the paper's crown analysis isolates in 2010"
    )


if __name__ == "__main__":
    main()
