"""Extension — incremental sessions vs per-snapshot replay.

The incremental API exists so a changing AS topology does not re-pay
enumeration and overlap counting per measurement batch.  This bench
pins that claim on the evolution scenario: the final snapshot
transition of a growing default-scale Internet is fed to a
:class:`repro.incremental.CPMSession` in batches of at most 1% of the
live edges, against a replayer that re-runs ``run_cpm`` after every
batch (what ``EvolutionTracker(strategy="replay")`` pays).  The
session's final hierarchy must be byte-identical to the from-scratch
run, and the measured speedup must hold the >= 3x bar the roadmap
gates on.

Persisted measurements (``BENCH_*.json`` config):
``incr_apply_seconds_growth`` (the batched-feed total) and
``incr_apply_seconds_flap`` (a fixed loop of single-link flap cycles,
the deletion path) are gated by ``check_bench_regression.py``'s
``incr_apply_seconds`` scalar prefix; ``incr_open_seconds``,
``incr_replay_seconds`` and ``incr_speedup_vs_replay`` ride along
ungated (the speedup floor is asserted here instead — a ratio has no
lower-is-better direction for the gate).  The session's ``incr.*``
spans and counters land in the manifest via ``bench_tracer`` /
``bench_metrics``.
"""

from __future__ import annotations

import time

from repro.api import open_session, run_cpm
from repro.core.serialize import hierarchy_to_dict
from repro.evolution import TopologyEvolution
from repro.incremental import EdgeDelta
from repro.report.figures import ascii_table
from repro.topology.generator import GeneratorConfig

#: Snapshots in the growth sequence; the bench feeds the session the
#: last transition only (the earlier ones just shape the topology).
_N_SNAPSHOTS = 12
#: Per-batch delta ceiling as a fraction of the live edge count.
_DELTA_FRACTION = 0.01
#: Single-link flap (down + up) cycles timed for the deletion-path
#: scalar; sized so the loop total clears the regression gate's 0.05 s
#: tiny-baseline floor.
_FLAP_CYCLES = 3


def test_incremental_vs_replay(benchmark, emit, bench_record, bench_tracer, bench_metrics):
    evolution = TopologyEvolution(
        GeneratorConfig.default(), seed=42, n_snapshots=_N_SNAPSHOTS
    )
    snapshots = evolution.snapshots()
    prev, last = snapshots[-2], snapshots[-1]
    full_delta = EdgeDelta.between(prev, last)
    n_prev_edges = sum(1 for _ in prev.edges())
    cap = max(1, int(n_prev_edges * _DELTA_FRACTION))
    insertions = list(full_delta.insertions)
    batches = [
        EdgeDelta(insertions=insertions[i : i + cap])
        for i in range(0, len(insertions), cap)
    ]
    assert full_delta.deletions == ()  # a growing topology only adds links
    assert all(b.n_edges <= cap for b in batches)
    assert cap / n_prev_edges <= _DELTA_FRACTION

    session = open_session(prev, tracer=bench_tracer, metrics=bench_metrics)
    bench_record["incr_open_seconds"] = round(session.open_seconds, 4)

    updates = []
    apply_seconds = 0.0
    for batch in batches:
        start = time.perf_counter()
        updates.append(session.apply(batch))
        apply_seconds += time.perf_counter() - start
    bench_record["incr_apply_seconds_growth"] = round(apply_seconds, 4)

    # The replayer's cost for the same feed: one full run_cpm after
    # every batch (identical graphs, same kernel).
    replayed = prev.copy()
    replay_seconds = 0.0
    result = None
    for batch in batches:
        for u, v in batch.insertions:
            replayed.add_edge(u, v)
        start = time.perf_counter()
        result = run_cpm(replayed)
        replay_seconds += time.perf_counter() - start
    bench_record["incr_replay_seconds"] = round(replay_seconds, 4)

    # Correctness before any number is trusted: the session's state
    # after the whole feed is byte-identical to the from-scratch run.
    assert hierarchy_to_dict(session.result().hierarchy) == hierarchy_to_dict(
        result.hierarchy
    )

    speedup = replay_seconds / apply_seconds
    bench_record["incr_speedup_vs_replay"] = round(speedup, 2)

    # The deletion path: flap one live link down and back up.  Each
    # cycle restores the graph, so the loop (and the pytest-benchmark
    # target below) measures a stable state.
    flap = [sorted(session.graph.edges())[0]]
    down = EdgeDelta(deletions=flap)
    up = EdgeDelta(insertions=flap)
    start = time.perf_counter()
    for _ in range(_FLAP_CYCLES):
        session.apply(down)
        session.apply(up)
    bench_record["incr_apply_seconds_flap"] = round(time.perf_counter() - start, 4)

    benchmark(lambda: (session.apply(down), session.apply(up)))

    total_changes = sum(len(u.changes) for u in updates)
    rows = [
        [
            u.batch,
            f"+{u.inserted_edges}",
            u.cliques_born,
            u.cliques_retired,
            len(u.affected_orders),
            len(u.changes),
        ]
        for u in updates
    ]
    table = ascii_table(
        ["batch", "edges", "born", "retired", "orders", "changes"],
        rows,
        title=(
            f"incremental feed of the final snapshot transition "
            f"({len(batches)} batches of <= {cap} edges, {_DELTA_FRACTION:.0%} "
            f"of {n_prev_edges} live links each)"
        ),
    )
    footer = (
        f"apply total {apply_seconds:.3f}s vs replay total {replay_seconds:.3f}s "
        f"-> {speedup:.2f}x ({total_changes} community changes observed)"
    )
    emit("incremental_vs_replay", f"{table}\n{footer}")

    assert speedup >= 3.0, (
        f"incremental apply must beat per-batch replay >= 3x, got {speedup:.2f}x "
        f"(apply {apply_seconds:.3f}s, replay {replay_seconds:.3f}s)"
    )
    assert total_changes > 0  # growth must surface community changes
    assert any(u.by_kind().get("born") for u in updates)
