"""Hierarchy filtering utilities.

Analyses often need a *view* of the hierarchy — one band, one k-window,
or only the communities an AS belongs to — without re-running CPM.
These helpers build consistent sub-hierarchies: covers are restricted,
and parent provenance is kept wherever both endpoints survive the
filter.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable

from .communities import Community, CommunityCover, CommunityHierarchy

__all__ = ["restrict_orders", "filter_communities", "communities_of_node"]


def restrict_orders(
    hierarchy: CommunityHierarchy, *, min_k: int | None = None, max_k: int | None = None
) -> CommunityHierarchy:
    """The sub-hierarchy over orders in [min_k, max_k].

    Raises when the window is empty.  Parent links whose parent order
    falls outside the window are dropped (the window's lowest order
    becomes the new root level).
    """
    lo = hierarchy.min_k if min_k is None else max(min_k, hierarchy.min_k)
    hi = hierarchy.max_k if max_k is None else min(max_k, hierarchy.max_k)
    orders = [k for k in hierarchy.orders if lo <= k <= hi]
    if not orders:
        raise ValueError(f"no orders in window [{lo}, {hi}]")
    covers = {k: hierarchy[k] for k in orders}
    kept_orders = set(orders)
    parents = {
        child: parent
        for child, parent in hierarchy.parent_labels.items()
        if int(child.lstrip("k").split("id")[0]) in kept_orders
        and int(parent.lstrip("k").split("id")[0]) in kept_orders
    }
    return CommunityHierarchy(covers, parent_labels=parents)


def filter_communities(
    hierarchy: CommunityHierarchy,
    predicate: Callable[[Community], bool],
) -> CommunityHierarchy:
    """Keep only the communities satisfying ``predicate``.

    Orders left with no community are dropped entirely; parent links
    survive only between kept communities.  Note that labels are
    re-indexed per order (``k<k>id<n>`` numbering is positional), so
    the provenance map is rebuilt through the surviving member sets.
    """
    kept_sets: dict[int, list] = {}
    kept_labels: dict[str, tuple[int, frozenset]] = {}
    for community in hierarchy.all_communities():
        if predicate(community):
            kept_sets.setdefault(community.k, []).append(community.members)
            kept_labels[community.label] = (community.k, community.members)
    if not kept_sets:
        raise ValueError("predicate removed every community")
    covers = {k: CommunityCover(k, member_sets) for k, member_sets in kept_sets.items()}
    filtered = CommunityHierarchy(covers)
    # Rebuild provenance: an old edge survives when both endpoints were
    # kept; translate via (k, member-set) identity.
    translation: dict[tuple[int, frozenset], str] = {}
    for k in filtered.orders:
        for community in filtered[k]:
            translation[(k, community.members)] = community.label
    parents = {}
    for child, parent in hierarchy.parent_labels.items():
        if child in kept_labels and parent in kept_labels:
            new_child = translation[kept_labels[child]]
            new_parent = translation[kept_labels[parent]]
            parents[new_child] = new_parent
    filtered.parent_labels.update(parents)
    return filtered


def communities_of_node(
    hierarchy: CommunityHierarchy, node: Hashable
) -> CommunityHierarchy:
    """The sub-hierarchy of communities containing ``node``.

    The node's full nesting chain plus every overlapping community it
    sits in — its position in Figure 4.2.
    """
    return filter_communities(hierarchy, lambda c: node in c.members)
