"""Cross-kernel equivalence: the fast paths vs the references.

The acceptance gate of the fast paths: on every test graph, the bitset
and blocks kernels must produce *exactly* what the set-based reference
produces — the same maximal cliques, the same k range, the same member
sets per order, and the same parent labels — under both ``workers=1``
and ``workers=4``.  All kernels are also checked against the executable
specification (``k_cliques`` percolated directly), and the array-backed
union-find against the dict-backed one, group for group.

The ``blocks`` legs need numpy (the ``[perf]`` extra) and are skipped
cleanly without it — the no-numpy CI leg instead asserts the guard
behaviour (``tests/test_blocks_kernel.py``).
"""

import random

import pytest

from repro.core import IntUnionFind, UnionFind
from repro.core._blocks_compat import HAVE_NUMPY
from repro.core.cliques import maximal_cliques, maximal_cliques_bitset
from repro.core.lightweight import LightweightParallelCPM
from repro.core.percolation import extract_hierarchy, k_clique_communities_direct
from repro.graph import CSRGraph, ring_of_cliques

from .conftest import random_graph

GRAPHS = {
    "ring-4x5": lambda: ring_of_cliques(4, 5),
    "ring-6x4": lambda: ring_of_cliques(6, 4),
    "gnp-sparse": lambda: random_graph(60, 0.15, seed=11),
    "gnp-medium": lambda: random_graph(50, 0.3, seed=23),
    "gnp-dense": lambda: random_graph(35, 0.5, seed=5),
}

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="blocks kernel needs numpy")

#: The non-reference kernels, each verified against the set oracle.
FAST_KERNELS = [
    pytest.param("bitset", id="bitset"),
    pytest.param("blocks", id="blocks", marks=needs_numpy),
]
ALL_KERNELS = [
    pytest.param("set", id="set"),
    *FAST_KERNELS,
]


def _signature(hierarchy):
    return {
        k: sorted(sorted(map(repr, c.members)) for c in cover)
        for k, cover in hierarchy.items()
    }


def _cover_signature(cover):
    return sorted(sorted(map(repr, c.members)) for c in cover)


@pytest.fixture(params=sorted(GRAPHS), ids=sorted(GRAPHS))
def graph(request):
    return GRAPHS[request.param]()


class TestCliqueEnumeration:
    def test_bitset_enumerates_the_same_cliques(self, graph):
        """Same maximal cliques (as label sets) from both kernels."""
        reference = {c for c in maximal_cliques(graph, min_size=2)}
        csr = CSRGraph.from_graph(graph)
        dense = maximal_cliques_bitset(csr, min_size=2)
        fast = {frozenset(csr.to_labels(clique)) for clique in dense}
        assert fast == reference

    @needs_numpy
    def test_blocks_enumerates_the_same_cliques(self, graph):
        """The blocks kernel emits the identical clique sequence.

        Stronger than set equality: the inline leaf resolution must
        preserve the bitset kernel's emission *order* (as member sets),
        which is what keeps dense clique ids — and therefore the packed
        overlap wire — aligned across the two kernels.
        """
        from repro.core.blocks import maximal_cliques_blocks

        csr = CSRGraph.from_graph(graph)
        reference = [frozenset(c) for c in maximal_cliques_bitset(csr, min_size=2)]
        fast = [frozenset(c) for c in maximal_cliques_blocks(csr, min_size=2)]
        assert fast == reference

    def test_min_size_filter_agrees(self, graph):
        csr = CSRGraph.from_graph(graph)
        for min_size in (1, 3, 4):
            reference = {c for c in maximal_cliques(graph, min_size=min_size)}
            fast = {
                frozenset(csr.to_labels(clique))
                for clique in maximal_cliques_bitset(csr, min_size=min_size)
            }
            assert fast == reference

    @needs_numpy
    def test_blocks_min_size_filter_agrees(self, graph):
        from repro.core.blocks import maximal_cliques_blocks

        csr = CSRGraph.from_graph(graph)
        for min_size in (1, 3, 4):
            reference = {
                frozenset(c) for c in maximal_cliques_bitset(csr, min_size=min_size)
            }
            fast = {
                frozenset(c) for c in maximal_cliques_blocks(csr, min_size=min_size)
            }
            assert fast == reference

    def test_dense_ids_are_valid_and_distinct(self, graph):
        csr = CSRGraph.from_graph(graph)
        for clique in maximal_cliques_bitset(csr):
            assert len(set(clique)) == len(clique)
            assert all(0 <= v < csr.n for v in clique)


class TestHierarchyEquivalence:
    @pytest.mark.parametrize("workers", [1, 4])
    @pytest.mark.parametrize("kernel", FAST_KERNELS)
    def test_fast_kernels_match_set_kernel(self, graph, kernel, workers):
        fast = LightweightParallelCPM(graph, kernel=kernel, workers=workers).run()
        reference = LightweightParallelCPM(graph, kernel="set", workers=workers).run()
        assert sorted(fast.orders) == sorted(reference.orders)
        assert _signature(fast) == _signature(reference)
        assert fast.parent_labels == reference.parent_labels

    @pytest.mark.parametrize("kernel", FAST_KERNELS)
    def test_fast_kernels_match_sequential_oracle(self, graph, kernel):
        fast = LightweightParallelCPM(graph, kernel=kernel).run()
        oracle = extract_hierarchy(graph)
        assert _signature(fast) == _signature(oracle)
        assert fast.parent_labels == oracle.parent_labels

    @pytest.mark.parametrize("kernel", FAST_KERNELS)
    def test_workers_do_not_change_the_fast_path(self, graph, kernel):
        h1 = LightweightParallelCPM(graph, kernel=kernel, workers=1).run()
        h4 = LightweightParallelCPM(graph, kernel=kernel, workers=4).run()
        assert _signature(h1) == _signature(h4)
        assert h1.parent_labels == h4.parent_labels

    @pytest.mark.parametrize("kernel", FAST_KERNELS)
    def test_capped_k_range_agrees(self, graph, kernel):
        fast = LightweightParallelCPM(graph, kernel=kernel).run(min_k=3, max_k=4)
        reference = LightweightParallelCPM(graph, kernel="set").run(min_k=3, max_k=4)
        assert sorted(fast.orders) == sorted(reference.orders)
        assert _signature(fast) == _signature(reference)


class TestDefinitionOracle:
    """All kernels against the literal k-clique percolation definition."""

    @pytest.mark.parametrize(
        "name", ["ring-6x4", "gnp-medium", "gnp-dense"]
    )
    @pytest.mark.parametrize("kernel", ALL_KERNELS)
    def test_covers_match_direct_percolation(self, name, kernel):
        graph = GRAPHS[name]()
        hierarchy = LightweightParallelCPM(graph, kernel=kernel).run()
        for k in (3, 4):
            direct = k_clique_communities_direct(graph, k)
            assert _cover_signature(hierarchy[k]) == _cover_signature(direct)


class TestUnionFindEquivalence:
    """IntUnionFind vs UnionFind over clique-percolation-shaped input."""

    def test_group_for_group_on_overlap_streams(self):
        rng = random.Random(4242)
        for _ in range(10):
            n = rng.randrange(2, 80)
            pairs = [
                tuple(sorted(rng.sample(range(n), 2)))
                for _ in range(rng.randrange(3 * n))
            ]
            fast = IntUnionFind(n)
            reference = UnionFind(range(n))
            for i, j in pairs:
                fast.union(i, j)
                reference.union(i, j)
            assert fast.groups() == [sorted(g) for g in reference.groups()]
