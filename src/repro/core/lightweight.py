"""Lightweight Parallel Clique Percolation Method (LP-CPM, [11]).

The paper's communities were extracted with the Lightweight Parallel
CPM of Gregori, Lenzini, Mainardi & Orsini — the only algorithm able to
process the 2.7M maximal cliques of the AS graph (93 hours on 48
cores).  The 'lightweight' idea is to never materialise the CFinder
all-pairs clique overlap matrix; the 'parallel' idea is that both the
overlap computation and the per-order percolation decompose into
independent shards.

This implementation reproduces that architecture in Python:

1. **Enumerate** maximal cliques (Bron–Kerbosch, sequential — the
   enumeration itself is a negligible share of CPM runtime on AS-like
   graphs compared to the overlap phase).
2. **Overlap phase** — the inverted node→cliques index is sharded
   across workers; each worker counts clique-pair co-occurrences over
   its shard of nodes, and shard counters are summed (a pair's total
   co-occurrence count across all nodes *is* its overlap).
3. **Percolation phase** — orders k are distributed across workers;
   each runs an independent union-find over (eligible cliques,
   thresholded overlaps), pre-filtered once per batch by the batch's
   smallest threshold so low-overlap pairs are never rescanned.

``workers=1`` runs everything in-process (no pickling, fully
deterministic); ``workers>1`` uses ``ProcessPoolExecutor``.  Results
are identical by construction, which the test-suite asserts.

Every phase is observable: pass a :class:`repro.obs.Tracer` and a
:class:`repro.obs.MetricsRegistry` and the run emits nested spans
(wall/CPU/peak-memory per phase) plus counters and histograms —
including per-shard timings reported back from worker processes.  The
defaults (no-op tracer, private registry) add no measurable overhead.
"""

from __future__ import annotations

import time
from collections import Counter
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from ..graph.undirected import Graph
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import NULL_TRACER, Tracer, max_rss_kib
from .cliques import CliqueCensus, CliqueEnumerationStats, maximal_cliques
from .communities import CommunityHierarchy
from .percolation import CliqueOverlapIndex, build_hierarchy
from .unionfind import UnionFind

__all__ = ["LightweightParallelCPM", "CPMRunStats"]


@dataclass
class CPMRunStats:
    """Timing and census record of one LP-CPM run.

    Mirrors the run statistics the paper reports in Section 3: the
    maximal clique count, the dominant size band, and per-phase wall
    times.  (Full per-phase CPU/memory detail lives in the tracer's
    spans; this dataclass stays the cheap always-on summary.)
    """

    n_cliques: int = 0
    max_clique_size: int = 0
    n_overlap_pairs: int = 0
    enumerate_seconds: float = 0.0
    overlap_seconds: float = 0.0
    percolate_seconds: float = 0.0
    workers: int = 1
    size_histogram: dict[int, int] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """Sum of the three phase wall times."""
        return self.enumerate_seconds + self.overlap_seconds + self.percolate_seconds


def _count_pairs_shard(shard: list[list[int]]) -> tuple[Counter, dict]:
    """Worker: co-occurrence counts over one shard of the inverted index.

    Returns the pair counter plus a self-timed statistics dict — worker
    processes cannot share the parent's tracer, so each shard reports
    its own wall/CPU time, sizes and peak RSS back for aggregation.
    """
    t0, c0 = time.perf_counter(), time.process_time()
    counter: Counter[tuple[int, int]] = Counter()
    incidences = 0
    pair_updates = 0
    for cids in shard:
        n = len(cids)
        incidences += n
        pair_updates += n * (n - 1) // 2
        for a in range(n):
            ca = cids[a]
            for b in range(a + 1, n):
                counter[(ca, cids[b])] += 1
    stats = {
        "nodes": len(shard),
        "incidences": incidences,
        "pair_updates": pair_updates,
        "distinct_pairs": len(counter),
        "wall_seconds": time.perf_counter() - t0,
        "cpu_seconds": time.process_time() - c0,
        "max_rss_kib": max_rss_kib(),
    }
    return counter, stats


def _percolate_orders(
    orders: list[int],
    sizes: list[int],
    pairs: list[tuple[int, int, int]],
) -> tuple[dict[int, list[list[int]]], dict]:
    """Worker: percolate each order in ``orders`` independently.

    ``sizes`` is the clique-size list sorted descending; ``pairs`` is
    the (i, j, overlap) list.  Pairs below the batch's smallest
    threshold (``min(orders) - 1``) can never merge anything at any
    order of the batch, so they are filtered out once up front instead
    of being rescanned for every k; the skipped count is reported in
    the statistics dict alongside the batch's self-timed wall/CPU time.

    Returns, per order, groups of clique ids (node materialisation
    happens in the parent, which owns the actual clique sets — shipping
    only integer ids keeps the workers light), plus the statistics dict.
    """
    t0, c0 = time.perf_counter(), time.process_time()
    min_threshold = min(orders) - 1
    if min_threshold > 1:
        active = [p for p in pairs if p[2] >= min_threshold]
    else:
        active = pairs
    result: dict[int, list[list[int]]] = {}
    merges = 0
    for k in orders:
        eligible = _prefix_count(sizes, k)
        if eligible == 0:
            result[k] = []
            continue
        uf = UnionFind(range(eligible))
        threshold = k - 1
        for i, j, overlap in active:
            if overlap >= threshold and i < eligible and j < eligible:
                uf.union(i, j)
        groups = [sorted(group) for group in uf.groups()]
        result[k] = groups
        merges += eligible - len(groups)
    stats = {
        "orders": len(orders),
        "pairs_in": len(pairs),
        "skipped_pairs": len(pairs) - len(active),
        "union_merges": merges,
        "wall_seconds": time.perf_counter() - t0,
        "cpu_seconds": time.process_time() - c0,
        "max_rss_kib": max_rss_kib(),
    }
    return result, stats


def _prefix_count(sorted_desc: Sequence[int], k: int) -> int:
    """How many leading entries of a descending sequence are >= k."""
    lo, hi = 0, len(sorted_desc)
    while lo < hi:
        mid = (lo + hi) // 2
        if sorted_desc[mid] >= k:
            lo = mid + 1
        else:
            hi = mid
    return lo


class LightweightParallelCPM:
    """Extract the full k-clique community hierarchy of a graph.

    ``tracer``/``metrics`` (both optional) switch on observability: the
    run then emits ``cpm.run`` → ``cpm.enumerate`` / ``cpm.overlap`` /
    ``cpm.percolate`` / ``cpm.hierarchy`` spans and populates the
    metric names documented in ``docs/observability.md``.

    >>> from repro.graph import ring_of_cliques
    >>> cpm = LightweightParallelCPM(ring_of_cliques(3, 4))
    >>> hierarchy = cpm.run()
    >>> len(hierarchy[4]), len(hierarchy[2])
    (3, 1)
    """

    def __init__(
        self,
        graph: Graph,
        *,
        workers: int = 1,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.graph = graph
        self.workers = workers
        self.stats = CPMRunStats(workers=workers)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._observing = self.tracer.enabled or metrics is not None

    def run(self, *, min_k: int = 2, max_k: int | None = None) -> CommunityHierarchy:
        """Run all three phases and return the hierarchy over [min_k, max_k]."""
        if min_k < 2:
            raise ValueError(f"min_k must be >= 2, got {min_k}")

        with self.tracer.span("cpm.run", workers=self.workers, min_k=min_k, max_k=max_k):
            t0 = time.perf_counter()
            cliques = self._enumerate_phase()
            t1 = time.perf_counter()
            census = CliqueCensus(cliques)
            self.stats.n_cliques = len(cliques)
            self.stats.max_clique_size = census.max_size
            self.stats.size_histogram = census.histogram
            self.stats.enumerate_seconds = t1 - t0
            self.metrics.set_gauge("cliques.max_size", census.max_size)
            top = census.max_size if max_k is None else min(max_k, census.max_size)
            if top < min_k:
                raise ValueError(f"graph has no clique of size >= {min_k}; nothing to extract")

            sizes = [len(c) for c in cliques]
            overlaps = self._overlap_phase(cliques)
            t2 = time.perf_counter()
            self.stats.overlap_seconds = t2 - t1
            self.stats.n_overlap_pairs = len(overlaps)

            hierarchy = self._percolation_phase(cliques, sizes, overlaps, min_k, top)
            self.stats.percolate_seconds = time.perf_counter() - t2
            return hierarchy

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    def _enumerate_phase(self) -> list[frozenset]:
        with self.tracer.span("cpm.enumerate") as span:
            enum_stats = CliqueEnumerationStats() if self._observing else None
            cliques = sorted(
                maximal_cliques(self.graph, min_size=2, stats=enum_stats),
                key=len,
                reverse=True,
            )
            span.set("n_cliques", len(cliques))
            self.metrics.inc("cliques.enumerated", len(cliques))
            if enum_stats is not None:
                span.set("recursive_calls", enum_stats.calls)
                self.metrics.inc("cliques.bk_calls", enum_stats.calls)
                self.metrics.inc("cliques.bk_branches", enum_stats.branches)
                self.metrics.inc("cliques.bk_pivot_candidates", enum_stats.pivot_candidates)
        return cliques

    def _overlap_phase(self, cliques: list[frozenset]) -> dict[tuple[int, int], int]:
        with self.tracer.span("cpm.overlap") as span:
            t0 = time.perf_counter()
            with self.tracer.span("cpm.overlap.index"):
                index: dict[object, list[int]] = {}
                for cid, clique in enumerate(cliques):
                    for node in clique:
                        index.setdefault(node, []).append(cid)
            shards = self._shard(list(index.values()), self.workers)
            span.set("shards", len(shards))
            shard_reports: list[dict]
            if self.workers == 1:
                counts, shard_stats = _count_pairs_shard(shards[0])
                total = dict(counts)
                shard_reports = [shard_stats]
            else:
                merged: Counter[tuple[int, int]] = Counter()
                shard_reports = []
                with ProcessPoolExecutor(max_workers=self.workers) as pool:
                    for partial, shard_stats in pool.map(_count_pairs_shard, shards):
                        merged.update(partial)
                        shard_reports.append(shard_stats)
                total = dict(merged)
            busy = 0.0
            for shard_stats in shard_reports:
                busy += shard_stats["wall_seconds"]
                self.metrics.observe("overlap.shard_seconds", shard_stats["wall_seconds"])
                self.metrics.observe("overlap.shard_nodes", shard_stats["nodes"])
                self.metrics.observe("overlap.shard_incidences", shard_stats["incidences"])
                self.metrics.inc("overlap.pair_updates", shard_stats["pair_updates"])
                self.metrics.observe("worker.max_rss_kib", shard_stats["max_rss_kib"])
            elapsed = time.perf_counter() - t0
            if elapsed > 0:
                self.metrics.set_gauge(
                    "overlap.worker_utilisation", min(1.0, busy / (elapsed * self.workers))
                )
            self.metrics.inc("overlap.pairs", len(total))
            span.set("pairs", len(total))
            return total

    def _percolation_phase(
        self,
        cliques: list[frozenset],
        sizes: list[int],
        overlaps: dict[tuple[int, int], int],
        min_k: int,
        max_k: int,
    ) -> CommunityHierarchy:
        orders = list(range(min_k, max_k + 1))
        pairs = [(i, j, o) for (i, j), o in overlaps.items()]
        with self.tracer.span("cpm.percolate", orders=len(orders), pairs=len(pairs)):
            t0 = time.perf_counter()
            if self.workers == 1:
                grouped, batch_stats = _percolate_orders(orders, sizes, pairs)
                batch_reports = [batch_stats]
            else:
                # Interleave orders across workers: low orders see more
                # eligible cliques (more work), so round-robin balances load.
                batches = [orders[w :: self.workers] for w in range(self.workers)]
                batches = [b for b in batches if b]
                grouped = {}
                batch_reports = []
                with ProcessPoolExecutor(max_workers=self.workers) as pool:
                    results = pool.map(
                        _percolate_orders, batches, [sizes] * len(batches), [pairs] * len(batches)
                    )
                    for part, batch_stats in results:
                        grouped.update(part)
                        batch_reports.append(batch_stats)
            busy = 0.0
            for batch_stats in batch_reports:
                busy += batch_stats["wall_seconds"]
                self.metrics.inc("percolate.skipped_pairs", batch_stats["skipped_pairs"])
                self.metrics.inc("percolate.union_merges", batch_stats["union_merges"])
                self.metrics.observe("percolate.batch_seconds", batch_stats["wall_seconds"])
                self.metrics.observe("percolate.batch_orders", batch_stats["orders"])
                self.metrics.observe("worker.max_rss_kib", batch_stats["max_rss_kib"])
            elapsed = time.perf_counter() - t0
            if elapsed > 0:
                self.metrics.set_gauge(
                    "percolate.worker_utilisation", min(1.0, busy / (elapsed * self.workers))
                )
        with self.tracer.span("cpm.hierarchy"):
            return build_hierarchy(
                cliques, grouped, tracer=self.tracer, metrics=self.metrics
            )

    @staticmethod
    def _shard(items: list, n: int) -> list[list]:
        """Split ``items`` into up to ``n`` contiguous shards (never empty)."""
        if not items:
            return [[]]
        n = min(n, len(items))
        size, extra = divmod(len(items), n)
        shards, start = [], 0
        for w in range(n):
            end = start + size + (1 if w < extra else 0)
            shards.append(items[start:end])
            start = end
        return shards

    def overlap_index(self) -> CliqueOverlapIndex:
        """Expose the sequential index (shared API with repro.core.percolation)."""
        return CliqueOverlapIndex.from_graph(self.graph)
