"""The blocks kernel's own seams: guard, auto-selection, wire, CLI.

Cross-kernel *output* equivalence lives in
``tests/test_kernels_equivalence.py`` / ``tests/test_query.py``; this
module pins everything around the kernel:

* the optional-dependency guard (``repro.core._blocks_compat``) and the
  documented degradation — ``--kernel auto`` falls back to ``bitset``
  and an explicit ``--kernel blocks`` exits 2 with an install hint on a
  numpy-less install (simulated by monkeypatching ``HAVE_NUMPY``, so
  both legs run regardless of which CI matrix cell executes them);
* the uint64 block matrix against the big-int bitsets, bit for bit;
* the vectorized overlap counter against the sharded reference at the
  wire level (same buckets as multisets, same chains);
* the min-label percolation sweep against the incremental union-find,
  group for group;
* the resolved kernel + numpy version stamped into manifest settings,
  and the ``obs diff`` kernel-mismatch warning.
"""

from __future__ import annotations

import json

import pytest

from repro.core import _blocks_compat
from repro.core._blocks_compat import (
    HAVE_NUMPY,
    BlocksUnavailableError,
    numpy_version,
    require_numpy,
)
from repro.core.lightweight import (
    KERNELS,
    LightweightParallelCPM,
    _percolate_orders_packed,
    resolve_kernel,
)
from repro.graph import CSRGraph, ring_of_cliques
from repro.obs.inspect import diff_manifests

from .conftest import random_graph

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="blocks kernel needs numpy")


@pytest.fixture(scope="module")
def saved_dataset(tmp_path_factory, tiny_dataset):
    path = tmp_path_factory.mktemp("data") / "bundle"
    tiny_dataset.save(path)
    return str(path)


class TestGuard:
    def test_kernels_table_lists_blocks(self):
        assert KERNELS == ("bitset", "blocks", "set")

    @needs_numpy
    def test_require_numpy_returns_the_module(self):
        np = require_numpy("test")
        assert np.__name__ == "numpy"
        assert numpy_version() == np.__version__

    def test_missing_numpy_raises_value_error_with_hint(self, monkeypatch):
        monkeypatch.setattr(_blocks_compat, "HAVE_NUMPY", False)
        with pytest.raises(BlocksUnavailableError, match=r"\[perf\]"):
            require_numpy("kernel 'blocks'")
        assert issubclass(BlocksUnavailableError, ValueError)
        assert numpy_version() is None

    @needs_numpy
    def test_auto_resolves_to_blocks(self):
        assert resolve_kernel("auto") == "blocks"

    def test_auto_degrades_to_bitset_without_numpy(self, monkeypatch):
        monkeypatch.setattr(_blocks_compat, "HAVE_NUMPY", False)
        assert resolve_kernel("auto") == "bitset"

    def test_explicit_blocks_without_numpy_raises(self, monkeypatch):
        monkeypatch.setattr(_blocks_compat, "HAVE_NUMPY", False)
        with pytest.raises(BlocksUnavailableError, match="numpy"):
            resolve_kernel("blocks")
        with pytest.raises(BlocksUnavailableError, match="numpy"):
            LightweightParallelCPM(ring_of_cliques(3, 4), kernel="blocks")

    def test_unknown_kernel_still_rejected(self):
        with pytest.raises(ValueError, match="kernel must be one of"):
            resolve_kernel("turbo")

    @needs_numpy
    def test_auto_runs_and_records_resolved_kernel(self):
        cpm = LightweightParallelCPM(ring_of_cliques(3, 4), kernel="auto")
        assert cpm.kernel == "blocks"
        cpm.run()
        assert cpm.stats.kernel == "blocks"


@needs_numpy
class TestBlockMatrix:
    def test_blocks_match_bitsets_bit_for_bit(self):
        csr = CSRGraph.from_graph(random_graph(70, 0.2, seed=3))
        blocks = csr.blocks()
        assert blocks.shape == (csr.n, (csr.n + 63) // 64)
        for i, mask in enumerate(csr.bitsets):
            row = int.from_bytes(blocks[i].tobytes(), "little")
            assert row == mask

    def test_matrix_is_cached(self):
        csr = CSRGraph.from_graph(ring_of_cliques(3, 4))
        assert csr.blocks() is csr.blocks()


@needs_numpy
class TestWireEquivalence:
    """The vectorized overlap/percolation stages vs the references."""

    def _wires(self, graph):
        fast = LightweightParallelCPM(graph, kernel="blocks")
        ref = LightweightParallelCPM(graph, kernel="bitset")
        hierarchies = (fast.run(), ref.run())
        return fast, ref, hierarchies

    @pytest.mark.parametrize("seed", [11, 23])
    def test_overlap_wire_matches_reference(self, seed):
        import numpy as np

        graph = random_graph(55, 0.25, seed=seed)
        dense_graphs = []
        for kernel in ("blocks", "bitset"):
            cpm = LightweightParallelCPM(graph, kernel=kernel)
            dense, _cliques, n_nodes = cpm._enumerate_phase_bitset()
            sizes = [len(c) for c in dense]
            if kernel == "blocks":
                wire, counted = cpm._overlap_phase_blocks(dense, sizes)
            else:
                wire, counted = cpm._overlap_phase_bitset(dense, sizes, n_nodes)
            dense_graphs.append((wire, counted))
        (fast_wire, fast_counted), (ref_wire, ref_counted) = dense_graphs
        assert fast_counted == ref_counted
        assert fast_wire.n_cliques == ref_wire.n_cliques
        assert fast_wire.shift == ref_wire.shift
        assert fast_wire.n_pairs == ref_wire.n_pairs
        assert sorted(fast_wire.buckets) == sorted(ref_wire.buckets)
        for k in ref_wire.buckets:
            fast_words = np.sort(np.frombuffer(fast_wire.buckets[k], dtype="<i8"))
            ref_words = np.sort(np.frombuffer(ref_wire.buckets[k], dtype="<i8"))
            assert np.array_equal(fast_words, ref_words)
        fast_chains = np.sort(np.frombuffer(fast_wire.chains, dtype="<i8"))
        ref_chains = np.sort(np.frombuffer(ref_wire.chains, dtype="<i8"))
        assert np.array_equal(fast_chains, ref_chains)

    @pytest.mark.parametrize("seed", [5, 23])
    def test_percolation_groups_match_union_find(self, seed):
        from repro.core.blocks import percolate_orders_blocks
        from repro.core.lightweight import _prefix_count

        graph = random_graph(50, 0.3, seed=seed)
        cpm = LightweightParallelCPM(graph, kernel="bitset")
        dense, _cliques, n_nodes = cpm._enumerate_phase_bitset()
        sizes = [len(c) for c in dense]
        wire, _ = cpm._overlap_phase_bitset(dense, sizes, n_nodes)
        orders = list(range(max(sizes), 1, -1))
        eligibles = [_prefix_count(sizes, k) for k in orders]
        fast, fast_stats = percolate_orders_blocks(orders, eligibles, wire)
        ref, ref_stats = _percolate_orders_packed(orders, eligibles, wire)
        assert fast == ref
        assert fast_stats["union_merges"] == ref_stats["union_merges"]
        assert fast_stats["orders"] == ref_stats["orders"]


class TestCLI:
    def test_blocks_without_numpy_exits_2(self, saved_dataset, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setattr(_blocks_compat, "HAVE_NUMPY", False)
        code = main(["communities", saved_dataset, "--kernel", "blocks"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "numpy" in err and "[perf]" in err

    def test_auto_without_numpy_runs_on_bitset(self, saved_dataset, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setattr(_blocks_compat, "HAVE_NUMPY", False)
        assert main(["communities", saved_dataset, "--kernel", "auto", "--max-k", "4"]) == 0

    @needs_numpy
    def test_blocks_kernel_end_to_end(self, saved_dataset, capsys):
        from repro.cli import main

        assert main(["communities", saved_dataset, "--kernel", "blocks", "--max-k", "4"]) == 0
        assert "k=4" in capsys.readouterr().out

    def test_manifest_records_resolved_kernel_and_numpy(
        self, saved_dataset, tmp_path, capsys
    ):
        from repro.cli import main

        manifest_path = tmp_path / "manifest.json"
        code = main(
            [
                "communities",
                saved_dataset,
                "--kernel",
                "auto",
                "--max-k",
                "4",
                "--metrics",
                str(manifest_path),
            ]
        )
        assert code == 0
        settings = json.loads(manifest_path.read_text())["settings"]
        assert settings["kernel"] == ("blocks" if HAVE_NUMPY else "bitset")
        assert settings["numpy"] == numpy_version()

    def test_manifest_records_bitset_and_null_without_numpy(
        self, saved_dataset, tmp_path, monkeypatch, capsys
    ):
        from repro.cli import main

        monkeypatch.setattr(_blocks_compat, "HAVE_NUMPY", False)
        manifest_path = tmp_path / "manifest.json"
        code = main(
            [
                "communities",
                saved_dataset,
                "--kernel",
                "auto",
                "--max-k",
                "4",
                "--metrics",
                str(manifest_path),
            ]
        )
        assert code == 0
        settings = json.loads(manifest_path.read_text())["settings"]
        assert settings["kernel"] == "bitset"
        assert settings["numpy"] is None


class TestObsDiff:
    def test_kernel_mismatch_warns_explicitly(self):
        base = {"settings": {"kernel": "bitset"}, "metrics": {"counters": {}}}
        fresh = {"settings": {"kernel": "blocks"}, "metrics": {"counters": {}}}
        out = diff_manifests(base, fresh)
        assert "kernel mismatch" in out
        assert "not a regression" in out

    def test_matching_kernels_do_not_warn(self):
        base = {"settings": {"kernel": "blocks"}, "metrics": {"counters": {}}}
        fresh = {"settings": {"kernel": "blocks"}, "metrics": {"counters": {}}}
        assert "kernel mismatch" not in diff_manifests(base, fresh)
