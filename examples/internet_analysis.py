"""The paper, end to end: generate an AS-level topology, extract all
k-clique communities, and print every table and figure.

This is the scenario the paper's evaluation runs on the real April-2010
Internet; here the synthetic generator stands in for the unavailable
measurement datasets (see DESIGN.md for the substitution argument).

Run:  python examples/internet_analysis.py [seed]
"""

import sys

from repro import PaperRun, generate_topology


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 42
    print(f"generating synthetic AS-level topology (seed={seed})...")
    dataset = generate_topology(seed=seed)
    print(f"  {dataset!r}")

    print("running the Lightweight Parallel CPM and all analyses...\n")
    run = PaperRun(dataset)
    print(run.full_report())

    stats = run.context.cpm_stats
    print(
        f"\nCPM run: {stats.n_cliques} maximal cliques, "
        f"{stats.total_seconds:.2f}s "
        f"(enumerate {stats.enumerate_seconds:.2f}s / "
        f"overlap {stats.overlap_seconds:.2f}s / "
        f"percolate {stats.percolate_seconds:.2f}s)"
    )


if __name__ == "__main__":
    main()
