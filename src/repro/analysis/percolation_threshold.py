"""The k-clique percolation phase transition (Derényi, Palla, Vicsek 2005).

The theory the paper's method stands on: in an Erdős–Rényi graph
G(N, p), k-clique percolation has a sharp threshold at

    p_c(k) = 1 / [ (k-1) * N ]^(1/(k-1))

below which k-clique communities stay microscopic and above which a
giant k-clique community appears.  Reproducing this transition is the
canonical validation of a CPM implementation: the empirical critical
point must land on the formula.

:func:`threshold_sweep` measures the order parameter — the largest
community's share of the graph — across a p sweep around p_c, and
:func:`empirical_threshold` locates the transition.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.percolation import k_clique_communities
from ..graph.generators import erdos_renyi

__all__ = ["critical_probability", "SweepPoint", "threshold_sweep", "empirical_threshold"]


def critical_probability(n: int, k: int) -> float:
    """Derényi et al.'s p_c(k) for G(n, p)."""
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    if n < k:
        raise ValueError(f"need n >= k, got n={n}, k={k}")
    return 1.0 / ((k - 1) * n) ** (1.0 / (k - 1))


@dataclass(frozen=True)
class SweepPoint:
    """One measurement of the order parameter."""

    p: float
    relative_p: float          # p / p_c
    largest_community_share: float
    n_communities: int


def threshold_sweep(
    *,
    n: int,
    k: int,
    relative_ps: list[float],
    trials: int = 3,
    seed: int = 0,
) -> list[SweepPoint]:
    """Order parameter across p = relative_p * p_c, averaged over trials."""
    p_c = critical_probability(n, k)
    points: list[SweepPoint] = []
    for relative_p in relative_ps:
        p = min(1.0, relative_p * p_c)
        shares = []
        counts = []
        for trial in range(trials):
            rng = random.Random(f"{seed}:{relative_p}:{trial}")
            graph = erdos_renyi(n, p, rng)
            cover = k_clique_communities(graph, k)
            counts.append(len(cover))
            largest = cover.largest()
            shares.append((largest.size / n) if largest else 0.0)
        points.append(
            SweepPoint(
                p=p,
                relative_p=relative_p,
                largest_community_share=sum(shares) / trials,
                n_communities=round(sum(counts) / trials),
            )
        )
    return points


def empirical_threshold(points: list[SweepPoint], *, share: float = 0.1) -> float | None:
    """The smallest relative p whose order parameter reaches ``share``.

    Near 1.0 when the implementation matches the theory (the transition
    is at p/p_c = 1 in the N → ∞ limit; finite sizes shift it slightly
    above).
    """
    for point in sorted(points, key=lambda pt: pt.relative_p):
        if point.largest_community_share >= share:
            return point.relative_p
    return None
