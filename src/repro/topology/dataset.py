"""The dataset bundle: topology + IXP + geography, correlated by tags.

The paper's three data sources (Chapter 2) were all collected at the
end of April 2010 so that entries can be correlated.  The synthetic
equivalent is :class:`ASDataset`: one object carrying the AS-level
graph, the IXP registry and the geography registry, produced together
by one generator run (hence mutually consistent), plus optional
human-readable AS names for the special-cased ASes the reports mention.

Bundles round-trip to a directory of plain-text files so experiments
can be re-run on frozen inputs::

    dataset.save("out/april2010-synthetic")
    dataset = ASDataset.load("out/april2010-synthetic")
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..graph.io import format_edgelist, parse_edgelist
from ..graph.undirected import Graph
from .geography import GeoRegistry
from .ixp import IXPRegistry
from .tags import TagSummary, summarize_tags

__all__ = ["ASDataset"]


@dataclass
class ASDataset:
    """A correlated (topology, IXP, geography) dataset."""

    graph: Graph
    ixps: IXPRegistry
    geography: GeoRegistry
    as_names: dict[int, str] = field(default_factory=dict)
    #: Generator role of each AS (tier1 / pool_carrier / provider / ...),
    #: consumed by the relationship-inference layer of repro.routing.
    as_roles: dict[int, str] = field(default_factory=dict)
    notes: dict[str, object] = field(default_factory=dict)

    @property
    def n_ases(self) -> int:
        return self.graph.number_of_nodes

    @property
    def n_links(self) -> int:
        return self.graph.number_of_edges

    def tag_summary(self) -> TagSummary:
        """Tables 2.1 and 2.2 for this dataset."""
        return summarize_tags(self.graph.nodes(), self.ixps, self.geography)

    def name_of(self, asn: int) -> str:
        """Human-readable name (falls back to ``AS<number>``)."""
        return self.as_names.get(asn, f"AS{asn}")

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, directory: str | Path) -> None:
        """Write the bundle to ``directory`` (edge list, TSVs, meta.json)."""
        path = Path(directory)
        path.mkdir(parents=True, exist_ok=True)
        (path / "topology.edges").write_text(
            format_edgelist(self.graph, header="AS-level topology (undirected, unweighted)"),
            encoding="utf-8",
        )
        (path / "ixps.tsv").write_text(self.ixps.to_tsv(), encoding="utf-8")
        (path / "geography.tsv").write_text(self.geography.to_tsv(), encoding="utf-8")
        meta = {
            "as_names": {str(k): v for k, v in self.as_names.items()},
            "as_roles": {str(k): v for k, v in self.as_roles.items()},
            "notes": self.notes,
        }
        (path / "meta.json").write_text(
            json.dumps(meta, indent=2, sort_keys=True), encoding="utf-8"
        )

    @classmethod
    def load(cls, directory: str | Path) -> "ASDataset":
        path = Path(directory)
        graph = parse_edgelist(
            (path / "topology.edges").read_text(encoding="utf-8").splitlines()
        )
        ixps = IXPRegistry.from_tsv((path / "ixps.tsv").read_text(encoding="utf-8"))
        geography = GeoRegistry.from_tsv((path / "geography.tsv").read_text(encoding="utf-8"))
        as_names: dict[int, str] = {}
        as_roles: dict[int, str] = {}
        notes: dict[str, object] = {}
        meta_path = path / "meta.json"
        if meta_path.exists():
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
            as_names = {int(k): v for k, v in meta.get("as_names", {}).items()}
            as_roles = {int(k): v for k, v in meta.get("as_roles", {}).items()}
            notes = meta.get("notes", {})
        return cls(
            graph=graph,
            ixps=ixps,
            geography=geography,
            as_names=as_names,
            as_roles=as_roles,
            notes=notes,
        )

    def __repr__(self) -> str:
        return (
            f"ASDataset(ases={self.n_ases}, links={self.n_links}, "
            f"ixps={len(self.ixps)}, geolocated={len(self.geography)})"
        )
