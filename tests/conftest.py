"""Shared fixtures.

The expensive artefacts (synthetic datasets and their CPM runs) are
session-scoped: the default-profile dataset takes ~1 s of CPM, the tiny
profile is near-instant, and dozens of analysis tests reuse both.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.context import AnalysisContext
from repro.graph import Graph, ring_of_cliques
from repro.topology.generator import GeneratorConfig, generate_topology


@pytest.fixture(scope="session")
def tiny_dataset():
    return generate_topology(GeneratorConfig.tiny(), seed=7)


@pytest.fixture(scope="session")
def tiny_context(tiny_dataset):
    return AnalysisContext.from_dataset(tiny_dataset)


@pytest.fixture(scope="session")
def default_dataset():
    return generate_topology(GeneratorConfig.default(), seed=42)


@pytest.fixture(scope="session")
def default_context(default_dataset):
    return AnalysisContext.from_dataset(default_dataset)


@pytest.fixture(scope="session")
def paper_run(default_dataset):
    from repro.report.paper import PaperRun

    return PaperRun(default_dataset)


@pytest.fixture()
def rng():
    return random.Random(1234)


@pytest.fixture()
def ring_graph() -> Graph:
    """4 pentagon cliques joined in a ring — a standard CPM oracle."""
    return ring_of_cliques(4, 5)


def random_graph(n: int, p: float, seed: int) -> Graph:
    """Deterministic G(n, p) helper for oracle comparisons."""
    from repro.graph import erdos_renyi

    return erdos_renyi(n, p, random.Random(seed))
