"""Unit tests for cover-comparison metrics."""

import pytest

from repro.compare import jaccard, match_covers, omega_index, recall_at


class TestJaccard:
    def test_identical(self):
        assert jaccard({1, 2}, {1, 2}) == 1.0

    def test_disjoint(self):
        assert jaccard({1}, {2}) == 0.0

    def test_partial(self):
        assert jaccard({1, 2, 3}, {2, 3, 4}) == pytest.approx(0.5)

    def test_both_empty(self):
        assert jaccard(set(), set()) == 1.0


class TestMatchCovers:
    def test_perfect_matching(self):
        cover = [{1, 2, 3}, {4, 5}]
        result = match_covers(cover, cover)
        assert result.mean_jaccard == 1.0
        assert not result.unmatched_a and not result.unmatched_b

    def test_greedy_prefers_best_pairs(self):
        a = [{1, 2, 3, 4}, {1, 2}]
        b = [{1, 2, 3, 4}]
        result = match_covers(a, b)
        assert result.pairs[0][:2] == (0, 0)
        assert result.unmatched_a == (1,)

    def test_disjoint_covers_never_scored(self):
        result = match_covers([{1, 2}], [{8, 9}])
        assert result.pairs == ()
        assert result.unmatched_a == (0,)
        assert result.unmatched_b == (0,)

    def test_matched_fraction(self):
        a = [{1, 2, 3}, {7, 8}]
        b = [{1, 2, 3}]
        result = match_covers(a, b)
        assert result.matched_fraction_a(threshold=0.5) == pytest.approx(0.5)

    def test_empty_covers(self):
        result = match_covers([], [])
        assert result.mean_jaccard == 0.0
        assert result.matched_fraction_a() == 0.0


class TestRecallAt:
    def test_full_recall(self):
        reference = [{1, 2, 3}, {4, 5, 6}]
        assert recall_at(reference, reference) == 1.0

    def test_threshold_effect(self):
        reference = [{1, 2, 3, 4}]
        candidate = [{1, 2, 9, 10}]  # jaccard 2/6 = 0.33
        assert recall_at(reference, candidate, threshold=0.5) == 0.0
        assert recall_at(reference, candidate, threshold=0.3) == 1.0

    def test_many_to_one_allowed(self):
        """Two reference communities may match the same candidate."""
        reference = [{1, 2, 3}, {1, 2, 3, 4}]
        candidate = [{1, 2, 3, 4}]
        assert recall_at(reference, candidate, threshold=0.7) == 1.0

    def test_empty_reference(self):
        assert recall_at([], [{1}]) == 1.0


class TestOmegaIndex:
    def test_identical_covers(self):
        cover = [{1, 2, 3}, {3, 4, 5}]
        assert omega_index(cover, cover, range(1, 6)) == 1.0

    def test_perfect_disagreement_is_low(self):
        a = [{1, 2}, {3, 4}]
        b = [{1, 3}, {2, 4}]
        assert omega_index(a, b, range(1, 5)) < 0.5

    def test_overlap_multiplicity_matters(self):
        """Omega distinguishes pairs sharing 2 communities from pairs
        sharing 1 — plain Rand-style indices cannot."""
        double = [{1, 2, 3}, {1, 2, 4}]  # pair (1,2) co-occurs twice
        single = [{1, 2, 3}, {5, 6, 4}]
        assert omega_index(double, double, range(1, 7)) == 1.0
        assert omega_index(double, single, range(1, 7)) < 1.0

    def test_empty_universe(self):
        assert omega_index([], [], []) == 1.0

    def test_symmetry(self):
        a = [{1, 2, 3}, {4, 5}]
        b = [{1, 2}, {3, 4, 5}]
        universe = range(1, 6)
        assert omega_index(a, b, universe) == pytest.approx(omega_index(b, a, universe))
