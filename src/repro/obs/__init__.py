"""Observability: tracing, metrics and run manifests for the LP-CPM pipeline.

The paper's headline engineering feat is scale — 2.7M maximal cliques
processed in 93 hours on 48 cores — and every optimisation claim since
needs before/after numbers.  This package provides the three layers
that make the enumerate → overlap → percolate → tree pipeline
observable:

* :mod:`repro.obs.tracing` — context-manager :class:`Span`\\ s with
  nesting, wall time, CPU time and peak-memory sampling, collected by a
  :class:`Tracer` and exportable as JSONL.  The default
  :data:`NULL_TRACER` is a no-op with no measurable overhead, so
  un-instrumented runs pay nothing.
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of named
  counters, gauges and histograms (cliques enumerated, overlap pairs,
  union-find merges, shard sizes, worker utilisation) with JSON export
  and cross-process merging.
* :mod:`repro.obs.manifest` — a :class:`RunManifest` bundling the graph
  fingerprint, run configuration, library versions and all spans and
  metrics into one JSON artifact per run, the unit of the benchmark
  trajectory under ``benchmarks/output/``.

Telemetry v2 adds the capture-and-inspect layers on top:

* :mod:`repro.obs.worker` — per-task tracer/metrics inside pool worker
  processes, shipped back with each batch result and grafted into the
  driver trace with pid/worker attribution;
* :mod:`repro.obs.resources` — a sampling :class:`ResourceMonitor`
  thread recording an RSS/CPU series into the manifest;
* :mod:`repro.obs.export` — conversion of traces to Chrome/Perfetto
  trace-event JSON (``ui.perfetto.dev``);
* :mod:`repro.obs.inspect` — terminal rendering: ASCII span trees,
  manifest diffs, bench-scalar history (the ``repro obs`` CLI).

The serving plane adds the live-telemetry layers:

* :mod:`repro.obs.exposition` — Prometheus text exposition
  (v0.0.4) of registries and manifest metric blocks: counters,
  gauges, and log-bucketed histograms as summary families with
  p50/p90/p99 quantile series, plus the parser ``repro obs tail``
  uses to difference scrapes into rates;
* :mod:`repro.obs.logging` — structured newline-delimited JSON
  events with run/request-id correlation (``--log-json``), the
  access-log and phase-progress channel for long-lived processes.

Schema and metric-name reference: ``docs/observability.md``.
"""

from .export import to_perfetto, validate_trace_events, write_perfetto
from .exposition import parse_exposition, render_exposition, sanitize_metric_name
from .inspect import diff_manifests, history, load_trace, render_tree
from .logging import JsonLogger, configure, get_logger, log_event, new_run_id
from .manifest import RunManifest, graph_fingerprint, library_versions
from .metrics import AtomicCounter, Counter, Gauge, Histogram, MetricsRegistry
from .resources import ResourceMonitor
from .tracing import NULL_TRACER, NullTracer, Span, SpanRecord, Tracer
from .worker import (
    TelemetryEnvelope,
    WorkerTelemetry,
    capture,
    current_metrics,
    current_tracer,
    worker_span,
)

__all__ = [
    "Span",
    "SpanRecord",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "AtomicCounter",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "render_exposition",
    "parse_exposition",
    "sanitize_metric_name",
    "JsonLogger",
    "configure",
    "get_logger",
    "log_event",
    "new_run_id",
    "RunManifest",
    "graph_fingerprint",
    "library_versions",
    "ResourceMonitor",
    "WorkerTelemetry",
    "TelemetryEnvelope",
    "capture",
    "current_metrics",
    "current_tracer",
    "worker_span",
    "to_perfetto",
    "validate_trace_events",
    "write_perfetto",
    "load_trace",
    "render_tree",
    "diff_manifests",
    "history",
]
