"""Community census — Figure 4.1 (number of k-clique communities vs k).

The paper reports 627 communities in total, with many communities at
low k, few at high k, a single 2-clique community (the graph is
connected), and *unique* orders — k values with exactly one community —
at k in {2, 21, 22, 25, 36}.  By the nesting theorem a unique community
contains every community of every higher order.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.communities import CommunityHierarchy

__all__ = ["CensusRow", "CommunityCensus"]


@dataclass(frozen=True)
class CensusRow:
    """One point of Figure 4.1."""

    k: int
    n_communities: int
    n_parallel: int

    @property
    def is_unique(self) -> bool:
        return self.n_communities == 1


class CommunityCensus:
    """The Figure 4.1 series plus its headline statements."""

    def __init__(self, hierarchy: CommunityHierarchy) -> None:
        self.hierarchy = hierarchy
        self.rows = [
            CensusRow(k=k, n_communities=n, n_parallel=max(0, n - 1))
            for k, n in hierarchy.counts_by_k().items()
        ]

    @property
    def total_communities(self) -> int:
        """Grand total over all k (the paper: 627)."""
        return sum(row.n_communities for row in self.rows)

    @property
    def max_k(self) -> int:
        return self.hierarchy.max_k

    def unique_orders(self) -> list[int]:
        """Orders with a single community (the paper: 2, 21, 22, 25, 36)."""
        return [row.k for row in self.rows if row.is_unique]

    def single_2_clique_community(self) -> bool:
        """True iff there is exactly one 2-clique community.

        Holds exactly when the dataset is one connected component —
        the sanity property Chapter 4 opens with.
        """
        return 2 in self.hierarchy and len(self.hierarchy[2]) == 1

    def series(self) -> list[tuple[int, int]]:
        """(k, count) pairs — the plotted series of Figure 4.1."""
        return [(row.k, row.n_communities) for row in self.rows]

    def count_in_band(self, lo: int, hi: int) -> int:
        """Communities with order in [lo, hi] (crown/trunk/root totals)."""
        return sum(row.n_communities for row in self.rows if lo <= row.k <= hi)
