"""Extended property-based tests for the newer subsystems."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compare import jaccard, match_covers, omega_index
from repro.core import extract_hierarchy, weighted_k_clique_communities
from repro.core.serialize import hierarchy_from_dict, hierarchy_to_dict
from repro.graph import Graph, WeightedGraph
from repro.graph.nullmodel import double_edge_swap
from repro.graph.stats import degree_assortativity, global_clustering


@st.composite
def graphs(draw, max_nodes: int = 12, min_edges: int = 1):
    # Enough nodes that min_edges distinct pairs exist.
    min_nodes = 3
    while min_nodes * (min_nodes - 1) // 2 < min_edges:
        min_nodes += 1
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), min_size=min_edges, max_size=len(possible), unique=True)
    )
    g = Graph()
    g.add_nodes_from(range(n))
    g.add_edges_from(edges)
    return g


@st.composite
def weighted_graphs(draw, max_nodes: int = 10):
    n = draw(st.integers(min_value=3, max_value=max_nodes))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), min_size=1, unique=True))
    g = WeightedGraph()
    g.add_nodes_from(range(n))
    for u, v in edges:
        g.add_edge(u, v, draw(st.floats(min_value=0.1, max_value=10.0)))
    return g


class TestSerializationProperties:
    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_round_trip_preserves_everything(self, g):
        hierarchy = extract_hierarchy(g)
        loaded = hierarchy_from_dict(hierarchy_to_dict(hierarchy))
        assert loaded.counts_by_k() == hierarchy.counts_by_k()
        assert loaded.parent_labels == hierarchy.parent_labels
        for k in hierarchy.orders:
            assert [c.members for c in loaded[k]] == [c.members for c in hierarchy[k]]


class TestWeightedCpmProperties:
    @given(weighted_graphs(), st.integers(min_value=3, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_threshold_monotonicity(self, g, k):
        """Raising I0 never adds members to the cover."""
        low = weighted_k_clique_communities(g, k, 0.0)
        high = weighted_k_clique_communities(g, k, 1.0)
        low_nodes = set().union(*(c.members for c in low)) if len(low) else set()
        high_nodes = set().union(*(c.members for c in high)) if len(high) else set()
        assert high_nodes <= low_nodes

    @given(weighted_graphs(), st.integers(min_value=3, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_zero_threshold_matches_unweighted(self, g, k):
        from repro.core import k_clique_communities

        weighted = weighted_k_clique_communities(g, k, 0.0)
        unweighted = k_clique_communities(g, k)
        assert sorted(sorted(c.members) for c in weighted) == sorted(
            sorted(c.members) for c in unweighted
        )


class TestNullModelProperties:
    @given(graphs(max_nodes=14, min_edges=4), st.integers(min_value=0, max_value=100))
    @settings(max_examples=40, deadline=None)
    def test_swaps_preserve_degree_sequence(self, g, swaps):
        import random

        before = g.degrees()
        double_edge_swap(g, n_swaps=swaps, rng=random.Random(1))
        assert g.degrees() == before

    @given(graphs(max_nodes=14, min_edges=4))
    @settings(max_examples=40, deadline=None)
    def test_swaps_keep_graph_simple(self, g):
        import random

        n_before = g.number_of_edges
        double_edge_swap(g, n_swaps=60, rng=random.Random(2))
        assert g.number_of_edges == n_before
        for u, v in g.edges():
            assert u != v


def _have_scipy() -> bool:
    # nx.degree_pearson_correlation_coefficient imports scipy (-> numpy)
    # lazily; skip just that cross-check on minimal installs.
    try:
        import scipy  # noqa: F401
    except ImportError:
        return False
    return True


class TestStatsProperties:
    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_clustering_and_assortativity_match_networkx(self, g):
        G = nx.Graph(list(g.edges()))
        G.add_nodes_from(g.nodes())
        assert abs(global_clustering(g) - nx.transitivity(G)) < 1e-9
        ours = degree_assortativity(g)
        if g.number_of_edges >= 2 and ours != 0.0 and _have_scipy():
            theirs = nx.degree_pearson_correlation_coefficient(G)
            if theirs == theirs:  # NaN guard
                assert abs(ours - theirs) < 1e-9


class TestCompareProperties:
    @given(
        st.lists(st.sets(st.integers(0, 9), min_size=1), min_size=1, max_size=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_omega_self_identity(self, cover):
        assert omega_index(cover, cover, range(10)) == 1.0

    @given(
        st.lists(st.sets(st.integers(0, 9), min_size=1), min_size=1, max_size=4),
        st.lists(st.sets(st.integers(0, 9), min_size=1), min_size=1, max_size=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_match_covers_scores_are_jaccards(self, a, b):
        result = match_covers(a, b)
        for i, j, score in result.pairs:
            assert abs(score - jaccard(a[i], b[j])) < 1e-12
            assert score > 0.0


class TestPlantedCliqueProperties:
    """Planted structure must always be recovered — the CPM guarantee
    the whole reproduction rests on."""

    @given(
        graphs(max_nodes=10),
        st.integers(min_value=4, max_value=6),
    )
    @settings(max_examples=50, deadline=None)
    def test_planted_clique_is_always_found(self, g, s):
        from repro.core import k_clique_communities

        # Plant a clique on fresh nodes, bridged by one edge.
        planted = [("planted", i) for i in range(s)]
        for i, u in enumerate(planted):
            for v in planted[i + 1 :]:
                g.add_edge(u, v)
        g.add_edge(planted[0], next(iter(g.nodes())))
        cover = k_clique_communities(g, s)
        assert any(set(planted) <= set(c.members) for c in cover)

    @given(graphs(max_nodes=10), st.integers(min_value=4, max_value=6))
    @settings(max_examples=50, deadline=None)
    def test_planted_clique_nested_at_every_lower_order(self, g, s):
        from repro.core import extract_hierarchy

        planted = [("planted", i) for i in range(s)]
        for i, u in enumerate(planted):
            for v in planted[i + 1 :]:
                g.add_edge(u, v)
        hierarchy = extract_hierarchy(g)
        for k in range(2, s + 1):
            assert any(
                set(planted) <= set(c.members) for c in hierarchy[k]
            ), f"planted {s}-clique missing at order {k}"
