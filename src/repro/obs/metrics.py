"""Named counters, gauges and histograms for CPM runs.

A :class:`MetricsRegistry` is a flat namespace of instruments:

* :class:`Counter` — monotonically increasing totals (cliques
  enumerated, overlap pair updates, union-find merges, skipped pairs);
* :class:`Gauge` — last-value-wins observations (worker utilisation,
  eligible cliques at the minimum order);
* :class:`Histogram` — summary statistics over repeated observations
  (per-shard wall times, shard sizes, per-order percolation work),
  keeping count/sum/min/max rather than raw samples so a registry
  stays O(instruments) regardless of run length.

Registries are cheap plain-Python objects; worker processes report raw
dicts back to the parent, which folds them in with :meth:`
MetricsRegistry.merge`.  Canonical metric names are documented in
``docs/observability.md``; the resilient runner adds its own
``runner.*`` family (retries, pool restarts, timeouts, fallback
batches, resumed phases, and the ``runner.degraded`` gauge — see
``docs/robustness.md``).
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing integer total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A last-value-wins observation."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current value, replacing the previous one."""
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Streaming summary (count / sum / min / max) of observations."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        """Fold one observation into the summary."""
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        """The summary as a plain dict (count, sum, min, max, mean)."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:.6g})"


class MetricsRegistry:
    """Get-or-create namespace of counters, gauges and histograms.

    >>> metrics = MetricsRegistry()
    >>> metrics.inc("cliques.enumerated", 3)
    >>> metrics.observe("overlap.shard_seconds", 0.5)
    >>> metrics.counter("cliques.enumerated").value
    3
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Instruments
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """The counter named ``name``, created at 0 on first use."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name``, created at 0.0 on first use."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram named ``name``, created empty on first use."""
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    # ------------------------------------------------------------------
    # Convenience forms
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value``."""
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into histogram ``name``."""
        self.histogram(name).observe(value)

    # ------------------------------------------------------------------
    # Export / merge
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """All instruments as one JSON-serialisable dict."""
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {name: h.summary() for name, h in sorted(self._histograms.items())},
        }

    def merge(self, payload: "MetricsRegistry | dict") -> None:
        """Fold another registry (or its ``to_dict`` form) into this one.

        Counters add, gauges take the incoming value, histogram
        summaries combine exactly (count/sum add, min/max extremise) —
        the operation used to aggregate worker-process reports.
        """
        data = payload.to_dict() if isinstance(payload, MetricsRegistry) else payload
        for name, value in data.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in data.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, summary in data.get("histograms", {}).items():
            histogram = self.histogram(name)
            histogram.count += summary.get("count", 0)
            histogram.total += summary.get("sum", 0.0)
            for bound, pick in (("min", min), ("max", max)):
                incoming = summary.get(bound)
                if incoming is not None:
                    current = getattr(histogram, bound)
                    setattr(
                        histogram, bound,
                        incoming if current is None else pick(current, incoming),
                    )

    def write_json(self, path) -> Path:
        """Write :meth:`to_dict` as pretty-printed JSON; returns the path."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8")
        return target

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, histograms={len(self._histograms)})"
        )
