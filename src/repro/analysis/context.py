"""Shared analysis context.

Every experiment in Chapter 4 consumes the same three artefacts: the
dataset bundle, the full k-clique community hierarchy, and the
community tree.  :class:`AnalysisContext` computes them once (CPM is
the expensive step) and hands them to the per-figure analyses, so a
full paper run costs one extraction.

The context also owns the shared :class:`~repro.analysis.engine
.MetricsEngine`: the per-community metric table (density, ODF, sizes,
per-order overlap fractions) is swept once, memoized here, and every
analysis (:class:`~repro.analysis.density_odf.DensityOdfAnalysis`,
:class:`~repro.analysis.overlap.OverlapAnalysis`, sizes, bands, the
report) reads from it.  ``analysis_engine`` selects the bitset fast
path or the set-based reference oracle (``--analysis-engine`` on the
CLI); ``csr`` reuses the CPM run's CSR snapshot so the sweep never
re-derives the degeneracy order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.cache import CliqueCache
from ..core.communities import Community, CommunityHierarchy
from ..core.lightweight import CPMRunStats
from ..core.tree import CommunityTree
from ..graph.csr import CSRGraph
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import Tracer
from ..runner import CheckpointStore, FaultPlan, RunnerConfig
from ..topology.dataset import ASDataset
from .engine import MetricsEngine, MetricsRow

__all__ = ["AnalysisContext"]


@dataclass
class AnalysisContext:
    """Dataset + hierarchy + tree + metric table, shared by all analyses."""

    dataset: ASDataset
    hierarchy: CommunityHierarchy
    tree: CommunityTree
    cpm_stats: CPMRunStats | None = None
    #: CSR snapshot reused from the CPM run (None → the engine builds
    #: its own on first use).
    csr: CSRGraph | None = None
    #: Which metric engine the analyses consume: "bitset" or "set".
    analysis_engine: str = "bitset"
    #: Worker-pool width for the engine sweep (1 = serial).
    analysis_workers: int = 1
    tracer: Tracer | None = None
    metrics: MetricsRegistry | None = None
    _engine: MetricsEngine | None = field(
        init=False, default=None, repr=False, compare=False
    )

    @classmethod
    def from_dataset(
        cls,
        dataset: ASDataset,
        *,
        workers: int = 1,
        kernel: str = "bitset",
        shards: int | str = 1,
        cache: CliqueCache | None = None,
        checkpoint: CheckpointStore | None = None,
        resume: bool = False,
        runner: RunnerConfig | None = None,
        fault_plan: FaultPlan | None = None,
        min_k: int = 2,
        max_k: int | None = None,
        analysis_engine: str = "bitset",
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> "AnalysisContext":
        """Run LP-CPM on the dataset and build the community tree.

        Extraction goes through :func:`repro.api.run_cpm`, so every
        facade option is available here: ``kernel``/``cache`` select
        the CPM kernel and an optional on-disk clique cache
        (``docs/performance.md``); ``checkpoint``/``resume``/
        ``runner``/``fault_plan`` enable the resilient-runner features
        (``docs/robustness.md``).  ``analysis_engine`` selects the
        metric engine the Chapter-4 analyses consume (the bitset sweep
        or the set-based oracle).  ``tracer``/``metrics`` are threaded
        through the extraction, the tree build and the metric sweep, so
        one instrumented context captures the whole pipeline
        (``docs/observability.md``).
        """
        from ..api import run_cpm

        result = run_cpm(
            dataset.graph,
            k_range=(min_k, max_k),
            workers=workers,
            kernel=kernel,
            shards=shards,
            cache=cache,
            checkpoint=checkpoint,
            resume=resume,
            runner=runner,
            fault_plan=fault_plan,
            tracer=tracer,
            metrics=metrics,
        )
        return cls(
            dataset=dataset,
            hierarchy=result.hierarchy,
            tree=CommunityTree(result.hierarchy, tracer=tracer, metrics=metrics),
            cpm_stats=result.stats,
            csr=result.csr,
            analysis_engine=analysis_engine,
            analysis_workers=workers,
            tracer=tracer,
            metrics=metrics,
        )

    @property
    def engine(self) -> MetricsEngine:
        """The shared metric engine, built lazily and memoized."""
        if self._engine is None:
            self._engine = MetricsEngine(
                self.hierarchy,
                self.tree,
                self.graph,
                engine=self.analysis_engine,
                csr=self.csr,
                workers=self.analysis_workers,
                tracer=self.tracer,
                metrics=self.metrics,
            )
        return self._engine

    def metrics_rows(self) -> list[MetricsRow]:
        """The per-community metric table (one sweep, memoized)."""
        return self.engine.rows()

    def is_main(self, community: Community) -> bool:
        """True iff ``community`` lies on the main chain of the tree."""
        return self.tree.is_main(community)

    @property
    def graph(self):
        return self.dataset.graph
