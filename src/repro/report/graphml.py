"""GraphML export: topology + community structure for external tools.

Writes the AS graph with per-node attributes (role, country list,
on-IXP flag, community memberships at a chosen order, main-community
flag and tree band) so the paper's figures can be re-drawn in Gephi /
Cytoscape / yEd.  Plain ``xml.etree`` output, no dependencies.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path

from ..analysis.bands import BandBoundaries
from ..analysis.context import AnalysisContext

__all__ = ["graphml_document", "write_graphml"]

_KEYS = [
    ("role", "string"),
    ("countries", "string"),
    ("on_ixp", "boolean"),
    ("degree", "int"),
    ("communities", "string"),
    ("in_main_community", "boolean"),
    ("band", "string"),
]


def graphml_document(
    context: AnalysisContext,
    *,
    k: int,
    bands: BandBoundaries | None = None,
) -> str:
    """The GraphML text for the dataset with order-``k`` memberships."""
    hierarchy = context.hierarchy
    if k not in hierarchy:
        raise KeyError(f"hierarchy has no order {k}")
    dataset = context.dataset
    graph = context.graph
    cover = hierarchy[k]
    main_label = context.tree.main_community(k).label if len(cover) else ""

    root = ET.Element("graphml", xmlns="http://graphml.graphdrawing.org/xmlns")
    for index, (name, kind) in enumerate(_KEYS):
        ET.SubElement(
            root,
            "key",
            id=f"d{index}",
            **{"for": "node", "attr.name": name, "attr.type": kind},
        )
    graph_el = ET.SubElement(root, "graph", id="as-topology", edgedefault="undirected")

    key_id = {name: f"d{i}" for i, (name, _) in enumerate(_KEYS)}
    for node in sorted(graph.nodes()):
        node_el = ET.SubElement(graph_el, "node", id=f"AS{node}")
        memberships = [c.label for c in cover.communities_of(node)]
        values = {
            "role": dataset.as_roles.get(node, ""),
            "countries": ",".join(sorted(dataset.geography.countries(node))),
            "on_ixp": "true" if dataset.ixps.is_on_ixp(node) else "false",
            "degree": str(graph.degree(node)),
            "communities": ",".join(memberships),
            "in_main_community": "true" if main_label in memberships else "false",
            "band": bands.band_of(k) if bands else "",
        }
        for name, value in values.items():
            data = ET.SubElement(node_el, "data", key=key_id[name])
            data.text = value
    for index, (u, v) in enumerate(sorted(tuple(sorted((a, b))) for a, b in graph.edges())):
        ET.SubElement(graph_el, "edge", id=f"e{index}", source=f"AS{u}", target=f"AS{v}")
    return ET.tostring(root, encoding="unicode", xml_declaration=True)


def write_graphml(
    context: AnalysisContext,
    path: str | Path,
    *,
    k: int,
    bands: BandBoundaries | None = None,
) -> None:
    """Write :func:`graphml_document` output to ``path``."""
    Path(path).write_text(graphml_document(context, k=k, bands=bands), encoding="utf-8")
