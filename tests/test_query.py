"""Tests for the query subsystem: artifact, lookup engine, server, CLI.

The round-trip contract under test: build an artifact from a live CPM
result, save it, load it back through the mmap path, and every lookup
must be *identical* to the answer computed directly from the
``CommunityHierarchy``/``CommunityTree`` objects — across both kernels.
Plus: corrupted/truncated files fail with a clean :class:`ArtifactError`,
the HTTP server answers every endpoint, and ``repro query lookup``
traces contain no ``cpm.run`` span (zero recompute on the read path).
"""

from __future__ import annotations

import http.client
import io
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import build_query_artifact, load_query_artifact, run_cpm
from repro.cli import main
from repro.obs import logging as obs_logging
from repro.obs.exposition import parse_exposition
from repro.obs.manifest import graph_fingerprint
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.query import (
    ARTIFACT_VERSION,
    ArtifactError,
    BandSpec,
    LookupEngine,
    QueryArtifact,
    build_artifact,
    make_server,
)


# ----------------------------------------------------------------------
# Shared artefacts (module-scoped; CPM on the tiny profile is ~instant)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def cpm_result(tiny_dataset):
    return run_cpm(tiny_dataset.graph, k_range=(3, None), kernel="bitset")


@pytest.fixture(scope="module")
def artifact(cpm_result, tiny_dataset):
    art = build_query_artifact(cpm_result, tiny_dataset.graph)
    yield art
    art.close()


@pytest.fixture(scope="module")
def loaded(artifact, tmp_path_factory):
    path = tmp_path_factory.mktemp("artifact") / "tiny.rqart"
    artifact.save(path)
    art = load_query_artifact(path)
    yield art
    art.close()


@pytest.fixture(scope="module")
def engine(loaded):
    return LookupEngine(loaded)


# ----------------------------------------------------------------------
# BandSpec
# ----------------------------------------------------------------------
class TestBandSpec:
    def test_band_of(self):
        bands = BandSpec(13, 29)
        assert bands.band_of(3) == "root"
        assert bands.band_of(13) == "root"
        assert bands.band_of(14) == "trunk"
        assert bands.band_of(28) == "trunk"
        assert bands.band_of(29) == "crown"
        assert bands.band_of(40) == "crown"


# ----------------------------------------------------------------------
# Building
# ----------------------------------------------------------------------
class TestBuild:
    def test_counts_match_hierarchy(self, artifact, cpm_result):
        hierarchy = cpm_result.hierarchy
        assert artifact.n_communities == sum(
            len(hierarchy[k]) for k in hierarchy.orders
        )
        universe = set()
        for k in hierarchy.orders:
            for community in hierarchy[k]:
                universe.update(community.members)
        assert artifact.n_nodes == len(universe)
        assert artifact.orders == hierarchy.orders

    def test_fingerprint_is_graph_fingerprint(self, artifact, tiny_dataset):
        assert artifact.fingerprint == graph_fingerprint(tiny_dataset.graph)

    def test_kernels_build_identical_bytes(self, tiny_dataset):
        """All kernels freeze into byte-identical artifacts.

        The set oracle anchors the comparison; the bitset and (when
        numpy is installed) blocks kernels must reproduce its artifact
        byte for byte — hierarchy, tree, metric table and all.  The
        blocks leg also runs the blocks *analysis engine* so the whole
        vectorized path is pinned end to end.
        """
        from repro.core._blocks_compat import HAVE_NUMPY

        legs = [("set", "set"), ("bitset", "bitset")]
        if HAVE_NUMPY:
            legs.append(("blocks", "blocks"))
        blobs = {}
        for kernel, engine in legs:
            result = run_cpm(tiny_dataset.graph, k_range=(3, None), kernel=kernel)
            blobs[kernel] = build_query_artifact(
                result, tiny_dataset.graph, analysis_engine=engine
            ).to_bytes()
        assert len(set(blobs.values())) == 1, sorted(blobs)

    def test_build_emits_span_and_counters(self, cpm_result, tiny_dataset):
        tracer, registry = Tracer(memory=True), MetricsRegistry()
        art = build_query_artifact(
            cpm_result, tiny_dataset.graph, tracer=tracer, metrics=registry
        )
        tracer.close()
        assert tracer.find("query.build")
        counters = registry.to_dict()["counters"]
        assert counters["query.build.communities"] == art.n_communities
        assert counters["query.build.nodes"] == art.n_nodes

    def test_rejects_unserialisable_nodes(self):
        graph_edges = [((1, 2), (3, 4)), ((3, 4), (5, 6)), ((1, 2), (5, 6))]
        from repro.graph import Graph

        result = run_cpm(Graph(graph_edges), k_range=(3, 3), kernel="set")
        with pytest.raises(TypeError, match="int/str"):
            build_artifact(result.hierarchy, graph=Graph(graph_edges))

    def test_needs_table_or_graph(self, cpm_result):
        with pytest.raises(ValueError, match="table or a graph"):
            build_artifact(cpm_result.hierarchy)


# ----------------------------------------------------------------------
# Round-trip: save -> load(mmap) -> identical lookups
# ----------------------------------------------------------------------
class TestRoundTrip:
    def test_loaded_bytes_identical(self, artifact, loaded):
        assert artifact.to_bytes() == loaded.to_bytes()

    def test_memberships_match_hierarchy(self, engine, cpm_result):
        hierarchy = cpm_result.hierarchy
        for node in engine.artifact.nodes:
            assert engine.memberships(node) == hierarchy.membership_of(node)

    def test_members_match_hierarchy(self, loaded, cpm_result):
        for ordinal, community in enumerate(cpm_result.hierarchy.all_communities()):
            assert loaded.label(ordinal) == community.label
            assert loaded.members(ordinal) == sorted(community.members)
            assert loaded.ordinal(community.label) == ordinal

    def test_parents_match_tree(self, loaded, cpm_result):
        from repro.core.tree import CommunityTree

        tree = CommunityTree(cpm_result.hierarchy)
        for ordinal, community in enumerate(cpm_result.hierarchy.all_communities()):
            record = loaded.record(ordinal)
            parent = tree.node(community.label).parent
            assert record["parent"] == (parent.label if parent else None)
            assert record["is_main"] == tree.is_main(community.label)

    def test_metric_table_matches_engine(self, loaded, tiny_context):
        table = {
            row["label"]: (row["link_density"], row["average_odf"])
            for row in tiny_context.engine.export_table()["rows"]
        }
        for ordinal in range(loaded.n_communities):
            record = loaded.record(ordinal)
            if record["label"] in table:
                density, odf = table[record["label"]]
                assert record["link_density"] == density
                assert record["average_odf"] == odf

    def test_lca_matches_brute_force(self, engine, cpm_result):
        hierarchy = cpm_result.hierarchy
        nodes = engine.artifact.nodes[:12]
        for a in nodes:
            for b in nodes:
                got = engine.lowest_common(a, b)
                common = []
                for k in hierarchy.orders:
                    for community in hierarchy[k]:
                        if a in community.members and b in community.members:
                            common.append(community)
                if not common:
                    assert got is None
                    continue
                best = max(common, key=lambda c: (c.k, -c.index))
                assert got is not None
                assert got["label"] == best.label

    def test_band_matches_membership_depth(self, engine, cpm_result):
        hierarchy = cpm_result.hierarchy
        bands = engine.artifact.bands
        for node in engine.artifact.nodes:
            info = engine.band(node)
            max_k = max(hierarchy.membership_of(node))
            assert info["max_k"] == max_k
            assert info["band"] == bands.band_of(max_k)

    def test_top_matches_fresh_sort(self, engine, loaded):
        records = [loaded.record(o) for o in range(loaded.n_communities)]
        by_density = sorted(
            records, key=lambda r: (-r["link_density"], r["k"], r["index"])
        )
        got = engine.top("density", n=5)
        assert [r["label"] for r in got] == [r["label"] for r in by_density[:5]]
        by_size = sorted(records, key=lambda r: (-r["size"], r["k"], r["index"]))
        got = engine.top("size", n=3)
        assert [r["label"] for r in got] == [r["label"] for r in by_size[:3]]

    def test_top_restricted_to_order(self, engine, loaded):
        k = loaded.orders[0]
        for record in engine.top("odf", n=4, k=k):
            assert record["k"] == k

    def test_no_mmap_load_identical(self, artifact, tmp_path):
        path = tmp_path / "plain.rqart"
        artifact.save(path)
        plain = load_query_artifact(path, mmap=False)
        assert plain.to_bytes() == artifact.to_bytes()
        plain.close()

    def test_close_is_idempotent(self, artifact, tmp_path):
        path = tmp_path / "closing.rqart"
        artifact.save(path)
        art = load_query_artifact(path)
        members = art.members(0)
        art.close()
        art.close()
        # The bitsets were detached to bytes; lookups still work.
        assert art.members(0) == members


# ----------------------------------------------------------------------
# Corruption
# ----------------------------------------------------------------------
class TestCorruption:
    @pytest.fixture()
    def saved(self, artifact, tmp_path):
        path = tmp_path / "victim.rqart"
        artifact.save(path)
        return path

    @pytest.mark.parametrize("use_mmap", [True, False])
    def test_truncated(self, saved, tmp_path, use_mmap):
        raw = saved.read_bytes()
        bad = tmp_path / "truncated.rqart"
        bad.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(ArtifactError, match="corrupt or truncated"):
            load_query_artifact(bad, mmap=use_mmap)

    @pytest.mark.parametrize("use_mmap", [True, False])
    def test_flipped_byte(self, saved, tmp_path, use_mmap):
        raw = bytearray(saved.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        bad = tmp_path / "corrupt.rqart"
        bad.write_bytes(bytes(raw))
        with pytest.raises(ArtifactError, match="corrupt or truncated"):
            load_query_artifact(bad, mmap=use_mmap)

    def test_bad_magic(self, saved, tmp_path):
        raw = bytearray(saved.read_bytes())
        raw[0] ^= 0xFF
        bad = tmp_path / "magic.rqart"
        bad.write_bytes(bytes(raw))
        with pytest.raises(ArtifactError, match="bad magic"):
            load_query_artifact(bad)

    def test_wrong_version(self, saved, tmp_path):
        raw = bytearray(saved.read_bytes())
        raw[5] = ARTIFACT_VERSION + 1
        bad = tmp_path / "version.rqart"
        bad.write_bytes(bytes(raw))
        with pytest.raises(ArtifactError, match="artifact version"):
            load_query_artifact(bad)

    def test_empty_file(self, tmp_path):
        bad = tmp_path / "empty.rqart"
        bad.write_bytes(b"")
        with pytest.raises(ArtifactError, match="too small"):
            load_query_artifact(bad)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ArtifactError, match="cannot open"):
            load_query_artifact(tmp_path / "nope.rqart")

    def test_unverified_load_skips_digest(self, saved, tmp_path):
        """verify=False loads corrupt *payload* bytes without complaint."""
        raw = bytearray(saved.read_bytes())
        raw[-1] ^= 0xFF  # inside the bitset blocks
        bad = tmp_path / "unverified.rqart"
        bad.write_bytes(bytes(raw))
        art = QueryArtifact.load(bad, verify=False)
        assert art.n_communities > 0
        art.close()


# ----------------------------------------------------------------------
# Lookup errors
# ----------------------------------------------------------------------
class TestLookupErrors:
    def test_unknown_as(self, engine):
        with pytest.raises(KeyError, match="unknown AS"):
            engine.memberships(10**9)
        with pytest.raises(KeyError, match="unknown AS"):
            engine.band(10**9)

    def test_unknown_label(self, engine):
        with pytest.raises(KeyError, match="no community"):
            engine.community("k99id0")

    def test_malformed_label(self, engine):
        with pytest.raises(KeyError, match="malformed"):
            engine.community("sideways")

    def test_unknown_metric(self, engine):
        with pytest.raises(KeyError, match="unknown top metric"):
            engine.top("betweenness")

    def test_bad_n(self, engine):
        with pytest.raises(ValueError, match=">= 1"):
            engine.top("density", n=0)

    def test_lookup_counters(self, loaded):
        registry = MetricsRegistry()
        eng = LookupEngine(loaded, metrics=registry)
        node = loaded.nodes[0]
        eng.memberships(node)
        eng.band(node)
        eng.top("density", n=1)
        counters = registry.to_dict()["counters"]
        assert counters["query.lookups"] == 3
        assert counters["query.lookup.membership"] == 1
        assert counters["query.lookup.band"] == 1
        assert counters["query.lookup.top"] == 1


# ----------------------------------------------------------------------
# HTTP server
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def server(loaded):
    server = make_server(loaded, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _get(server, path):
    with urllib.request.urlopen(server.url + path, timeout=10) as response:
        return response.status, json.loads(response.read())


def _get_error(server, path):
    try:
        with urllib.request.urlopen(server.url + path, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestServer:
    def test_health(self, server, loaded):
        status, body = _get(server, "/health")
        assert status == 200
        assert body["status"] == "ok"
        assert body["communities"] == loaded.n_communities

    def test_artifact_endpoint(self, server, loaded):
        status, body = _get(server, "/artifact")
        assert status == 200
        assert body["fingerprint"] == loaded.fingerprint
        assert body["orders"] == loaded.orders

    def test_membership(self, server, loaded, cpm_result):
        node = loaded.nodes[0]
        status, body = _get(server, f"/membership?as={node}")
        assert status == 200
        expected = cpm_result.hierarchy.membership_of(node)
        assert body["memberships"] == {str(k): v for k, v in expected.items()}

    def test_band(self, server, loaded):
        node = loaded.nodes[0]
        status, body = _get(server, f"/band?as={node}")
        assert status == 200
        assert body["band"] in ("root", "trunk", "crown")

    def test_lca(self, server, loaded):
        a, b = loaded.members(0)[:2]
        status, body = _get(server, f"/lca?a={a}&b={b}")
        assert status == 200
        assert body["lca"] is not None
        assert body["lca"]["label"].startswith("k")

    def test_top(self, server):
        status, body = _get(server, "/top?metric=size&n=3")
        assert status == 200
        assert len(body["communities"]) == 3
        sizes = [record["size"] for record in body["communities"]]
        assert sizes == sorted(sizes, reverse=True)

    def test_community_with_members(self, server, loaded):
        label = loaded.label(0)
        status, body = _get(server, f"/community?label={label}&members=1")
        assert status == 200
        assert body["members"] == loaded.members(0)

    def test_unknown_as_404(self, server):
        status, body = _get_error(server, "/membership?as=999999999")
        assert status == 404
        assert "unknown AS" in body["error"]

    def test_unknown_path_404(self, server):
        status, body = _get_error(server, "/teapot")
        assert status == 404

    def test_missing_param_400(self, server):
        status, body = _get_error(server, "/membership")
        assert status == 400
        assert "as" in body["error"]

    def test_bad_n_400(self, server):
        status, body = _get_error(server, "/top?n=zero")
        assert status == 400

    def test_metrics_endpoint(self, server):
        with urllib.request.urlopen(server.url + "/metrics", timeout=10) as response:
            assert response.status == 200
            assert response.headers["Content-Type"].startswith("text/plain")
            text = response.read().decode("utf-8")
        assert "# TYPE repro_query_requests_total counter" in text
        assert "repro_process_uptime_seconds" in text
        samples = parse_exposition(text)
        assert samples[("repro_query_requests_total", ())] >= 1


# ----------------------------------------------------------------------
# Concurrent serving: no global lock, no lost telemetry
# ----------------------------------------------------------------------
N_CLIENTS = 8
PER_CLIENT = 25


def _fresh_server(loaded, **kwargs):
    tracer = Tracer()
    metrics = MetricsRegistry()
    server = make_server(loaded, port=0, tracer=tracer, metrics=metrics, **kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread, tracer, metrics


class TestConcurrentServing:
    def _hammer(self, server, loaded, failures):
        """One client: PER_CLIENT rounds of health + band + a 404."""
        node = loaded.nodes[0]
        for _ in range(PER_CLIENT):
            try:
                with urllib.request.urlopen(server.url + "/health", timeout=10) as r:
                    assert json.loads(r.read())["status"] == "ok"
                with urllib.request.urlopen(
                    server.url + f"/band?as={node}", timeout=10
                ) as r:
                    assert json.loads(r.read())["band"] in ("root", "trunk", "crown")
                try:
                    urllib.request.urlopen(server.url + "/nope", timeout=10)
                except urllib.error.HTTPError as exc:
                    assert exc.code == 404
            except Exception as exc:  # noqa: BLE001 - collected for the assert
                failures.append(exc)

    def test_zero_lost_updates_and_exact_histograms(self, loaded):
        server, thread, tracer, metrics = _fresh_server(loaded)
        failures: list = []
        try:
            clients = [
                threading.Thread(target=self._hammer, args=(server, loaded, failures))
                for _ in range(N_CLIENTS)
            ]
            for c in clients:
                c.start()
            for c in clients:
                c.join()
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
        assert failures == []
        total = N_CLIENTS * PER_CLIENT
        counters = metrics.to_dict()["counters"]
        # Every update landed: no lost increments without the global lock.
        assert counters["query.requests"] == 3 * total
        assert counters["query.errors"] == total
        assert counters["query.lookup.band"] == total
        # Exact per-endpoint histogram counts, request_seconds summed
        # under concurrent observers.
        histograms = metrics.to_dict()["histograms"]
        assert histograms['query.request_seconds{endpoint="health"}']["count"] == total
        assert histograms['query.request_seconds{endpoint="band"}']["count"] == total
        assert histograms['query.request_seconds{endpoint="other"}']["count"] == total
        for summary in histograms.values():
            assert summary["p99"] >= summary["p50"] > 0.0
        assert server.served == 3 * total

    def test_per_request_spans_absorbed_with_request_ids(self, loaded):
        server, thread, tracer, metrics = _fresh_server(loaded)
        try:
            for _ in range(5):
                with urllib.request.urlopen(server.url + "/health", timeout=10):
                    pass
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
        spans = [s for s in tracer.to_dicts() if s["name"] == "query.request"]
        assert len(spans) == 5
        ids = [s["attrs"]["request_id"] for s in spans]
        assert sorted(ids) == [1, 2, 3, 4, 5]
        assert all(s["attrs"]["status"] == 200 for s in spans)

    def test_concurrent_drain_is_exact(self, loaded):
        """max_requests with racing clients serves exactly N then stops."""
        server, thread, tracer, metrics = _fresh_server(loaded)
        limit = 20
        server.max_requests = limit
        statuses: list = []
        lock = threading.Lock()

        def client():
            while True:
                try:
                    with urllib.request.urlopen(
                        server.url + "/health", timeout=2
                    ) as r:
                        with lock:
                            statuses.append(r.status)
                except urllib.error.HTTPError as exc:
                    assert exc.code == 503  # rejected past the limit
                    return
                except (urllib.error.URLError, OSError, http.client.HTTPException):
                    return  # server drained

        clients = [threading.Thread(target=client) for _ in range(4)]
        for c in clients:
            c.start()
        thread.join(timeout=30)  # serve_forever returns on drain
        server.server_close()
        for c in clients:
            c.join(timeout=10)
        assert not thread.is_alive()
        assert server.served == limit
        assert metrics.counter("query.requests").value == limit
        assert all(s == 200 for s in statuses)

    def test_serialize_requests_legacy_mode(self, loaded):
        server, thread, tracer, metrics = _fresh_server(loaded, serialize_requests=True)
        failures: list = []
        try:
            clients = [
                threading.Thread(target=self._hammer, args=(server, loaded, failures))
                for _ in range(2)
            ]
            for c in clients:
                c.start()
            for c in clients:
                c.join()
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
        assert failures == []
        assert metrics.counter("query.requests").value == 2 * 3 * PER_CLIENT

    def test_access_log_events(self, loaded):
        stream = io.StringIO()
        obs_logging.configure(stream, run_id="srvrun1234ab")
        try:
            server, thread, tracer, metrics = _fresh_server(loaded)
            try:
                for _ in range(3):
                    with urllib.request.urlopen(server.url + "/health", timeout=10):
                        pass
            finally:
                server.shutdown()
                server.server_close()
                thread.join(timeout=5)
        finally:
            obs_logging.shutdown()
        events = [
            json.loads(line)
            for line in stream.getvalue().strip().splitlines()
            if json.loads(line)["event"] == "query.access"
        ]
        assert len(events) == 3
        assert sorted(e["request_id"] for e in events) == [1, 2, 3]
        for event in events:
            assert event["run_id"] == "srvrun1234ab"
            assert event["endpoint"] == "health"
            assert event["status"] == 200
            assert event["seconds"] >= 0.0
            assert event["component"] == "query.server"


# ----------------------------------------------------------------------
# CLI + acceptance: the read path never re-runs CPM
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def saved_dataset_dir(tmp_path_factory, tiny_dataset):
    path = tmp_path_factory.mktemp("query-data") / "bundle"
    tiny_dataset.save(path)
    return str(path)


@pytest.fixture(scope="module")
def cli_artifact(tmp_path_factory, saved_dataset_dir):
    path = tmp_path_factory.mktemp("query-cli") / "tiny.rqart"
    assert main(["query", "build", saved_dataset_dir, str(path), "--min-k", "3"]) == 0
    return str(path)


class TestCLI:
    def test_build_reports_fingerprint(self, tmp_path, saved_dataset_dir, capsys):
        out = tmp_path / "a.rqart"
        assert main(["query", "build", saved_dataset_dir, str(out), "--min-k", "3"]) == 0
        stdout = capsys.readouterr().out
        assert "wrote query artifact" in stdout
        assert "fingerprint" in stdout
        assert out.exists()

    def test_lookup_info(self, cli_artifact, capsys):
        assert main(["query", "lookup", cli_artifact, "--info"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["info"]["format"] == "repro.query-artifact"

    def test_lookup_member_band_top(self, cli_artifact, loaded, capsys):
        node = str(loaded.nodes[0])
        args = [
            "query", "lookup", cli_artifact,
            "--member", node, "--band", node, "--top", "density", "--n", "2",
        ]
        assert main(args) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["band"]["band"] in ("root", "trunk", "crown")
        assert len(payload["top"]["communities"]) == 2

    def test_lookup_nothing_requested(self, cli_artifact, capsys):
        assert main(["query", "lookup", cli_artifact]) == 2
        assert "nothing to look up" in capsys.readouterr().err

    def test_lookup_trace_has_no_cpm_span(self, cli_artifact, loaded, tmp_path, capsys):
        """Acceptance: lookups answer from the artifact with zero recompute."""
        trace = tmp_path / "lookup-trace.jsonl"
        node = str(loaded.nodes[0])
        args = ["query", "lookup", cli_artifact, "--member", node, "--trace", str(trace)]
        assert main(args) == 0
        capsys.readouterr()
        names = [
            json.loads(line)["name"]
            for line in trace.read_text(encoding="utf-8").splitlines()
        ]
        assert "query.lookup" in names
        assert not any(name.startswith("cpm.") for name in names)
        assert not any(name.startswith("analysis.") for name in names)

    def test_serve_max_requests(self, cli_artifact, capsys):
        """--max-requests N serves N requests then exits cleanly."""
        import io
        import re
        import sys
        import time

        results: dict = {}

        def drive():
            # Wait for the "serving ... at URL" line, then hit endpoints.
            for _ in range(200):
                stdout = buffer.getvalue()
                match = re.search(r"at (http://[\S]+)", stdout)
                if match:
                    break
                time.sleep(0.05)
            else:  # pragma: no cover - server never came up
                results["error"] = "server did not start"
                return
            url = match.group(1)
            for path in ("/health", "/artifact"):
                with urllib.request.urlopen(url + path, timeout=10) as response:
                    results[path] = response.status

        real_stdout = sys.stdout
        buffer = io.StringIO()
        sys.stdout = buffer
        try:
            client = threading.Thread(target=drive, daemon=True)
            client.start()
            code = main(["query", "serve", cli_artifact, "--port", "0", "--max-requests", "2"])
            client.join(timeout=10)
        finally:
            sys.stdout = real_stdout
        assert code == 0
        assert results.get("/health") == 200
        assert results.get("/artifact") == 200

    def test_serve_log_json_access_log(self, cli_artifact, tmp_path, capsys):
        """--log-json on `query serve` writes correlated NDJSON events."""
        import io
        import re
        import sys
        import time

        log_path = tmp_path / "serve.log.jsonl"
        results: dict = {}

        def drive():
            for _ in range(200):
                stdout = buffer.getvalue()
                match = re.search(r"at (http://[\S]+)", stdout)
                if match:
                    break
                time.sleep(0.05)
            else:  # pragma: no cover - server never came up
                results["error"] = "server did not start"
                return
            url = match.group(1)
            for path in ("/health", "/metrics"):
                with urllib.request.urlopen(url + path, timeout=10) as response:
                    results[path] = response.status

        real_stdout = sys.stdout
        buffer = io.StringIO()
        sys.stdout = buffer
        try:
            client = threading.Thread(target=drive, daemon=True)
            client.start()
            code = main(
                [
                    "query", "serve", cli_artifact, "--port", "0",
                    "--max-requests", "2", "--log-json", str(log_path),
                ]
            )
            client.join(timeout=10)
        finally:
            sys.stdout = real_stdout
        assert code == 0
        assert results.get("/health") == 200
        assert results.get("/metrics") == 200
        events = [
            json.loads(line)
            for line in log_path.read_text(encoding="utf-8").strip().splitlines()
        ]
        names = [e["event"] for e in events]
        assert "cli.start" in names
        assert "query.serve.start" in names
        assert names.count("query.access") == 2
        assert "query.serve.stop" in names
        run_ids = {e["run_id"] for e in events}
        assert len(run_ids) == 1  # one run_id correlates the whole invocation

    def test_lookup_manifest_carries_fingerprint(self, cli_artifact, loaded, tmp_path, capsys):
        manifest_path = tmp_path / "manifest.json"
        args = ["query", "lookup", cli_artifact, "--info", "--metrics", str(manifest_path)]
        assert main(args) == 0
        capsys.readouterr()
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        assert manifest["fingerprint"]["checksum"] == loaded.fingerprint["checksum"]


# ----------------------------------------------------------------------
# The export_table hook feeding the artifact build
# ----------------------------------------------------------------------
class TestExportTable:
    def test_rows_match_metrics_rows(self, tiny_context):
        exported = tiny_context.engine.export_table()
        assert exported["engine"] == tiny_context.engine.engine
        rows = {row["label"]: row for row in exported["rows"]}
        for row in tiny_context.metrics_rows():
            exported_row = rows[row.label]
            assert exported_row["link_density"] == row.link_density
            assert exported_row["average_odf"] == row.average_odf
            assert exported_row["k"] == row.k
            assert exported_row["size"] == row.size
