"""Structured JSON logs with run/request correlation.

Spans explain *where time went* after a run; metrics explain *how
much*; neither answers "what is the service doing right now, and which
request was that?".  This module is the third leg: newline-delimited
JSON events, one object per line, each stamped with the ``run_id`` of
the process's configured logging context — the same ``run_id`` the
CLI writes into the run manifest, so a log line, a manifest and a
trace from one invocation join on it.  The query server adds a
``request_id`` per handled request and stamps the *same* id onto the
request's absorbed spans, so an access-log line joins its span
subtree exactly.

Design:

* :class:`JsonLogger` — writes events to one text stream under a lock
  (lines never interleave, even from concurrent handler threads);
  :meth:`~JsonLogger.bind` returns a child sharing the stream but
  carrying extra fixed fields (component, request context).
* A module-level *active* logger, set by :func:`configure` (the CLI's
  ``--log-json PATH|-`` flag) and reached via :func:`log_event` /
  :func:`get_logger`.  Unconfigured, both are no-ops costing one
  global read — library code (runner, shard pipeline, incremental
  sessions) logs unconditionally and uninstrumented runs pay nothing.

Event shape::

    {"ts": 1722945600.123, "level": "info", "event": "query.access",
     "run_id": "a1b2c3d4e5f6", "request_id": 17, "path": "/band",
     "status": 200, "seconds": 0.00021}

``ts`` is Unix epoch seconds (``time.time``) — wall-clock, for humans
and log shippers; span correlation runs on ids, not clocks.
"""

from __future__ import annotations

import io
import json
import threading
import time
import uuid
from pathlib import Path

__all__ = [
    "JsonLogger",
    "configure",
    "get_logger",
    "log_event",
    "active_logger",
    "current_run_id",
    "new_run_id",
    "shutdown",
]

LEVELS = ("debug", "info", "warning", "error")


def new_run_id() -> str:
    """A fresh 12-hex-char run identifier."""
    return uuid.uuid4().hex[:12]


class JsonLogger:
    """Newline-delimited JSON event writer (thread-safe).

    ``stream`` is any text file object; the logger never closes
    streams it did not open (see :func:`configure` for the ownership
    rule at the module level).  ``bound`` fields are merged into every
    event, with per-call fields winning on collision.
    """

    def __init__(self, stream, *, run_id: str | None = None, **bound) -> None:
        self.stream = stream
        self.run_id = run_id if run_id is not None else new_run_id()
        self.bound = dict(bound)
        self._lock = threading.Lock()

    def bind(self, **fields) -> "JsonLogger":
        """A child logger with extra fixed fields, sharing stream+lock."""
        child = JsonLogger.__new__(JsonLogger)
        child.stream = self.stream
        child.run_id = self.run_id
        child.bound = {**self.bound, **fields}
        child._lock = self._lock
        return child

    def log(self, event: str, *, level: str = "info", **fields) -> None:
        """Emit one event line (atomically, flushed)."""
        record = {
            "ts": round(time.time(), 6),
            "level": level,
            "event": event,
            "run_id": self.run_id,
        }
        record.update(self.bound)
        record.update(fields)
        line = json.dumps(record, default=repr, separators=(",", ":"))
        with self._lock:
            try:
                self.stream.write(line + "\n")
                self.stream.flush()
            except ValueError:
                # Stream closed underneath us (interpreter teardown,
                # test harness swapping stdio): drop, never raise.
                pass

    # Level shorthands ---------------------------------------------------
    def debug(self, event: str, **fields) -> None:
        """Emit at level debug."""
        self.log(event, level="debug", **fields)

    def info(self, event: str, **fields) -> None:
        """Emit at level info."""
        self.log(event, level="info", **fields)

    def warning(self, event: str, **fields) -> None:
        """Emit at level warning."""
        self.log(event, level="warning", **fields)

    def error(self, event: str, **fields) -> None:
        """Emit at level error."""
        self.log(event, level="error", **fields)


class _BoundProxy:
    """A late-binding handle onto the module's active logger.

    Library call sites hold these (created at import time, before any
    ``configure``); every emit re-reads the active logger, so turning
    logging on mid-process reaches existing handles, and the cost when
    unconfigured is one global read and a None check.
    """

    __slots__ = ("bound",)

    def __init__(self, bound: dict) -> None:
        self.bound = bound

    def log(self, event: str, *, level: str = "info", **fields) -> None:
        logger = _ACTIVE
        if logger is not None:
            logger.log(event, level=level, **{**self.bound, **fields})

    def debug(self, event: str, **fields) -> None:
        self.log(event, level="debug", **fields)

    def info(self, event: str, **fields) -> None:
        self.log(event, level="info", **fields)

    def warning(self, event: str, **fields) -> None:
        self.log(event, level="warning", **fields)

    def error(self, event: str, **fields) -> None:
        self.log(event, level="error", **fields)


#: The process's configured logger (None = logging off).
_ACTIVE: JsonLogger | None = None
#: Whether shutdown() should close the active logger's stream.
_OWNS_STREAM = False


def configure(target, *, run_id: str | None = None, **bound) -> JsonLogger:
    """Install the process-wide JSON logger and return it.

    ``target`` is a path (opened append, owned — :func:`shutdown`
    closes it), ``"-"`` for stderr, or an existing text stream (not
    owned).  Reconfiguring replaces the previous logger, closing its
    stream iff it was path-opened.
    """
    global _ACTIVE, _OWNS_STREAM
    shutdown()
    import sys

    if isinstance(target, (str, Path)) and str(target) != "-":
        path = Path(target)
        path.parent.mkdir(parents=True, exist_ok=True)
        stream = path.open("a", encoding="utf-8")
        owns = True
    elif str(target) == "-":
        stream = sys.stderr
        owns = False
    else:
        stream = target
        owns = False
    _ACTIVE = JsonLogger(stream, run_id=run_id, **bound)
    _OWNS_STREAM = owns
    return _ACTIVE


def shutdown() -> None:
    """Tear down the active logger (idempotent), closing owned streams."""
    global _ACTIVE, _OWNS_STREAM
    logger = _ACTIVE
    _ACTIVE = None
    if logger is not None and _OWNS_STREAM:
        try:
            logger.stream.close()
        except (OSError, io.UnsupportedOperation):  # pragma: no cover
            pass
    _OWNS_STREAM = False


def active_logger() -> JsonLogger | None:
    """The configured logger, or None when logging is off."""
    return _ACTIVE


def current_run_id() -> str | None:
    """The active logger's run id (None when logging is off)."""
    return _ACTIVE.run_id if _ACTIVE is not None else None


def get_logger(**bound):
    """A late-binding logger handle carrying fixed fields.

    Safe to create at import time: emits go to whatever logger is
    active *at emit time* and vanish when none is.
    """
    return _BoundProxy(dict(bound))


def log_event(event: str, *, level: str = "info", **fields) -> None:
    """Emit one event on the active logger (no-op when unconfigured)."""
    logger = _ACTIVE
    if logger is not None:
        logger.log(event, level=level, **fields)
