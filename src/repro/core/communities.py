"""Community data model.

Three layers, mirroring the paper's vocabulary:

* :class:`Community` — one k-clique community: an AS (node) set at a
  given order k, labelled ``k<k>id<n>`` exactly like the node labels of
  the paper's Figure 4.2 tree;
* :class:`CommunityCover` — all communities of one order k (a *cover*:
  overlapping is allowed, membership is not exhaustive);
* :class:`CommunityHierarchy` — the covers for every k from 2 up to the
  maximum order found, the object the community tree is built from.

Identity scheme: within one k, communities are numbered by decreasing
size (ties broken by the sorted member tuple) so ``k<k>id0`` is always
the largest community of its order — which, for the main chain, matches
the paper's filled-node convention.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Mapping
from dataclasses import dataclass, field

__all__ = [
    "Community",
    "CommunityCover",
    "CommunityHierarchy",
    "member_sort_key",
    "rank_member_sets",
]


def member_sort_key(members: frozenset) -> tuple:
    """Canonical ordering of community member sets within one order k.

    Larger communities first; ties broken by the sorted member tuple so
    that indices (and hence ``k<k>id<n>`` labels) are deterministic.
    Shared by :class:`CommunityCover` and the extraction layer, which
    must agree on indices to attach parent provenance.
    """
    return (-len(members), tuple(sorted(map(repr, members))))


def rank_member_sets(member_sets: list) -> list[int]:
    """Indices of ``member_sets`` in :func:`member_sort_key` order.

    Equivalent to sorting by ``member_sort_key`` (including its
    stability for fully tied sets), but the repr tie-break tuple is
    only materialised for size-*tied* sets — the giant low-k
    communities almost always have unique sizes, and repr-ing
    thousands of members to break a tie that cannot occur is the
    hierarchy assembly's hottest avoidable cost.
    """
    by_len = sorted(range(len(member_sets)), key=lambda i: -len(member_sets[i]))
    ranked: list[int] = []
    i, n = 0, len(by_len)
    while i < n:
        j = i + 1
        size = len(member_sets[by_len[i]])
        while j < n and len(member_sets[by_len[j]]) == size:
            j += 1
        if j - i == 1:
            ranked.append(by_len[i])
        else:
            ranked.extend(
                sorted(
                    by_len[i:j],
                    key=lambda t: tuple(sorted(map(repr, member_sets[t]))),
                )
            )
        i = j
    return ranked


@dataclass(frozen=True, order=False)
class Community:
    """One k-clique community.

    ``members`` is the union of all k-cliques reachable from one
    another through adjacent k-cliques (adjacency = sharing k-1 nodes);
    by definition ``len(members) >= k``.
    """

    k: int
    index: int
    members: frozenset = field(repr=False)

    def __post_init__(self) -> None:
        if self.k < 2:
            raise ValueError(f"community order k must be >= 2, got {self.k}")
        if self.index < 0:
            raise ValueError(f"community index must be >= 0, got {self.index}")
        if len(self.members) < self.k:
            raise ValueError(
                f"a {self.k}-clique community needs >= {self.k} members, got {len(self.members)}"
            )

    @property
    def label(self) -> str:
        """Paper-style identifier, e.g. ``k34id5`` (Figure 4.2)."""
        return f"k{self.k}id{self.index}"

    @property
    def size(self) -> int:
        return len(self.members)

    def __contains__(self, node: Hashable) -> bool:
        return node in self.members

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self.members)

    def __len__(self) -> int:
        return len(self.members)

    def overlap(self, other: "Community") -> int:
        """Number of shared members (the paper's *overlap* metric)."""
        return len(self.members & other.members)

    def overlap_fraction(self, other: "Community") -> float:
        """Overlap divided by the smaller community's size.

        1.0 when one community's members are all inside the other;
        the normalisation the paper uses to compare pairs at equal k.
        """
        denom = min(len(self.members), len(other.members))
        if denom == 0:
            return 0.0
        return self.overlap(other) / denom

    def contains_community(self, other: "Community") -> bool:
        """True iff ``other``'s members are a subset of this one's."""
        return other.members <= self.members

    def __repr__(self) -> str:
        return f"Community({self.label}, size={self.size})"


class CommunityCover:
    """All k-clique communities of a single order k.

    Indexable by community index; iterable in index order (i.e. by
    decreasing size).  Provides the member→communities reverse map the
    overlap and tree layers rely on.
    """

    def __init__(self, k: int, member_sets: Iterable[frozenset]) -> None:
        if k < 2:
            raise ValueError(f"k must be >= 2, got {k}")
        self.k = k
        sets = [frozenset(m) for m in member_sets]
        ordered = [sets[i] for i in rank_member_sets(sets)]
        self._communities = tuple(
            Community(k=k, index=i, members=members) for i, members in enumerate(ordered)
        )
        self._by_node: dict[Hashable, list[Community]] = {}
        for community in self._communities:
            for node in community.members:
                self._by_node.setdefault(node, []).append(community)

    def __len__(self) -> int:
        return len(self._communities)

    def __iter__(self) -> Iterator[Community]:
        return iter(self._communities)

    def __getitem__(self, index: int) -> Community:
        return self._communities[index]

    @property
    def communities(self) -> tuple[Community, ...]:
        return self._communities

    def communities_of(self, node: Hashable) -> list[Community]:
        """All communities of this order containing ``node``.

        Overlap means this can have more than one element — the defining
        difference between a cover and a partition (Chapter 1).
        """
        return list(self._by_node.get(node, ()))

    def nodes(self) -> set[Hashable]:
        """Union of all community member sets at this order."""
        return set(self._by_node)

    def largest(self) -> Community | None:
        """The largest community of the cover (None when empty)."""
        return self._communities[0] if self._communities else None

    def __repr__(self) -> str:
        return f"CommunityCover(k={self.k}, communities={len(self)})"


class CommunityHierarchy(Mapping):
    """The covers for every order k — the full CPM output.

    A mapping ``k -> CommunityCover`` over a contiguous range
    ``[2, max_k]``.  Levels where no community exists map to an empty
    cover (cannot happen on a graph with at least one edge, because a
    k-clique contains nested smaller cliques, but the type allows it so
    partial/filtered hierarchies stay well-formed).
    """

    def __init__(
        self,
        covers: Mapping[int, CommunityCover],
        parent_labels: Mapping[str, str] | None = None,
    ) -> None:
        if not covers:
            raise ValueError("a hierarchy needs at least one cover")
        for k, cover in covers.items():
            if cover.k != k:
                raise ValueError(f"cover at key {k} has k={cover.k}")
        self._covers = dict(sorted(covers.items()))
        self.min_k = min(self._covers)
        self.max_k = max(self._covers)
        #: Structural parent provenance: child label -> parent label.
        #: Populated by the extraction layer, which knows which maximal
        #: cliques each community percolated from — node-set containment
        #: alone cannot always disambiguate the parent (overlapping
        #: (k-1)-communities can both contain a k-community's members).
        self.parent_labels: dict[str, str] = dict(parent_labels or {})

    def __getitem__(self, k: int) -> CommunityCover:
        return self._covers[k]

    def __iter__(self) -> Iterator[int]:
        return iter(self._covers)

    def __len__(self) -> int:
        return len(self._covers)

    @property
    def orders(self) -> list[int]:
        """The orders k present, ascending."""
        return list(self._covers)

    def all_communities(self) -> Iterator[Community]:
        """Every community across all orders, ascending k."""
        for cover in self._covers.values():
            yield from cover

    @property
    def total_communities(self) -> int:
        """Total number of communities over all k (the paper found 627)."""
        return sum(len(cover) for cover in self._covers.values())

    def counts_by_k(self) -> dict[int, int]:
        """``k -> number of communities`` — the series of Figure 4.1."""
        return {k: len(cover) for k, cover in self._covers.items()}

    def unique_orders(self) -> list[int]:
        """Orders with exactly one community.

        By the nesting theorem a unique community at order k contains
        every community of every higher order (the paper: k in
        {2, 21, 22, 25, 36}).
        """
        return [k for k, cover in self._covers.items() if len(cover) == 1]

    def membership_of(self, node: Hashable) -> dict[int, list[str]]:
        """Order k -> labels of the communities containing ``node``.

        Orders where the node belongs to no community are omitted; the
        result is the node's full position in the community tree (an AS
        can sit in several communities per order — overlap — and in a
        chain of main communities across orders — nesting).
        """
        memberships: dict[int, list[str]] = {}
        for k, cover in self._covers.items():
            labels = [c.label for c in cover.communities_of(node)]
            if labels:
                memberships[k] = labels
        return memberships

    def find(self, label: str) -> Community:
        """Look a community up by its ``k<k>id<n>`` label."""
        try:
            k_part, id_part = label.lstrip("k").split("id")
            k, index = int(k_part), int(id_part)
        except ValueError as exc:
            raise KeyError(f"malformed community label: {label!r}") from exc
        try:
            return self._covers[k][index]
        except (KeyError, IndexError) as exc:
            raise KeyError(f"no community {label!r} in hierarchy") from exc

    def __repr__(self) -> str:
        return (
            f"CommunityHierarchy(k=[{self.min_k}..{self.max_k}], "
            f"communities={self.total_communities})"
        )
