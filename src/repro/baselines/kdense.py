"""k-dense decomposition baseline ([25] Saito, Yamada, Kazama; applied
to the AS graph in [12], the companion paper).

A k-dense subgraph is the maximal subgraph in which every *edge* is
supported by at least k-2 common neighbors of its endpoints (inside the
subgraph).  The family interpolates between k-core (degree support) and
k-clique (full mesh support): every k-clique community is inside the
k-dense subgraph, which is inside the k-core.

Communities are the connected components of the k-dense subgraph.
Like k-core — and unlike CPM — components at one k cannot overlap, so
this is again a partition-style method for the Chapter 1 contrast.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable

from ..graph.components import connected_components
from ..graph.undirected import Graph

__all__ = ["k_dense_subgraph", "k_dense_communities", "KDenseDecomposition"]


def k_dense_subgraph(graph: Graph, k: int) -> Graph:
    """The maximal subgraph whose every edge has >= k-2 common neighbors.

    Iterative peeling: repeatedly delete unsupported edges (common
    neighborhood recomputed in the shrinking subgraph) and isolated
    nodes, until stable.  For k == 2 this is the graph minus isolated
    nodes (every edge trivially qualifies).
    """
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    work = graph.copy()
    required = k - 2
    queue: deque[tuple[Hashable, Hashable]] = deque(work.edges())
    queued = {frozenset(e) for e in queue}
    while queue:
        u, v = queue.popleft()
        queued.discard(frozenset((u, v)))
        if not work.has_edge(u, v):
            continue
        if len(work.neighbors(u) & work.neighbors(v)) >= required:
            continue
        work.remove_edge(u, v)
        # Removing {u, v} can unsupport any edge in their joint
        # neighborhoods; re-examine those.
        for a in (u, v):
            for b in work.neighbors(a):
                edge = frozenset((a, b))
                if edge not in queued:
                    queue.append((a, b))
                    queued.add(edge)
    for node in [n for n in work.nodes() if work.degree(n) == 0]:
        work.remove_node(node)
    return work


def k_dense_communities(graph: Graph, k: int) -> list[set[Hashable]]:
    """Connected components of the k-dense subgraph, largest first."""
    dense = k_dense_subgraph(graph, k)
    if len(dense) == 0:
        return []
    return connected_components(dense)


class KDenseDecomposition:
    """All k-dense levels of a graph (computed incrementally).

    Level k+1 is computed by peeling level k further — the nesting
    ``dense(k+1) ⊆ dense(k)`` makes the full sweep cheap.
    """

    def __init__(self, graph: Graph, *, max_k: int | None = None) -> None:
        self.graph = graph
        self.levels: dict[int, Graph] = {}
        current = k_dense_subgraph(graph, 2)
        k = 2
        while len(current) > 0 and (max_k is None or k <= max_k):
            self.levels[k] = current
            current = k_dense_subgraph(current, k + 1)
            k += 1

    @property
    def max_k(self) -> int:
        """The largest k with a non-empty k-dense subgraph."""
        return max(self.levels, default=1)

    def communities(self, k: int) -> list[set[Hashable]]:
        """Connected components of the level-k dense subgraph."""
        if k not in self.levels:
            return []
        return connected_components(self.levels[k])

    def counts_by_k(self) -> dict[int, int]:
        """``k -> number of k-dense communities`` (the Figure 4.1 analogue)."""
        return {k: len(self.communities(k)) for k in sorted(self.levels)}
