"""Observability: tracing, metrics and run manifests for the LP-CPM pipeline.

The paper's headline engineering feat is scale — 2.7M maximal cliques
processed in 93 hours on 48 cores — and every optimisation claim since
needs before/after numbers.  This package provides the three layers
that make the enumerate → overlap → percolate → tree pipeline
observable:

* :mod:`repro.obs.tracing` — context-manager :class:`Span`\\ s with
  nesting, wall time, CPU time and peak-memory sampling, collected by a
  :class:`Tracer` and exportable as JSONL.  The default
  :data:`NULL_TRACER` is a no-op with no measurable overhead, so
  un-instrumented runs pay nothing.
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of named
  counters, gauges and histograms (cliques enumerated, overlap pairs,
  union-find merges, shard sizes, worker utilisation) with JSON export
  and cross-process merging.
* :mod:`repro.obs.manifest` — a :class:`RunManifest` bundling the graph
  fingerprint, run configuration, library versions and all spans and
  metrics into one JSON artifact per run, the unit of the benchmark
  trajectory under ``benchmarks/output/``.

Schema and metric-name reference: ``docs/observability.md``.
"""

from .manifest import RunManifest, graph_fingerprint, library_versions
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracing import NULL_TRACER, NullTracer, Span, SpanRecord, Tracer

__all__ = [
    "Span",
    "SpanRecord",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunManifest",
    "graph_fingerprint",
    "library_versions",
]
