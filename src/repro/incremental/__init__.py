"""Incremental CPM: stateful sessions updated by edge deltas.

The batch pipeline (:func:`repro.run_cpm`) recomputes everything from
the graph; this package keeps the intermediate state — maximal
cliques, truncated overlap activations, per-order percolation groups —
alive in a :class:`CPMSession` so a small edge change costs work
proportional to the change, not the graph.  Results are byte-identical
to from-scratch runs (pinned by the delta fuzz tests).

Entry points: :func:`repro.open_session` / :func:`repro.load_session`
on the facade, or :class:`CPMSession` directly.  See
``docs/incremental.md`` for the lifecycle, cost model and persistence
format.
"""

from .delta import CHANGE_KINDS, CommunityChange, CPMUpdate, EdgeDelta, diff_covers
from .session import SESSION_SCHEMA_VERSION, CPMSession, load_session

__all__ = [
    "CHANGE_KINDS",
    "CommunityChange",
    "CPMUpdate",
    "EdgeDelta",
    "diff_covers",
    "CPMSession",
    "load_session",
    "SESSION_SCHEMA_VERSION",
]
