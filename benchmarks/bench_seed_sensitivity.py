"""Extension — seed sensitivity of the headline findings.

The paper measures one Internet; this reproduction samples topologies,
so every asserted finding must be a property of the *model*, not of
seed 42.  The bench re-runs the pipeline across seeds and regenerates
the stability table: community-count range, fixed maximum order,
identical band boundaries, the big-three crown IXPs every time, and
the structural invariants (monotone main chain, single 2-clique
community) holding unconditionally.
"""

from repro.analysis.sensitivity import run_sensitivity
from repro.report.figures import ascii_table

_SEEDS = [1, 7, 42, 99, 123]


def test_seed_sensitivity(benchmark, emit):
    report = benchmark.pedantic(
        lambda: run_sensitivity(seeds=_SEEDS), rounds=1, iterations=1
    )
    rows = [
        [
            run.seed,
            run.n_ases,
            run.total_communities,
            run.max_k,
            f"[2..{run.root_max}]",
            f"[{run.crown_min}..{run.max_k}]",
            f"{run.overlap_mean:.3f}",
            "yes" if run.main_monotone and run.single_2_clique_community else "NO",
        ]
        for run in report.runs
    ]
    table = ascii_table(
        ["seed", "ASes", "communities", "max k", "root band", "crown band",
         "overlap mean", "invariants"],
        rows,
        title=f"Headline findings across {len(_SEEDS)} generator seeds",
    )
    lo, hi = report.community_count_range()
    mean, stdev = report.overlap_mean_stats()
    footer = (
        f"community count range [{lo}, {hi}]; overlap mean {mean:.3f} ± {stdev:.3f}; "
        f"crown max-share always the big three: {report.crown_ixps_always_big_three()}"
    )
    emit("seed_sensitivity", f"{table}\n{footer}")

    assert report.invariants_always_hold()
    assert report.crown_ixps_always_big_three()
    assert report.max_k_values() == {36}
    root_spread, crown_spread = report.band_boundary_spread()
    assert root_spread <= 2 and crown_spread <= 2
