"""Query-service read path: artifact build, load, and point lookups.

The query artifact exists so the read path answers in microseconds with
zero CPM recompute; this bench freezes the session context into an
artifact, round-trips it through save -> mmap load, and times the four
point-query families a served artifact answers (membership, band,
lowest common community, top-N).  Correctness comes first: every timed
lookup family is checked against the live hierarchy/tree objects before
any number is recorded, so the timings measure the same answers.

Persisted measurements (``BENCH_*.json`` config, gated by
``check_bench_regression.py``): ``query_lookup_seconds_*`` are
many-iteration loop totals sized to clear the gate's tiny-baseline
floor (0.05 s) so the latency trajectory is actually enforced; the
per-call ``query_lookup_us_*`` microsecond figures and the build/load
costs ride along ungated.  The build's ``query.build`` span lands in
the manifest via ``bench_tracer``/``bench_metrics``.
"""

from __future__ import annotations

import time

from repro.api import load_query_artifact
from repro.obs.manifest import graph_fingerprint
from repro.query import LookupEngine, build_artifact
from repro.report.figures import ascii_table

#: Loop counts per lookup family, sized so each loop total clears the
#: regression gate's 0.05 s floor by a wide margin on CI hardware.
_LOOPS = {"membership": 50_000, "band": 40_000, "lca": 20_000, "top": 10_000}


def test_query_service_lookups(
    benchmark, context, emit, bench_record, bench_tracer, bench_metrics, tmp_path
):
    hierarchy = context.hierarchy

    start = time.perf_counter()
    built = build_artifact(
        hierarchy,
        tree=context.tree,
        graph=context.graph,
        csr=context.csr,
        tracer=bench_tracer,
        metrics=bench_metrics,
    )
    bench_record["query_build_seconds"] = round(time.perf_counter() - start, 4)

    path = tmp_path / "bench.rqart"
    built.save(path)
    start = time.perf_counter()
    artifact = load_query_artifact(path)
    bench_record["query_load_seconds"] = round(time.perf_counter() - start, 4)
    bench_record["query_artifact_bytes"] = path.stat().st_size

    engine = LookupEngine(artifact)
    nodes = artifact.nodes
    assert artifact.fingerprint == graph_fingerprint(context.graph)

    # Exactness before timing: the artifact must answer identically to
    # the live objects for every family about to be measured.
    for node in nodes[:50]:
        assert engine.memberships(node) == hierarchy.membership_of(node)
        assert engine.band(node)["max_k"] == max(hierarchy.membership_of(node))
    pair_members = artifact.members(0)
    lca = engine.lowest_common(pair_members[0], pair_members[1])
    assert lca is not None and lca["k"] >= artifact.orders[0]
    top = engine.top("density", n=10)
    densities = [record["link_density"] for record in top]
    assert densities == sorted(densities, reverse=True)

    # Timed loops — each family cycles through real ASes so the postings
    # slices touched vary the way served traffic would.
    n = len(nodes)
    timings: dict[str, tuple[float, float]] = {}

    def _loop(name: str, fn) -> None:
        loops = _LOOPS[name]
        start = time.perf_counter()
        for i in range(loops):
            fn(i)
        total = time.perf_counter() - start
        timings[name] = (total, total / loops)
        bench_record[f"query_lookup_seconds_{name}"] = round(total, 4)
        bench_record[f"query_lookup_us_{name}"] = round(total / loops * 1e6, 2)

    _loop("membership", lambda i: engine.memberships(nodes[i % n]))
    _loop("band", lambda i: engine.band(nodes[i % n]))
    _loop("lca", lambda i: engine.lowest_common(nodes[i % n], nodes[(i * 7 + 1) % n]))
    _loop("top", lambda i: engine.top("density", n=10))

    # The timed target for pytest-benchmark: one membership lookup.
    benchmark(lambda: engine.memberships(nodes[0]))

    table = ascii_table(
        ["lookup", "loops", "total (s)", "per call (us)"],
        [
            [name, _LOOPS[name], round(total, 3), round(per_call * 1e6, 2)]
            for name, (total, per_call) in timings.items()
        ],
        title=(
            f"query-service point lookups "
            f"({artifact.n_communities} communities, {artifact.n_nodes} ASes, "
            f"{path.stat().st_size} byte artifact)"
        ),
    )
    emit("query_service_lookups", table)

    artifact.close()
