"""Figure 4.1 — number of k-clique communities vs k.

Paper: 627 communities in total on the 35,390-AS graph; hundreds at
k = 3 decaying to single communities near k = 36; unique orders at
k in {2, 21, 22, 25, 36}.  Shape to hold: monotone-ish decay from a
low-k peak, a band of unique mid-k orders, a single 2-clique community
and a small crown count at the maximum k.
"""

from repro.analysis.census import CommunityCensus
from repro.report.figures import ascii_scatter, ascii_table


def test_figure_4_1_census(benchmark, context, emit):
    census = benchmark(lambda: CommunityCensus(context.hierarchy))
    chart = ascii_scatter(
        {"communities": [(float(k), float(n)) for k, n in census.series()]},
        title="Figure 4.1: Number of k-clique communities vs k (paper total: 627)",
        log_y=True,
        y_label="# communities",
    )
    rows = [[k, n] for k, n in census.series()]
    table = ascii_table(["k", "# communities"], rows)
    summary = (
        f"total: {census.total_communities}; "
        f"unique orders: {census.unique_orders()} (paper: [2, 21, 22, 25, 36])"
    )
    emit("figure_4_1", f"{chart}\n\n{table}\n{summary}")

    series = dict(census.series())
    assert census.single_2_clique_community()
    assert series[3] > series[10] > series[census.max_k] - 1  # decaying shape
    assert census.max_k in census.unique_orders()
    assert any(2 < k < census.max_k for k in census.unique_orders())
