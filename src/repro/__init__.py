"""repro — reproduction of *k-clique Communities in the Internet
AS-level Topology Graph* (Gregori, Lenzini, Orsini; ICDCS 2011).

The package implements, from scratch:

* the Clique Percolation Method and its Lightweight Parallel variant
  (:mod:`repro.core`),
* the k-clique community tree with main/parallel classification
  (:mod:`repro.core.tree`),
* the AS-level topology substrate — synthetic Internet generator,
  measurement-source simulation, merge pipeline, IXP and geography
  registries (:mod:`repro.topology`),
* the full Chapter 4 analysis (:mod:`repro.analysis`),
* partition-style baselines for the Chapter 1 contrast
  (:mod:`repro.baselines`),
* text renderings of every table and figure (:mod:`repro.report`).

Quickstart::

    from repro import generate_topology, run_cpm, PaperRun
    dataset = generate_topology(seed=42)
    result = run_cpm(dataset.graph, k_range=(2, None))   # stable facade
    run = PaperRun(dataset)
    print(run.figure_4_1())

:mod:`repro.api` (``run_cpm``/``CPMResult``/``save_result``/
``load_result``, plus ``open_session``/``load_session`` for the
incremental path) is the supported programmatic surface — see
``docs/api.md`` for the stability policy, ``docs/robustness.md`` for
checkpoint/resume and fault tolerance, and ``docs/incremental.md`` for
edge-delta sessions.
"""

from .analysis import AnalysisContext
from .api import (
    CPMResult,
    load_result,
    load_session,
    open_session,
    run_cpm,
    save_result,
)
from .compare import jaccard, match_covers, omega_index, recall_at
from .core import (
    Community,
    CommunityCover,
    CommunityHierarchy,
    CommunityTree,
    LightweightParallelCPM,
    extract_hierarchy,
    k_clique_communities,
    maximal_cliques,
    verify_nesting,
)
from .evolution import EvolutionTracker, TopologyEvolution
from .graph import Graph, read_edgelist, write_edgelist
from .incremental import CPMSession, CPMUpdate, EdgeDelta
from .report import PaperRun
from .routing import BGPSimulator, RelationshipMap, infer_relationships
from .topology import ASDataset, GeneratorConfig, generate_topology

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "read_edgelist",
    "write_edgelist",
    "maximal_cliques",
    "k_clique_communities",
    "extract_hierarchy",
    "LightweightParallelCPM",
    "run_cpm",
    "CPMResult",
    "save_result",
    "load_result",
    "open_session",
    "load_session",
    "CPMSession",
    "EdgeDelta",
    "CPMUpdate",
    "Community",
    "CommunityCover",
    "CommunityHierarchy",
    "CommunityTree",
    "verify_nesting",
    "ASDataset",
    "GeneratorConfig",
    "generate_topology",
    "AnalysisContext",
    "PaperRun",
    "TopologyEvolution",
    "EvolutionTracker",
    "jaccard",
    "match_covers",
    "recall_at",
    "omega_index",
    "BGPSimulator",
    "RelationshipMap",
    "infer_relationships",
    "__version__",
]
