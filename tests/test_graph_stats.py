"""Unit tests for whole-graph statistics, cross-checked vs networkx."""

import random

import networkx as nx
import pytest

from repro.graph import (
    Graph,
    average_local_clustering,
    complete_graph,
    degree_assortativity,
    degree_ccdf,
    degree_histogram,
    erdos_renyi,
    global_clustering,
    path_graph,
    powerlaw_alpha_mle,
    star_graph,
    summarize_graph,
    top_degree_density,
)


try:  # nx.degree_pearson_correlation_coefficient needs scipy (-> numpy)
    import scipy  # noqa: F401

    HAVE_SCIPY = True
except ImportError:
    HAVE_SCIPY = False


def _as_nx(g: Graph) -> nx.Graph:
    G = nx.Graph(list(g.edges()))
    G.add_nodes_from(g.nodes())
    return G


class TestDegreeDistribution:
    def test_histogram(self):
        assert degree_histogram(star_graph(4)) == {1: 4, 4: 1}

    def test_empty(self):
        assert degree_histogram(Graph()) == {}
        assert degree_ccdf(Graph()) == []

    def test_ccdf_monotone_starting_at_one(self):
        g = erdos_renyi(40, 0.2, random.Random(1))
        ccdf = degree_ccdf(g)
        assert ccdf[0][1] == 1.0
        values = [p for _, p in ccdf]
        assert values == sorted(values, reverse=True)


class TestPowerLaw:
    def test_known_alpha_recovered(self):
        """Degrees sampled from a discrete power law should yield a
        nearby MLE estimate."""
        rng = random.Random(0)
        alpha_true = 2.3
        g = Graph()
        node = 0
        hub = "hub"
        for _ in range(3000):
            # Inverse-CDF sample from a Pareto tail, then attach a star
            # of that degree to fresh nodes.
            degree = int(3 * (1 - rng.random()) ** (-1 / (alpha_true - 1)))
            degree = min(degree, 500)
            center = ("c", node)
            for _ in range(degree):
                g.add_edge(center, ("leaf", node, _))
            node += 1
        estimate = powerlaw_alpha_mle(g, x_min=3)
        assert 2.0 < estimate < 2.6

    def test_no_tail_returns_zero(self):
        assert powerlaw_alpha_mle(path_graph(4), x_min=5) == 0.0


class TestClustering:
    def test_complete_graph(self):
        assert global_clustering(complete_graph(5)) == pytest.approx(1.0)
        assert average_local_clustering(complete_graph(5)) == pytest.approx(1.0)

    def test_star_has_zero_clustering(self):
        assert global_clustering(star_graph(5)) == 0.0
        assert average_local_clustering(star_graph(5)) == 0.0

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_networkx(self, seed):
        g = erdos_renyi(35, 0.2, random.Random(seed))
        G = _as_nx(g)
        assert global_clustering(g) == pytest.approx(nx.transitivity(G))
        assert average_local_clustering(g) == pytest.approx(nx.average_clustering(G))


class TestAssortativity:
    @pytest.mark.skipif(not HAVE_SCIPY, reason="networkx pearson cross-check needs scipy")
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_networkx(self, seed):
        g = erdos_renyi(40, 0.15, random.Random(seed))
        if g.number_of_edges < 2:
            return
        ours = degree_assortativity(g)
        theirs = nx.degree_pearson_correlation_coefficient(_as_nx(g))
        assert ours == pytest.approx(theirs, abs=1e-9)

    def test_star_is_disassortative(self):
        assert degree_assortativity(star_graph(6)) < 0 or star_graph(6).number_of_edges == 6

    def test_no_variance(self):
        assert degree_assortativity(complete_graph(4)) == 0.0
        assert degree_assortativity(Graph()) == 0.0


class TestTopDegreeDensity:
    def test_clique_core(self):
        g = complete_graph(5)
        for hub in range(5):
            for leaf in range(100 + hub * 10, 110 + hub * 10):
                g.add_edge(hub, leaf)
        assert top_degree_density(g, fraction=0.1) == 1.0

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            top_degree_density(complete_graph(3), fraction=0.0)


class TestSummary:
    def test_internet_like_profile(self, default_dataset):
        """The generator must reproduce the AS graph's invariants:
        heavy tail (alpha ~ 2), high local clustering, disassortative
        mixing, dense top-degree core."""
        summary = summarize_graph(default_dataset.graph)
        assert 1.7 < summary.powerlaw_alpha < 2.6
        assert summary.average_local_clustering > 0.3
        assert summary.assortativity < -0.05
        assert summary.top_degree_density > 0.4
        assert summary.max_degree > 20 * summary.mean_degree

    def test_empty_graph(self):
        summary = summarize_graph(Graph())
        assert summary.n_nodes == 0
        assert summary.mean_degree == 0.0
