"""Tests for policy-path observation and Gao relationship inference."""

import pytest

from repro.graph import Graph
from repro.routing import (
    Relationship,
    RelationshipMap,
    collect_policy_paths,
    infer_from_paths,
    infer_relationships,
    score_inference,
)


@pytest.fixture(scope="module")
def truth_pair(tiny_dataset):
    return tiny_dataset.graph, infer_relationships(tiny_dataset)


class TestPathCollection:
    def test_paths_are_valley_free(self, truth_pair):
        graph, relationships = truth_pair
        collection = collect_policy_paths(
            graph, relationships, n_collectors=8, n_destinations=30, seed=2
        )
        assert collection.n_paths > 100
        for path in collection.paths:
            assert relationships.is_valley_free(path)

    def test_edges_subset_of_truth(self, truth_pair):
        graph, relationships = truth_pair
        collection = collect_policy_paths(
            graph, relationships, n_collectors=8, n_destinations=30, seed=2
        )
        for edge in collection.edges():
            u, v = tuple(edge)
            assert graph.has_edge(u, v)

    def test_collectors_see_short_paths(self, truth_pair):
        """Degree-top collectors sit at the core: paths are short."""
        graph, relationships = truth_pair
        collection = collect_policy_paths(
            graph, relationships, n_collectors=10, n_destinations=40, seed=3
        )
        assert 1.0 < collection.mean_length() < 4.0

    def test_as_graph(self, truth_pair):
        graph, relationships = truth_pair
        collection = collect_policy_paths(
            graph, relationships, n_collectors=5, n_destinations=20, seed=4
        )
        observed = collection.as_graph()
        assert observed.number_of_edges == len(collection.edges())

    def test_empty_collection(self):
        from repro.routing.observation import PathCollection

        empty = PathCollection()
        assert empty.mean_length() == 0.0
        assert empty.edges() == set()


class TestGaoInference:
    def test_single_path_votes(self):
        """On c → p → t → p2, with t the summit, hops before t vote
        uphill and hops after vote downhill."""
        g = Graph([("c", "p"), ("p", "t"), ("t", "p2")])
        # Degrees: t has 2, make it the summit by adding spokes.
        for i in range(5):
            g.add_edge("t", f"x{i}")
        inference = infer_from_paths([("c", "p", "t", "p2")], g)
        rel = inference.relationships
        assert rel.kind("c", "p") is Relationship.PROVIDER
        assert rel.kind("p", "t") is Relationship.PROVIDER
        assert rel.kind("p2", "t") is Relationship.PROVIDER

    def test_trivial_paths_skipped(self):
        g = Graph([(1, 2)])
        inference = infer_from_paths([(1,), (1, 2)], g)
        assert inference.n_paths == 1

    def test_transit_orientation_is_accurate(self, truth_pair):
        """Gao's strength: c2p orientation from valley-free summits."""
        graph, truth = truth_pair
        collection = collect_policy_paths(
            graph, truth, n_collectors=15, n_destinations=80, seed=1
        )
        inference = infer_from_paths(collection.paths, graph)
        score = score_inference(inference.relationships, truth, collection.edges())
        assert score.n_scored_edges > 300
        # Transit direction errors are the hard failure; Gao gets them
        # almost all right (peer detection is the known weakness).
        assert score.transit_direction_errors < 0.05 * score.n_scored_edges
        assert score.accuracy > 0.6

    def test_peering_is_the_known_weakness(self, truth_pair):
        graph, truth = truth_pair
        collection = collect_policy_paths(
            graph, truth, n_collectors=15, n_destinations=80, seed=1
        )
        inference = infer_from_paths(collection.paths, graph)
        score = score_inference(inference.relationships, truth, collection.edges())
        assert score.peer_confusions >= score.transit_direction_errors

    def test_score_ignores_unannotated_edges(self):
        inferred = RelationshipMap()
        inferred.add_peering(1, 2)
        truth = RelationshipMap()
        truth.add_peering(1, 2)
        score = score_inference(inferred, truth, [frozenset((1, 2)), frozenset((3, 4))])
        assert score.n_scored_edges == 1
        assert score.accuracy == 1.0
