"""z-P analysis (Guimerà & Amaral [13]) over k-clique covers.

The paper cites the z-P *functional cartography* — used by Moon et
al. [21] on AS communities — and explains that it avoided the method
because its role boundaries "rely on threshold based on heuristics".
We implement it anyway, as a comparison lens: it quantifies, per AS,

* **z** — the within-community degree z-score: how hub-like the AS is
  inside its community relative to other members;
* **P** — the participation coefficient: how evenly the AS's links
  spread over communities (0: all links in one community; →1: spread).

Roles follow the original seven-region heuristic (R1–R4 non-hubs with
z < 2.5, R5–R7 hubs), exposing exactly the thresholds the paper
objects to — the benchmark shows how role counts jump when the
boundaries move, substantiating the objection.

Because k-clique covers overlap and do not span all nodes, the
adaptation is explicit: each node is assigned to the community
containing it at the given order (ties: the largest), nodes in no
community get P = 0 and no role.
"""

from __future__ import annotations

import statistics
from collections.abc import Hashable
from dataclasses import dataclass

from ..core.communities import CommunityCover
from ..graph.undirected import Graph

__all__ = ["NodeRole", "ZPRecord", "ZPAnalysis"]

#: The Guimerà-Amaral role regions (the heuristic thresholds the paper
#: declines to rely on, reproduced verbatim for the comparison).
_ROLE_BOUNDS = (
    ("R1 ultra-peripheral", False, 0.05),
    ("R2 peripheral", False, 0.62),
    ("R3 non-hub connector", False, 0.80),
    ("R4 non-hub kinless", False, 1.01),
    ("R5 provincial hub", True, 0.30),
    ("R6 connector hub", True, 0.75),
    ("R7 kinless hub", True, 1.01),
)

NodeRole = str


def classify_role(z: float, p: float, *, hub_z: float = 2.5) -> NodeRole:
    """Map a (z, P) pair onto the seven Guimerà-Amaral regions."""
    is_hub = z >= hub_z
    for name, hub_region, p_upper in _ROLE_BOUNDS:
        if hub_region == is_hub and p < p_upper:
            return name
    return "R7 kinless hub"  # pragma: no cover - p is always < 1.01


@dataclass(frozen=True)
class ZPRecord:
    node: Hashable
    community_label: str
    z: float
    participation: float
    role: NodeRole


class ZPAnalysis:
    """z-P records for every member of a cover at one order k."""

    def __init__(self, graph: Graph, cover: CommunityCover, *, hub_z: float = 2.5) -> None:
        self.graph = graph
        self.cover = cover
        self.hub_z = hub_z
        home = self._home_communities()
        internal = {
            node: graph.degree_within(node, set(home[node].members))
            for node in home
        }
        z_stats = self._z_statistics(home, internal)
        self.records: list[ZPRecord] = []
        for node, community in sorted(home.items(), key=lambda kv: repr(kv[0])):
            mean, stdev = z_stats[community.label]
            z = 0.0 if stdev == 0 else (internal[node] - mean) / stdev
            p = self._participation(node)
            self.records.append(
                ZPRecord(
                    node=node,
                    community_label=community.label,
                    z=z,
                    participation=p,
                    role=classify_role(z, p, hub_z=hub_z),
                )
            )

    def _home_communities(self):
        """Node -> its (largest) community at this order."""
        home = {}
        for community in self.cover:
            for node in community.members:
                # Covers are size-sorted, so the first assignment is
                # the largest community containing the node.
                home.setdefault(node, community)
        return home

    def _z_statistics(self, home, internal) -> dict[str, tuple[float, float]]:
        by_label: dict[str, list[int]] = {}
        for node, community in home.items():
            by_label.setdefault(community.label, []).append(internal[node])
        stats = {}
        for label, values in by_label.items():
            mean = statistics.mean(values)
            stdev = statistics.pstdev(values)
            stats[label] = (mean, stdev)
        return stats

    def _participation(self, node: Hashable) -> float:
        """1 - sum over communities of (links into community / degree)^2.

        Links to nodes outside every community count as one extra
        'community' bucket, so a stub with all links outside the cover
        scores 0 only when all links land in one bucket.
        """
        degree = self.graph.degree(node)
        if degree == 0:
            return 0.0
        neighbors = self.graph.neighbors(node)
        accounted: set[Hashable] = set()
        total = 0.0
        for community in self.cover.communities:
            inside = neighbors & community.members
            if inside:
                total += (len(inside) / degree) ** 2
                accounted |= inside
        outside = len(neighbors) - len(accounted)
        if outside:
            total += (outside / degree) ** 2
        return 1.0 - min(total, 1.0)

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def role_counts(self) -> dict[NodeRole, int]:
        """Role name -> number of ASes classified into it."""
        counts: dict[NodeRole, int] = {}
        for record in self.records:
            counts[record.role] = counts.get(record.role, 0) + 1
        return dict(sorted(counts.items()))

    def hubs(self) -> list[ZPRecord]:
        """Records with z at or above the hub threshold."""
        return [r for r in self.records if r.z >= self.hub_z]

    def threshold_sensitivity(
        self, hub_values: tuple[float, ...] = (2.0, 2.5, 3.0)
    ) -> dict[float, int]:
        """Hub count as the z threshold moves — the paper's objection,
        quantified: role populations swing with an arbitrary knob."""
        return {
            threshold: sum(1 for r in self.records if r.z >= threshold)
            for threshold in hub_values
        }
