"""Degeneracy-order shard planning for the sharded CPM pipeline.

The Bron–Kerbosch outer loop over a degeneracy-ordered graph is a
disjoint union of per-vertex subtrees: vertex ``v`` enumerates exactly
the maximal cliques whose lowest-ranked member is ``v`` (candidates are
``N(v)`` after ``v``, excluded set is ``N(v)`` before ``v``).  Any
partition of the vertex set therefore shards enumeration with no
duplicated and no missed cliques — the only coupling between shards is
read-only access to the forward-neighborhood closure.

Planning is a classic makespan problem: subtree cost is superlinear in
the forward degree (the recursion branches inside ``N⁺(v)``), so the
planner scores each vertex ``1 + f(v)²`` and assigns vertices to the
least-loaded shard in decreasing cost order (LPT greedy, deterministic
tie-breaks).  Owned vertex lists are kept ascending so the driver can
reassemble per-vertex results in global degeneracy order and reproduce
the serial emission sequence byte for byte.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence
from dataclasses import dataclass

__all__ = ["ShardPlan", "plan_shards", "resolve_shards"]


def resolve_shards(shards: int | str, workers: int) -> int:
    """Normalise a ``--shards`` request to a positive shard count.

    ``"auto"`` matches the worker count (one shard per worker keeps the
    pool busy without over-splitting the payload); integers and integer
    strings pass through after validation.
    """
    if isinstance(shards, str):
        text = shards.strip().lower()
        if text == "auto":
            return max(1, workers)
        try:
            shards = int(text)
        except ValueError:
            raise ValueError(
                f"shards must be a positive integer or 'auto', got {shards!r}"
            ) from None
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    return int(shards)


@dataclass(frozen=True)
class ShardPlan:
    """A balanced assignment of degeneracy-ordered vertices to shards.

    * ``owners[s]`` — the vertices shard ``s`` enumerates, ascending;
    * ``costs[s]`` — the shard's summed cost estimate (load balance);
    * ``closure_rows[s]`` — how many adjacency rows the shard's
      forward closure touches (the shard's worker-memory footprint).
    """

    n_shards: int
    owners: tuple[tuple[int, ...], ...]
    costs: tuple[int, ...]
    closure_rows: tuple[int, ...] = ()

    @property
    def n_vertices(self) -> int:
        return sum(len(owned) for owned in self.owners)

    def imbalance(self) -> float:
        """max/mean shard cost — 1.0 is a perfectly level plan."""
        if not self.costs or not any(self.costs):
            return 1.0
        mean = sum(self.costs) / len(self.costs)
        return max(self.costs) / mean if mean else 1.0


def plan_shards(forward_degrees: Sequence[int], n_shards: int) -> ShardPlan:
    """LPT-balance vertices into ``n_shards`` shards by subtree cost.

    ``forward_degrees[v]`` is the number of neighbors ranked after
    ``v`` in the degeneracy order.  Deterministic: costs tie-break on
    vertex id, loads tie-break on shard id.
    """
    n = len(forward_degrees)
    n_shards = max(1, min(n_shards, n) if n else 1)
    costs = [1 + f * f for f in forward_degrees]
    by_cost = sorted(range(n), key=lambda v: (-costs[v], v))
    heap: list[tuple[int, int]] = [(0, s) for s in range(n_shards)]
    owners: list[list[int]] = [[] for _ in range(n_shards)]
    for v in by_cost:
        load, s = heapq.heappop(heap)
        owners[s].append(v)
        heapq.heappush(heap, (load + costs[v], s))
    return ShardPlan(
        n_shards=n_shards,
        owners=tuple(tuple(sorted(owned)) for owned in owners),
        costs=tuple(sum(costs[v] for v in owned) for owned in owners),
    )
