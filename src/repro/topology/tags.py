"""Tagging (Section 2.4): correlate topology, IXP and geography datasets.

An AS is **on-IXP** if it appears in at least one IXP participant list,
otherwise **not-on-IXP** (Table 2.1).  Geographically an AS is
**national**, **continental**, **worldwide** or **unknown** (Table 2.2)
— see :class:`repro.topology.geography.GeoRegistry`.

Only ASes present in the Topology dataset are counted: the tables
summarise the tagging of the topology's node set, with side-dataset
entries for unseen ASes ignored (the paper's tables sum to 35,390, the
topology size).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from .geography import GeoRegistry, GeoTag
from .ixp import IXPRegistry

__all__ = ["IXPTagSummary", "GeoTagSummary", "TagSummary", "summarize_tags"]


@dataclass(frozen=True)
class IXPTagSummary:
    """Row counts of Table 2.1."""

    on_ixp: int
    not_on_ixp: int

    @property
    def total(self) -> int:
        return self.on_ixp + self.not_on_ixp

    @property
    def on_ixp_fraction(self) -> float:
        return self.on_ixp / self.total if self.total else 0.0


@dataclass(frozen=True)
class GeoTagSummary:
    """Row counts of Table 2.2."""

    national: int
    continental: int
    worldwide: int
    unknown: int

    @property
    def total(self) -> int:
        return self.national + self.continental + self.worldwide + self.unknown

    def count(self, tag: GeoTag) -> int:
        """The count of the given geographic tag."""
        return getattr(self, tag.value)


@dataclass(frozen=True)
class TagSummary:
    """Both tag tables plus per-AS accessors."""

    ixp: IXPTagSummary
    geo: GeoTagSummary


def summarize_tags(
    ases: Iterable[int],
    ixps: IXPRegistry,
    geography: GeoRegistry,
) -> TagSummary:
    """Compute Tables 2.1 and 2.2 over the topology's AS set."""
    on_ixp = 0
    geo_counts = {tag: 0 for tag in GeoTag}
    total = 0
    for asn in ases:
        total += 1
        if ixps.is_on_ixp(asn):
            on_ixp += 1
        geo_counts[geography.tag(asn)] += 1
    return TagSummary(
        ixp=IXPTagSummary(on_ixp=on_ixp, not_on_ixp=total - on_ixp),
        geo=GeoTagSummary(
            national=geo_counts[GeoTag.NATIONAL],
            continental=geo_counts[GeoTag.CONTINENTAL],
            worldwide=geo_counts[GeoTag.WORLDWIDE],
            unknown=geo_counts[GeoTag.UNKNOWN],
        ),
    )
