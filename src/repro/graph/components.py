"""Connected-component and traversal algorithms.

The Topology dataset of the paper is a single connected component,
which is why there is exactly one 2-clique community (Chapter 4).  The
library verifies that property with these helpers, and the percolation
engine reuses the same union-find-free BFS machinery.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterator

from .undirected import Graph

__all__ = [
    "bfs_order",
    "connected_components",
    "is_connected",
    "largest_connected_component",
    "node_component",
]


def bfs_order(graph: Graph, source: Hashable) -> Iterator[Hashable]:
    """Yield nodes reachable from ``source`` in breadth-first order."""
    seen = {source}
    queue: deque[Hashable] = deque([source])
    while queue:
        node = queue.popleft()
        yield node
        for neighbor in graph.neighbors(node):
            if neighbor not in seen:
                seen.add(neighbor)
                queue.append(neighbor)


def connected_components(graph: Graph) -> list[set[Hashable]]:
    """All connected components, largest first (ties broken arbitrarily)."""
    remaining = set(graph.nodes())
    components: list[set[Hashable]] = []
    while remaining:
        source = next(iter(remaining))
        component = set(bfs_order(graph, source))
        components.append(component)
        remaining -= component
    components.sort(key=len, reverse=True)
    return components


def node_component(graph: Graph, node: Hashable) -> set[Hashable]:
    """The connected component containing ``node``."""
    return set(bfs_order(graph, node))


def is_connected(graph: Graph) -> bool:
    """True iff the graph is non-empty and forms one connected component."""
    if len(graph) == 0:
        return False
    source = next(iter(graph.nodes()))
    return sum(1 for _ in bfs_order(graph, source)) == len(graph)


def largest_connected_component(graph: Graph) -> Graph:
    """The induced subgraph of the largest connected component.

    Mirrors the cleaning step of the dataset-merge methodology ([10]):
    after removing spurious data the AS-level graph is reduced to its
    giant component so that a single 2-clique community exists.
    """
    if len(graph) == 0:
        return Graph()
    return graph.subgraph(connected_components(graph)[0])
