"""Section 4.2 — trunk k-clique communities.

Paper: 30 communities with k in [15, 28]; > 90% on-IXP members but no
full-share IXP anywhere in the band; parallel communities share > 95%
of their ASes with their max-share IXP (the MSK-IX branch at
k = 18/19/20 with sizes 39/32/21); members have high average degree
(500.2) and are often worldwide or continental — service providers.
"""

from repro.analysis.bands import derive_bands, trunk_report
from repro.analysis.ixp_share import IXPShareAnalysis
from repro.report.figures import ascii_table


def test_section_4_2_trunk(benchmark, context, emit):
    ixp_share = IXPShareAnalysis(context)
    bands = derive_bands(ixp_share)
    report = benchmark(lambda: trunk_report(context, ixp_share, bands))

    branch_rows = [
        [label, size, ixp or "-"] for label, size, ixp in report.longest_branch
    ]
    table = ascii_table(
        ["community", "size", "max-share IXP"],
        branch_rows,
        title=(
            "Longest nested trunk parallel branch "
            "(paper: MSK-IX at k=18/19/20, sizes 39/32/21, >95% shared)"
        ),
    )
    summary = (
        f"trunk band k in {report.k_range} (paper [15, 28]); "
        f"{report.n_communities} communities (paper 30); "
        f"full-share IXPs: {report.any_full_share} (paper none); "
        f"min on-IXP fraction: {report.min_on_ixp_fraction:.0%} (paper >90%); "
        f"parallel max-share >= {report.parallel_max_share_min:.0%} (paper >95%); "
        f"mean member degree: {report.mean_member_degree:.1f} "
        f"(paper 500.2 at 9x scale); "
        f"worldwide/continental members: {report.worldwide_or_continental_fraction:.0%}"
    )
    emit("section_4_2_trunk", f"{table}\n{summary}")

    assert not report.any_full_share
    assert report.min_on_ixp_fraction > 0.8
    assert report.parallel_max_share_min > 0.9
    assert report.mean_member_degree > 20
    assert len(report.longest_branch) >= 3
    assert len({ixp for _, _, ixp in report.longest_branch}) == 1
