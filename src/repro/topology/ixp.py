"""IXP dataset (Section 2.2).

An Internet Exchange Point is a colocation facility where participant
ASes establish BGP sessions directly.  The paper's IXP dataset covers
232 IXPs active in April 2010, each with a geographic location and a
participant list; ASes participating in IXPs create the well-connected
zones the crown communities live in ([10], [12]).

This module models that dataset: :class:`IXP` records and an
:class:`IXPRegistry` supporting the queries the analysis needs —
on-IXP tagging (Table 2.1), IXP-induced node sets, and the
max-share-IXP / full-share-IXP resolution of Section 4.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from dataclasses import dataclass, field

from ..graph.subgraph import containment_fraction

__all__ = ["IXP", "IXPRegistry", "IXPShare"]


@dataclass(frozen=True)
class IXP:
    """One Internet Exchange Point."""

    name: str
    country: str
    participants: frozenset[int] = field(repr=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("IXP needs a non-empty name")

    @property
    def size(self) -> int:
        return len(self.participants)

    def __contains__(self, asn: int) -> bool:
        return asn in self.participants

    def __repr__(self) -> str:
        return f"IXP({self.name}, {self.country}, participants={self.size})"


@dataclass(frozen=True)
class IXPShare:
    """How much of a community one IXP covers (Section 4 terminology).

    ``fraction`` is the share of the community's members participating
    in the IXP.  A *full-share* IXP has fraction 1.0 (the community is
    a subgraph of the IXP-induced subgraph); the *max-share* IXP is the
    one maximising the fraction (ties broken by larger shared count,
    then name).
    """

    ixp_name: str
    shared: int
    fraction: float

    @property
    def is_full_share(self) -> bool:
        return self.fraction == 1.0


class IXPRegistry:
    """All IXPs of a dataset, indexed by name and by participant."""

    def __init__(self, ixps: Iterable[IXP] = ()) -> None:
        self._ixps: dict[str, IXP] = {}
        self._of_as: dict[int, set[str]] = {}
        for ixp in ixps:
            self.add(ixp)

    def add(self, ixp: IXP) -> None:
        """Register an IXP (names must be unique)."""
        if ixp.name in self._ixps:
            raise ValueError(f"duplicate IXP name {ixp.name!r}")
        self._ixps[ixp.name] = ixp
        for asn in ixp.participants:
            self._of_as.setdefault(asn, set()).add(ixp.name)

    def __len__(self) -> int:
        return len(self._ixps)

    def __iter__(self) -> Iterator[IXP]:
        return iter(self._ixps.values())

    def __contains__(self, name: str) -> bool:
        return name in self._ixps

    def __getitem__(self, name: str) -> IXP:
        try:
            return self._ixps[name]
        except KeyError as exc:
            raise KeyError(f"no IXP named {name!r}") from exc

    def names(self) -> list[str]:
        """Sorted IXP names."""
        return sorted(self._ixps)

    # ------------------------------------------------------------------
    # Tagging and share analysis
    # ------------------------------------------------------------------
    def is_on_ixp(self, asn: int) -> bool:
        """The Section 2.4 tag: AS belongs to >= 1 IXP participant list."""
        return asn in self._of_as

    def ixps_of(self, asn: int) -> set[str]:
        """Names of the IXPs ``asn`` participates in (empty if none)."""
        return set(self._of_as.get(asn, ()))

    def on_ixp_ases(self) -> set[int]:
        """All ASes participating in at least one IXP."""
        return set(self._of_as)

    def participant_sets(self) -> dict[str, frozenset[int]]:
        """IXP name -> participant set (IXP-induced node sets, [24])."""
        return {name: ixp.participants for name, ixp in self._ixps.items()}

    def shares_of(self, members: set[Hashable]) -> list[IXPShare]:
        """Every IXP's share of a community, best first.

        Only IXPs actually intersecting the member set are reported.
        Candidate IXPs are gathered through the participant index so
        the scan is proportional to the community size, not to the
        registry size.
        """
        candidates: set[str] = set()
        for asn in members:
            candidates |= self._of_as.get(asn, set())
        shares = []
        for name in candidates:
            participants = self._ixps[name].participants
            shared = len(members & participants)
            shares.append(
                IXPShare(
                    ixp_name=name,
                    shared=shared,
                    fraction=containment_fraction(set(members), set(participants)),
                )
            )
        shares.sort(key=lambda s: (-s.fraction, -s.shared, s.ixp_name))
        return shares

    def max_share(self, members: set[Hashable]) -> IXPShare | None:
        """The max-share-IXP of a community (None if no IXP intersects it)."""
        shares = self.shares_of(members)
        return shares[0] if shares else None

    def full_shares(self, members: set[Hashable]) -> list[IXPShare]:
        """All full-share IXPs of a community (often empty)."""
        return [s for s in self.shares_of(members) if s.is_full_share]

    # ------------------------------------------------------------------
    # Serialisation (TSV: name <tab> country <tab> comma-separated ASNs)
    # ------------------------------------------------------------------
    def to_tsv(self) -> str:
        """Serialise as 'name<TAB>country<TAB>asns' lines."""
        lines = [
            f"{ixp.name}\t{ixp.country}\t{','.join(map(str, sorted(ixp.participants)))}"
            for ixp in sorted(self._ixps.values(), key=lambda x: x.name)
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    @classmethod
    def from_tsv(cls, text: str) -> "IXPRegistry":
        registry = cls()
        for raw in text.splitlines():
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            name, country, members = line.split("\t")
            participants = frozenset(int(x) for x in members.split(",") if x)
            registry.add(IXP(name=name, country=country, participants=participants))
        return registry

    def __repr__(self) -> str:
        return f"IXPRegistry(ixps={len(self)}, on_ixp_ases={len(self._of_as)})"
