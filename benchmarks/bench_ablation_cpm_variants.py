"""Ablation — CPM implementation variants (DESIGN.md §5).

Compares, at equal output:

* the maximal-clique overlap formulation (the production path) vs the
  direct k-clique-adjacency definition (the executable specification) —
  the gap explains why CFinder-style implementations are the only ones
  that scale;
* the inverted-index candidate pruning vs the all-pairs overlap matrix
  the original CFinder uses.
"""

import random

from repro.core.percolation import (
    CliqueOverlapIndex,
    k_clique_communities,
    k_clique_communities_direct,
)
from repro.graph import erdos_renyi
from repro.report.figures import ascii_table
from repro.topology.generator import GeneratorConfig, generate_topology

SMALL = erdos_renyi(60, 0.25, random.Random(5))


def _all_pairs_overlaps(cliques):
    """The quadratic overlap matrix of the original CFinder."""
    overlaps = {}
    for i in range(len(cliques)):
        for j in range(i + 1, len(cliques)):
            shared = len(cliques[i] & cliques[j])
            if shared:
                overlaps[(i, j)] = shared
    return overlaps


def test_ablation_maximal_clique_vs_direct(benchmark, emit):
    """Production CPM vs the literal-definition oracle on a small graph."""
    import time

    t0 = time.perf_counter()
    direct = sorted(sorted(c.members) for c in k_clique_communities_direct(SMALL, 4))
    direct_seconds = time.perf_counter() - t0

    fast = benchmark(lambda: k_clique_communities(SMALL, 4))
    fast_sorted = sorted(sorted(c.members) for c in fast)
    assert fast_sorted == direct

    table = ascii_table(
        ["variant", "notes"],
        [
            ["maximal-clique overlap (ours)", "see pytest-benchmark timing row"],
            ["direct k-clique adjacency", f"{direct_seconds:.3f}s single run, same output"],
        ],
        title="Ablation: CPM formulation (equal output verified)",
    )
    emit("ablation_cpm_formulation", table)


def test_ablation_inverted_index_vs_all_pairs(benchmark, emit):
    """Overlap discovery: inverted node index vs the all-pairs matrix."""
    import time

    dataset = generate_topology(GeneratorConfig.tiny(), seed=3)
    index = CliqueOverlapIndex.from_graph(dataset.graph)
    cliques = index.cliques

    t0 = time.perf_counter()
    all_pairs = _all_pairs_overlaps(cliques)
    all_pairs_seconds = time.perf_counter() - t0

    def inverted():
        fresh = CliqueOverlapIndex(cliques)
        return fresh.overlaps()

    ours = benchmark(inverted)
    assert ours == all_pairs  # identical overlap maps

    table = ascii_table(
        ["variant", "pairs touched", "notes"],
        [
            ["inverted index (LP-CPM)", len(ours), "see pytest-benchmark timing row"],
            [
                "all-pairs matrix (CFinder)",
                len(cliques) * (len(cliques) - 1) // 2,
                f"{all_pairs_seconds:.3f}s single run",
            ],
        ],
        title="Ablation: overlap discovery strategy (equal output verified)",
    )
    emit("ablation_overlap_strategy", table)
