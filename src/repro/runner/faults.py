"""Deterministic fault injection for the resilient LP-CPM runner.

Long CPM runs die in boring ways — a worker OOM-killed mid-batch, a
stalled NFS read, a driver crash between phases — and none of those
ways show up in an ordinary test run.  A :class:`FaultPlan` makes them
reproducible: it is a small list of rules, each naming a *site* in the
pipeline (an overlap shard, a percolation batch, or a driver phase
boundary) and an *action* to inject there (kill the process, raise an
exception, or sleep).  The supervisor threads the plan into worker
tasks and the driver fires it at phase boundaries, so the retry,
degradation and resume paths of :mod:`repro.runner` are exercised by
plain deterministic tests — and by the CI ``fault-smoke`` job.

Plans parse from a compact spec string (the ``REPRO_FAULT_PLAN``
environment variable)::

    percolate:batch=0:kill              # kill the worker running batch 0, every attempt
    percolate:batch=1:raise:times=2     # fail batch 1 on its first two attempts only
    overlap:shard=0:delay=0.5           # stall shard 0 by half a second
    driver:after=overlap:kill           # kill the driver right after the overlap phase

Rules are ``;``-separated.  ``times=N`` limits a rule to the first N
attempts of its site (so a transient fault heals under retry); without
it the rule fires on every attempt (a permanent fault, forcing the
supervisor's serial degradation).  Worker processes receive the plan as
its spec string inside their task tuple — no shared state, works under
both fork and spawn start methods.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

__all__ = ["FaultPlan", "FaultRule", "InjectedFault", "FAULT_PLAN_ENV"]

FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

_SITES = ("enumerate", "overlap", "percolate", "driver")
_ACTIONS = ("kill", "raise", "delay")

#: Exit status of a worker (or driver) killed by an injected fault —
#: distinctive enough to recognise in CI logs.
KILL_EXIT_CODE = 173


class InjectedFault(RuntimeError):
    """Raised (in a worker or the driver) by a ``raise`` fault rule."""

    def __init__(self, site: str, index: int | None, attempt: int) -> None:
        where = site if index is None else f"{site}[{index}]"
        super().__init__(f"injected fault at {where} (attempt {attempt})")
        self.site = site
        self.index = index
        self.attempt = attempt

    def __reduce__(self):
        """Pickle via the constructor args, not ``Exception.args``.

        Without this the exception cannot cross the process boundary:
        the parent's unpickle would call ``InjectedFault(message)`` and
        die, turning a clean task failure into a broken pool.
        """
        return (type(self), (self.site, self.index, self.attempt))


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: where it fires, what it does, how often."""

    site: str
    action: str
    index: int | None = None  # batch/shard selector (None = any)
    after: str | None = None  # driver rules: phase boundary selector
    seconds: float = 0.0  # delay action only
    times: int | None = None  # fire on attempts < times (None = always)

    def matches(self, site: str, index: int | None, attempt: int) -> bool:
        """True iff this rule fires at the given site/index/attempt."""
        if self.site != site:
            return False
        if self.index is not None and self.index != index:
            return False
        return self.times is None or attempt < self.times

    def to_spec(self) -> str:
        """The rule in spec-string form (round-trips through parsing)."""
        parts = [self.site]
        if self.index is not None:
            parts.append(f"batch={self.index}")
        if self.after is not None:
            parts.append(f"after={self.after}")
        parts.append(f"delay={self.seconds:g}" if self.action == "delay" else self.action)
        if self.times is not None:
            parts.append(f"times={self.times}")
        return ":".join(parts)


def _parse_rule(text: str) -> FaultRule:
    site = None
    action = None
    index = None
    after = None
    seconds = 0.0
    times = None
    for part in text.split(":"):
        part = part.strip()
        if not part:
            continue
        if part in _SITES and site is None:
            site = part
        elif part in ("kill", "raise"):
            action = part
        elif part.startswith("delay="):
            action = "delay"
            seconds = float(part.split("=", 1)[1])
        elif part.startswith(("batch=", "shard=")):
            index = int(part.split("=", 1)[1])
        elif part.startswith("after="):
            after = part.split("=", 1)[1]
            if after not in _SITES:
                raise ValueError(f"unknown phase in fault rule {text!r}: {after!r}")
        elif part.startswith("times="):
            times = int(part.split("=", 1)[1])
        else:
            raise ValueError(f"cannot parse fault rule component {part!r} in {text!r}")
    if site is None or action is None:
        raise ValueError(f"fault rule {text!r} needs a site and an action")
    if site == "driver" and after is None:
        raise ValueError(f"driver fault rule {text!r} needs after=<phase>")
    return FaultRule(site=site, action=action, index=index, after=after,
                     seconds=seconds, times=times)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of :class:`FaultRule`\\ s.

    >>> plan = FaultPlan.parse("percolate:batch=0:raise:times=1")
    >>> plan.fire("percolate", index=0, attempt=1)  # healed on retry
    >>> plan.fire("percolate", index=0, attempt=0)
    Traceback (most recent call last):
        ...
    repro.runner.faults.InjectedFault: injected fault at percolate[0] (attempt 0)
    """

    rules: tuple[FaultRule, ...] = ()

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from a ``;``-separated spec string."""
        rules = tuple(_parse_rule(r) for r in spec.split(";") if r.strip())
        return cls(rules=rules)

    @classmethod
    def from_env(cls) -> "FaultPlan | None":
        """The plan in ``$REPRO_FAULT_PLAN``, or None when unset/empty."""
        spec = os.environ.get(FAULT_PLAN_ENV, "").strip()
        if not spec:
            return None
        return cls.parse(spec)

    @property
    def spec(self) -> str:
        """Canonical spec string (what workers receive in their tasks)."""
        return ";".join(rule.to_spec() for rule in self.rules)

    def __bool__(self) -> bool:
        return bool(self.rules)

    # ------------------------------------------------------------------
    # Firing
    # ------------------------------------------------------------------
    def fire(self, site: str, *, index: int | None = None, attempt: int = 0) -> None:
        """Inject the first matching rule's action at a worker site (if any)."""
        for rule in self.rules:
            if rule.site == "driver" or not rule.matches(site, index, attempt):
                continue
            self._act(rule, site, index, attempt)
            return

    def fire_boundary(self, after: str) -> None:
        """Inject any ``driver:after=<phase>`` rule at a phase boundary."""
        for rule in self.rules:
            if rule.site == "driver" and rule.after == after:
                self._act(rule, "driver", None, 0)
                return

    @staticmethod
    def _act(rule: FaultRule, site: str, index: int | None, attempt: int) -> None:
        if rule.action == "delay":
            time.sleep(rule.seconds)
        elif rule.action == "raise":
            raise InjectedFault(site, index, attempt)
        else:  # kill: simulate SIGKILL/OOM — no exception, no cleanup
            os._exit(KILL_EXIT_CODE)
