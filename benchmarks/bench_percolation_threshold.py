"""Extension — the k-clique percolation phase transition.

Validates the CPM engine against the theory the paper's method stands
on (Derényi, Palla, Vicsek, PRL 2005): in G(N, p) the largest k-clique
community jumps from microscopic to giant at
p_c(k) = [(k-1) N]^(-1/(k-1)).  The regenerated series must show the
sigmoid order parameter with its knee at p/p_c ≈ 1.
"""

from repro.analysis.percolation_threshold import (
    critical_probability,
    empirical_threshold,
    threshold_sweep,
)
from repro.report.figures import ascii_scatter, ascii_table

_N, _K = 150, 4
_RELATIVE_PS = [0.5, 0.7, 0.85, 1.0, 1.15, 1.3, 1.5]


def test_percolation_phase_transition(benchmark, emit):
    points = benchmark.pedantic(
        lambda: threshold_sweep(n=_N, k=_K, relative_ps=_RELATIVE_PS, trials=2, seed=1),
        rounds=1,
        iterations=1,
    )
    chart = ascii_scatter(
        {"largest share": [(p.relative_p, p.largest_community_share) for p in points]},
        title=(
            f"k-clique percolation transition: N={_N}, k={_K}, "
            f"p_c={critical_probability(_N, _K):.4f} (Derenyi et al. 2005)"
        ),
        x_label="p / p_c",
        y_label="largest community share",
    )
    table = ascii_table(
        ["p/p_c", "p", "largest share", "# communities"],
        [
            [p.relative_p, round(p.p, 4), round(p.largest_community_share, 3), p.n_communities]
            for p in points
        ],
    )
    knee = empirical_threshold(points, share=0.2)
    emit("percolation_threshold", f"{chart}\n\n{table}\nempirical knee at p/p_c = {knee}")

    shares = [p.largest_community_share for p in points]
    assert shares[0] < 0.1
    assert shares[-1] > 0.6
    assert knee is not None and 0.7 <= knee <= 1.5
