"""Vectorized ``blocks`` CPM kernel: numpy-batched hot loops.

The third CPM kernel (``--kernel blocks``) keeps the degeneracy-ordered
:class:`~repro.graph.csr.CSRGraph` snapshot of the bitset kernel and
attacks the measured hot loops with numpy uint64 blocks
(:meth:`CSRGraph.blocks`, shape ``(n, ceil(n/64))``) where batching
wins, and with tighter big-int recursion where it does not:

* **Enumeration** (:func:`maximal_cliques_blocks`) — the same
  Bron–Kerbosch recursion over big-int masks as the bitset kernel, but
  subproblems with ``|P| < 3`` are resolved *inline* by closed-form
  maximality tests instead of recursing: profiling on the bench graph
  showed ~75% of all recursive calls came from these leaf-sized
  subproblems, where the per-call interpreter overhead — not the mask
  width — dominates.  Top-level subproblems with at least
  ``_LOCAL_REMAP_MIN`` candidates are *re-indexed* onto their own
  neighborhood first, using one block-matrix gather: degeneracy order
  bounds ``|N(v)|`` far below ``n``, so the whole subtree then runs on
  masks one machine word wide instead of ``n`` bits.  (A numpy
  ``bitwise_count`` pivot argmax over gathered block rows was
  prototyped in three variants — per-call, whole-graph batched, and
  column-pruned — and *lost* to the scalar scan at AS-graph scale
  because the median pivot scan examines ~3.5 candidates;
  ``docs/performance.md`` records the numbers.)
* **Overlap counting** (:func:`count_overlaps_blocks`) — replaces the
  per-pair ``Counter`` updates with array sweeps: clique memberships
  are flattened and lex-sorted into per-node runs, run prefixes are
  truncated to the counting-eligible (size >= 3) cliques, every
  within-prefix pair is emitted as a packed ``(i << shift) | j`` word
  by one ragged repeat/cumsum gather (no per-run Python loop), and
  ``np.unique(..., return_counts=True)`` produces the exact overlap
  multiset.  Activation-order bucketing and the k=2 chain pairs are
  plain array arithmetic.  The result is bit-for-bit the same
  :class:`~repro.core.overlap.OverlapWire` content as the bitset
  kernel's (bucket *bytes* differ only in intra-bucket pair order,
  which union-find provably ignores).
* **Percolation** (:func:`percolate_orders_blocks`) — the serial sweep
  becomes min-label propagation over the packed pair arrays: hook each
  endpoint's *root* label to the pair minimum (``np.minimum.at``),
  then pointer-jump (``labels[labels]``) to a fixed point.  Group
  extraction replicates :meth:`IntUnionFind.groups` ordering exactly
  (largest first, ties by smallest member, members ascending), which
  ``tests/test_blocks_kernel.py`` pins against the union-find oracle.

Everything downstream (wire format, checkpoints, hierarchy assembly)
is shared with the bitset kernel, which is what makes the swap provably
safe: identical clique sets + identical overlap counts + identical
groups ⇒ byte-identical hierarchies, trees and query artifacts.

The array stages require numpy (the ``[perf]`` extra): calling them
without it raises a clean
:class:`~._blocks_compat.BlocksUnavailableError` — the module itself
imports everywhere.
"""

from __future__ import annotations

import time

from ..obs.tracing import max_rss_kib
from ..obs.worker import current_metrics, worker_span
from ._blocks_compat import HAVE_NUMPY, require_numpy
from .cliques import CliqueEnumerationStats
from .overlap import OverlapWire

#: Candidate-count threshold above which a top-level Bron–Kerbosch
#: subproblem is re-indexed onto its own neighborhood before recursing.
#: Below it the one-off numpy re-index (gather + unpackbits + packbits)
#: costs more than the big-int width it saves; above it the whole
#: subtree runs on masks one or two machine words wide (the degeneracy
#: order bounds |N(v)| far under the graph's bit width).
_LOCAL_REMAP_MIN = 12

# The module itself imports everywhere (so pydoc/pkgutil walkers never
# trip on a minimal install); the array stages gate on numpy at call
# time via require_numpy, and kernel selection gates once up front in
# ``resolve_kernel``.  The enumerator is pure big-int and needs nothing.

__all__ = [
    "maximal_cliques_blocks",
    "count_overlaps_blocks",
    "percolate_orders_blocks",
]


def maximal_cliques_blocks(
    csr,
    *,
    min_size: int = 1,
    stats: CliqueEnumerationStats | None = None,
) -> list[tuple[int, ...]]:
    """All maximal cliques of a :class:`CSRGraph`, blocks-kernel variant.

    Same big-int Bron–Kerbosch recursion (Tomita pivot, degeneracy
    outer order) as :func:`~.cliques.maximal_cliques_bitset`, with
    ``|P| < 3`` subproblems resolved inline:

    * ``P = {}`` — ``R`` is maximal iff ``X`` is empty;
    * ``P = {u}`` — ``R ∪ {u}`` is maximal iff no ``X`` node is
      adjacent to ``u`` (the pivot rule can never hide this clique: any
      covering pivot would itself witness non-maximality);
    * ``P = {u, w}`` adjacent — the only candidate is ``R ∪ {u, w}``,
      maximal iff ``X ∩ N(u) ∩ N(w)`` is empty; non-adjacent — each of
      ``R ∪ {u}`` / ``R ∪ {w}`` is tested independently.

    Top-level subproblems with ``|P| >= _LOCAL_REMAP_MIN`` are first
    re-indexed onto ``S = N(v)`` (ascending, so local bit order equals
    global bit order and the recursion tree, pivot choices and emission
    sequence are *identical*): one block-matrix gather builds the local
    adjacency, and the subtree's masks shrink from ``n`` bits to
    ``|S|`` bits — one machine word on any degeneracy-bounded graph.
    Without numpy the re-index is skipped and the enumerator stays pure
    big-int.

    Enumerates exactly the clique set of the other kernels.  Tuple
    *member order* can differ from the bitset kernel where the inline
    tests bypass a pivot re-ordering — downstream consumers canonicalise
    members (``build_hierarchy`` folds them into frozensets), which the
    equivalence tests pin.  ``stats`` counts every resolved subproblem
    (inline leaves included) as a call.
    """
    if min_size < 1:
        raise ValueError(f"min_size must be >= 1, got {min_size}")
    bits = csr.bitsets
    cliques: list[tuple[int, ...]] = []
    emit = cliques.append
    stack: list[int] = []
    append = stack.append
    pop = stack.pop
    counters = [0, 0, 0]  # calls, branches, pivot_candidates

    def small(p: int, x: int, c: int) -> None:
        counters[0] += 1
        if c == 1:
            u = p.bit_length() - 1
            if x & bits[u] == 0 and len(stack) + 1 >= min_size:
                emit((*stack, u))
        elif c == 0:
            if x == 0 and len(stack) >= min_size:
                emit(tuple(stack))
        else:
            counters[1] += 2
            low = p & -p
            u = low.bit_length() - 1
            w = (p ^ low).bit_length() - 1
            bu = bits[u]
            bw = bits[w]
            if (bu >> w) & 1:
                if x & bu & bw == 0 and len(stack) + 2 >= min_size:
                    emit((*stack, u, w))
            elif len(stack) + 1 >= min_size:
                if x & bu == 0:
                    emit((*stack, u))
                if x & bw == 0:
                    emit((*stack, w))

    def expand(p: int, x: int) -> None:
        counters[0] += 1
        # Pivot: the candidate of P | X with the most neighbors in P.
        cand = p | x
        counters[2] += cand.bit_count()
        best = -1
        pivot_nbrs = 0
        m = cand
        while m:
            low = m & -m
            nb = bits[low.bit_length() - 1]
            count = (nb & p).bit_count()
            if count > best:
                best = count
                pivot_nbrs = nb
            m ^= low
        branch = p & ~pivot_nbrs
        counters[1] += branch.bit_count()
        while branch:
            low = branch & -branch
            v = low.bit_length() - 1
            nv = bits[v]
            np_ = p & nv
            c = np_.bit_count()
            append(v)
            if c < 3:
                small(np_, x & nv, c)
            else:
                expand(np_, x & nv)
            pop()
            p ^= low
            x |= low
            branch ^= low

    def expand_local(v: int, sarr: list[int], adj: list[int], p: int, x: int) -> None:
        # Same recursion as ``expand`` over the subproblem re-indexed
        # onto S = N(v) (ascending, so local bit order == global bit
        # order): identical pivot counts, identical branch sequence,
        # identical emissions — but every mask is |S| bits wide instead
        # of n bits, which is what makes the dense-core subtrees cheap.
        lstack: list[int] = []
        lappend = lstack.append
        lpop = lstack.pop

        def small_l(p: int, x: int, c: int) -> None:
            counters[0] += 1
            if c == 1:
                u = p.bit_length() - 1
                if x & adj[u] == 0 and len(lstack) + 2 >= min_size:
                    emit((v, *(sarr[t] for t in lstack), sarr[u]))
            elif c == 0:
                if x == 0 and len(lstack) + 1 >= min_size:
                    emit((v, *(sarr[t] for t in lstack)))
            else:
                counters[1] += 2
                low = p & -p
                u = low.bit_length() - 1
                w = (p ^ low).bit_length() - 1
                bu = adj[u]
                bw = adj[w]
                if (bu >> w) & 1:
                    if x & bu & bw == 0 and len(lstack) + 3 >= min_size:
                        emit((v, *(sarr[t] for t in lstack), sarr[u], sarr[w]))
                elif len(lstack) + 2 >= min_size:
                    if x & bu == 0:
                        emit((v, *(sarr[t] for t in lstack), sarr[u]))
                    if x & bw == 0:
                        emit((v, *(sarr[t] for t in lstack), sarr[w]))

        def expand_l(p: int, x: int) -> None:
            counters[0] += 1
            cand = p | x
            counters[2] += cand.bit_count()
            best = -1
            pivot_nbrs = 0
            m = cand
            while m:
                low = m & -m
                nb = adj[low.bit_length() - 1]
                count = (nb & p).bit_count()
                if count > best:
                    best = count
                    pivot_nbrs = nb
                m ^= low
            branch = p & ~pivot_nbrs
            counters[1] += branch.bit_count()
            while branch:
                low = branch & -branch
                u = low.bit_length() - 1
                nu = adj[u]
                np_ = p & nu
                c = np_.bit_count()
                lappend(u)
                if c < 3:
                    small_l(np_, x & nu, c)
                else:
                    expand_l(np_, x & nu)
                lpop()
                p ^= low
                x |= low
                branch ^= low

        expand_l(p, x)

    np = None
    blocks_mat = None

    def local_subproblem(v: int):
        """(sarr, adj, p0, x0) of v's neighborhood re-indexed to [0, |S|)."""
        nonlocal np, blocks_mat
        if blocks_mat is None:
            np = require_numpy("the 'blocks' kernel")
            blocks_mat = csr.blocks()
        nbrs = csr.neighbors(v)
        sarr = nbrs.tolist()
        s_idx = np.asarray(nbrs, dtype=np.int64)
        length = len(sarr)
        sub = blocks_mat[s_idx]
        bits01 = (sub[:, s_idx >> 6] >> (s_idx & 63).astype(np.uint64)) & np.uint64(1)
        if length <= 64:
            # One local word per row: position j's bit shifted into place
            # and row-summed — no byte round trip at all.
            adj = (bits01 << np.arange(length, dtype=np.uint64)).sum(
                axis=1, dtype=np.uint64
            ).tolist()
        else:
            packed = np.packbits(bits01.astype(np.uint8), axis=1, bitorder="little")
            row_bytes = packed.shape[1]
            buf = packed.tobytes()
            adj = [
                int.from_bytes(buf[i * row_bytes : (i + 1) * row_bytes], "little")
                for i in range(length)
            ]
        split = int(np.searchsorted(s_idx, v))
        x0 = (1 << split) - 1
        p0 = ((1 << length) - 1) ^ x0
        return sarr, adj, p0, x0

    remap_min = _LOCAL_REMAP_MIN if HAVE_NUMPY else float("inf")
    for v in range(len(bits)):
        nv = bits[v]
        later = (nv >> (v + 1)) << (v + 1)
        c = later.bit_count()
        if c >= remap_min:
            sarr, adj, p0, x0 = local_subproblem(v)
            expand_local(v, sarr, adj, p0, x0)
            continue
        append(v)
        if c < 3:
            small(later, nv & ((1 << v) - 1), c)
        else:
            expand(later, nv & ((1 << v) - 1))
        pop()
    if stats is not None:
        stats.calls += counters[0]
        stats.branches += counters[1]
        stats.pivot_candidates += counters[2]
        stats.emitted = len(cliques)
    return cliques


def count_overlaps_blocks(
    dense: list[tuple[int, ...]],
    sizes: list[int],
    n_counting: int,
    shift: int,
) -> tuple[OverlapWire, int, dict]:
    """Vectorized overlap counting + bucketing + chains, as one wire.

    ``dense`` must be sorted by size descending (the pipeline
    invariant); ``n_counting`` is the size>=3 prefix length and
    ``shift`` the pair-packing shift.  Returns ``(wire, n_counted,
    stats)`` where ``n_counted`` is the number of distinct co-occurring
    pairs (the bitset kernel's ``len(counts)``) and ``stats`` is shaped
    like a :func:`~.overlap.count_overlaps_shard` report so the driver
    aggregates both kernels identically.

    Counting semantics match the reference exactly: pairs are counted
    over the per-node id lists truncated to the eligible prefix, nodes
    with fewer than two eligible cliques contribute nothing, overlap-1
    pairs are dropped from the buckets (the k=2 chains cover them), and
    ``k_act = min(sizes[j], o + 1)``.
    """
    np = require_numpy("the 'blocks' kernel")
    t0, c0 = time.perf_counter(), time.process_time()
    with worker_span("worker.overlap.blocks", cliques=len(dense)) as span:
        n_cliques = len(dense)
        # Pair words are (id << shift) | id; on every graph this
        # pipeline meets they fit int32, which halves the sort traffic
        # of the np.unique below.  The wire stays '<i8' regardless.
        word_dtype = (
            np.int32
            if (n_cliques << shift) | ((1 << shift) - 1) < 2**31
            else np.int64
        )
        lens = np.fromiter(map(len, dense), np.int64, count=n_cliques)
        total = int(lens.sum())
        flat = np.fromiter((v for c in dense for v in c), word_dtype, count=total)
        cid = np.repeat(np.arange(n_cliques, dtype=word_dtype), lens)
        order = np.lexsort((cid, flat))
        cids_s = cid[order]
        nodes_s = flat[order]
        # k=2 chains: consecutive clique ids within each node run.
        same = nodes_s[:-1] == nodes_s[1:]
        chains = (cids_s[:-1][same] << shift) | cids_s[1:][same]
        # Per-node runs; the eligible ids are an ascending prefix.
        starts = np.flatnonzero(np.concatenate(([True], ~same)))
        eligible_len = np.add.reduceat((cids_s < n_counting).astype(np.int64), starts)
        keep = eligible_len >= 2
        kept_starts = starts[keep]
        kept_len = eligible_len[keep].astype(word_dtype)
        # All pairs within each eligible prefix, in one ragged gather:
        # each prefix position q > 0 contributes q pairs as the larger
        # endpoint, partnered with every earlier position of its run.
        # Ids ascend within a run, so position order is id order and the
        # packed word is (smaller id << shift) | larger id, exactly the
        # reference's ascending-prefix pairs.
        n_incident = int(kept_len.sum())
        within = np.arange(n_incident, dtype=word_dtype) - np.repeat(
            np.cumsum(kept_len, dtype=word_dtype) - kept_len, kept_len
        )
        pos = np.repeat(kept_starts.astype(word_dtype), kept_len) + within
        pair_updates = int(within.sum())
        batches = 1 if pair_updates else 0
        if pair_updates:
            j_pos = np.repeat(pos, within)
            grp_starts = np.cumsum(within, dtype=word_dtype) - within
            delta = (
                np.arange(pair_updates, dtype=word_dtype)
                - np.repeat(grp_starts, within)
                + word_dtype(1)
            )
            i_pos = j_pos - delta
            words = (cids_s[i_pos] << shift) | cids_s[j_pos]
            unique_words, counts = np.unique(words, return_counts=True)
        else:
            unique_words = counts = np.empty(0, np.int64)
        n_counted = len(unique_words)
        # Activation-order bucketing over the overlap >= 2 pairs.
        strong = counts > 1
        kept_words = unique_words[strong]
        kept_counts = counts[strong]
        sizes_j = np.asarray(sizes, dtype=np.int64)[kept_words & ((1 << shift) - 1)]
        k_act = np.minimum(sizes_j, kept_counts + 1)
        by_k = np.argsort(k_act, kind="stable")
        words_sorted = kept_words[by_k]
        k_sorted = k_act[by_k]
        if len(k_sorted):
            bounds = np.flatnonzero(np.diff(k_sorted)) + 1
            bucket_starts = np.concatenate(([0], bounds))
            bucket_ends = np.concatenate((bounds, [len(k_sorted)]))
        else:
            bucket_starts = bucket_ends = ()
        wire = OverlapWire(
            n_cliques=n_cliques,
            shift=shift,
            n_pairs=len(words_sorted),
            n_chain_pairs=len(chains),
            buckets={
                int(k_sorted[s]): words_sorted[s:e].astype("<i8", copy=False).tobytes()
                for s, e in zip(bucket_starts, bucket_ends)
            },
            chains=chains.astype("<i8", copy=False).tobytes(),
        )
        span.set("pairs", n_counted)
        span.set("batches", batches)
    stats = {
        "nodes": int(keep.sum()),
        "incidences": total,
        "pair_updates": pair_updates,
        "batches": batches,
        "distinct_pairs": n_counted,
        "wall_seconds": time.perf_counter() - t0,
        "cpu_seconds": time.process_time() - c0,
        "max_rss_kib": max_rss_kib(),
    }
    return wire, n_counted, stats


def percolate_orders_blocks(
    orders: list[int],
    eligibles: list[int],
    wire: OverlapWire,
) -> tuple[dict[int, list[list[int]]], dict]:
    """Min-label percolation sweep over a packed wire, vectorized.

    Drop-in twin of
    :func:`~.lightweight._percolate_orders_packed`: the same
    descending incremental contract (a bucket at ``k_act`` is applied
    once, at the first order ``k <= k_act``; chains fold in at k = 2),
    with the union-find replaced by min-label propagation.  Each batch
    of pairs hooks both endpoint *roots* to the pair minimum and
    pointer-jumps to a fixed point — equal labels stay equal under
    that transformation, so previously contracted components remain
    contracted and connectivity through them is preserved.

    Group snapshots replicate ``IntUnionFind.groups`` ordering exactly:
    member ids ascending (stable argsort of the label array), groups
    largest-first with ties broken by smallest member.
    """
    np = require_numpy("the 'blocks' kernel")
    t0, c0 = time.perf_counter(), time.process_time()
    with worker_span(
        "worker.percolate.blocks", orders=len(orders), cliques=wire.n_cliques
    ) as span:
        shift = wire.shift
        labels = np.arange(wire.n_cliques, dtype=np.int64)
        bucket_orders = sorted(wire.buckets, reverse=True)
        bi = 0
        n_buckets = len(bucket_orders)
        applied = 0
        result: dict[int, list[list[int]]] = {}

        def apply_pairs(words) -> None:
            nonlocal labels
            i = words >> shift
            j = words & ((1 << shift) - 1)
            while True:
                li = labels[i]
                lj = labels[j]
                if np.array_equal(li, lj):
                    break
                lo = np.minimum(li, lj)
                np.minimum.at(labels, li, lo)
                np.minimum.at(labels, lj, lo)
                while True:
                    jumped = labels[labels]
                    if np.array_equal(jumped, labels):
                        break
                    labels = jumped

        for idx, k in enumerate(orders):
            while bi < n_buckets and bucket_orders[bi] >= k:
                words = np.frombuffer(wire.buckets[bucket_orders[bi]], dtype="<i8")
                applied += len(words)
                apply_pairs(words)
                bi += 1
            if k == 2 and wire.chains:
                words = np.frombuffer(wire.chains, dtype="<i8")
                applied += len(words)
                apply_pairs(words)
            eligible = eligibles[idx]
            if isinstance(eligible, (int, np.integer)):
                # Prefix form: the first ``eligible`` clique ids.
                if eligible == 0:
                    result[k] = []
                    continue
                members = None
                snapshot = labels[:eligible]
            else:
                # Explicit-id form (``sweep_wire``'s groups_of twin):
                # the incremental session passes stable ids that are
                # not a prefix of the label array.
                if len(eligible) == 0:
                    result[k] = []
                    continue
                members = np.asarray(eligible, dtype=np.int64)
                snapshot = labels[members]
            _uniq, inverse = np.unique(snapshot, return_inverse=True)
            by_label = np.argsort(inverse, kind="stable")
            cuts = np.flatnonzero(np.diff(inverse[by_label])) + 1
            # Positions ascend within each split, so g[0] is both the
            # smallest member (prefix form) and the first-listed member
            # (explicit form) — the exact tie-break of
            # ``IntUnionFind.groups`` / ``groups_of``.
            groups = list(np.split(by_label, cuts))
            groups.sort(key=lambda g: (-len(g), g[0]))
            if members is None:
                result[k] = [g.tolist() for g in groups]
            else:
                result[k] = [members[g].tolist() for g in groups]
        merges = wire.n_cliques - len(np.unique(labels))
        span.set("union_merges", merges)
        registry = current_metrics()
        if registry is not None:
            registry.inc("worker.percolate.union_merges", merges)
            registry.inc("worker.percolate.orders_done", len(orders))
    pairs_in = wire.n_pairs + wire.n_chain_pairs
    stats = {
        "orders": len(orders),
        "pairs_in": pairs_in,
        "skipped_pairs": max(0, pairs_in - applied),
        "union_merges": merges,
        "wall_seconds": time.perf_counter() - t0,
        "cpu_seconds": time.process_time() - c0,
        "max_rss_kib": max_rss_kib(),
    }
    return result, stats
