"""Dataset merging and cleaning (the methodology of [10], Section 2.1).

The paper builds its Topology dataset by (a) downloading three
measurement collections, (b) merging them, (c) removing spurious data.
This module reproduces steps (b) and (c) over the simulated campaigns
of :mod:`repro.topology.sources`:

* **merge** — union the observed edge sets, tracking per-edge
  provenance (how many and which sources saw the edge);
* **clean** — drop edges that look spurious.  Real spurious AS links
  come from IP-to-AS aliasing artifacts; they are characteristically
  *uncorroborated* (single source) and *path-isolated* (their endpoints
  share no common neighbor — a genuine AS adjacency in the dense part
  of the graph almost always closes a triangle).  The policy is
  configurable because the paper's exact heuristics are unpublished;
  the defaults are validated against the injected ground-truth noise in
  the test-suite;
* **giant component** — the final dataset is a single connected
  component (Chapter 4 relies on this: one 2-clique community).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graph.components import largest_connected_component
from ..graph.undirected import Graph
from .sources import ObservedDataset

__all__ = ["MergePolicy", "MergeReport", "merge_observations"]


@dataclass(frozen=True)
class MergePolicy:
    """Knobs of the merge-and-clean stage.

    ``min_sources`` keeps any edge corroborated by that many campaigns.
    ``drop_isolated_single_source`` additionally removes single-source
    edges whose endpoints share no common neighbor in the merged graph
    (the triangle test) — off for edges touching degree-1 nodes, which
    legitimately close no triangles (stub ASes).
    """

    min_sources: int = 2
    drop_isolated_single_source: bool = True
    keep_giant_component_only: bool = True


@dataclass
class MergeReport:
    """What the merge did — the audit trail of the cleaning stage."""

    edges_per_source: dict[str, int] = field(default_factory=dict)
    merged_edges: int = 0
    dropped_uncorroborated: int = 0
    kept_after_cleaning: int = 0
    dropped_out_of_giant: int = 0
    final_edges: int = 0
    final_nodes: int = 0


def merge_observations(
    observations: list[ObservedDataset],
    policy: MergePolicy | None = None,
) -> tuple[Graph, MergeReport]:
    """Merge campaign outputs into one cleaned topology graph."""
    if not observations:
        raise ValueError("need at least one observed dataset")
    policy = policy or MergePolicy()
    report = MergeReport()

    provenance: dict[frozenset, set[str]] = {}
    for obs in observations:
        report.edges_per_source[obs.source_name] = obs.n_edges
        for edge in obs.edges:
            provenance.setdefault(edge, set()).add(obs.source_name)
    report.merged_edges = len(provenance)

    merged = Graph()
    for edge in provenance:
        u, v = tuple(edge)
        merged.add_edge(u, v)

    kept = Graph()
    for edge, sources in provenance.items():
        u, v = tuple(edge)
        if len(sources) >= policy.min_sources:
            kept.add_edge(u, v)
            continue
        if not policy.drop_isolated_single_source:
            kept.add_edge(u, v)
            continue
        # Triangle test on the merged graph: a single-source edge whose
        # endpoints have a common neighbor is corroborated structurally;
        # an edge to a degree-1 endpoint is a legitimate stub uplink.
        if merged.degree(u) == 1 or merged.degree(v) == 1:
            kept.add_edge(u, v)
        elif merged.neighbors(u) & merged.neighbors(v):
            kept.add_edge(u, v)
        else:
            report.dropped_uncorroborated += 1
    report.kept_after_cleaning = kept.number_of_edges

    if policy.keep_giant_component_only:
        final = largest_connected_component(kept)
        report.dropped_out_of_giant = kept.number_of_edges - final.number_of_edges
    else:
        final = kept
    report.final_edges = final.number_of_edges
    report.final_nodes = final.number_of_nodes
    return final, report
