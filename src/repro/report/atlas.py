"""The dataset atlas: entity-centric profiles.

The paper's analyses are community-centric; operators read the same
data entity-first: *what does AMS-IX anchor?  what lives in Austria?*
The atlas inverts the analysis into per-IXP and per-country profiles —
participants/ASes, the communities each entity anchors (max-share or
full-share), and its band footprint — rendered as text for the CLI
(``python -m repro atlas <dataset>``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.bands import BandBoundaries, derive_bands
from ..analysis.context import AnalysisContext
from ..analysis.geo import GeoAnalysis
from ..analysis.ixp_share import IXPShareAnalysis
from .figures import ascii_table

__all__ = ["IXPProfile", "CountryProfile", "Atlas", "build_atlas"]


@dataclass
class IXPProfile:
    """One IXP's community footprint."""

    name: str
    country: str
    n_participants: int
    max_share_of: list[str] = field(default_factory=list)
    full_share_of: list[str] = field(default_factory=list)
    bands_touched: set[str] = field(default_factory=set)


@dataclass
class CountryProfile:
    """One country's community footprint."""

    country: str
    n_ases: int
    n_providers_estimate: int
    contained_communities: list[str] = field(default_factory=list)
    hosts_ixps: list[str] = field(default_factory=list)


@dataclass
class Atlas:
    """Every profile plus the band boundaries they refer to."""

    bands: BandBoundaries
    ixps: list[IXPProfile]
    countries: list[CountryProfile]

    def ixp(self, name: str) -> IXPProfile:
        """The profile of the named IXP (raises KeyError if absent)."""
        for profile in self.ixps:
            if profile.name == name:
                return profile
        raise KeyError(f"no IXP {name!r} in atlas")

    def country(self, code: str) -> CountryProfile:
        """The profile of the named country (raises KeyError if absent)."""
        for profile in self.countries:
            if profile.country == code:
                return profile
        raise KeyError(f"no country {code!r} in atlas")

    def render(self, *, top: int = 12) -> str:
        """Text rendering: the busiest IXPs and countries."""
        ixp_rows = [
            [
                p.name,
                p.country,
                p.n_participants,
                len(p.max_share_of),
                len(p.full_share_of),
                ",".join(sorted(p.bands_touched)) or "-",
            ]
            for p in self.ixps[:top]
        ]
        country_rows = [
            [
                p.country,
                p.n_ases,
                p.n_providers_estimate,
                len(p.contained_communities),
                ",".join(p.hosts_ixps) or "-",
            ]
            for p in self.countries[:top]
        ]
        parts = [
            ascii_table(
                ["IXP", "country", "participants", "max-share of", "full-share of", "bands"],
                ixp_rows,
                title="IXP atlas (by communities anchored)",
            ),
            ascii_table(
                ["country", "ASes", "high-degree ASes", "contained communities", "hosts IXPs"],
                country_rows,
                title="Country atlas (by contained communities)",
            ),
        ]
        return "\n\n".join(parts)


def build_atlas(context: AnalysisContext, *, degree_threshold: int = 10) -> Atlas:
    """Compute every profile from one analysis context."""
    share = IXPShareAnalysis(context)
    bands = derive_bands(share)
    geo = GeoAnalysis(context)
    registry = context.dataset.ixps
    geography = context.dataset.geography
    graph = context.graph

    profiles: dict[str, IXPProfile] = {
        ixp.name: IXPProfile(
            name=ixp.name, country=ixp.country, n_participants=ixp.size
        )
        for ixp in registry
    }
    for record in share.records:
        if record.max_share_ixp and record.max_share_ixp in profiles:
            profile = profiles[record.max_share_ixp]
            profile.max_share_of.append(record.label)
            profile.bands_touched.add(bands.band_of(record.k))
        for name in record.full_share_ixps:
            if name in profiles:
                profiles[name].full_share_of.append(record.label)

    country_profiles: dict[str, CountryProfile] = {}
    for code in sorted(geography.all_countries()):
        ases = geography.ases_in_country(code)
        present = [a for a in ases if a in graph]
        country_profiles[code] = CountryProfile(
            country=code,
            n_ases=len(present),
            n_providers_estimate=sum(
                1 for a in present if graph.degree(a) >= degree_threshold
            ),
            hosts_ixps=sorted(
                ixp.name for ixp in registry if ixp.country == code
            ),
        )
    for record in geo.records:
        if record.is_country_contained:
            for code in sorted(record.common_countries):
                if code in country_profiles:
                    country_profiles[code].contained_communities.append(record.label)

    return Atlas(
        bands=bands,
        ixps=sorted(
            profiles.values(),
            key=lambda p: (-len(p.max_share_of), -p.n_participants, p.name),
        ),
        countries=sorted(
            country_profiles.values(),
            key=lambda p: (-len(p.contained_communities), -p.n_ases, p.country),
        ),
    )
