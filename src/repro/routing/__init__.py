"""Routing substrate: AS business relationships and Gao-Rexford policy
routing, with path-inflation and traffic-locality analyses.
"""

from .analysis import PathInflation, measure_locality, measure_path_inflation
from .bgp import BGPSimulator, Route, RouteKind
from .inference import GaoInference, InferenceScore, infer_from_paths, score_inference
from .observation import PathCollection, collect_policy_paths
from .relationships import Relationship, RelationshipMap, infer_relationships
from .resilience import FailureImpact, simulate_as_failure

__all__ = [
    "Relationship",
    "RelationshipMap",
    "infer_relationships",
    "BGPSimulator",
    "Route",
    "RouteKind",
    "PathInflation",
    "measure_path_inflation",
    "measure_locality",
    "PathCollection",
    "collect_policy_paths",
    "GaoInference",
    "InferenceScore",
    "infer_from_paths",
    "score_inference",
    "FailureImpact",
    "simulate_as_failure",
]
