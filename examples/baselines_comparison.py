"""Why CPM: comparing community detectors on the same Internet.

Runs every baseline the paper discusses — k-core, k-dense, GCE, EAGLE,
label propagation — next to the Clique Percolation Method on one
synthetic topology, and quantifies the covers' disagreement with the
Omega index and Jaccard matching.  The punchline is Chapter 1's: only
an overlapping, density-first method expresses Internet communities
(the Tier-1 mesh, multi-IXP carriers).

Run:  python examples/baselines_comparison.py
"""

from repro.baselines import (
    EagleConfig,
    GCEConfig,
    KCoreDecomposition,
    KDenseDecomposition,
    eagle,
    greedy_clique_expansion,
    label_propagation,
)
from repro.compare import match_covers, omega_index
from repro.core import LightweightParallelCPM
from repro.topology import GeneratorConfig, InternetTopologyGenerator


def main() -> None:
    generator = InternetTopologyGenerator(GeneratorConfig.tiny(), seed=7)
    dataset = generator.generate()
    graph = dataset.graph
    tier1 = set(generator.roles["tier1"])
    print(f"dataset: {dataset!r}; Tier-1 mesh: {sorted(tier1)}\n")

    hierarchy = LightweightParallelCPM(graph).run()
    cpm_cover = [set(c.members) for c in hierarchy[4]]
    print(f"CPM: {hierarchy.total_communities} communities over k in "
          f"[{hierarchy.min_k}, {hierarchy.max_k}]; {len(cpm_cover)} at k=4")

    kcore = KCoreDecomposition(graph)
    print(f"k-core: degeneracy {kcore.degeneracy} (one nested chain — a partition)")

    kdense = KDenseDecomposition(graph, max_k=8)
    print(f"k-dense: levels up to k={kdense.max_k}, "
          f"{kdense.counts_by_k()} communities per level")

    gce = greedy_clique_expansion(graph, GCEConfig(min_clique_size=4))
    print(f"GCE: {len(gce)} grown communities (largest {len(gce[0])})")

    eagle_result = eagle(graph, EagleConfig(min_clique_size=4))
    print(
        f"EAGLE: {len(eagle_result.communities)} communities at max EQ "
        f"{eagle_result.eq:.3f}; {eagle_result.n_subordinate_vertices} ASes "
        "demoted to singletons by the clique-size threshold"
    )

    lp = label_propagation(graph, seed=0)
    print(f"label propagation: {len(lp)} communities (partition)\n")

    # Quantified disagreement at k = 4 granularity.
    print("cover agreement with CPM(k=4):")
    universe = set().union(*cpm_cover)
    for name, cover in [
        ("GCE", [set(c) for c in gce]),
        ("EAGLE", [set(c) for c in eagle_result.communities if len(c) > 1]),
        ("label propagation", [set(c) for c in lp]),
        ("k-dense(4)", kdense.communities(4)),
    ]:
        omega = omega_index(cpm_cover, cover, universe)
        matching = match_covers(cpm_cover, cover)
        print(
            f"  {name:18s} omega={omega:+.3f}  "
            f"mean matched Jaccard={matching.mean_jaccard:.2f}  "
            f"CPM communities matched: {len(matching.pairs)}/{len(cpm_cover)}"
        )

    print("\nthe Tier-1 litmus test:")
    found = [
        (k, c.label)
        for k in hierarchy.orders
        for c in hierarchy[k]
        if tier1 <= set(c.members) and c.size <= len(tier1) + 3
    ]
    print(f"  CPM isolates the Tier-1 mesh at k = {[k for k, _ in found]}")
    print(f"  GCE emits it exactly: {any(set(c) == tier1 for c in gce)}")
    print(f"  label propagation emits it exactly: {any(set(c) == tier1 for c in lp)}")


if __name__ == "__main__":
    main()
