"""Resume semantics: interrupted runs finish byte-identical to clean ones.

The tentpole guarantee of the resilient runner: for every phase at
which a run can die, restarting with ``resume=True`` from the same
checkpoint directory produces a hierarchy *byte-identical* (same
serialised document) to an uninterrupted run — on both kernels.
Interruptions are injected deterministically with ``driver:after=
<phase>:raise`` fault rules, so each test dies exactly once at a known
boundary.
"""

import pickle

import pytest

from repro.core._blocks_compat import HAVE_NUMPY
from repro.core.lightweight import KERNELS, LightweightParallelCPM
from repro.core.serialize import hierarchy_to_dict
from repro.graph import ring_of_cliques
from repro.runner import CheckpointStore, FaultPlan, InjectedFault

#: Every kernel, with 'blocks' skipped on numpy-less installs.
KERNEL_PARAMS = [
    pytest.param(
        kernel,
        marks=pytest.mark.skipif(
            kernel == "blocks" and not HAVE_NUMPY, reason="blocks kernel needs numpy"
        ),
    )
    for kernel in KERNELS
]


@pytest.fixture(scope="module")
def graph():
    return ring_of_cliques(6, 6)


@pytest.fixture(scope="module")
def baselines(graph):
    """Uninterrupted-run documents, one per available kernel."""
    return {
        kernel: hierarchy_to_dict(LightweightParallelCPM(graph, kernel=kernel).run())
        for kernel in KERNELS
        if kernel != "blocks" or HAVE_NUMPY
    }


def _interrupt_then_resume(graph, kernel, tmp_path, phase, workers=1):
    """Kill a run after ``phase``, then resume it; returns (doc, stats)."""
    store = CheckpointStore(tmp_path / "ckpt")
    plan = FaultPlan.parse(f"driver:after={phase}:raise")
    interrupted = LightweightParallelCPM(
        graph, kernel=kernel, workers=workers, checkpoint=store, fault_plan=plan
    )
    with pytest.raises(InjectedFault):
        interrupted.run()
    resumed = LightweightParallelCPM(
        graph, kernel=kernel, workers=workers, checkpoint=store, resume=True
    )
    return hierarchy_to_dict(resumed.run()), resumed.stats


@pytest.mark.parametrize("kernel", KERNEL_PARAMS)
@pytest.mark.parametrize("phase", ["enumerate", "overlap", "percolate"])
class TestResumeIdentity:
    def test_resume_is_byte_identical(self, graph, baselines, tmp_path, kernel, phase):
        document, stats = _interrupt_then_resume(graph, kernel, tmp_path, phase)
        assert document == baselines[kernel]
        assert phase in stats.resumed_phases

    def test_resumed_phases_cover_completed_prefix(
        self, graph, baselines, tmp_path, kernel, phase
    ):
        _, stats = _interrupt_then_resume(graph, kernel, tmp_path, phase)
        pipeline = ("enumerate", "overlap", "percolate")
        expected = pipeline[: pipeline.index(phase) + 1]
        assert stats.resumed_phases == expected


class TestPartialPercolationResume:
    @pytest.mark.parametrize("kernel", KERNEL_PARAMS)
    def test_partial_percolate_checkpoint_resumes(self, graph, baselines, tmp_path, kernel):
        """A percolate checkpoint holding only *some* orders is completed."""
        store = CheckpointStore(tmp_path / "ckpt")
        _, stats = _interrupt_then_resume(graph, kernel, tmp_path, "percolate")
        # Truncate the percolate checkpoint to a strict subset of orders.
        full = pickle.loads(store.phase_path("percolate").read_bytes())
        assert len(full) > 2
        kept = dict(sorted(full.items(), reverse=True)[:2])
        store.store_phase("percolate", kept)
        resumed = LightweightParallelCPM(graph, kernel=kernel, checkpoint=store, resume=True)
        assert hierarchy_to_dict(resumed.run()) == baselines[kernel]
        assert "percolate" in resumed.stats.resumed_phases

    def test_serial_checkpoint_writes_incrementally(self, graph, tmp_path):
        """The serial path persists percolation progress chunk by chunk."""
        store = CheckpointStore(tmp_path / "ckpt")
        cpm = LightweightParallelCPM(graph, checkpoint=store)
        cpm.run()
        persisted = store.load_phase("percolate")
        assert persisted is not None
        assert sorted(persisted) == list(range(2, cpm.stats.max_clique_size + 1))


class TestResumeWithWorkers:
    @pytest.mark.parametrize("kernel", KERNEL_PARAMS)
    def test_worker_kill_then_resume(self, graph, baselines, tmp_path, kernel):
        """Driver dies after overlap; the resumed run uses two workers."""
        store = CheckpointStore(tmp_path / "ckpt")
        plan = FaultPlan.parse("driver:after=overlap:raise")
        with pytest.raises(InjectedFault):
            LightweightParallelCPM(graph, kernel=kernel, checkpoint=store, fault_plan=plan).run()
        resumed = LightweightParallelCPM(
            graph, kernel=kernel, workers=2, checkpoint=store, resume=True
        )
        assert hierarchy_to_dict(resumed.run()) == baselines[kernel]


class TestCheckpointHygiene:
    def test_resume_without_checkpoint_content_recomputes(self, graph, baselines, tmp_path):
        store = CheckpointStore(tmp_path / "empty")
        cpm = LightweightParallelCPM(graph, checkpoint=store, resume=True)
        assert hierarchy_to_dict(cpm.run()) == baselines["bitset"]
        assert cpm.stats.resumed_phases == ()

    def test_fresh_run_ignores_stale_checkpoint(self, graph, baselines, tmp_path):
        """Without resume=True an old checkpoint is cleared, not reused."""
        store = CheckpointStore(tmp_path / "ckpt")
        store.open(checksum="stale", kernel="bitset", resume=False)
        store.store_phase("enumerate", {"dense": [], "cliques": [], "n_nodes": 0})
        cpm = LightweightParallelCPM(graph, checkpoint=store)
        assert hierarchy_to_dict(cpm.run()) == baselines["bitset"]
        assert cpm.stats.resumed_phases == ()

    def test_torn_overlap_checkpoint_recomputed_on_resume(self, graph, baselines, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        _interrupt_then_resume(graph, "bitset", tmp_path, "overlap")
        store.phase_path("overlap").write_bytes(b"\x80\x04 torn mid-write")
        resumed = LightweightParallelCPM(graph, checkpoint=store, resume=True)
        assert hierarchy_to_dict(resumed.run()) == baselines["bitset"]
        assert "overlap" not in resumed.stats.resumed_phases
        assert "enumerate" in resumed.stats.resumed_phases
