"""Unit tests for the z-P (Guimerà-Amaral) role analysis."""

import pytest

from repro.analysis.zp import ZPAnalysis, classify_role
from repro.core import k_clique_communities
from repro.graph import Graph, complete_graph, ring_of_cliques


class TestClassifyRole:
    def test_non_hub_regions(self):
        assert classify_role(0.0, 0.0) == "R1 ultra-peripheral"
        assert classify_role(0.0, 0.3) == "R2 peripheral"
        assert classify_role(1.0, 0.7) == "R3 non-hub connector"
        assert classify_role(1.0, 0.9) == "R4 non-hub kinless"

    def test_hub_regions(self):
        assert classify_role(3.0, 0.1) == "R5 provincial hub"
        assert classify_role(3.0, 0.5) == "R6 connector hub"
        assert classify_role(3.0, 0.9) == "R7 kinless hub"

    def test_threshold_boundary(self):
        assert classify_role(2.5, 0.0).startswith("R5")
        assert classify_role(2.49, 0.0).startswith("R1")


class TestZPAnalysis:
    @pytest.fixture(scope="class")
    def ring_analysis(self):
        g = ring_of_cliques(4, 6)
        cover = k_clique_communities(g, 6)
        return g, ZPAnalysis(g, cover)

    def test_every_member_gets_a_record(self, ring_analysis):
        g, analysis = ring_analysis
        assert len(analysis.records) == 24  # all clique members covered

    def test_symmetric_clique_members_have_z_zero(self):
        """In a pure clique all members have identical internal degree."""
        g = complete_graph(6)
        analysis = ZPAnalysis(g, k_clique_communities(g, 6))
        assert all(r.z == 0.0 for r in analysis.records)
        assert all(r.participation == 0.0 for r in analysis.records)

    def test_bridge_nodes_have_higher_participation(self, ring_analysis):
        g, analysis = ring_analysis
        # Bridge nodes (0, 6, 12, 18) carry the inter-clique edges.
        by_node = {r.node: r for r in analysis.records}
        bridge_p = [by_node[n].participation for n in (0, 6, 12, 18)]
        inner_p = [by_node[n].participation for n in (1, 7, 13, 19)]
        assert min(bridge_p) > max(inner_p)

    def test_role_counts_sum_to_records(self, ring_analysis):
        _, analysis = ring_analysis
        assert sum(analysis.role_counts().values()) == len(analysis.records)

    def test_internal_hub_detected(self):
        """A node with far higher within-community degree than its
        peers scores a high z."""
        g = Graph()
        hub = 0
        # Community: hub + 12 peripheral members; hub connects to all,
        # peripherals form a sparse cycle (everyone in one 3-clique
        # community through hub triangles).
        for i in range(1, 13):
            g.add_edge(hub, i)
        for i in range(1, 13):
            g.add_edge(i, 1 + (i % 12))
        cover = k_clique_communities(g, 3)
        analysis = ZPAnalysis(g, cover)
        record = next(r for r in analysis.records if r.node == hub)
        assert record.z > 2.5
        assert record.role.endswith("hub")

    def test_threshold_sensitivity_monotone(self, ring_analysis):
        _, analysis = ring_analysis
        sensitivity = analysis.threshold_sensitivity((1.0, 2.0, 3.0))
        values = list(sensitivity.values())
        assert values == sorted(values, reverse=True)

    def test_works_on_dataset_cover(self, default_context):
        cover = default_context.hierarchy[5]
        analysis = ZPAnalysis(default_context.graph, cover)
        assert analysis.records
        for record in analysis.records:
            assert 0.0 <= record.participation <= 1.0
