"""Unit tests for core decomposition, cross-checked against networkx."""

import random

import networkx as nx
import pytest

from repro.graph import (
    Graph,
    complete_graph,
    core_numbers,
    degeneracy,
    degeneracy_ordering,
    erdos_renyi,
    k_core,
    path_graph,
    star_graph,
)


class TestCoreNumbers:
    def test_complete_graph(self):
        cores = core_numbers(complete_graph(5))
        assert all(c == 4 for c in cores.values())

    def test_path(self):
        cores = core_numbers(path_graph(5))
        assert all(c == 1 for c in cores.values())

    def test_star(self):
        cores = core_numbers(star_graph(6))
        assert all(c == 1 for c in cores.values())

    def test_empty(self):
        assert core_numbers(Graph()) == {}

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_networkx(self, seed):
        g = erdos_renyi(40, 0.15, random.Random(seed))
        G = nx.Graph(list(g.edges()))
        G.add_nodes_from(g.nodes())
        assert core_numbers(g) == nx.core_number(G)


class TestDegeneracy:
    def test_complete_graph(self):
        assert degeneracy(complete_graph(6)) == 5

    def test_empty(self):
        assert degeneracy(Graph()) == 0

    def test_ordering_property(self):
        """Each node has at most degeneracy(G) neighbors later in order."""
        g = erdos_renyi(50, 0.2, random.Random(3))
        order = degeneracy_ordering(g)
        rank = {node: i for i, node in enumerate(order)}
        d = degeneracy(g)
        for node in order:
            later = sum(1 for nb in g.neighbors(node) if rank[nb] > rank[node])
            assert later <= d

    def test_ordering_covers_all_nodes(self):
        g = erdos_renyi(30, 0.1, random.Random(4))
        assert sorted(degeneracy_ordering(g)) == sorted(g.nodes())


class TestKCore:
    def test_k_core_degrees(self):
        g = erdos_renyi(40, 0.2, random.Random(5))
        core = k_core(g, 3)
        for node in core.nodes():
            assert core.degree(node) >= 3

    def test_k_core_matches_networkx(self):
        g = erdos_renyi(40, 0.2, random.Random(6))
        G = nx.Graph(list(g.edges()))
        G.add_nodes_from(g.nodes())
        ours = set(k_core(g, 3).nodes())
        theirs = set(nx.k_core(G, 3).nodes())
        assert ours == theirs

    def test_k_core_zero_is_whole_graph(self):
        g = path_graph(5)
        assert set(k_core(g, 0).nodes()) == set(g.nodes())

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            k_core(path_graph(3), -1)

    def test_nesting(self):
        """k-cores form a nested chain — the partition-method contrast."""
        g = erdos_renyi(40, 0.25, random.Random(7))
        previous = set(g.nodes())
        for k in range(1, degeneracy(g) + 1):
            current = set(k_core(g, k).nodes())
            assert current <= previous
            previous = current
