"""Routing resilience: what an AS failure does to reachability.

The community analysis identifies the Internet's load-bearing
structure; this module measures it from the routing side.  Failing an
AS (withdrawing it and its sessions) changes valley-free reachability
and path lengths for everyone else — and the impact ranking mirrors
the community tree: crown carriers are the critical infrastructure,
stubs are inert.
"""

from __future__ import annotations

import random
from collections.abc import Hashable
from dataclasses import dataclass

from ..graph.undirected import Graph
from .bgp import BGPSimulator
from .relationships import RelationshipMap

__all__ = ["FailureImpact", "simulate_as_failure"]


@dataclass(frozen=True)
class FailureImpact:
    """Reachability change caused by one AS failure."""

    failed: Hashable
    n_pairs_sampled: int
    lost_pairs: int             # routed before, unrouted after
    rerouted_pairs: int         # still routed, different path
    mean_stretch: float         # extra hops on surviving rerouted paths

    @property
    def lost_fraction(self) -> float:
        if self.n_pairs_sampled == 0:
            return 0.0
        return self.lost_pairs / self.n_pairs_sampled


def _without(graph: Graph, node: Hashable) -> Graph:
    stripped = Graph()
    stripped.add_nodes_from(n for n in graph.nodes() if n != node)
    for u, v in graph.edges():
        if node not in (u, v):
            stripped.add_edge(u, v)
    return stripped


def simulate_as_failure(
    graph: Graph,
    relationships: RelationshipMap,
    failed: Hashable,
    *,
    n_destinations: int = 12,
    sources_per_destination: int = 25,
    seed: int = 0,
) -> FailureImpact:
    """Withdraw ``failed`` and measure the routing fallout.

    Samples (source, destination) pairs among the surviving ASes,
    computes routes before and after the failure, and reports how many
    pairs lose connectivity entirely, how many reroute, and the mean
    path stretch of the reroutes.
    """
    if failed not in graph:
        raise KeyError(f"{failed!r} not in graph")
    rng = random.Random(f"{seed}:failure:{failed}")
    survivors = sorted(n for n in graph.nodes() if n != failed)
    destinations = rng.sample(survivors, min(n_destinations, len(survivors)))

    before_sim = BGPSimulator(graph, relationships)
    after_sim = BGPSimulator(_without(graph, failed), relationships)

    lost = 0
    rerouted = 0
    sampled = 0
    stretch_total = 0
    stretch_count = 0
    for destination in destinations:
        before = before_sim.routes_to(destination)
        after = after_sim.routes_to(destination)
        sources = rng.sample(survivors, min(sources_per_destination, len(survivors)))
        for source in sources:
            if source == destination:
                continue
            route_before = before.get(source)
            if route_before is None or failed not in route_before.path:
                continue  # the failure is invisible to this pair
            sampled += 1
            route_after = after.get(source)
            if route_after is None:
                lost += 1
                continue
            rerouted += 1
            stretch_total += route_after.length - route_before.length
            stretch_count += 1
    return FailureImpact(
        failed=failed,
        n_pairs_sampled=sampled,
        lost_pairs=lost,
        rerouted_pairs=rerouted,
        mean_stretch=(stretch_total / stretch_count) if stretch_count else 0.0,
    )
