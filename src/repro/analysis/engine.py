"""Bitset-backed metric engine: one-pass Chapter-4 metrics.

Every per-community structural metric of the paper's Chapter 4 — link
density, average ODF, and the per-order pairwise overlap fractions —
is a function of the community member sets and the graph adjacency.
The analyses used to recompute them independently with Python set
loops (``core/metrics.py``); :class:`MetricsEngine` instead sweeps the
whole hierarchy once over the degeneracy-ordered
:class:`~repro.graph.csr.CSRGraph` snapshot that the bitset CPM kernel
already built:

* each community becomes one membership bitset (an arbitrary-precision
  int), so a member's internal degree is
  ``(neighbourhood & members).bit_count()`` — a C-level popcount —
  and the intra-community edge count is half the popcount sum;
* pairwise overlap at fixed k is the popcount of the two membership
  sets' intersection; for the parallel communities (median size ~k)
  intersecting the member frozensets directly costs O(smaller set) at
  C speed, which beats AND-ing two graph-width bitsets, so the
  overlap stage intersects frozensets and never materialises masks;
* communities that persist unchanged across orders (frozenset-equal
  member sets) are computed once and shared — density and ODF depend
  only on the member set, never on k;
* two exact shortcuts skip popcounts entirely: a k=2 community is a
  connected component (every neighbour of a member is internal, so
  ODF is exactly 0.0), and a community with ``size == k`` is a single
  k-clique (density exactly 1.0, internal degree exactly ``k - 1``).

The engine produces *bit-identical* floats to the set-based reference
(``core/metrics.py`` + ``Community.overlap_fraction``): densities use
the same ``2.0 * intra / (n * (n - 1))`` expression on the same ints,
ODF sums run in *sorted member order* with the same per-node
``1.0 - d_in / d`` terms (sorted order is the canonical one — a
frozenset's native iteration order does not survive pickling, so it
cannot anchor float summation across worker processes), and overlap
fractions divide the same popcount by the same minimum size.
``tests/test_analysis_engine_equivalence.py`` pins this down with
``==`` (no tolerances) on generator graphs and randomized
hierarchies; the ``engine="set"`` mode *is* that reference path and
remains selectable end to end (``--analysis-engine``).

With ``workers > 1`` the per-order sweep fans out through the
resilient :class:`~repro.runner.supervise.PoolSupervisor` (payload
shipped once per worker via the pool initializer), falling back to
in-driver execution if the pool degrades; results are order-stable
and identical to the serial sweep.

Observability: the sweep runs inside an ``analysis.sweep`` span
(attributes ``engine``/``workers``; child span ``analysis.csr`` when
the engine has to build its own CSR snapshot) and emits the
``analysis.*`` counters documented in ``docs/observability.md``.
"""

from __future__ import annotations

from itertools import combinations, repeat
from operator import sub, truediv
from typing import NamedTuple

from ..core.communities import CommunityHierarchy
from ..core.metrics import average_odf, link_density
from ..core.tree import CommunityTree
from ..graph.csr import CSRGraph
from ..graph.undirected import Graph
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import NULL_TRACER, Tracer
from ..obs.worker import current_metrics, worker_span
from ..runner import FaultPlan, RunnerConfig
from ..runner.supervise import PoolSupervisor

__all__ = ["ENGINES", "MetricsRow", "OrderOverlap", "MetricsEngine"]

#: Selectable analysis engines: the popcount fast path, the
#: numpy-vectorized blocks variant (``[perf]`` extra), and the
#: set-based reference oracle both are verified against.
ENGINES = ("bitset", "blocks", "set")


class MetricsRow(NamedTuple):
    """One community's entry in the per-hierarchy metric table."""

    label: str
    k: int
    size: int
    link_density: float
    average_odf: float
    is_main: bool


class OrderOverlap(NamedTuple):
    """The pairwise overlap fractions of one order's community cover.

    ``main_fractions[i]`` is ``parallel_labels[i]`` vs the order's main
    community; ``pair_fractions`` follows
    ``itertools.combinations(parallel_labels, 2)`` order.  All the
    Section 4 overlap findings (a–e) derive from these two tuples — no
    pair is ever enumerated twice.
    """

    k: int
    main_label: str
    parallel_labels: tuple[str, ...]
    main_fractions: tuple[float, ...]
    pair_fractions: tuple[float, ...]


# ----------------------------------------------------------------------
# Worker-pool plumbing (workers > 1)
# ----------------------------------------------------------------------
#: Per-process shared payload, installed once per worker by the pool
#: initializer (same idiom as ``repro.core.lightweight``) so the
#: adjacency bitsets are pickled once per worker, not once per order.
_POOL_SHARED: dict = {}


def _init_engine_pool(payload: dict) -> None:
    """Pool initializer: stash the shared sweep payload in the worker."""
    global _POOL_SHARED
    _POOL_SHARED = payload
    # Per-process memo so duplicate member sets assigned to the same
    # worker are still computed once.
    payload.setdefault("memo", {})


def _sweep_order_task(task: tuple) -> list:
    """Module-level worker entry: sweep one order block in a worker.

    Under a supervised telemetry capture the sweep records a
    ``worker.analysis.sweep`` span (order k, community count) in the
    worker's trace, which the supervisor grafts back into the driver's.
    """
    shared = _POOL_SHARED
    k, _main_index, entries = task
    with worker_span("worker.analysis.sweep", k=k, communities=len(entries)):
        result = _sweep_order(task, shared, shared["memo"])
    registry = current_metrics()
    if registry is not None:
        registry.inc("worker.analysis.orders_done")
        registry.inc("worker.analysis.communities", len(entries))
    return result


def _sweep_order(task: tuple, shared: dict, memo: dict) -> list:
    """Compute one order's metric pairs and overlap fractions.

    ``task`` is ``(k, main_index, entries)`` with ``entries`` in cover
    order, each entry ``(members, k)``.  Returns
    ``[(density, odf), ...]`` aligned with ``entries`` plus, when the
    cover has at least two communities, the ``(main_fractions,
    pair_fractions)`` tuple (else ``None``) and the visit/shortcut/
    dedup/pair counters for the parent's metric registry.
    """
    if shared["mode"] == "set":
        return _sweep_order_set(task, shared)
    if shared["mode"] == "blocks":
        return _sweep_order_blocks(task, shared, memo)
    return _sweep_order_bitset(task, shared, memo)


def _sweep_order_bitset(task: tuple, shared: dict, memo: dict) -> list:
    """The popcount sweep of one order (see module docstring)."""
    _k, main_index, entries = task
    bitsets = shared["bitsets"]
    degs = shared["degs"]
    nbytes = shared["nbytes"]
    rank_get = shared["rank"].__getitem__
    degs_get = degs.__getitem__
    memo_get = memo.get
    metric_pairs: list[tuple[float, float]] = []
    emit = metric_pairs.append
    visits = shortcuts = dedup_hits = 0
    for members, order in entries:
        cached = memo_get(members)
        if cached is not None:
            dedup_hits += 1
            emit(cached)
            continue
        # Sorted member order: float ODF summation must be independent
        # of set-table layout (pickling a frozenset can reorder it), so
        # the canonical order is the sorted one — same as the oracle.
        ids = list(map(rank_get, sorted(members)))
        n = len(ids)
        if order == 2:
            # A 2-clique community is a connected component: every
            # neighbour of a member is itself a member, so the internal
            # degree is the full degree (intra = sum(deg) / 2) and every
            # ODF term is exactly 1.0 - d/d == 0.0.
            shortcuts += 1
            intra = sum(map(degs_get, ids)) >> 1
            pair = (2.0 * intra / (n * (n - 1)) if n > 1 else 0.0, 0.0)
        elif n == order:
            # size == k forces a single complete k-clique: density is
            # exactly 1.0 and each member's internal degree is k - 1.
            shortcuts += 1
            odf_sum = sum(
                map(sub, repeat(1.0), map(truediv, repeat(order - 1), map(degs_get, ids)))
            )
            pair = (1.0, odf_sum / n)
        else:
            visits += n
            mask = _member_mask(ids, nbytes)
            inner = [(mask & bitsets[i]).bit_count() for i in ids]
            intra = sum(inner) >> 1
            odf_sum = sum(map(sub, repeat(1.0), map(truediv, inner, map(degs_get, ids))))
            pair = (2.0 * intra / (n * (n - 1)), odf_sum / n)
        memo[members] = pair
        emit(pair)
    overlap = None
    pair_count = 0
    if main_index is not None:
        overlap, pair_count = _order_overlap(entries, main_index)
    return [metric_pairs, overlap, visits, shortcuts, dedup_hits, pair_count]


def _sweep_order_blocks(task: tuple, shared: dict, memo: dict) -> list:
    """The vectorized sweep of one order (blocks analysis engine).

    Identical control flow to :func:`_sweep_order_bitset` — same memo,
    same order-2 / size==k shortcuts, same sorted-member canonical
    order — but the general case batches the internal-degree popcounts:
    the member rows of the uint64 block matrix are gathered at once,
    AND-ed against the membership block mask, and popcounted in one
    array sweep.  The per-member internal degrees are the same integers
    the bitset path computes (converted back to Python ints before the
    float folds), so every float downstream is bit-identical.
    """
    from ..core._blocks_compat import require_numpy

    np = require_numpy("analysis engine 'blocks'")
    _k, main_index, entries = task
    blocks = shared["blocks"]
    n_words = blocks.shape[1]
    degs = shared["degs"]
    rank_get = shared["rank"].__getitem__
    degs_get = degs.__getitem__
    memo_get = memo.get
    metric_pairs: list[tuple[float, float]] = []
    emit = metric_pairs.append
    visits = shortcuts = dedup_hits = 0
    popcount = (
        np.bitwise_count
        if hasattr(np, "bitwise_count")
        else lambda a: np.unpackbits(a.view(np.uint8), axis=-1).sum(axis=-1, keepdims=True)
    )
    for members, order in entries:
        cached = memo_get(members)
        if cached is not None:
            dedup_hits += 1
            emit(cached)
            continue
        ids = list(map(rank_get, sorted(members)))
        n = len(ids)
        if order == 2:
            shortcuts += 1
            intra = sum(map(degs_get, ids)) >> 1
            pair = (2.0 * intra / (n * (n - 1)) if n > 1 else 0.0, 0.0)
        elif n == order:
            shortcuts += 1
            odf_sum = sum(
                map(sub, repeat(1.0), map(truediv, repeat(order - 1), map(degs_get, ids)))
            )
            pair = (1.0, odf_sum / n)
        else:
            visits += n
            idx = np.asarray(ids, dtype=np.int64)
            mask = np.zeros(n_words, dtype=np.uint64)
            np.bitwise_or.at(
                mask, idx >> 6, np.uint64(1) << (idx & 63).astype(np.uint64)
            )
            inner = (
                popcount(blocks[idx] & mask).sum(axis=1, dtype=np.int64).tolist()
            )
            intra = sum(inner) >> 1
            odf_sum = sum(map(sub, repeat(1.0), map(truediv, inner, map(degs_get, ids))))
            pair = (2.0 * intra / (n * (n - 1)), odf_sum / n)
        memo[members] = pair
        emit(pair)
    overlap = None
    pair_count = 0
    if main_index is not None:
        overlap, pair_count = _order_overlap(entries, main_index)
    return [metric_pairs, overlap, visits, shortcuts, dedup_hits, pair_count]


def _member_mask(ids: list[int], nbytes: int) -> int:
    """Membership bitset of dense ``ids`` via a bytearray scatter."""
    buf = bytearray(nbytes)
    for i in ids:
        buf[i >> 3] |= 1 << (i & 7)
    return int.from_bytes(buf, "little")


def _order_overlap(entries: list, main_index: int) -> tuple[tuple, int]:
    """One order's overlap fractions, in cover / ``combinations`` order.

    Shared by both engines: ``len(a & b)`` over member frozensets is
    the exact popcount of the membership intersection (the same int
    :meth:`Community.overlap` produces), and for the small parallel
    communities the C set intersection beats AND-ing two graph-width
    bitsets, so no masks are built here.
    """
    sized = [(members, len(members)) for members, _order in entries]
    main_members, main_size = sized[main_index]
    parallels = sized[:main_index] + sized[main_index + 1 :]
    main_fracs = tuple(
        len(pm & main_members) / (s if s < main_size else main_size) for pm, s in parallels
    )
    pair_fracs = tuple(
        len(a & b) / (sa if sa < sb else sb)
        for (a, sa), (b, sb) in combinations(parallels, 2)
    )
    return (main_fracs, pair_fracs), len(parallels) + len(pair_fracs)


def _sweep_order_set(task: tuple, shared: dict) -> list:
    """The set-based reference sweep of one order.

    Calls the ``core/metrics.py`` oracle per community — exactly the
    computation the analyses performed before the engine existed.
    """
    _k, main_index, entries = task
    graph = shared["graph"]
    metric_pairs = [
        (link_density(graph, members), average_odf(graph, members))
        for members, _order in entries
    ]
    overlap = None
    pair_count = 0
    if main_index is not None:
        overlap, pair_count = _order_overlap(entries, main_index)
    visits = sum(len(members) for members, _order in entries)
    return [metric_pairs, overlap, visits, 0, 0, pair_count]


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class MetricsEngine:
    """One-pass per-community metric table over a community hierarchy.

    ``engine`` selects the popcount fast path (``"bitset"``, default),
    the numpy-vectorized variant (``"blocks"``, needs the ``[perf]``
    extra) or the set-based reference (``"set"``); all produce
    bit-identical numbers.  ``csr`` reuses an existing
    :class:`~repro.graph.csr.CSRGraph` snapshot (e.g. the one the
    bitset CPM kernel built); without one the engine snapshots the
    graph itself on first use.  ``workers > 1`` fans the per-order
    sweep out through a :class:`~repro.runner.supervise.PoolSupervisor`.

    The sweep is lazy and memoized: the first call to :meth:`rows`,
    :meth:`row` or :meth:`order_overlaps` computes everything once.
    """

    def __init__(
        self,
        hierarchy: CommunityHierarchy,
        tree: CommunityTree,
        graph: Graph,
        *,
        engine: str = "bitset",
        csr: CSRGraph | None = None,
        workers: int = 1,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
        if engine == "blocks":
            from ..core._blocks_compat import require_numpy

            require_numpy("analysis engine 'blocks'")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.hierarchy = hierarchy
        self.tree = tree
        self.graph = graph
        self.engine = engine
        self.workers = workers
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._observing = self.tracer.enabled or metrics is not None
        self._csr = csr
        self._rank: dict | None = None
        self._rows: list[MetricsRow] | None = None
        self._by_label: dict[str, MetricsRow] | None = None
        self._overlaps: dict[int, OrderOverlap] | None = None

    # ------------------------------------------------------------------
    # Public accessors
    # ------------------------------------------------------------------
    def rows(self) -> list[MetricsRow]:
        """The full metric table, in ``hierarchy.all_communities()`` order."""
        if self._rows is None:
            self._sweep()
        return self._rows

    def row(self, label: str) -> MetricsRow:
        """The metric row of the community labelled ``label``."""
        if self._by_label is None:
            self._by_label = {r.label: r for r in self.rows()}
        return self._by_label[label]

    def order_overlaps(self) -> dict[int, OrderOverlap]:
        """Per-order overlap fractions, for every order with >= 2 communities."""
        if self._overlaps is None:
            self._sweep()
        return self._overlaps

    def export_table(self) -> dict:
        """The memoized metric table in a serialisation-ready form.

        The export hook consumed by :func:`repro.query.artifact
        .build_artifact`: one dict per community (plain JSON types
        only) carrying exactly the fields of :class:`MetricsRow`, in
        ``hierarchy.all_communities()`` order, plus the engine mode the
        numbers came from.  Both engines export bit-identical floats,
        so an artifact built from either mode is byte-identical.
        """
        return {
            "engine": self.engine,
            "rows": [
                {
                    "label": r.label,
                    "k": r.k,
                    "size": r.size,
                    "link_density": r.link_density,
                    "average_odf": r.average_odf,
                    "is_main": r.is_main,
                }
                for r in self.rows()
            ],
        }

    def node_degree(self, node) -> int:
        """Degree of an original node object.

        Bitset mode (or any mode with a CSR snapshot already in hand)
        reads one ``indptr`` difference; set mode without a snapshot
        asks the graph directly rather than building one just for
        degrees.  Both return the same integer.
        """
        if self._csr is None and self.engine == "set":
            return self.graph.degree(node)
        csr = self._ensure_csr()
        return csr.degree(self._node_rank()[node])

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _ensure_csr(self) -> CSRGraph:
        """The CSR snapshot, building (and timing) it when not supplied."""
        if self._csr is None:
            with self.tracer.span("analysis.csr", nodes=self.graph.number_of_nodes):
                self._csr = CSRGraph.from_graph(self.graph)
            self.metrics.inc("analysis.csr_builds")
        return self._csr

    def _node_rank(self) -> dict:
        if self._rank is None:
            self._rank = self._ensure_csr().rank()
        return self._rank

    def _shared_payload(self) -> dict:
        """The per-sweep shared payload (also the worker-pool payload)."""
        if self.engine == "set":
            return {"mode": "set", "graph": self.graph}
        csr = self._ensure_csr()
        if self.engine == "blocks":
            # The uint64 block matrix pickles as one flat buffer, so a
            # worker pool ships it once per process like the bitsets.
            return {
                "mode": "blocks",
                "blocks": csr.blocks(),
                "degs": csr.degrees(),
                "rank": self._node_rank(),
            }
        return {
            "mode": "bitset",
            "bitsets": csr.bitsets,
            "degs": csr.degrees(),
            "nbytes": (csr.n + 7) >> 3,
            "rank": self._node_rank(),
        }

    def _order_tasks(self) -> list[tuple]:
        """One ``(k, main_index, entries)`` task per hierarchy order."""
        hierarchy = self.hierarchy
        tree = self.tree
        tasks = []
        for k in hierarchy.orders:
            cover = hierarchy[k]
            main_index = None
            if len(cover) >= 2:
                main_label = tree.main_community(k).label
                main_index = next(
                    i for i, c in enumerate(cover) if c.label == main_label
                )
            entries = [(c.members, c.k) for c in cover]
            tasks.append((k, main_index, entries))
        return tasks

    def _sweep(self) -> None:
        """Compute the table and overlap fractions in one hierarchy pass."""
        with self.tracer.span(
            "analysis.sweep", engine=self.engine, workers=self.workers
        ) as span:
            payload = self._shared_payload()
            tasks = self._order_tasks()
            if self.workers > 1:
                supervisor = PoolSupervisor(
                    workers=self.workers,
                    phase="analysis",
                    config=RunnerConfig(),
                    fault_plan=FaultPlan.from_env(),
                    initializer=_init_engine_pool,
                    initargs=(payload,),
                    tracer=self.tracer,
                    metrics=self.metrics,
                    telemetry=self._observing,
                )
                memo: dict = {}
                results = supervisor.run(
                    _sweep_order_task,
                    tasks,
                    fallback=lambda task: _sweep_order(task, payload, memo),
                )
            else:
                memo = {}
                results = [_sweep_order(task, payload, memo) for task in tasks]
            self._fold_results(tasks, results, span)

    def _fold_results(self, tasks: list, results: list, span) -> None:
        """Assemble rows/overlaps from per-order results; emit counters."""
        tree = self.tree
        hierarchy = self.hierarchy
        rows: list[MetricsRow] = []
        overlaps: dict[int, OrderOverlap] = {}
        visits = shortcuts = dedup_hits = pairs = 0
        for (k, main_index, _entries), result in zip(tasks, results):
            metric_pairs, overlap, task_visits, task_shortcuts, task_dedup, task_pairs = result
            cover = hierarchy[k]
            labels = []
            for community, (density, odf) in zip(cover, metric_pairs):
                label = community.label
                labels.append(label)
                rows.append(
                    MetricsRow(
                        label=label,
                        k=community.k,
                        size=community.size,
                        link_density=density,
                        average_odf=odf,
                        is_main=tree.is_main(label),
                    )
                )
            if overlap is not None:
                main_label = labels[main_index]
                parallel_labels = tuple(
                    lbl for i, lbl in enumerate(labels) if i != main_index
                )
                overlaps[k] = OrderOverlap(
                    k=k,
                    main_label=main_label,
                    parallel_labels=parallel_labels,
                    main_fractions=overlap[0],
                    pair_fractions=overlap[1],
                )
            visits += task_visits
            shortcuts += task_shortcuts
            dedup_hits += task_dedup
            pairs += task_pairs
        self._rows = rows
        self._overlaps = overlaps
        span.set("communities", len(rows))
        span.set("orders", len(tasks))
        metrics = self.metrics
        metrics.inc("analysis.communities", len(rows))
        metrics.inc("analysis.member_visits", visits)
        metrics.inc("analysis.shortcut_rows", shortcuts)
        metrics.inc("analysis.dedup_hits", dedup_hits)
        metrics.inc("analysis.overlap_pairs", pairs)
