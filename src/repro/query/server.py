"""Long-lived JSON lookup server over a query artifact.

The read path of the ROADMAP's "millions of users" north star: a
process that loads one immutable :class:`~repro.query.artifact
.QueryArtifact` (mmapped, so N processes share one page cache copy)
and answers the point queries of :class:`~repro.query.engine
.LookupEngine` over plain HTTP.  Pure stdlib — ``http.server`` with a
threading mixin — because the repo bakes in no third-party runtime
dependencies.

Endpoints (all ``GET``)::

    /health                        liveness + artifact identity
    /metrics                       Prometheus text exposition
    /artifact                      full metadata (fingerprint, bands,
                                   orders, counts)
    /membership?as=X               k -> community labels containing X
    /band?as=X                     crown/trunk/root position of X
    /lca?a=X&b=Y                   lowest common community of X and Y
    /top?metric=M&n=N[&k=K]        top-N by density / odf / size
    /community?label=L[&members=1] one community record (+ members)

Errors are JSON too: 400 for malformed parameters, 404 for unknown
ASes/labels/paths, never a traceback page.  AS parameters are parsed
as integers when possible (AS numbers are ints), falling back to the
raw string for string-labelled graphs.

Concurrency model (the artifact is immutable, so reads need no
coordination at all):

* requests run **concurrently** — there is no global request lock;
  the threaded listener hands each connection its own handler thread
  and the handler reads the shared mmap directly;
* shared telemetry is safe by construction: the
  :class:`~repro.obs.metrics.MetricsRegistry` takes fine-grained
  per-instrument locks, and spans are captured on a **per-request**
  tracer (one fresh :class:`~repro.obs.tracing.Tracer` plus a cheap
  :meth:`~repro.query.engine.LookupEngine.with_observability` clone of
  the engine) and absorbed into the server tracer under its merge
  lock, stamped with the request id — the PR-5 worker-envelope
  pattern, applied to handler threads;
* every request lands in the ``query.request_seconds`` histogram of
  its endpoint (inline-label convention, bounded cardinality: known
  routes plus ``"other"``), which is what ``/metrics`` exposes as
  per-endpoint p50/p90/p99;
* ``max_requests`` draining is an :class:`~repro.obs.metrics
  .AtomicCounter`: the *add-and-get* that lands exactly on the limit
  owns the shutdown, so N concurrent final requests trigger exactly
  one shutdown and smoke tests stay deterministic;
* ``serialize_requests=True`` restores the old global-lock behaviour
  — kept as the *baseline* arm of the concurrency benchmark and for
  bisecting concurrency bugs, not for production use.

Access logging: the default stderr log stays silenced, but when the
process has a configured :mod:`repro.obs.logging` logger (``--log-json``)
every request emits one ``query.access`` event carrying the request
id, endpoint, status and latency — the same ``request_id`` stamped
onto the request's absorbed spans, so log lines join span subtrees
exactly.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from ..obs.exposition import render_exposition
from ..obs.logging import get_logger
from ..obs.metrics import AtomicCounter, MetricsRegistry
from ..obs.resources import ResourceMonitor
from ..obs.tracing import NULL_TRACER, Tracer
from .artifact import QueryArtifact
from .engine import LookupEngine

__all__ = ["QueryServer", "make_server", "ENDPOINTS"]

#: Known endpoint names — the label universe of the per-endpoint
#: request histograms.  Anything else is folded into ``"other"`` so a
#: path-scanning client cannot explode series cardinality.
ENDPOINTS = (
    "health",
    "metrics",
    "artifact",
    "membership",
    "band",
    "lca",
    "top",
    "community",
)

_LOG = get_logger(component="query.server")


def parse_as(value: str):
    """An AS query parameter: int when it looks like one, else the string."""
    try:
        return int(value)
    except ValueError:
        return value


class _BadRequest(ValueError):
    """Malformed query parameters -> HTTP 400."""


def _single(params: dict, name: str) -> str:
    values = params.get(name)
    if not values or not values[0]:
        raise _BadRequest(f"missing required query parameter {name!r}")
    if len(values) > 1:
        raise _BadRequest(f"query parameter {name!r} given more than once")
    return values[0]


class QueryServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` bound to one lookup engine."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        engine: LookupEngine,
        *,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        monitor: ResourceMonitor | None = None,
        serialize_requests: bool = False,
    ) -> None:
        super().__init__(address, _QueryRequestHandler)
        self.engine = engine
        self.tracer = tracer if tracer is not None else engine.tracer
        self.metrics = metrics if metrics is not None else engine.metrics
        #: Optional process resource monitor; when attached (the CLI
        #: starts one for ``repro query serve``) its latest sample
        #: surfaces as ``process_*`` gauges on ``/metrics``.
        self.monitor = monitor
        #: Legacy serialization (pre-concurrency behaviour): one
        #: request at a time under a global lock.  The benchmark's
        #: baseline arm; never the default.
        self.serialize_requests = serialize_requests
        self._serial_lock = threading.Lock()
        #: When set, the server shuts itself down after this many
        #: requests — a deterministic stop for smoke tests and CI.
        self.max_requests: int | None = None
        self._served = AtomicCounter()
        self._request_ids = AtomicCounter()
        self._started_at = time.monotonic()

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    @property
    def served(self) -> int:
        """Requests fully handled so far (atomic snapshot)."""
        return self._served.value

    # ------------------------------------------------------------------
    # Scrape-time process gauges
    # ------------------------------------------------------------------
    def process_gauges(self) -> dict:
        """Gauges computed at scrape time for ``/metrics``.

        Always includes uptime and the served-request count; when a
        :class:`ResourceMonitor` is attached, its most recent sample
        adds RSS and cumulative CPU.
        """
        gauges = {
            "process.uptime_seconds": time.monotonic() - self._started_at,
            "query.requests_served": self._served.value,
        }
        monitor = self.monitor
        if monitor is not None:
            samples = monitor.series().get("samples") or []
            if samples:
                latest = samples[-1]
                gauges["process.rss_kib"] = latest.get("rss_kib", 0)
                gauges["process.max_rss_kib"] = latest.get("max_rss_kib", 0)
                gauges["process.cpu_seconds"] = latest.get("cpu_seconds", 0.0)
        return gauges


class _QueryRequestHandler(BaseHTTPRequestHandler):
    server_version = "repro-query"
    protocol_version = "HTTP/1.1"
    server: QueryServer

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        server = self.server
        if server.serialize_requests:
            with server._serial_lock:
                drained = self._handle_request()
        else:
            drained = self._handle_request()
        if drained:
            # shutdown() blocks until serve_forever exits; hop threads
            # so this response finishes first.
            threading.Thread(target=server.shutdown, daemon=True).start()

    def _handle_request(self) -> bool:
        """Serve one request; True when this request drained the server."""
        server = self.server
        url = urlparse(self.path)
        params = parse_qs(url.query)
        endpoint = url.path.strip("/").replace("-", "_")
        route = getattr(self, f"_route_{endpoint}", None)
        label = endpoint if endpoint in ENDPOINTS else "other"
        request_id = server._request_ids.next()

        # Admission gate for the drain: request ids are atomic, so when
        # a limit is set exactly ``max_requests`` requests are admitted
        # — racing latecomers get 503 and are never counted as served,
        # keeping --max-requests deterministic under concurrency.
        if server.max_requests is not None and request_id > server.max_requests:
            server.metrics.inc("query.rejected")
            self._reply(503, {"error": "server draining"})
            return False

        # Per-request capture: a private tracer (span stacks are not
        # shareable across threads) over the shared thread-safe
        # registry; absorbed under the server tracer's merge lock with
        # the request id stamped on every span.
        if server.tracer.enabled:
            tracer = Tracer()
            engine = server.engine.with_observability(tracer=tracer, metrics=server.metrics)
        else:
            tracer = NULL_TRACER
            engine = server.engine

        started = time.perf_counter()
        server.metrics.inc("query.requests")
        with tracer.span("query.request", path=url.path) as span:
            try:
                if route is None:
                    raise KeyError(f"no such endpoint: {url.path}")
                status, payload = 200, route(params, engine)
            except _BadRequest as exc:
                status, payload = 400, {"error": str(exc)}
            except KeyError as exc:
                status, payload = 404, {"error": str(exc).strip("'\"")}
            except ValueError as exc:
                status, payload = 400, {"error": str(exc)}
            if status != 200:
                server.metrics.inc("query.errors")
            span.set("status", status)
        elapsed = time.perf_counter() - started

        server.metrics.observe(f'query.request_seconds{{endpoint="{label}"}}', elapsed)
        if tracer is not NULL_TRACER:
            server.tracer.absorb(tracer.to_dicts(), request_id=request_id)

        if isinstance(payload, str):
            self._reply_text(status, payload)
        else:
            self._reply(status, payload)

        _LOG.info(
            "query.access",
            request_id=request_id,
            endpoint=label,
            path=url.path,
            status=status,
            seconds=round(elapsed, 6),
        )

        # Atomic drain: exactly one request observes served == limit.
        served = server._served.next()
        return server.max_requests is not None and served == server.max_requests

    def _reply(self, status: int, payload: dict | list) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _reply_text(self, status: int, payload: str) -> None:
        body = payload.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:
        """Silence the default stderr access log; ``query.access``
        structured events (when logging is configured) carry traffic."""

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def _route_health(self, params: dict, engine: LookupEngine) -> dict:
        artifact = engine.artifact
        return {
            "status": "ok",
            "communities": artifact.n_communities,
            "nodes": artifact.n_nodes,
            "checksum": artifact.fingerprint.get("checksum"),
            "served": self.server.served,
        }

    def _route_metrics(self, params: dict, engine: LookupEngine) -> str:
        server = self.server
        return render_exposition(server.metrics, extra_gauges=server.process_gauges())

    def _route_artifact(self, params: dict, engine: LookupEngine) -> dict:
        return engine.info()

    def _route_membership(self, params: dict, engine: LookupEngine) -> dict:
        node = parse_as(_single(params, "as"))
        memberships = engine.memberships(node)
        return {
            "as": node,
            "memberships": {str(k): labels for k, labels in memberships.items()},
        }

    def _route_band(self, params: dict, engine: LookupEngine) -> dict:
        return engine.band(parse_as(_single(params, "as")))

    def _route_lca(self, params: dict, engine: LookupEngine) -> dict:
        a = parse_as(_single(params, "a"))
        b = parse_as(_single(params, "b"))
        record = engine.lowest_common(a, b)
        return {"a": a, "b": b, "lca": record}

    def _route_top(self, params: dict, engine: LookupEngine) -> dict:
        metric = _single(params, "metric") if "metric" in params else "density"
        try:
            n = int(_single(params, "n")) if "n" in params else 10
            k = int(_single(params, "k")) if "k" in params else None
        except ValueError as exc:
            raise _BadRequest(f"n and k must be integers: {exc}") from exc
        return {"metric": metric, "k": k, "communities": engine.top(metric, n, k)}

    def _route_community(self, params: dict, engine: LookupEngine) -> dict:
        label = _single(params, "label")
        members = params.get("members", ["0"])[0] not in ("", "0", "false")
        return engine.community(label, members=members)


def make_server(
    artifact: QueryArtifact | LookupEngine,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    monitor: ResourceMonitor | None = None,
    serialize_requests: bool = False,
) -> QueryServer:
    """Bind a :class:`QueryServer` (``port=0`` picks a free port).

    ``artifact`` may be a loaded :class:`QueryArtifact` or an existing
    :class:`LookupEngine`.  ``monitor`` attaches a running
    :class:`ResourceMonitor` whose samples surface as ``process_*``
    gauges on ``/metrics``; ``serialize_requests`` restores the legacy
    one-at-a-time global lock (benchmark baseline only).  The caller
    drives ``serve_forever()`` / ``shutdown()``; the server is also a
    context manager (from ``socketserver``), closing its socket on
    exit.
    """
    if isinstance(artifact, LookupEngine):
        engine = artifact
    else:
        engine = LookupEngine(
            artifact,
            tracer=tracer if tracer is not None else NULL_TRACER,
            metrics=metrics,
        )
    return QueryServer(
        (host, port),
        engine,
        tracer=tracer,
        metrics=metrics,
        monitor=monitor,
        serialize_requests=serialize_requests,
    )
