"""Worker-side telemetry: per-task tracer + metrics shipped back with results.

Worker processes cannot share the driver's :class:`~.tracing.Tracer` —
spans live on the wrong side of the pickling boundary — so until now
the only view inside the pool was the handful of scalars each batch
function chose to ship home in a stats dict.  This module gives every
supervised task a *real* capture context instead:

* the :class:`~repro.runner.supervise.PoolSupervisor` trampoline
  activates :func:`capture` around the task body, creating one fresh
  :class:`WorkerTelemetry` (a lightweight Tracer + MetricsRegistry
  stamped with the worker's pid);
* instrumented worker code reaches the active context through
  :func:`worker_span` / :func:`current_metrics` — both collapse to the
  shared no-op handle when no capture is active, so the same functions
  run unchanged (and unobserved) in the driver or in an uninstrumented
  pool;
* the completed spans and counters travel back to the driver inside a
  :class:`TelemetryEnvelope` wrapped around the task result, where the
  supervisor grafts the spans into the driver trace (re-identified,
  parented under the live ``runner.supervise`` span, attributed with
  ``pid``/``worker_id``) and merges the counters.

Retry safety is structural: a capture context is created per *task
invocation* and its envelope only exists on the attempt that returned
a result, so a batch that failed and was re-dispatched contributes its
spans and counters exactly once — the attempt that succeeded.
``tests/test_runner.py`` pins this down under injected faults.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager

from .metrics import MetricsRegistry
from .tracing import NULL_TRACER, Span, Tracer

__all__ = [
    "WorkerTelemetry",
    "TelemetryEnvelope",
    "capture",
    "current_metrics",
    "current_tracer",
    "worker_span",
]


class WorkerTelemetry:
    """One task invocation's capture context inside a worker process."""

    __slots__ = ("tracer", "metrics", "pid")

    def __init__(self) -> None:
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        self.pid = os.getpid()

    def export(self) -> dict:
        """The picklable payload shipped back to the driver."""
        return {
            "pid": self.pid,
            "spans": self.tracer.to_dicts(),
            "metrics": self.metrics.to_dict(),
        }


class TelemetryEnvelope:
    """A task result plus the telemetry its invocation captured.

    The supervisor trampoline returns one of these instead of the bare
    result whenever telemetry is enabled; the driver unwraps it in
    ``_dispatch_round`` so callers never see the wrapper.
    """

    __slots__ = ("result", "telemetry")

    def __init__(self, result, telemetry: dict) -> None:
        self.result = result
        self.telemetry = telemetry


#: The capture context of the task currently executing in this
#: *thread* (unset between tasks, and always unset in uninstrumented
#: runs).  Thread-local rather than a bare module global so a threaded
#: host — the query server capturing per-request telemetry on handler
#: threads — never sees one request's capture bleed into another's.
_ACTIVE = threading.local()


def _active() -> WorkerTelemetry | None:
    return getattr(_ACTIVE, "telemetry", None)


def current_tracer() -> Tracer:
    """The active capture's tracer, or the shared no-op tracer."""
    active = _active()
    return active.tracer if active is not None else NULL_TRACER


def current_metrics() -> MetricsRegistry | None:
    """The active capture's metric registry, or None when unobserved."""
    active = _active()
    return active.metrics if active is not None else None


def worker_span(name: str, **attrs) -> Span:
    """A span on the active capture (the shared no-op handle otherwise).

    This is the one-liner worker functions use::

        with worker_span("worker.overlap.count", nodes=len(shard)) as span:
            ...
            span.set("pairs", len(counter))

    Outside a capture the call costs one thread-local read and a
    constant return — the same bound the null tracer holds everywhere
    else.
    """
    active = _active()
    if active is None:
        return NULL_TRACER.span(name)
    return active.tracer.span(name, **attrs)


@contextmanager
def capture(phase: str, index: int, attempt: int):
    """Activate a fresh telemetry context around one task invocation.

    Opens a root ``worker.task`` span carrying the dispatch coordinates
    (phase, batch index, attempt number) so every retry is tellable
    apart in the merged trace.  The context is always deactivated on
    exit, even when the task body raises — a failed attempt's telemetry
    simply never ships.
    """
    telemetry = WorkerTelemetry()
    _ACTIVE.telemetry = telemetry
    try:
        with telemetry.tracer.span(
            "worker.task", phase=phase, batch=index, attempt=attempt
        ):
            yield telemetry
    finally:
        _ACTIVE.telemetry = None
