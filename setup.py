"""Legacy shim: lets ``python setup.py develop`` work on environments
whose setuptools predates PEP 660 editable installs (all project
metadata lives in pyproject.toml)."""

from setuptools import setup

setup()
