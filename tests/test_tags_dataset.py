"""Unit tests for tagging summaries (Tables 2.1 / 2.2) and the dataset
bundle round trip."""

import pytest

from repro.graph import Graph
from repro.topology import (
    IXP,
    ASDataset,
    GeoRegistry,
    GeoTag,
    IXPRegistry,
    summarize_tags,
)


@pytest.fixture()
def small_bundle():
    graph = Graph([(1, 2), (2, 3), (3, 4), (4, 1)])
    graph.add_node(5)
    ixps = IXPRegistry([IXP(name="VIX", country="AT", participants=frozenset({1, 2}))])
    geo = GeoRegistry({1: ["AT"], 2: ["AT", "DE"], 3: ["AT", "US"]})
    return ASDataset(graph=graph, ixps=ixps, geography=geo, as_names={1: "ANCHOR"})


class TestSummarizeTags:
    def test_table_counts(self, small_bundle):
        summary = summarize_tags(
            small_bundle.graph.nodes(), small_bundle.ixps, small_bundle.geography
        )
        assert summary.ixp.on_ixp == 2
        assert summary.ixp.not_on_ixp == 3
        assert summary.ixp.total == 5
        assert summary.geo.national == 1
        assert summary.geo.continental == 1
        assert summary.geo.worldwide == 1
        assert summary.geo.unknown == 2
        assert summary.geo.total == 5

    def test_geo_count_accessor(self, small_bundle):
        summary = small_bundle.tag_summary()
        assert summary.geo.count(GeoTag.NATIONAL) == 1
        assert summary.geo.count(GeoTag.UNKNOWN) == 2

    def test_on_ixp_fraction(self, small_bundle):
        assert small_bundle.tag_summary().ixp.on_ixp_fraction == pytest.approx(0.4)

    def test_only_topology_ases_counted(self, small_bundle):
        # Register geo data for an AS absent from the topology.
        small_bundle.geography.assign(99, ["IT"])
        summary = small_bundle.tag_summary()
        assert summary.geo.total == 5


class TestDatasetBundle:
    def test_properties(self, small_bundle):
        assert small_bundle.n_ases == 5
        assert small_bundle.n_links == 4

    def test_name_of(self, small_bundle):
        assert small_bundle.name_of(1) == "ANCHOR"
        assert small_bundle.name_of(3) == "AS3"

    def test_save_load_round_trip(self, small_bundle, tmp_path):
        small_bundle.notes["seed"] = 7
        small_bundle.save(tmp_path / "bundle")
        loaded = ASDataset.load(tmp_path / "bundle")
        assert loaded.n_links == small_bundle.n_links
        assert loaded.ixps.names() == ["VIX"]
        assert loaded.geography.countries(2) == {"AT", "DE"}
        assert loaded.as_names == {1: "ANCHOR"}
        assert loaded.notes["seed"] == 7
        # Isolated node 5 has no edges, so it is not representable in
        # an edge list; everything with links survives.
        assert loaded.n_ases == 4

    def test_load_without_meta(self, small_bundle, tmp_path):
        small_bundle.save(tmp_path / "bundle")
        (tmp_path / "bundle" / "meta.json").unlink()
        loaded = ASDataset.load(tmp_path / "bundle")
        assert loaded.as_names == {}
