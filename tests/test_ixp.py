"""Unit tests for the IXP registry and share analysis."""

import pytest

from repro.topology import IXP, IXPRegistry


def _ixp(name: str, country: str, members) -> IXP:
    return IXP(name=name, country=country, participants=frozenset(members))


class TestIXP:
    def test_fields(self):
        ixp = _ixp("AMS-IX", "NL", [1, 2, 3])
        assert ixp.size == 3
        assert 2 in ixp
        assert 9 not in ixp

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            _ixp("", "NL", [1])


class TestRegistryBasics:
    def test_add_and_lookup(self):
        reg = IXPRegistry([_ixp("VIX", "AT", [1, 2])])
        assert "VIX" in reg
        assert reg["VIX"].country == "AT"
        assert len(reg) == 1

    def test_duplicate_name_rejected(self):
        reg = IXPRegistry([_ixp("VIX", "AT", [1])])
        with pytest.raises(ValueError):
            reg.add(_ixp("VIX", "AT", [2]))

    def test_missing_lookup(self):
        with pytest.raises(KeyError):
            IXPRegistry()["nope"]

    def test_names_sorted(self):
        reg = IXPRegistry([_ixp("b", "AT", [1]), _ixp("a", "AT", [2])])
        assert reg.names() == ["a", "b"]


class TestTagging:
    def test_on_ixp(self):
        reg = IXPRegistry([_ixp("VIX", "AT", [1, 2]), _ixp("MIX", "IT", [2, 3])])
        assert reg.is_on_ixp(1)
        assert not reg.is_on_ixp(9)
        assert reg.on_ixp_ases() == {1, 2, 3}

    def test_ixps_of(self):
        reg = IXPRegistry([_ixp("VIX", "AT", [1, 2]), _ixp("MIX", "IT", [2])])
        assert reg.ixps_of(2) == {"VIX", "MIX"}
        assert reg.ixps_of(9) == set()

    def test_participant_sets(self):
        reg = IXPRegistry([_ixp("VIX", "AT", [1, 2])])
        assert reg.participant_sets() == {"VIX": frozenset({1, 2})}


class TestShares:
    @pytest.fixture()
    def registry(self):
        return IXPRegistry(
            [
                _ixp("BIG", "NL", range(0, 30)),
                _ixp("SMALL", "AT", [1, 2, 3]),
            ]
        )

    def test_max_share(self, registry):
        share = registry.max_share({1, 2, 3})
        assert share.ixp_name == "BIG"  # full containment beats size
        assert share.fraction == 1.0

    def test_full_shares_ordering(self, registry):
        shares = registry.full_shares({1, 2, 3})
        # Both IXPs fully contain the set; tie broken by shared count
        # (equal here) then name.
        assert {s.ixp_name for s in shares} == {"BIG", "SMALL"}
        assert all(s.is_full_share for s in shares)

    def test_partial_share(self, registry):
        share = registry.max_share({1, 2, 100})
        assert share.ixp_name == "BIG"
        assert share.fraction == pytest.approx(2 / 3)
        assert not share.is_full_share

    def test_no_intersection(self, registry):
        assert registry.max_share({999}) is None
        assert registry.shares_of({999}) == []

    def test_tsv_round_trip(self, registry):
        loaded = IXPRegistry.from_tsv(registry.to_tsv())
        assert loaded.names() == registry.names()
        assert loaded["SMALL"].participants == frozenset({1, 2, 3})
        assert loaded["BIG"].country == "NL"
