"""Stable programmatic facade for the LP-CPM pipeline.

Everything a caller needs for "graph in, communities out" lives behind
one function::

    from repro import run_cpm

    result = run_cpm(graph, k_range=(2, None), workers=4, kernel="bitset")
    result.hierarchy[4]          # the k=4 community cover
    result.stats.total_seconds   # phase timings
    save_result(result, "communities.json")

:func:`run_cpm` is the supported batch entry point — the CLI
subcommands (``communities``, ``tree``, ``export``, ``evolve``), the
analysis context and the evolution tracker all route through it — so
resilience features (on-disk caching, phase checkpoints with
``resume=True``, supervised worker pools, fault injection) arrive
uniformly everywhere.  For evolving graphs, :func:`open_session` /
:func:`load_session` expose the stateful incremental path
(:mod:`repro.incremental`): apply edge deltas to a live session
instead of re-running the batch pipeline per snapshot.
Constructor internals (:class:`~repro.core.lightweight
.LightweightParallelCPM` and friends) remain importable but are not a
stability surface; prefer this module.

Convenience coercions: ``cache=True`` builds the default on-disk
:class:`~repro.core.cache.CliqueCache`; ``checkpoint`` accepts a
directory path and wraps it in a
:class:`~repro.runner.checkpoint.CheckpointStore`.

Results round-trip through :func:`save_result` / :func:`load_result`
as the same JSON document ``repro.core.serialize`` writes (plus an
embedded run-statistics block), so files saved here load with the
legacy :func:`~repro.core.serialize.load_hierarchy` and vice versa.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from os import PathLike
from pathlib import Path

from .core.cache import CliqueCache
from .core.communities import CommunityCover, CommunityHierarchy
from .core.lightweight import KERNELS, CPMRunStats, LightweightParallelCPM
from .core.serialize import hierarchy_from_dict, hierarchy_to_dict
from .graph.csr import CSRGraph
from .graph.undirected import Graph
from .obs.metrics import MetricsRegistry
from .obs.tracing import Tracer
from .runner import CheckpointStore, FaultPlan, RunnerConfig

__all__ = [
    "CPMResult",
    "run_cpm",
    "open_session",
    "load_session",
    "save_result",
    "load_result",
    "build_query_artifact",
    "load_query_artifact",
    "make_query_server",
    "RESULT_SCHEMA_VERSION",
]

#: Version of the :meth:`CPMResult.to_dict` document.  Files written
#: before versioning (or by the legacy ``save_hierarchy``) carry no
#: ``result_schema`` key and load as version 1; an unknown *future*
#: version fails loudly in :meth:`CPMResult.from_dict`.
RESULT_SCHEMA_VERSION = 1


@dataclass
class CPMResult:
    """What one :func:`run_cpm` call produced.

    ``hierarchy`` is the full per-order community structure;
    ``stats`` the always-on run summary (clique census, phase wall
    times, cache/resume/degradation flags).  Indexing the result
    delegates to the hierarchy: ``result[4]`` is the k=4 cover.

    ``csr`` is the degeneracy-ordered :class:`~repro.graph.csr
    .CSRGraph` snapshot the bitset kernel built during enumeration —
    downstream consumers (the analysis engine) reuse it instead of
    re-deriving the ordering.  It is ``None`` for the set kernel, for
    cache-hit runs that never touched the graph, and for results loaded
    from disk.
    """

    hierarchy: CommunityHierarchy
    stats: CPMRunStats = field(default_factory=CPMRunStats)
    csr: CSRGraph | None = None

    def __getitem__(self, k: int) -> CommunityCover:
        """The community cover at order ``k`` (delegates to hierarchy)."""
        return self.hierarchy[k]

    def __contains__(self, k: int) -> bool:
        return k in self.hierarchy

    @property
    def orders(self) -> list[int]:
        """The extracted orders, ascending (delegates to hierarchy)."""
        return self.hierarchy.orders

    @property
    def degraded(self) -> bool:
        """True iff any batch had to fall back to serial execution."""
        return self.stats.degraded

    def to_dict(self) -> dict:
        """A versioned JSON-ready document of hierarchy plus stats.

        The document is a superset of :func:`repro.core.serialize
        .hierarchy_to_dict` output (``format``, ``covers``,
        ``parent_labels``) extended with ``result_schema`` (see
        :data:`RESULT_SCHEMA_VERSION`) and a ``stats`` block.  The CSR
        snapshot is deliberately not serialised — it is a derived
        acceleration structure, rebuilt from the graph when needed.
        """
        stats = asdict(self.stats)
        stats["resumed_phases"] = list(stats["resumed_phases"])
        stats["size_histogram"] = {str(k): v for k, v in stats["size_histogram"].items()}
        return {
            **hierarchy_to_dict(self.hierarchy),
            "result_schema": RESULT_SCHEMA_VERSION,
            "stats": stats,
        }

    @classmethod
    def from_dict(cls, document: dict) -> "CPMResult":
        """Rebuild a result from :meth:`to_dict` output.

        Accepts three document generations: current (versioned),
        pre-versioning :func:`save_result` files (stats but no
        ``result_schema``), and bare ``save_hierarchy`` documents (no
        stats at all — defaults apply).  A document declaring a
        *newer* schema than this build understands raises
        ``ValueError`` instead of guessing.
        """
        schema = document.get("result_schema", RESULT_SCHEMA_VERSION)
        if schema != RESULT_SCHEMA_VERSION:
            raise ValueError(
                f"result document declares schema {schema!r}; this build reads "
                f"schema {RESULT_SCHEMA_VERSION} (upgrade repro to load it)"
            )
        hierarchy = hierarchy_from_dict(document)
        raw = dict(document.get("stats") or {})
        known = set(CPMRunStats.__dataclass_fields__)
        raw = {key: value for key, value in raw.items() if key in known}
        if "resumed_phases" in raw:
            raw["resumed_phases"] = tuple(raw["resumed_phases"])
        if "size_histogram" in raw:
            raw["size_histogram"] = {
                int(k): v for k, v in raw["size_histogram"].items()
            }
        return cls(hierarchy=hierarchy, stats=CPMRunStats(**raw))


def _coerce_cache(cache: CliqueCache | bool | str | PathLike | None) -> CliqueCache | None:
    if cache is None or cache is False:
        return None
    if cache is True:
        return CliqueCache()
    if isinstance(cache, (str, PathLike)):
        return CliqueCache(cache)
    return cache


def _coerce_checkpoint(
    checkpoint: CheckpointStore | str | PathLike | None,
) -> CheckpointStore | None:
    if checkpoint is None or isinstance(checkpoint, CheckpointStore):
        return checkpoint
    return CheckpointStore(checkpoint)


def run_cpm(
    graph: Graph,
    *,
    k_range: tuple[int, int | None] | int = (2, None),
    kernel: str = "bitset",
    workers: int = 1,
    shards: int | str = 1,
    cache: CliqueCache | bool | str | PathLike | None = None,
    checkpoint: CheckpointStore | str | PathLike | None = None,
    resume: bool = False,
    runner: RunnerConfig | None = None,
    fault_plan: FaultPlan | None = None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> CPMResult:
    """Extract the k-clique community hierarchy of ``graph``.

    ``k_range`` is ``(min_k, max_k)`` with ``max_k=None`` meaning "up
    to the largest clique" (a bare int extracts that single order).
    ``kernel`` is one of ``repro.core.lightweight.KERNELS`` or
    ``"auto"`` (``blocks`` when numpy — the ``[perf]`` extra — is
    importable, degrading to ``bitset`` otherwise); requesting
    ``"blocks"`` explicitly without numpy raises a ``ValueError``
    subclass with an install hint.  ``shards`` (an int or ``"auto"``,
    meaning one shard per worker) partitions every phase's data across
    workers via :mod:`repro.shard` — byte-identical output, built for
    graphs past the single-process scale.  ``cache``
    memoises enumeration + overlap on disk; ``checkpoint`` (+
    ``resume=True``) persists phase outputs so an interrupted run
    restarts from the last completed phase; ``runner`` tunes the worker
    supervision policy and ``fault_plan`` injects deterministic faults
    (see ``docs/robustness.md``).  Returns a :class:`CPMResult`.

    The pre-facade keyword spellings (``min_k``/``max_k``/``n_workers``
    /``use_cache``), deprecated since the facade landed, have been
    removed — they now raise ``TypeError`` like any unknown keyword;
    see ``docs/api.md`` for the migration table.
    """
    min_k, max_k = k_range if isinstance(k_range, tuple) else (k_range, k_range)
    if kernel != "auto" and kernel not in KERNELS:
        raise ValueError(f"kernel must be one of {KERNELS} or 'auto', got {kernel!r}")
    cpm = LightweightParallelCPM(
        graph,
        workers=workers,
        kernel=kernel,
        shards=shards,
        cache=_coerce_cache(cache),
        checkpoint=_coerce_checkpoint(checkpoint),
        resume=resume,
        runner=runner,
        fault_plan=fault_plan,
        tracer=tracer,
        metrics=metrics,
    )
    hierarchy = cpm.run(min_k=min_k, max_k=max_k)
    return CPMResult(hierarchy=hierarchy, stats=cpm.stats, csr=cpm.csr)


# ----------------------------------------------------------------------
# Incremental sessions (repro.incremental)
# ----------------------------------------------------------------------
def open_session(
    source,
    *,
    kernel: str = "bitset",
    cache: CliqueCache | bool | str | PathLike | None = None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
):
    """Open an incremental CPM session over a graph (or a result's graph).

    ``source`` is a :class:`~repro.graph.undirected.Graph`, or a
    :class:`CPMResult` whose CSR snapshot identifies the graph it was
    extracted from (set-kernel, cache-hit and disk-loaded results carry
    none — pass the graph itself for those).  The returned
    :class:`~repro.incremental.CPMSession` holds live percolation
    state; feed it :class:`~repro.incremental.EdgeDelta` batches via
    ``session.apply`` and read ``session.result()`` — always
    byte-identical to a fresh :func:`run_cpm` on the mutated graph.
    ``cache`` accepts the same coercions as :func:`run_cpm` and is
    probed read-only for the initial clique payload.
    """
    from .incremental import CPMSession
    from .incremental.session import _graph_from_csr

    if isinstance(source, CPMResult):
        if source.csr is None:
            raise ValueError(
                "cannot open a session from this CPMResult: it carries no CSR "
                "snapshot (set-kernel, cache-hit and loaded results do not); "
                "pass the graph itself instead"
            )
        graph = _graph_from_csr(source.csr)
    elif isinstance(source, Graph):
        graph = source
    else:
        raise TypeError(
            f"open_session() takes a Graph or CPMResult, got {type(source).__name__}"
        )
    return CPMSession(
        graph,
        kernel=kernel,
        cache=_coerce_cache(cache),
        tracer=tracer,
        metrics=metrics,
    )


def load_session(
    path: str | PathLike,
    *,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
):
    """Reopen a session persisted by ``CPMSession.save``.

    Facade alias of :func:`repro.incremental.load_session`: validates
    the checkpoint directory (session tag, schema versions, graph
    fingerprint) and rebuilds the full incremental state without any
    recomputation.
    """
    from .incremental import load_session as _load_session

    return _load_session(path, tracer=tracer, metrics=metrics)


# ----------------------------------------------------------------------
# Result persistence
# ----------------------------------------------------------------------
def save_result(result: CPMResult, path: str | PathLike) -> None:
    """Write a result as JSON: the hierarchy document plus a stats block.

    The file is a superset of :func:`repro.core.serialize
    .save_hierarchy` output, so it also loads with plain
    :func:`~repro.core.serialize.load_hierarchy` (which ignores the
    extra keys).  The document is exactly :meth:`CPMResult.to_dict`
    (versioned via ``result_schema``).
    """
    Path(path).write_text(
        json.dumps(result.to_dict(), indent=1, sort_keys=True), encoding="utf-8"
    )


# ----------------------------------------------------------------------
# Query-artifact facade (the serveable read path; repro.query)
# ----------------------------------------------------------------------
def build_query_artifact(
    result: CPMResult,
    graph: Graph,
    *,
    bands=None,
    analysis_engine: str = "bitset",
    workers: int = 1,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
):
    """Freeze a :func:`run_cpm` result into a serveable query artifact.

    Builds the community tree, sweeps the Chapter-4 metric table
    (reusing the result's CSR snapshot when the bitset kernel kept
    one), and packs everything into an immutable
    :class:`~repro.query.artifact.QueryArtifact` keyed by ``graph``'s
    fingerprint.  ``bands`` optionally carries IXP-share-derived
    crown/trunk/root boundaries (:func:`repro.analysis.bands
    .derive_bands`); without it the paper's fallback boundaries apply.
    Save with ``artifact.save(path)`` and serve with ``repro query
    serve`` — the read path never re-runs CPM.
    """
    from .core.tree import CommunityTree
    from .query.artifact import build_artifact

    tree = CommunityTree(result.hierarchy, tracer=tracer, metrics=metrics)
    return build_artifact(
        result.hierarchy,
        tree=tree,
        graph=graph,
        csr=result.csr,
        bands=bands,
        analysis_engine=analysis_engine,
        workers=workers,
        tracer=tracer,
        metrics=metrics,
    )


def load_query_artifact(path: str | PathLike, *, mmap: bool = True):
    """Load a saved query artifact (mmapped by default).

    Returns a :class:`~repro.query.artifact.QueryArtifact`; wrap it in
    a :class:`~repro.query.engine.LookupEngine` (or hand it to
    :func:`~repro.query.server.make_server`) for point queries.
    Corrupt or truncated files raise :class:`~repro.query.artifact
    .ArtifactError` with a clean message.
    """
    from .query.artifact import QueryArtifact

    return QueryArtifact.load(path, mmap=mmap)


def make_query_server(
    artifact,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    monitor=None,
    serialize_requests: bool = False,
):
    """Bind a threaded JSON lookup server over a query artifact.

    Facade over :func:`repro.query.server.make_server`: ``artifact``
    is a loaded :class:`~repro.query.artifact.QueryArtifact` or an
    existing :class:`~repro.query.engine.LookupEngine`.  Requests run
    concurrently (no global lock) with per-endpoint latency histograms
    and a Prometheus ``/metrics`` endpoint; ``monitor`` attaches a
    running :class:`~repro.obs.resources.ResourceMonitor` whose
    samples surface as process gauges on scrapes.  The caller drives
    ``serve_forever()`` / ``shutdown()``.
    """
    from .query.server import make_server

    return make_server(
        artifact,
        host=host,
        port=port,
        tracer=tracer,
        metrics=metrics,
        monitor=monitor,
        serialize_requests=serialize_requests,
    )


def load_result(path: str | PathLike) -> CPMResult:
    """Read a :func:`save_result` file (or a bare hierarchy file) back.

    A file written by the legacy ``save_hierarchy`` has no stats block;
    it loads with default (all-zero) statistics.  Delegates to
    :meth:`CPMResult.from_dict`, so pre-versioning and versioned
    documents both load (and future-schema documents fail loudly).
    """
    return CPMResult.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))
