"""Extension — community evolution over a growing topology.

The paper's snapshot analysis sits in a line of work that watches the
AS ecosystem grow ([8], [22]).  This bench tracks k-clique communities
across snapshots of a growing synthetic Internet and regenerates the
event census (birth / growth / merge / split): in a growing network,
births and growth dominate deaths, and the IXP-core community persists
from the first snapshot to the last.
"""

from repro.evolution import EventKind, EvolutionTracker, TopologyEvolution
from repro.report.figures import ascii_table
from repro.topology.generator import GeneratorConfig

_EVOLUTION = TopologyEvolution(GeneratorConfig.tiny(), seed=7, n_snapshots=5)


def test_community_evolution(benchmark, emit):
    snapshots = _EVOLUTION.snapshots()
    tracker = benchmark(lambda: EvolutionTracker(snapshots, k=4))

    growth_rows = [
        [f"{t:.2f}", nodes, edges]
        for t, nodes, edges in _EVOLUTION.growth_series()
    ]
    growth_table = ascii_table(
        ["t", "ASes", "links"],
        growth_rows,
        title="Ecosystem growth across snapshots",
    )
    counts = tracker.event_counts()
    event_table = ascii_table(
        ["event", "count"],
        [[kind.value, count] for kind, count in counts.items()],
        title="Community life events at k = 4 (Palla et al. taxonomy)",
    )
    longest = tracker.longest_timeline()
    footer = (
        f"longest-lived community: born at snapshot {longest.born_at}, "
        f"sizes {longest.sizes()} (the IXP-core community persisting throughout)"
    )
    emit("community_evolution", f"{growth_table}\n\n{event_table}\n{footer}")

    assert counts[EventKind.BIRTH] > counts[EventKind.DEATH]
    assert counts[EventKind.GROWTH] >= 1
    assert len(longest.path) >= 3
    sizes = longest.sizes()
    assert sizes[-1] >= sizes[0]  # the persistent community grows
