"""Lightweight Parallel Clique Percolation Method (LP-CPM, [11]).

The paper's communities were extracted with the Lightweight Parallel
CPM of Gregori, Lenzini, Mainardi & Orsini — the only algorithm able to
process the 2.7M maximal cliques of the AS graph (93 hours on 48
cores).  The 'lightweight' idea is to never materialise the CFinder
all-pairs clique overlap matrix; the 'parallel' idea is that both the
overlap computation and the per-order percolation decompose into
independent shards.

This implementation reproduces that architecture in Python:

1. **Enumerate** maximal cliques (Bron–Kerbosch, sequential — the
   enumeration itself is a negligible share of CPM runtime on AS-like
   graphs compared to the overlap phase).
2. **Overlap phase** — the inverted node→cliques index is sharded
   across workers; each worker counts clique-pair co-occurrences over
   its shard of nodes, and shard counters are summed (a pair's total
   co-occurrence count across all nodes *is* its overlap).
3. **Percolation phase** — orders k are distributed across workers;
   each runs an independent union-find over (eligible cliques,
   thresholded overlaps).

``workers=1`` runs everything in-process (no pickling, fully
deterministic); ``workers>1`` uses ``ProcessPoolExecutor``.  Results
are identical by construction, which the test-suite asserts.
"""

from __future__ import annotations

import time
from collections import Counter
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from ..graph.undirected import Graph
from .cliques import CliqueCensus, maximal_cliques
from .communities import CommunityHierarchy
from .percolation import CliqueOverlapIndex, build_hierarchy
from .unionfind import UnionFind

__all__ = ["LightweightParallelCPM", "CPMRunStats"]


@dataclass
class CPMRunStats:
    """Timing and census record of one LP-CPM run.

    Mirrors the run statistics the paper reports in Section 3: the
    maximal clique count, the dominant size band, and per-phase wall
    times.
    """

    n_cliques: int = 0
    max_clique_size: int = 0
    n_overlap_pairs: int = 0
    enumerate_seconds: float = 0.0
    overlap_seconds: float = 0.0
    percolate_seconds: float = 0.0
    workers: int = 1
    size_histogram: dict[int, int] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return self.enumerate_seconds + self.overlap_seconds + self.percolate_seconds


def _count_pairs_shard(shard: list[list[int]]) -> Counter:
    """Worker: co-occurrence counts over one shard of the inverted index."""
    counter: Counter[tuple[int, int]] = Counter()
    for cids in shard:
        n = len(cids)
        for a in range(n):
            ca = cids[a]
            for b in range(a + 1, n):
                counter[(ca, cids[b])] += 1
    return counter


def _percolate_orders(
    orders: list[int],
    sizes: list[int],
    pairs: list[tuple[int, int, int]],
) -> dict[int, list[list[int]]]:
    """Worker: percolate each order in ``orders`` independently.

    ``sizes`` is the clique-size list sorted descending; ``pairs`` is
    the (i, j, overlap) list.  Returns, per order, groups of clique ids
    (node materialisation happens in the parent, which owns the actual
    clique sets — shipping only integer ids keeps the workers light).
    """
    result: dict[int, list[list[int]]] = {}
    for k in orders:
        eligible = _prefix_count(sizes, k)
        if eligible == 0:
            result[k] = []
            continue
        uf = UnionFind(range(eligible))
        threshold = k - 1
        for i, j, overlap in pairs:
            if overlap >= threshold and i < eligible and j < eligible:
                uf.union(i, j)
        result[k] = [sorted(group) for group in uf.groups()]
    return result


def _prefix_count(sorted_desc: Sequence[int], k: int) -> int:
    """How many leading entries of a descending sequence are >= k."""
    lo, hi = 0, len(sorted_desc)
    while lo < hi:
        mid = (lo + hi) // 2
        if sorted_desc[mid] >= k:
            lo = mid + 1
        else:
            hi = mid
    return lo


class LightweightParallelCPM:
    """Extract the full k-clique community hierarchy of a graph.

    >>> from repro.graph import ring_of_cliques
    >>> cpm = LightweightParallelCPM(ring_of_cliques(3, 4))
    >>> hierarchy = cpm.run()
    >>> len(hierarchy[4]), len(hierarchy[2])
    (3, 1)
    """

    def __init__(self, graph: Graph, *, workers: int = 1) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.graph = graph
        self.workers = workers
        self.stats = CPMRunStats(workers=workers)

    def run(self, *, min_k: int = 2, max_k: int | None = None) -> CommunityHierarchy:
        """Run all three phases and return the hierarchy over [min_k, max_k]."""
        if min_k < 2:
            raise ValueError(f"min_k must be >= 2, got {min_k}")

        t0 = time.perf_counter()
        cliques = sorted(maximal_cliques(self.graph, min_size=2), key=len, reverse=True)
        t1 = time.perf_counter()
        census = CliqueCensus(cliques)
        self.stats.n_cliques = len(cliques)
        self.stats.max_clique_size = census.max_size
        self.stats.size_histogram = census.histogram
        self.stats.enumerate_seconds = t1 - t0
        top = census.max_size if max_k is None else min(max_k, census.max_size)
        if top < min_k:
            raise ValueError(f"graph has no clique of size >= {min_k}; nothing to extract")

        sizes = [len(c) for c in cliques]
        overlaps = self._overlap_phase(cliques)
        t2 = time.perf_counter()
        self.stats.overlap_seconds = t2 - t1
        self.stats.n_overlap_pairs = len(overlaps)

        hierarchy = self._percolation_phase(cliques, sizes, overlaps, min_k, top)
        self.stats.percolate_seconds = time.perf_counter() - t2
        return hierarchy

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    def _overlap_phase(self, cliques: list[frozenset]) -> dict[tuple[int, int], int]:
        index: dict[object, list[int]] = {}
        for cid, clique in enumerate(cliques):
            for node in clique:
                index.setdefault(node, []).append(cid)
        shards = self._shard(list(index.values()), self.workers)
        if self.workers == 1:
            return dict(_count_pairs_shard(shards[0])) if shards else {}
        total: Counter[tuple[int, int]] = Counter()
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            for partial in pool.map(_count_pairs_shard, shards):
                total.update(partial)
        return dict(total)

    def _percolation_phase(
        self,
        cliques: list[frozenset],
        sizes: list[int],
        overlaps: dict[tuple[int, int], int],
        min_k: int,
        max_k: int,
    ) -> CommunityHierarchy:
        orders = list(range(min_k, max_k + 1))
        pairs = [(i, j, o) for (i, j), o in overlaps.items()]
        if self.workers == 1:
            grouped = _percolate_orders(orders, sizes, pairs)
        else:
            # Interleave orders across workers: low orders see more
            # eligible cliques (more work), so round-robin balances load.
            batches = [orders[w :: self.workers] for w in range(self.workers)]
            batches = [b for b in batches if b]
            grouped = {}
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                for part in pool.map(_percolate_orders, batches, [sizes] * len(batches), [pairs] * len(batches)):
                    grouped.update(part)
        return build_hierarchy(cliques, grouped)

    @staticmethod
    def _shard(items: list, n: int) -> list[list]:
        """Split ``items`` into up to ``n`` contiguous shards (never empty)."""
        if not items:
            return [[]]
        n = min(n, len(items))
        size, extra = divmod(len(items), n)
        shards, start = [], 0
        for w in range(n):
            end = start + size + (1 if w < extra else 0)
            shards.append(items[start:end])
            start = end
        return shards

    def overlap_index(self) -> CliqueOverlapIndex:
        """Expose the sequential index (shared API with repro.core.percolation)."""
        return CliqueOverlapIndex.from_graph(self.graph)
