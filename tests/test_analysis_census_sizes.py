"""Tests for the Figure 4.1 census and Figure 4.3 size analyses."""

import pytest

from repro.analysis import CommunityCensus, SizeAnalysis
from repro.core import extract_hierarchy
from repro.graph import ring_of_cliques


class TestCensusOnOracle:
    @pytest.fixture(scope="class")
    def census(self):
        return CommunityCensus(extract_hierarchy(ring_of_cliques(4, 5)))

    def test_series(self, census):
        assert census.series() == [(2, 1), (3, 4), (4, 4), (5, 4)]

    def test_total(self, census):
        assert census.total_communities == 13

    def test_unique_orders(self, census):
        assert census.unique_orders() == [2]

    def test_single_2_clique_community(self, census):
        assert census.single_2_clique_community()

    def test_band_count(self, census):
        assert census.count_in_band(3, 4) == 8

    def test_parallel_counts(self, census):
        by_k = {row.k: row.n_parallel for row in census.rows}
        assert by_k == {2: 0, 3: 3, 4: 3, 5: 3}


class TestCensusOnDataset:
    """Figure 4.1 shape claims on the synthetic Internet."""

    def test_paper_shape(self, default_context):
        census = CommunityCensus(default_context.hierarchy)
        series = dict(census.series())
        # Single 2-clique community (connected dataset).
        assert census.single_2_clique_community()
        # Low k: many communities; high k: few.
        assert series[3] > 30
        assert series[census.max_k] <= 5
        # Unique orders exist in the mid band and at the apex.
        uniques = census.unique_orders()
        assert census.max_k in uniques
        assert any(2 < k < census.max_k for k in uniques)
        # Total in the paper's order of magnitude (scaled dataset).
        assert 100 <= census.total_communities <= 1500


class TestSizesOnDataset:
    """Figure 4.3 shape claims."""

    @pytest.fixture(scope="class")
    def sizes(self, default_context):
        return SizeAnalysis(default_context)

    def test_main_monotone_nonincreasing(self, sizes):
        assert sizes.main_is_monotone_nonincreasing()

    def test_main_covers_graph_at_k2(self, sizes):
        assert sizes.main_covers_graph_at_k2()

    def test_main_shrinks_rapidly(self, sizes):
        series = dict(sizes.main_series())
        assert series[2] > 10 * series[10]

    def test_parallel_sizes_near_k(self, sizes):
        mean_ratio, max_ratio = sizes.parallel_size_ratio_stats()
        # Paper: most parallel communities have size close to k.
        assert 1.0 <= mean_ratio < 3.0
        assert max_ratio < 20

    def test_crossover_only_near_max_k(self, sizes, default_context):
        crossover = sizes.crossover_k()
        assert crossover is not None
        # Main is comparable to parallels only deep in the crown band.
        assert crossover > 0.7 * default_context.hierarchy.max_k

    def test_every_community_has_a_point(self, sizes, default_context):
        assert len(sizes.points) == default_context.hierarchy.total_communities
