"""Weighted CPM on a traffic-weighted AS graph.

Cross-module scenario: the routing substrate estimates how much traffic
each AS link carries (how many policy paths traverse it), those counts
become edge weights, and the weighted Clique Percolation Method (CPMw,
Farkas et al. 2007) extracts the communities of the *high-traffic*
backbone — the dense zones that matter operationally, not just
topologically.

Run:  python examples/weighted_traffic.py
"""

from collections import Counter

from repro.core import intensity_sweep
from repro.graph import WeightedGraph
from repro.routing import collect_policy_paths, infer_relationships
from repro.topology import GeneratorConfig, generate_topology


def main() -> None:
    dataset = generate_topology(GeneratorConfig.tiny(), seed=7)
    relationships = infer_relationships(dataset)
    print(f"dataset: {dataset!r}")

    # Traffic estimate: count policy paths per link.
    collection = collect_policy_paths(
        dataset.graph, relationships, n_collectors=20, n_destinations=120, seed=3
    )
    load: Counter[frozenset] = Counter()
    for path in collection.paths:
        for u, v in zip(path, path[1:]):
            load[frozenset((u, v))] += 1
    print(f"estimated link loads from {collection.n_paths} policy paths; "
          f"{len(load)} links carried traffic\n")

    # Weighted graph: loaded links weighted by traffic, the rest at the floor.
    weighted = WeightedGraph()
    for u, v in dataset.graph.edges():
        weighted.add_edge(u, v, float(load.get(frozenset((u, v)), 0) + 1))

    thresholds = [0.0, 2.0, 5.0, 15.0]
    covers = intensity_sweep(weighted, 4, thresholds)
    print("CPMw at k=4 across intensity thresholds:")
    for threshold in thresholds:
        cover = covers[threshold]
        total_members = sum(c.size for c in cover)
        print(f"  I0={threshold:5.1f}: {len(cover):3d} communities, "
              f"{total_members:4d} member slots")
    print()

    # The surviving high-intensity community is the traffic backbone.
    backbone = covers[thresholds[-1]]
    if len(backbone):
        members = set(backbone[0].members)
        roles = Counter(dataset.as_roles.get(a, "?") for a in members)
        print(f"highest-intensity community ({backbone[0].size} ASes), by role:")
        for role, count in roles.most_common():
            print(f"  {role}: {count}")
        on_ixp = sum(1 for a in members if dataset.ixps.is_on_ixp(a))
        print(f"on-IXP members: {on_ixp}/{len(members)} — the traffic backbone "
              "is the same IXP fabric the paper's crown identifies topologically")
    else:
        print("no community survived the highest threshold")


if __name__ == "__main__":
    main()
