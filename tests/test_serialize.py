"""Unit tests for hierarchy serialisation."""

import json

import pytest

from repro.core import (
    CommunityCover,
    CommunityHierarchy,
    CommunityTree,
    extract_hierarchy,
    load_hierarchy,
    save_hierarchy,
)
from repro.core.serialize import hierarchy_from_dict, hierarchy_to_dict
from repro.graph import ring_of_cliques


class TestRoundTrip:
    def test_dict_round_trip(self):
        hierarchy = extract_hierarchy(ring_of_cliques(3, 5))
        loaded = hierarchy_from_dict(hierarchy_to_dict(hierarchy))
        assert loaded.counts_by_k() == hierarchy.counts_by_k()
        assert loaded.parent_labels == hierarchy.parent_labels
        for k in hierarchy.orders:
            assert [sorted(c.members) for c in loaded[k]] == [
                sorted(c.members) for c in hierarchy[k]
            ]

    def test_file_round_trip(self, tmp_path):
        hierarchy = extract_hierarchy(ring_of_cliques(4, 4))
        path = tmp_path / "h.json"
        save_hierarchy(hierarchy, path)
        loaded = load_hierarchy(path)
        assert loaded.total_communities == hierarchy.total_communities

    def test_tree_rebuilds_from_loaded_hierarchy(self, tmp_path):
        hierarchy = extract_hierarchy(ring_of_cliques(4, 5))
        path = tmp_path / "h.json"
        save_hierarchy(hierarchy, path)
        tree = CommunityTree(load_hierarchy(path))
        assert tree.apex.k == 5
        assert len(tree.roots) == 1

    def test_document_is_stable_json(self, tmp_path):
        hierarchy = extract_hierarchy(ring_of_cliques(3, 4))
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        save_hierarchy(hierarchy, a)
        save_hierarchy(hierarchy, b)
        assert a.read_text() == b.read_text()
        document = json.loads(a.read_text())
        assert document["format"].startswith("repro.k-clique-hierarchy/")


class TestValidation:
    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="format"):
            hierarchy_from_dict({"format": "something-else", "covers": {}})

    def test_non_serialisable_members_rejected(self):
        cover = CommunityCover(2, [frozenset({(1, 2), (3, 4)})])
        hierarchy = CommunityHierarchy({2: cover})
        with pytest.raises(TypeError, match="int/str"):
            hierarchy_to_dict(hierarchy)

    def test_string_members_supported(self):
        cover = CommunityCover(2, [frozenset({"a", "b"})])
        hierarchy = CommunityHierarchy({2: cover})
        loaded = hierarchy_from_dict(hierarchy_to_dict(hierarchy))
        assert sorted(loaded[2][0].members) == ["a", "b"]
