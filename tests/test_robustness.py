"""Unit tests for the measurement-robustness analysis."""

import random

import pytest

from repro.analysis import IXPShareAnalysis, derive_bands
from repro.analysis.robustness import community_recall, uniform_edge_sample
from repro.graph import complete_graph
from repro.topology import merge_observations, observe_all


class TestUniformEdgeSample:
    def test_keep_all(self):
        g = complete_graph(6)
        sampled = uniform_edge_sample(g, 1.0, random.Random(0))
        assert sampled.number_of_edges == g.number_of_edges
        assert sampled.number_of_nodes == g.number_of_nodes

    def test_expected_rate(self):
        g = complete_graph(40)  # 780 edges
        sampled = uniform_edge_sample(g, 0.5, random.Random(1))
        assert 0.4 * 780 < sampled.number_of_edges < 0.6 * 780

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            uniform_edge_sample(complete_graph(3), 0.0, random.Random(0))


class TestCommunityRecall:
    def test_identical_graphs_full_recall(self, tiny_dataset, tiny_context):
        bands = derive_bands(IXPShareAnalysis(tiny_context), fallback=(6, 10))
        report = community_recall(tiny_dataset.graph, tiny_dataset.graph, bands)
        assert report.overall_recall() == 1.0
        assert report.observed_max_k == report.reference_max_k
        for band in report.per_band:
            if band.n_reference_communities:
                assert band.recall == 1.0

    def test_observation_beats_uniform_loss_on_the_core(self, tiny_dataset, tiny_context):
        """At equal edge coverage, core-peered observation preserves the
        crown far better than uniform edge loss: collectors hosted at
        carriers see the IXP meshes as first-hop adjacencies, whereas
        random loss of any clique edge caps the reachable order."""
        bands = derive_bands(IXPShareAnalysis(tiny_context), fallback=(6, 10))
        observations = observe_all(tiny_dataset.graph, seed=4)
        observed, _ = merge_observations(observations)
        coverage = observed.number_of_edges / tiny_dataset.graph.number_of_edges
        report = community_recall(tiny_dataset.graph, observed, bands, threshold=0.5)
        crown = next(b for b in report.per_band if b.band == "crown")

        sampled = uniform_edge_sample(tiny_dataset.graph, coverage, random.Random(3))
        uniform_report = community_recall(tiny_dataset.graph, sampled, bands, threshold=0.5)
        uniform_crown = next(b for b in uniform_report.per_band if b.band == "crown")

        assert crown.recall > uniform_crown.recall
        assert report.observed_max_k > uniform_report.observed_max_k
        assert report.observed_max_k >= report.reference_max_k - 2

    def test_uniform_sampling_destroys_cliques_first(self, tiny_dataset, tiny_context):
        """Uniform edge loss hits exact cliques hardest — the contrast
        with path-based observation."""
        bands = derive_bands(IXPShareAnalysis(tiny_context), fallback=(6, 10))
        sampled = uniform_edge_sample(tiny_dataset.graph, 0.7, random.Random(3))
        report = community_recall(tiny_dataset.graph, sampled, bands, threshold=0.5)
        crown = next(b for b in report.per_band if b.band == "crown")
        assert crown.recall < 0.9
        assert report.observed_max_k < report.reference_max_k

    def test_missing_orders_score_zero(self, tiny_dataset, tiny_context):
        bands = derive_bands(IXPShareAnalysis(tiny_context), fallback=(6, 10))
        # Sample so aggressively that the deep orders vanish entirely.
        sampled = uniform_edge_sample(tiny_dataset.graph, 0.3, random.Random(5))
        report = community_recall(tiny_dataset.graph, sampled, bands)
        deep = [k for k in report.per_k if k > report.observed_max_k]
        assert all(report.per_k[k] == 0.0 for k in deep)
