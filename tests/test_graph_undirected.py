"""Unit tests for the undirected graph substrate."""

import pytest

from repro.graph import Graph, GraphError


class TestConstruction:
    def test_empty_graph(self):
        g = Graph()
        assert len(g) == 0
        assert g.number_of_edges == 0

    def test_from_edge_iterable(self):
        g = Graph([(1, 2), (2, 3)])
        assert g.number_of_nodes == 3
        assert g.number_of_edges == 2

    def test_add_edge_creates_endpoints(self):
        g = Graph()
        g.add_edge("a", "b")
        assert "a" in g and "b" in g

    def test_add_edge_is_idempotent(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(1, 2)
        g.add_edge(2, 1)
        assert g.number_of_edges == 1

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add_edge(5, 5)

    def test_add_node_idempotent(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_node(1)  # must not clear adjacency
        assert g.has_edge(1, 2)

    def test_add_nodes_from(self):
        g = Graph()
        g.add_nodes_from(range(5))
        assert len(g) == 5
        assert g.number_of_edges == 0


class TestRemoval:
    def test_remove_edge(self):
        g = Graph([(1, 2), (2, 3)])
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert 1 in g  # endpoints stay

    def test_remove_missing_edge_raises(self):
        g = Graph([(1, 2)])
        with pytest.raises(GraphError):
            g.remove_edge(1, 3)

    def test_remove_node_removes_incident_edges(self):
        g = Graph([(1, 2), (1, 3), (2, 3)])
        g.remove_node(1)
        assert 1 not in g
        assert g.number_of_edges == 1
        assert g.has_edge(2, 3)

    def test_remove_missing_node_raises(self):
        with pytest.raises(GraphError):
            Graph().remove_node(9)


class TestQueries:
    def test_degree_and_neighbors(self):
        g = Graph([(1, 2), (1, 3), (1, 4)])
        assert g.degree(1) == 3
        assert g.neighbors(1) == {2, 3, 4}
        assert g.degree(2) == 1

    def test_neighbors_of_missing_node_raises(self):
        with pytest.raises(GraphError):
            Graph().neighbors(1)

    def test_edges_yields_each_edge_once(self):
        g = Graph([(1, 2), (2, 3), (1, 3)])
        edges = {frozenset(e) for e in g.edges()}
        assert len(list(g.edges())) == 3
        assert edges == {frozenset((1, 2)), frozenset((2, 3)), frozenset((1, 3))}

    def test_degrees_map(self):
        g = Graph([(1, 2), (2, 3)])
        assert g.degrees() == {1: 1, 2: 2, 3: 1}

    def test_density_triangle(self):
        g = Graph([(1, 2), (2, 3), (1, 3)])
        assert g.density() == 1.0

    def test_density_small_graphs(self):
        assert Graph().density() == 0.0
        g = Graph()
        g.add_node(1)
        assert g.density() == 0.0

    def test_iteration(self):
        g = Graph([(1, 2)])
        assert set(g) == {1, 2}
        assert set(g.nodes()) == {1, 2}


class TestDerived:
    def test_subgraph_keeps_internal_edges_only(self):
        g = Graph([(1, 2), (2, 3), (3, 4), (4, 1)])
        sub = g.subgraph([1, 2, 3])
        assert sub.number_of_nodes == 3
        assert sub.has_edge(1, 2) and sub.has_edge(2, 3)
        assert not sub.has_edge(3, 4)

    def test_subgraph_ignores_unknown_nodes(self):
        g = Graph([(1, 2)])
        sub = g.subgraph([1, 2, 99])
        assert 99 not in sub

    def test_copy_is_independent(self):
        g = Graph([(1, 2)])
        dup = g.copy()
        dup.add_edge(2, 3)
        assert not g.has_edge(2, 3)

    def test_edge_count_within(self):
        g = Graph([(1, 2), (2, 3), (3, 1), (3, 4)])
        assert g.edge_count_within({1, 2, 3}) == 3
        assert g.edge_count_within({1, 4}) == 0
        assert g.edge_count_within(set()) == 0

    def test_degree_within(self):
        g = Graph([(1, 2), (1, 3), (1, 4)])
        assert g.degree_within(1, {2, 3}) == 2

    def test_is_clique(self):
        g = Graph([(1, 2), (2, 3), (1, 3), (3, 4)])
        assert g.is_clique([1, 2, 3])
        assert not g.is_clique([1, 2, 4])
        assert g.is_clique([1])
        assert not g.is_clique([1, 99])

    def test_is_clique_with_duplicate_input(self):
        g = Graph([(1, 2)])
        assert g.is_clique([1, 2, 1])
