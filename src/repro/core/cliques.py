"""Maximal clique enumeration and fixed-size clique enumeration.

CPM consumes the maximal cliques of the graph: in the Topology dataset
the paper found 2,730,916 of them, 88% with sizes in [18, 28] —
enumerating them efficiently is what made the analysis feasible at all.
We implement Bron–Kerbosch with:

* **pivoting** (Tomita et al.): the pivot is the candidate covering the
  most of P, so recursion only branches on P \\ N(pivot);
* **degeneracy ordering** on the outermost level (Eppstein–Löffler–
  Strash), bounding work by O(d * n * 3^(d/3)) where d is the graph
  degeneracy — small for AS-like graphs even when the core is dense.

Two kernels implement the same enumeration:

* ``maximal_cliques`` — the set-based reference: R/P/X are Python
  sets of node objects.  Kept as the tested oracle.
* ``maximal_cliques_bitset`` — the integer fast path: operates on a
  :class:`~repro.graph.csr.CSRGraph`, with P and X as arbitrary-
  precision int bitmasks and the Tomita pivot chosen by
  ``int.bit_count()``.  Emits cliques as tuples of dense ids; both
  kernels enumerate exactly the same cliques (the maximal cliques of a
  graph are unique), which ``tests/test_kernels_equivalence.py``
  asserts against each other and the ``k_cliques`` oracle.

Fixed-size k-clique enumeration (``k_cliques``) implements the literal
objects of the k-clique community definition; it is exponentially more
numerous than maximal cliques and is used only as a test oracle and for
the direct-definition CPM variant.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Hashable, Iterator
from dataclasses import dataclass

from ..graph.csr import CSRGraph
from ..graph.degeneracy import degeneracy_ordering
from ..graph.undirected import Graph

__all__ = [
    "maximal_cliques",
    "maximal_cliques_bitset",
    "local_maximal_cliques",
    "max_clique_size",
    "k_cliques",
    "clique_size_census",
    "CliqueCensus",
    "CliqueEnumerationStats",
]


@dataclass
class CliqueEnumerationStats:
    """Work counters of one Bron–Kerbosch enumeration.

    Collected only when a stats object is passed to
    :func:`maximal_cliques` (the observability layer does this when a
    run is traced), so the default enumeration path pays nothing beyond
    one ``is not None`` check per recursive call.

    * ``calls`` — recursive invocations of the Bron–Kerbosch kernel;
    * ``branches`` — nodes actually branched on (``|P \\ N(pivot)|``
      summed), the quantity Tomita pivoting minimises;
    * ``pivot_candidates`` — candidates examined while choosing pivots
      (``|P ∪ X|`` summed), the scan cost of the pivot rule;
    * ``emitted`` — maximal cliques reported.
    """

    calls: int = 0
    branches: int = 0
    pivot_candidates: int = 0
    emitted: int = 0


def maximal_cliques(
    graph: Graph,
    *,
    min_size: int = 1,
    stats: CliqueEnumerationStats | None = None,
) -> list[frozenset[Hashable]]:
    """All maximal cliques of ``graph`` with at least ``min_size`` nodes.

    Deterministic for a given graph construction order.  Isolated nodes
    are themselves maximal 1-cliques (filtered out when min_size > 1).
    Pass a :class:`CliqueEnumerationStats` to count recursion and pivot
    work (used by the observability layer).
    """
    if min_size < 1:
        raise ValueError(f"min_size must be >= 1, got {min_size}")
    cliques: list[frozenset[Hashable]] = []
    emit = cliques.append
    order = degeneracy_ordering(graph)
    rank = {node: i for i, node in enumerate(order)}
    for node in order:
        neighbors = graph.neighbors(node)
        later = {v for v in neighbors if rank[v] > rank[node]}
        earlier = {v for v in neighbors if rank[v] < rank[node]}
        _bron_kerbosch_pivot(graph, {node}, later, earlier, min_size, emit, stats)
    if stats is not None:
        stats.emitted = len(cliques)
    return cliques


def _bron_kerbosch_pivot(
    graph: Graph,
    r: set[Hashable],
    p: set[Hashable],
    x: set[Hashable],
    min_size: int,
    emit,
    stats: CliqueEnumerationStats | None = None,
) -> None:
    """Bron–Kerbosch with Tomita pivoting.

    ``r`` is the growing clique, ``p`` candidates, ``x`` excluded
    (already covered) nodes.  Emits frozensets of maximal cliques.
    """
    if stats is not None:
        stats.calls += 1
    if not p and not x:
        if len(r) >= min_size:
            emit(frozenset(r))
        return
    if not p:
        return
    # Pivot: the node of P ∪ X with the most neighbors in P.
    candidates = p | x
    pivot = max(candidates, key=lambda u: len(graph.neighbors(u) & p))
    branch = list(p - graph.neighbors(pivot))
    if stats is not None:
        stats.pivot_candidates += len(candidates)
        stats.branches += len(branch)
    for node in branch:
        neighbors = graph.neighbors(node)
        r.add(node)
        _bron_kerbosch_pivot(graph, r, p & neighbors, x & neighbors, min_size, emit, stats)
        r.remove(node)
        p.remove(node)
        x.add(node)


def maximal_cliques_bitset(
    csr: CSRGraph,
    *,
    min_size: int = 1,
    stats: CliqueEnumerationStats | None = None,
) -> list[tuple[int, ...]]:
    """All maximal cliques of a :class:`CSRGraph`, as dense-id tuples.

    The integer twin of :func:`maximal_cliques`: the same Bron–Kerbosch
    recursion with Tomita pivoting, but P and X are int bitmasks over
    the CSR ids (already in degeneracy order) and every set operation
    is one big-int ``&``/``|``/``^``.  ``b & -b`` isolates the lowest
    set bit, ``bit_count()`` sizes a mask — both run in C.

    Returns one tuple of dense ids per maximal clique; map them back
    with ``csr.to_labels``.  Enumerates exactly the clique set of the
    reference kernel (order of emission may differ).
    """
    if min_size < 1:
        raise ValueError(f"min_size must be >= 1, got {min_size}")
    bits = csr.bitsets
    cliques: list[tuple[int, ...]] = []
    emit = cliques.append
    stack: list[int] = []

    def expand(p: int, x: int) -> None:
        if stats is not None:
            stats.calls += 1
        if not p:
            if not x and len(stack) >= min_size:
                emit(tuple(stack))
            return
        # Pivot: the candidate of P | X with the most neighbors in P.
        cand = p | x
        best = -1
        pivot_nbrs = 0
        m = cand
        while m:
            low = m & -m
            count = (bits[low.bit_length() - 1] & p).bit_count()
            if count > best:
                best = count
                pivot_nbrs = bits[low.bit_length() - 1]
            m ^= low
        branch = p & ~pivot_nbrs
        if stats is not None:
            stats.pivot_candidates += cand.bit_count()
            stats.branches += branch.bit_count()
        while branch:
            low = branch & -branch
            nv = bits[low.bit_length() - 1]
            stack.append(low.bit_length() - 1)
            expand(p & nv, x & nv)
            stack.pop()
            p ^= low
            x |= low
            branch ^= low

    for v in range(len(bits)):
        nv = bits[v]
        later = (nv >> (v + 1)) << (v + 1)
        earlier = nv & ((1 << v) - 1)
        stack.append(v)
        expand(later, earlier)
        stack.pop()
    if stats is not None:
        stats.emitted = len(cliques)
    return cliques


def local_maximal_cliques(
    graph: Graph,
    nodes: set[Hashable],
    *,
    kernel: str = "set",
    stats: CliqueEnumerationStats | None = None,
) -> list[frozenset[Hashable]]:
    """Maximal cliques of the subgraph ``graph`` induces on ``nodes``.

    The incremental insertion step needs exactly this: after adding
    edge (u, v), every *new* maximal clique of the graph is
    ``{u, v} ∪ C`` for ``C`` a maximal clique of the subgraph induced
    on the common neighborhood ``N(u) ∩ N(v)`` — so enumeration stays
    local to the touched endpoints instead of rescanning the graph.
    Isolated nodes of the induced subgraph count (they extend to
    triangles ``{u, v, w}``), hence ``min_size=1`` semantics.

    ``kernel`` picks the Bron–Kerbosch variant: ``"set"`` runs the
    reference enumerator directly; ``"bitset"`` / ``"blocks"`` build a
    :class:`~repro.graph.csr.CSRGraph` over the induced subgraph and
    run the corresponding integer kernel (the same code paths the full
    pipeline uses, exercised here on neighborhood-sized inputs).  All
    kernels return the same clique set.
    """
    if not nodes:
        return []
    sub = graph.subgraph(nodes)
    if kernel == "set":
        return maximal_cliques(sub, min_size=1, stats=stats)
    csr = CSRGraph.from_graph(sub)
    if kernel == "blocks":
        from .blocks import maximal_cliques_blocks

        dense = maximal_cliques_blocks(csr, min_size=1, stats=stats)
    else:
        dense = maximal_cliques_bitset(csr, min_size=1, stats=stats)
    return [frozenset(csr.to_labels(clique)) for clique in dense]


def max_clique_size(graph: Graph) -> int:
    """Size of the largest clique (the clique number omega(G))."""
    return max((len(c) for c in maximal_cliques(graph)), default=0)


def k_cliques(graph: Graph, k: int) -> Iterator[frozenset[Hashable]]:
    """Yield every complete subgraph on exactly ``k`` nodes.

    This enumerates the raw k-cliques of the community definition
    (Expression 3.3); it is the oracle behind the direct CPM variant.
    The recursion extends partial cliques only with higher-ordered
    common neighbors, so each k-clique is produced exactly once.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    order = degeneracy_ordering(graph)
    rank = {node: i for i, node in enumerate(order)}

    def extend(members: list[Hashable], candidates: set[Hashable]) -> Iterator[frozenset[Hashable]]:
        if len(members) == k:
            yield frozenset(members)
            return
        # Prune: not enough candidates to complete the clique.
        if len(members) + len(candidates) < k:
            return
        for node in sorted(candidates, key=rank.__getitem__):
            later = {v for v in graph.neighbors(node) & candidates if rank[v] > rank[node]}
            members.append(node)
            yield from extend(members, later)
            members.pop()

    if k == 1:
        for node in order:
            yield frozenset((node,))
        return
    for node in order:
        later = {v for v in graph.neighbors(node) if rank[v] > rank[node]}
        yield from extend([node], later)


class CliqueCensus:
    """Summary statistics over a set of maximal cliques.

    Mirrors the paper's Section 3 report: total count, the size
    histogram, and the share of cliques inside a size band (the paper:
    88% of the 2.7M maximal cliques had sizes in [18, 28]).
    """

    def __init__(self, cliques: list[frozenset[Hashable]]) -> None:
        self._histogram = Counter(len(c) for c in cliques)
        self._total = len(cliques)

    @property
    def total(self) -> int:
        return self._total

    @property
    def histogram(self) -> dict[int, int]:
        """Clique size -> number of maximal cliques of that size."""
        return dict(sorted(self._histogram.items()))

    @property
    def max_size(self) -> int:
        return max(self._histogram, default=0)

    def share_in_band(self, lo: int, hi: int) -> float:
        """Fraction of maximal cliques with size in [lo, hi]."""
        if self._total == 0:
            return 0.0
        in_band = sum(count for size, count in self._histogram.items() if lo <= size <= hi)
        return in_band / self._total

    def dominant_band(self, width: int) -> tuple[int, int]:
        """The size window of the given width covering the most cliques.

        One sliding-window pass over ``[1, max_size]``: each step drops
        the size leaving the window and adds the one entering it, so the
        scan is O(max_size) instead of O(max_size × width).  Ties keep
        the lowest window (strictly-greater update), matching how the
        paper reports its [18, 28] band.
        """
        if not self._histogram:
            return (0, 0)
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        hist = self._histogram
        cover = sum(hist.get(size, 0) for size in range(1, width + 1))
        best_lo, best_cover = 1, cover
        for lo in range(2, self.max_size + 1):
            cover += hist.get(lo + width - 1, 0) - hist.get(lo - 1, 0)
            if cover > best_cover:
                best_lo, best_cover = lo, cover
        return (best_lo, best_lo + width - 1)


def clique_size_census(graph: Graph) -> CliqueCensus:
    """Convenience: enumerate maximal cliques and summarise their sizes."""
    return CliqueCensus(maximal_cliques(graph))
