"""Guided tour of the library, start to finish.

A narrated walkthrough of the whole API in execution order — the
quickest way to learn how the pieces fit.  Each step prints what it
did; total runtime is a few seconds.

Run:  python examples/tutorial.py
"""

from repro import (
    AnalysisContext,
    CommunityTree,
    Graph,
    LightweightParallelCPM,
    generate_topology,
    verify_nesting,
)
from repro.analysis import (
    CommunityCensus,
    IXPShareAnalysis,
    community_graph_stats,
    derive_bands,
)
from repro.core import k_clique_communities, save_hierarchy
from repro.topology import GeneratorConfig


def step(n: int, title: str) -> None:
    """Print a numbered section header."""
    print(f"\n{'=' * 60}\nStep {n}: {title}\n{'=' * 60}")


def main() -> None:
    step(1, "k-clique communities on a toy graph")
    g = Graph([(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (3, 4), (2, 4)])
    cover = k_clique_communities(g, 3)
    print(f"graph with {g.number_of_nodes} nodes -> "
          f"{len(cover)} 3-clique community: {sorted(cover[0].members)}")

    step(2, "a synthetic Internet")
    dataset = generate_topology(GeneratorConfig.tiny(), seed=7)
    print(dataset)
    print(f"tags: {dataset.tag_summary().ixp.on_ixp} on-IXP ASes; "
          f"IXPs include {dataset.ixps.names()[:4]}...")

    step(3, "the Lightweight Parallel CPM")
    cpm = LightweightParallelCPM(dataset.graph)
    hierarchy = cpm.run()
    print(f"{cpm.stats.n_cliques} maximal cliques -> "
          f"{hierarchy.total_communities} communities over k in "
          f"[{hierarchy.min_k}, {hierarchy.max_k}] "
          f"in {cpm.stats.total_seconds:.2f}s")

    step(4, "the nesting theorem, machine-checked")
    print(f"verified {verify_nesting(hierarchy)} containment edges "
          "(Theorem 1 of the paper)")

    step(5, "the community tree")
    tree = CommunityTree(hierarchy)
    print(f"{tree}")
    print(f"main chain sizes: "
          f"{[node.community.size for node in tree.main_chain()][:8]}...")
    print(f"parallel branches: "
          f"{[(b[0].k, b[-1].k) for b in tree.parallel_branches()[:5]]}")

    step(6, "where is one AS in the structure?")
    carrier = next(iter(tree.apex.community.members))
    memberships = hierarchy.membership_of(carrier)
    print(f"AS{carrier} belongs to communities at every k in "
          f"[{min(memberships)}, {max(memberships)}] — a crown carrier")

    step(7, "the paper's analyses")
    context = AnalysisContext(dataset=dataset, hierarchy=hierarchy, tree=tree)
    census = CommunityCensus(hierarchy)
    print(f"Figure 4.1 series starts {census.series()[:5]}...")
    share = IXPShareAnalysis(context)
    bands = derive_bands(share, fallback=(6, 10))
    print(f"bands: root<=k{bands.root_max}, crown>=k{bands.crown_min}; "
          f"full-share communities: {len(share.full_share_communities())}")

    step(8, "CPM statistical signatures")
    stats = community_graph_stats(hierarchy[4])
    print(f"at k=4: {stats.n_communities} communities, "
          f"{stats.overlapping_nodes()} ASes in several at once, "
          f"max membership {stats.max_membership}")

    step(9, "persisting results")
    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as tmp:
        dataset.save(Path(tmp) / "dataset")
        save_hierarchy(hierarchy, Path(tmp) / "communities.json")
        files = sorted(p.name for p in Path(tmp).rglob("*") if p.is_file())
        print(f"wrote {files}")

    print("\ndone — see the other examples for deeper scenarios")


if __name__ == "__main__":
    main()
