"""Edge deltas in, community change records out.

The value objects of the incremental API (:mod:`repro.incremental`):

* :class:`EdgeDelta` — one batch of edge insertions/deletions, the
  unit a :class:`~.session.CPMSession` applies atomically;
* :class:`CommunityChange` — one community-level difference between
  the covers before and after a batch, classified per the Palla
  et al. evolution taxonomy (born / died / grown / shrunk / merged /
  split);
* :class:`CPMUpdate` — everything one ``apply`` call changed: edge and
  clique counts, the union-find orders that had to be re-percolated,
  and the per-k :class:`CommunityChange` records.

:func:`diff_covers` — the classifier shared by the session and the
:class:`~repro.evolution.EvolutionTracker` (both strategies emit
:class:`CPMUpdate` records through it) — compares two covers of the
same order and reports only what changed: communities whose member
sets are identical on both sides are matched exactly first and never
produce a record.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence
from dataclasses import dataclass

from ..compare.covers import match_covers
from ..graph.undirected import Graph

__all__ = ["EdgeDelta", "CommunityChange", "CPMUpdate", "diff_covers"]

#: The change kinds :func:`diff_covers` can emit, in report order.
CHANGE_KINDS = ("born", "died", "grown", "shrunk", "merged", "split")


def _edge_key(edge: tuple[Hashable, Hashable]) -> tuple[str, str]:
    """Order-independent sort key of one undirected edge."""
    a, b = sorted(map(repr, edge))
    return (a, b)


def _normalize(
    edges: Iterable[tuple[Hashable, Hashable]], label: str
) -> tuple[tuple[Hashable, Hashable], ...]:
    """Validate and freeze one side of a delta (no self-loops, no dups)."""
    out = []
    seen = set()
    for edge in edges:
        u, v = edge
        if u == v:
            raise ValueError(f"self-loop {edge!r} in {label}: AS links join distinct ASes")
        key = frozenset((u, v))
        if key in seen:
            raise ValueError(f"duplicate edge {edge!r} in {label}")
        seen.add(key)
        out.append((u, v))
    return tuple(out)


@dataclass(frozen=True)
class EdgeDelta:
    """One batch of edge insertions and deletions.

    The unit of change a :class:`~.session.CPMSession` applies:
    deletions are processed first, then insertions, each edge
    sequentially (the session's invariants hold between edges, so the
    result is independent of the order within each list).  Validation
    is structural only — whether each edge is actually applicable
    (insertions absent, deletions present) is checked by the session
    against its graph before any mutation, so a bad batch never leaves
    the session half-applied.

    >>> delta = EdgeDelta(insertions=[(1, 2)], deletions=[(3, 4)])
    >>> delta.n_edges
    2
    """

    insertions: tuple[tuple[Hashable, Hashable], ...] = ()
    deletions: tuple[tuple[Hashable, Hashable], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "insertions", _normalize(self.insertions, "insertions")
        )
        object.__setattr__(self, "deletions", _normalize(self.deletions, "deletions"))
        inserted = {frozenset(edge) for edge in self.insertions}
        for edge in self.deletions:
            if frozenset(edge) in inserted:
                raise ValueError(
                    f"edge {edge!r} appears in both insertions and deletions; "
                    "split contradictory changes into separate batches"
                )

    @classmethod
    def between(cls, old: Graph, new: Graph) -> "EdgeDelta":
        """The delta turning ``old``'s edge set into ``new``'s.

        Snapshot sequences (e.g. :class:`~repro.evolution
        .TopologyEvolution`) feed the incremental tracker through this:
        ``apply(EdgeDelta.between(s[t], s[t+1]))`` advances a session
        from one snapshot to the next.  Edges are ordered
        deterministically (by repr) so the same snapshot pair always
        yields the same delta.
        """
        old_edges = {frozenset(edge) for edge in old.edges()}
        new_edges = {frozenset(edge) for edge in new.edges()}
        insertions = sorted(
            (tuple(sorted(edge, key=repr)) for edge in new_edges - old_edges),
            key=_edge_key,
        )
        deletions = sorted(
            (tuple(sorted(edge, key=repr)) for edge in old_edges - new_edges),
            key=_edge_key,
        )
        return cls(insertions=tuple(insertions), deletions=tuple(deletions))

    @property
    def n_edges(self) -> int:
        """Total number of edge changes in the batch."""
        return len(self.insertions) + len(self.deletions)

    def __bool__(self) -> bool:
        return self.n_edges > 0


@dataclass(frozen=True)
class CommunityChange:
    """One community-level difference between consecutive covers.

    ``kind`` is one of :data:`CHANGE_KINDS`.  Labels are paper-style
    ``k<k>id<n>`` identifiers into the respective cover: ``old_labels``
    index the cover before the batch, ``new_labels`` the cover after.
    Births have no ``old_labels``, deaths no ``new_labels``; merges
    list every absorbed predecessor, splits every heir.  ``jaccard``
    carries the match score for grown/shrunk records (0.0 where no
    pairwise match is involved).
    """

    kind: str
    k: int
    old_labels: tuple[str, ...]
    new_labels: tuple[str, ...]
    size_before: int
    size_after: int
    jaccard: float = 0.0


@dataclass(frozen=True)
class CPMUpdate:
    """What one :meth:`~.session.CPMSession.apply` call changed.

    ``affected_orders`` are the union-find orders the session had to
    re-percolate (every order up to the largest clique born or retired
    by the batch — higher orders provably cannot change and their
    cached groups are reused).  ``changes`` holds one record per
    community-level difference; orders whose covers came out identical
    contribute nothing.
    """

    batch: int
    inserted_edges: int
    deleted_edges: int
    cliques_born: int
    cliques_retired: int
    affected_orders: tuple[int, ...]
    changes: tuple[CommunityChange, ...]

    @property
    def changed_orders(self) -> tuple[int, ...]:
        """The orders with at least one community change, ascending."""
        return tuple(sorted({change.k for change in self.changes}))

    def by_kind(self) -> dict[str, int]:
        """Change kind -> number of records (all kinds present)."""
        counts = {kind: 0 for kind in CHANGE_KINDS}
        for change in self.changes:
            counts[change.kind] += 1
        return counts

    def summary(self) -> str:
        """One log-friendly line: edge, clique and community movement."""
        kinds = ", ".join(
            f"{kind}={count}" for kind, count in self.by_kind().items() if count
        )
        return (
            f"batch {self.batch}: +{self.inserted_edges}/-{self.deleted_edges} edges, "
            f"+{self.cliques_born}/-{self.cliques_retired} cliques, "
            f"{len(self.affected_orders)} orders re-percolated"
            + (f" ({kinds})" if kinds else " (no community changes)")
        )


def diff_covers(
    k: int,
    before: Sequence[frozenset],
    after: Sequence[frozenset],
    *,
    absorb_threshold: float = 0.5,
) -> tuple[CommunityChange, ...]:
    """Classify the differences between two covers of order ``k``.

    ``before`` and ``after`` must be in canonical cover order (index n
    = label ``k<k>id<n>``), which is how :class:`~repro.core
    .communities.CommunityCover` stores them.  Communities present
    identically on both sides are removed first (exact member-set
    matching, duplicates paired by index); the remainder is classified:

    * **merged** — a new community absorbing >= ``absorb_threshold`` of
      two or more old ones; **split** — the symmetric case;
    * **grown** / **shrunk** — best-Jaccard greedy pairs among the
      remainder (ties toward *grown* on equal sizes, which can happen
      when membership churned without a net size change);
    * **born** / **died** — whatever remains unpaired.

    Merge/split detection runs on the changed remainder only: a
    community that survived byte-identical was by construction neither
    absorbed nor redistributed.
    """
    index_of: dict[frozenset, list[int]] = {}
    for j, members in enumerate(after):
        index_of.setdefault(members, []).append(j)
    rem_before: list[int] = []
    matched_after: set[int] = set()
    for i, members in enumerate(before):
        slots = index_of.get(members)
        if slots:
            matched_after.add(slots.pop(0))
        else:
            rem_before.append(i)
    rem_after = [j for j in range(len(after)) if j not in matched_after]
    if not rem_before and not rem_after:
        return ()

    changes: list[CommunityChange] = []
    before_sets = [before[i] for i in rem_before]
    after_sets = [after[j] for j in rem_after]

    for pos_j, members in zip(rem_after, after_sets):
        absorbed = tuple(
            rem_before[pos_i]
            for pos_i, earlier in enumerate(before_sets)
            if earlier and len(earlier & members) / len(earlier) >= absorb_threshold
        )
        if len(absorbed) >= 2:
            changes.append(
                CommunityChange(
                    kind="merged",
                    k=k,
                    old_labels=tuple(f"k{k}id{i}" for i in absorbed),
                    new_labels=(f"k{k}id{pos_j}",),
                    size_before=max(len(before[i]) for i in absorbed),
                    size_after=len(members),
                )
            )
    for pos_i, earlier in zip(rem_before, before_sets):
        heirs = tuple(
            rem_after[pos_j]
            for pos_j, members in enumerate(after_sets)
            if members and len(members & earlier) / len(members) >= absorb_threshold
        )
        if len(heirs) >= 2:
            changes.append(
                CommunityChange(
                    kind="split",
                    k=k,
                    old_labels=(f"k{k}id{pos_i}",),
                    new_labels=tuple(f"k{k}id{j}" for j in heirs),
                    size_before=len(earlier),
                    size_after=max(len(after[j]) for j in heirs),
                )
            )

    result = match_covers(before_sets, after_sets)
    paired_before: set[int] = set()
    paired_after: set[int] = set()
    for pos_i, pos_j, score in result.pairs:
        if score <= 0.0:
            continue
        paired_before.add(pos_i)
        paired_after.add(pos_j)
        size_before = len(before_sets[pos_i])
        size_after = len(after_sets[pos_j])
        changes.append(
            CommunityChange(
                kind="grown" if size_after >= size_before else "shrunk",
                k=k,
                old_labels=(f"k{k}id{rem_before[pos_i]}",),
                new_labels=(f"k{k}id{rem_after[pos_j]}",),
                size_before=size_before,
                size_after=size_after,
                jaccard=score,
            )
        )
    for pos_i, i in enumerate(rem_before):
        if pos_i not in paired_before:
            changes.append(
                CommunityChange(
                    kind="died",
                    k=k,
                    old_labels=(f"k{k}id{i}",),
                    new_labels=(),
                    size_before=len(before[i]),
                    size_after=0,
                )
            )
    for pos_j, j in enumerate(rem_after):
        if pos_j not in paired_after:
            changes.append(
                CommunityChange(
                    kind="born",
                    k=k,
                    old_labels=(),
                    new_labels=(f"k{k}id{j}",),
                    size_before=0,
                    size_after=len(after[j]),
                )
            )
    order = {kind: rank for rank, kind in enumerate(CHANGE_KINDS)}
    changes.sort(key=lambda c: (order[c.kind], c.old_labels, c.new_labels))
    return tuple(changes)
