"""EAGLE-style agglomerative baseline ([27] Shen, Cheng, Cai, Hu).

EAGLE (agglomerativE hierarchicAl clusterinG based on maximaL cliquE)
starts from the maximal cliques of size >= a threshold (plus subordinate
vertices — nodes in no retained clique — as singletons), repeatedly
merges the most similar pair, and cuts the dendrogram at the level of
maximum extended modularity EQ.

The paper avoids EAGLE because (a) the clique-size threshold discards
the small cliques that turn out to be root/regional communities, and
(b) it is slower than CPM.  Both critiques are demonstrated by the
baseline-contrast benchmark: the small regional cliques present in the
CPM cover are absent from EAGLE's, and its O(n^2 log n) merge loop
dominates runtime at equal input size.

Simplifications relative to the original (documented deviations): the
pair similarity is the overlap fraction |A ∩ B| / min(|A|, |B|) instead
of the EQ-delta heuristic, which changes merge order but not the
character of the output; EQ-based cut selection is retained.
"""

from __future__ import annotations

import heapq
from collections.abc import Hashable
from dataclasses import dataclass

from ..core.cliques import maximal_cliques
from ..graph.undirected import Graph

__all__ = ["EagleConfig", "EagleResult", "eagle", "extended_modularity"]


@dataclass(frozen=True)
class EagleConfig:
    min_clique_size: int = 4
    #: Stop merging when the best similarity drops below this.
    min_similarity: float = 0.05


@dataclass
class EagleResult:
    communities: list[frozenset]
    eq: float
    n_initial_cliques: int
    n_subordinate_vertices: int
    n_merges: int


def extended_modularity(graph: Graph, cover: list[frozenset]) -> float:
    """EQ of Shen et al.: modularity generalised to overlapping covers.

    EQ = (1/2m) * sum_C sum_{i,j in C} (1/(O_i * O_j)) * (A_ij - d_i d_j / 2m)

    where O_i counts the communities containing node i.
    """
    m = graph.number_of_edges
    if m == 0 or not cover:
        return 0.0
    occurrences: dict[Hashable, int] = {}
    for community in cover:
        for node in community:
            occurrences[node] = occurrences.get(node, 0) + 1
    total = 0.0
    two_m = 2.0 * m
    for community in cover:
        members = sorted(community, key=repr)
        for a_idx, i in enumerate(members):
            d_i = graph.degree(i)
            o_i = occurrences[i]
            for j in members[a_idx + 1 :]:
                a_ij = 1.0 if graph.has_edge(i, j) else 0.0
                term = (a_ij - d_i * graph.degree(j) / two_m) / (o_i * occurrences[j])
                total += 2.0 * term  # both (i,j) and (j,i)
    return total / two_m


def eagle(graph: Graph, config: EagleConfig | None = None) -> EagleResult:
    """Run the agglomerative pipeline and cut at maximum EQ."""
    config = config or EagleConfig()
    cliques = [
        c for c in maximal_cliques(graph, min_size=2) if len(c) >= config.min_clique_size
    ]
    covered: set[Hashable] = set().union(*cliques) if cliques else set()
    subordinates = [frozenset((n,)) for n in graph.nodes() if n not in covered]
    communities: list[frozenset | None] = list(cliques) + list(subordinates)

    # Similarity heap over pairs sharing at least one node.
    index: dict[Hashable, list[int]] = {}
    for cid, community in enumerate(communities):
        for node in community:  # type: ignore[union-attr]
            index.setdefault(node, []).append(cid)
    heap: list[tuple[float, int, int]] = []
    seen_pairs: set[tuple[int, int]] = set()
    for cids in index.values():
        for x in range(len(cids)):
            for y in range(x + 1, len(cids)):
                pair = (min(cids[x], cids[y]), max(cids[x], cids[y]))
                if pair not in seen_pairs:
                    seen_pairs.add(pair)
                    sim = _similarity(communities[pair[0]], communities[pair[1]])
                    heapq.heappush(heap, (-sim, pair[0], pair[1]))

    best_cover = [c for c in communities if c is not None]
    best_eq = extended_modularity(graph, best_cover)
    n_merges = 0
    while heap:
        neg_sim, a, b = heapq.heappop(heap)
        if -neg_sim < config.min_similarity:
            break
        if communities[a] is None or communities[b] is None:
            continue
        merged = communities[a] | communities[b]  # type: ignore[operator]
        communities[a] = None
        communities[b] = None
        communities.append(merged)
        new_id = len(communities) - 1
        n_merges += 1
        # New similarities against every live community sharing a node.
        neighbors: set[int] = set()
        for node in merged:
            for cid in index.setdefault(node, []):
                if communities[cid] is not None and cid != new_id:
                    neighbors.add(cid)
            index[node].append(new_id)
        for cid in neighbors:
            sim = _similarity(merged, communities[cid])
            heapq.heappush(heap, (-sim, min(cid, new_id), max(cid, new_id)))
        cover = [c for c in communities if c is not None]
        eq = extended_modularity(graph, cover)
        if eq > best_eq:
            best_eq = eq
            best_cover = cover
    return EagleResult(
        communities=sorted(best_cover, key=len, reverse=True),
        eq=best_eq,
        n_initial_cliques=len(cliques),
        n_subordinate_vertices=len(subordinates),
        n_merges=n_merges,
    )


def _similarity(a: frozenset | None, b: frozenset | None) -> float:
    if not a or not b:
        return 0.0
    return len(a & b) / min(len(a), len(b))
