"""Unit tests for the elementary graph generators."""

import random

import pytest

from repro.graph import (
    barabasi_albert,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    is_connected,
    overlapping_cliques,
    path_graph,
    ring_of_cliques,
    star_graph,
)


class TestDeterministicGenerators:
    def test_complete_graph_edge_count(self):
        g = complete_graph(6)
        assert g.number_of_edges == 15
        assert g.is_clique(range(6))

    def test_complete_graph_on_explicit_nodes(self):
        g = complete_graph(["x", "y", "z"])
        assert g.is_clique(["x", "y", "z"])

    def test_path_graph(self):
        g = path_graph(5)
        assert g.number_of_edges == 4
        assert g.degree(0) == 1 and g.degree(2) == 2

    def test_cycle_graph(self):
        g = cycle_graph(5)
        assert g.number_of_edges == 5
        assert all(g.degree(n) == 2 for n in g.nodes())

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_star_graph(self):
        g = star_graph(7)
        assert g.degree(0) == 7
        assert g.number_of_edges == 7


class TestRandomGenerators:
    def test_erdos_renyi_bounds(self):
        rng = random.Random(0)
        empty = erdos_renyi(10, 0.0, rng)
        full = erdos_renyi(10, 1.0, rng)
        assert empty.number_of_edges == 0
        assert full.number_of_edges == 45

    def test_erdos_renyi_bad_p(self):
        with pytest.raises(ValueError):
            erdos_renyi(5, 1.5, random.Random(0))

    def test_erdos_renyi_deterministic(self):
        a = erdos_renyi(20, 0.3, random.Random(9))
        b = erdos_renyi(20, 0.3, random.Random(9))
        assert {frozenset(e) for e in a.edges()} == {frozenset(e) for e in b.edges()}

    def test_barabasi_albert_structure(self):
        g = barabasi_albert(50, 3, random.Random(1))
        assert g.number_of_nodes == 50
        assert is_connected(g)
        # Each new node adds exactly m edges.
        assert g.number_of_edges == 6 + (50 - 4) * 3

    def test_barabasi_albert_bad_m(self):
        with pytest.raises(ValueError):
            barabasi_albert(5, 5, random.Random(0))


class TestCliqueOracles:
    def test_ring_of_cliques(self):
        g = ring_of_cliques(4, 5)
        assert g.number_of_nodes == 20
        assert g.number_of_edges == 4 * 10 + 4
        assert is_connected(g)
        assert g.is_clique(range(5))

    def test_ring_of_one_clique(self):
        g = ring_of_cliques(1, 4)
        assert g.number_of_edges == 6

    def test_ring_invalid(self):
        with pytest.raises(ValueError):
            ring_of_cliques(0, 5)

    def test_overlapping_cliques_chain(self):
        g = overlapping_cliques([5, 5, 5], 4)
        # Each new clique adds exactly one fresh node.
        assert g.number_of_nodes == 7
        assert g.is_clique(range(5))

    def test_overlapping_cliques_disjoint(self):
        g = overlapping_cliques([3, 3], 0)
        assert g.number_of_nodes == 6
        assert not is_connected(g)

    def test_overlap_must_be_less_than_size(self):
        with pytest.raises(ValueError):
            overlapping_cliques([3, 3], 3)
