"""Unit tests for the community metrics (Figures 4.3 / 4.4)."""

import pytest

from repro.core import (
    Community,
    average_odf,
    community_metrics,
    link_density,
    node_internal_fraction,
    node_odf,
    overlap,
    overlap_fraction,
)
from repro.graph import Graph, complete_graph, path_graph, star_graph


class TestLinkDensity:
    def test_full_mesh(self):
        assert link_density(complete_graph(5), range(5)) == 1.0

    def test_chain(self):
        assert link_density(path_graph(4), range(4)) == pytest.approx(3 / 6)

    def test_subset(self):
        g = complete_graph(4)
        assert link_density(g, [0, 1]) == 1.0

    def test_degenerate_sets(self):
        g = complete_graph(3)
        assert link_density(g, [0]) == 0.0
        assert link_density(g, []) == 0.0


class TestOdf:
    def test_fully_internal_node(self):
        g = complete_graph(4)
        assert node_odf(g, 0, {0, 1, 2, 3}) == 0.0
        assert node_internal_fraction(g, 0, {0, 1, 2, 3}) == 1.0

    def test_fully_external_hub(self):
        g = star_graph(5)
        # Hub in a "community" containing none of its leaves.
        assert node_odf(g, 0, {0}) == 1.0

    def test_mixed(self):
        g = Graph([(1, 2), (1, 3), (1, 4), (1, 5)])
        assert node_odf(g, 1, {1, 2, 3}) == pytest.approx(0.5)

    def test_isolated_node(self):
        g = Graph()
        g.add_node(7)
        assert node_odf(g, 7, {7}) == 0.0

    def test_average_odf_tier1_mesh_with_customers(self):
        """The Chapter 1 motivating example: a full mesh whose members
        have big external customer cones scores high ODF."""
        g = complete_graph(4)
        next_node = 100
        for hub in range(4):
            for _ in range(12):
                g.add_edge(hub, next_node)
                next_node += 1
        odf = average_odf(g, range(4))
        assert odf == pytest.approx(12 / 15)

    def test_average_odf_empty(self):
        assert average_odf(complete_graph(3), []) == 0.0


class TestOverlapHelpers:
    def test_overlap_functions_delegate(self):
        a = Community(k=3, index=0, members=frozenset({1, 2, 3, 4}))
        b = Community(k=3, index=1, members=frozenset({3, 4, 5}))
        assert overlap(a, b) == 2
        assert overlap_fraction(a, b) == pytest.approx(2 / 3)


class TestCommunityMetrics:
    def test_record_fields(self):
        g = complete_graph(5)
        c = Community(k=5, index=0, members=frozenset(range(5)))
        m = community_metrics(g, c)
        assert m.label == "k5id0"
        assert m.size == 5
        assert m.link_density == 1.0
        assert m.average_odf == 0.0
        assert m.as_row() == ("k5id0", 5, 5, 1.0, 0.0)
