"""Table 2.2 — national / continental / worldwide / unknown AS counts.

Paper (35,390 ASes): 31,228 / 1,115 / 1,568 / 1,479.
Shape to hold: national ASes dominate (~88%), with small continental,
worldwide and unknown minorities; unknown ASes are low-degree stubs.
"""

from repro.report.figures import ascii_table
from repro.topology.tags import summarize_tags


def test_table_2_2_geo_tagging(benchmark, dataset, emit):
    summary = benchmark(
        lambda: summarize_tags(dataset.graph.nodes(), dataset.ixps, dataset.geography)
    )
    geo = summary.geo
    table = ascii_table(
        ["National", "Continental", "Worldwide", "Unknown"],
        [[geo.national, geo.continental, geo.worldwide, geo.unknown]],
        title=(
            "Table 2.2: Summary of tagging results "
            "(paper: 31,228 / 1,115 / 1,568 / 1,479)"
        ),
    )
    emit("table_2_2", table)
    assert geo.national > 0.8 * geo.total  # national dominance
    assert geo.continental > 0 and geo.worldwide > 0 and geo.unknown > 0
