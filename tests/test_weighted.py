"""Unit tests for weighted graphs and weighted clique percolation."""

import pytest

from repro.core import intensity_sweep, k_clique_communities, weighted_k_clique_communities
from repro.graph import GraphError, WeightedGraph


def _weighted_clique(nodes, weight: float) -> list[tuple]:
    nodes = list(nodes)
    return [(u, v, weight) for i, u in enumerate(nodes) for v in nodes[i + 1 :]]


class TestWeightedGraph:
    def test_default_weight(self):
        g = WeightedGraph()
        g.add_edge(1, 2)
        assert g.weight(1, 2) == 1.0

    def test_explicit_weight_round_trip(self):
        g = WeightedGraph([(1, 2, 3.5)])
        assert g.weight(1, 2) == 3.5
        assert g.weight(2, 1) == 3.5

    def test_non_positive_weight_rejected(self):
        g = WeightedGraph()
        with pytest.raises(GraphError):
            g.add_edge(1, 2, 0.0)
        with pytest.raises(GraphError):
            g.add_edge(1, 2, -1.0)

    def test_missing_edge_weight_raises(self):
        with pytest.raises(GraphError):
            WeightedGraph().weight(1, 2)

    def test_set_weight(self):
        g = WeightedGraph([(1, 2, 1.0)])
        g.set_weight(1, 2, 9.0)
        assert g.weight(1, 2) == 9.0
        with pytest.raises(GraphError):
            g.set_weight(1, 3, 2.0)

    def test_remove_edge_clears_weight(self):
        g = WeightedGraph([(1, 2, 2.0)])
        g.remove_edge(1, 2)
        assert g.total_weight() == 0.0

    def test_remove_node_clears_weights(self):
        g = WeightedGraph([(1, 2, 2.0), (1, 3, 3.0), (2, 3, 4.0)])
        g.remove_node(1)
        assert g.total_weight() == 4.0

    def test_strength(self):
        g = WeightedGraph([(1, 2, 2.0), (1, 3, 3.0)])
        assert g.strength(1) == 5.0
        assert g.strength(2) == 2.0

    def test_intensity_geometric_mean(self):
        g = WeightedGraph([(1, 2, 1.0), (2, 3, 4.0), (1, 3, 2.0)])
        assert g.intensity([1, 2, 3]) == pytest.approx(2.0)

    def test_intensity_requires_clique(self):
        g = WeightedGraph([(1, 2, 1.0), (2, 3, 1.0)])
        with pytest.raises(GraphError):
            g.intensity([1, 2, 3])

    def test_intensity_degenerate(self):
        g = WeightedGraph([(1, 2, 4.0)])
        assert g.intensity([1]) == 0.0
        assert g.intensity([1, 2]) == 4.0

    def test_copy_preserves_weights(self):
        g = WeightedGraph([(1, 2, 2.5)])
        dup = g.copy()
        assert dup.weight(1, 2) == 2.5
        dup.set_weight(1, 2, 9.0)
        assert g.weight(1, 2) == 2.5

    def test_unweighted_algorithms_work(self):
        """Every Graph algorithm runs on WeightedGraph unchanged."""
        g = WeightedGraph(_weighted_clique(range(4), 2.0))
        cover = k_clique_communities(g, 3)
        assert len(cover) == 1


class TestWeightedCPM:
    @pytest.fixture()
    def two_zone_graph(self):
        """A heavy triangle zone chained to a light one."""
        g = WeightedGraph(_weighted_clique(range(4), 2.0))
        for u, v, w in _weighted_clique(range(3, 7), 0.1):
            if not g.has_edge(u, v):
                g.add_edge(u, v, w)
        return g

    def test_zero_threshold_recovers_unweighted(self, two_zone_graph):
        weighted = weighted_k_clique_communities(two_zone_graph, 3, 0.0)
        unweighted = k_clique_communities(two_zone_graph, 3)
        assert sorted(sorted(c.members) for c in weighted) == sorted(
            sorted(c.members) for c in unweighted
        )

    def test_threshold_drops_light_zone(self, two_zone_graph):
        cover = weighted_k_clique_communities(two_zone_graph, 3, 1.0)
        assert len(cover) == 1
        assert set(cover[0].members) == set(range(4))

    def test_threshold_kills_everything(self, two_zone_graph):
        assert len(weighted_k_clique_communities(two_zone_graph, 3, 100.0)) == 0

    def test_boundary_cliques_split_communities(self):
        """Intensity filtering can split one unweighted community."""
        g = WeightedGraph(_weighted_clique(range(3), 2.0))
        for u, v, w in _weighted_clique(range(2, 5), 2.0):
            if not g.has_edge(u, v):
                g.add_edge(u, v, w)
        # Bridge the zones through a light middle triangle.
        g.add_edge(1, 3, 0.01)
        unweighted = k_clique_communities(g, 3)
        assert len(unweighted) == 1
        weighted = weighted_k_clique_communities(g, 3, 1.0)
        assert len(weighted) == 2

    def test_validation(self, two_zone_graph):
        with pytest.raises(ValueError):
            weighted_k_clique_communities(two_zone_graph, 1)
        with pytest.raises(ValueError):
            weighted_k_clique_communities(two_zone_graph, 3, -0.5)

    def test_intensity_sweep_monotone(self, two_zone_graph):
        covers = intensity_sweep(two_zone_graph, 3, [0.0, 0.5, 1.0, 10.0])
        member_counts = [
            sum(c.size for c in cover) for cover in covers.values()
        ]
        assert member_counts == sorted(member_counts, reverse=True)
        assert len(covers[10.0]) == 0

    def test_intensity_sweep_matches_single_calls(self, two_zone_graph):
        covers = intensity_sweep(two_zone_graph, 3, [0.0, 1.0])
        for threshold, cover in covers.items():
            single = weighted_k_clique_communities(two_zone_graph, 3, threshold)
            assert sorted(sorted(c.members) for c in cover) == sorted(
                sorted(c.members) for c in single
            )

    def test_sweep_validation(self, two_zone_graph):
        with pytest.raises(ValueError):
            intensity_sweep(two_zone_graph, 3, [-1.0])
