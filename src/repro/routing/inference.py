"""Relationship inference from AS paths (Gao's algorithm).

The business relationships of the real Internet are not published;
they are *inferred* from observed BGP paths.  Gao's classic algorithm
(IEEE/ACM ToN 2001) exploits the valley-free property in reverse: on
any valid path there is a single summit — the highest point of the
uphill/downhill walk — so, taking the highest-degree AS of each path
as the summit, every hop before it votes customer→provider and every
hop after it votes provider→customer.  Edges with enough conflicting
votes are siblings in Gao's original; the common simplification used
here classifies near-balanced, summit-adjacent edges as peering.

This module exists as the measurement-pipeline counterpart of
:mod:`repro.routing.relationships` (which knows the ground truth):
running Gao inference on the policy paths of
:mod:`repro.routing.observation` and scoring it against the generator's
ground truth reproduces the validation the original paper performed
against internal AT&T data.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Hashable, Iterable
from dataclasses import dataclass

from ..graph.undirected import Graph
from .relationships import Relationship, RelationshipMap

__all__ = ["GaoInference", "InferenceScore", "infer_from_paths", "score_inference"]


@dataclass
class GaoInference:
    """The inferred relationship map plus the raw transit votes."""

    relationships: RelationshipMap
    transit_votes: dict[tuple[Hashable, Hashable], int]
    n_paths: int
    n_edges: int


def infer_from_paths(
    paths: Iterable[tuple],
    graph: Graph,
    *,
    peer_degree_ratio: float = 2.0,
) -> GaoInference:
    """Run Gao-style inference over recorded AS paths.

    ``graph`` supplies node degrees (the summit heuristic).  Edges
    appearing on no path are left unannotated.  An edge whose endpoints
    were both observed only at path summits, with a degree ratio below
    ``peer_degree_ratio``, and with conflicting or no transit majority,
    is classified as peering.
    """
    degree = {node: graph.degree(node) for node in graph.nodes()}
    # transit_votes[(c, p)]: times c appeared to route through p uphill.
    transit_votes: Counter[tuple[Hashable, Hashable]] = Counter()
    summit_edges: set[frozenset] = set()
    seen_edges: set[frozenset] = set()
    n_paths = 0
    for path in paths:
        hops = list(path)
        if len(hops) < 2:
            continue
        n_paths += 1
        summit_index = max(range(len(hops)), key=lambda i: (degree.get(hops[i], 0), -i))
        for i, (u, v) in enumerate(zip(hops, hops[1:])):
            seen_edges.add(frozenset((u, v)))
            if i < summit_index:
                transit_votes[(u, v)] += 1      # u buys from v
            else:
                transit_votes[(v, u)] += 1      # v buys from u
        # The summit's two incident path edges are peering candidates.
        if 0 < summit_index:
            summit_edges.add(frozenset((hops[summit_index - 1], hops[summit_index])))
        if summit_index < len(hops) - 1:
            summit_edges.add(frozenset((hops[summit_index], hops[summit_index + 1])))

    relationships = RelationshipMap()
    for edge in seen_edges:
        u, v = sorted(edge, key=repr)
        up = transit_votes.get((u, v), 0)      # u -> v uphill votes
        down = transit_votes.get((v, u), 0)
        balanced = min(up, down) > 0 and max(up, down) < 3 * min(up, down)
        degrees_close = (
            max(degree.get(u, 1), degree.get(v, 1))
            <= peer_degree_ratio * min(degree.get(u, 1), degree.get(v, 1))
        )
        if edge in summit_edges and degrees_close and (balanced or up == down):
            relationships.add_peering(u, v)
        elif up >= down:
            relationships.add_customer_provider(u, v)
        else:
            relationships.add_customer_provider(v, u)
    return GaoInference(
        relationships=relationships,
        transit_votes=dict(transit_votes),
        n_paths=n_paths,
        n_edges=len(seen_edges),
    )


@dataclass(frozen=True)
class InferenceScore:
    """Accuracy of an inferred map against the ground truth."""

    n_scored_edges: int
    correct: int
    transit_direction_errors: int
    peer_confusions: int

    @property
    def accuracy(self) -> float:
        return self.correct / self.n_scored_edges if self.n_scored_edges else 0.0


def score_inference(
    inferred: RelationshipMap,
    truth: RelationshipMap,
    edges: Iterable[frozenset],
) -> InferenceScore:
    """Compare inferred vs true relationships over the given edges.

    An edge scores correct when the inferred kind matches exactly
    (including the customer/provider orientation).
    """
    scored = 0
    correct = 0
    direction_errors = 0
    peer_confusions = 0
    for edge in edges:
        u, v = tuple(edge)
        if (u, v) not in inferred or (u, v) not in truth:
            continue
        scored += 1
        inferred_kind = inferred.kind(u, v)
        true_kind = truth.kind(u, v)
        if inferred_kind is true_kind:
            correct += 1
        elif Relationship.PEER in (inferred_kind, true_kind):
            peer_confusions += 1
        else:
            direction_errors += 1
    return InferenceScore(
        n_scored_edges=scored,
        correct=correct,
        transit_direction_errors=direction_errors,
        peer_confusions=peer_confusions,
    )
