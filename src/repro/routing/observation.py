"""Policy-path observation: AS paths as a measurement substrate.

The real collections behind the paper's Topology dataset record **BGP
AS paths**, not shortest paths.  With the routing substrate available,
observation can be modelled at full fidelity: collectors hosted at
high-degree ASes record the valley-free path every AS uses towards
sampled destination prefixes.  The collected paths serve two purposes:

* their edges are the observed topology (compare with the BFS-based
  :mod:`repro.topology.sources` model);
* they are the input to relationship inference
  (:mod:`repro.routing.inference`), closing the loop the real pipelines
  run: paths → topology + relationships.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..graph.undirected import Graph
from .bgp import BGPSimulator
from .relationships import RelationshipMap

__all__ = ["PathCollection", "collect_policy_paths"]


@dataclass
class PathCollection:
    """AS paths recorded by a collector campaign."""

    paths: list[tuple] = field(default_factory=list)

    @property
    def n_paths(self) -> int:
        return len(self.paths)

    def edges(self) -> set[frozenset]:
        """Every AS adjacency appearing on a recorded path."""
        observed: set[frozenset] = set()
        for path in self.paths:
            for u, v in zip(path, path[1:]):
                observed.add(frozenset((u, v)))
        return observed

    def as_graph(self) -> Graph:
        """The observed topology graph (edges on any recorded path)."""
        graph = Graph()
        for edge in self.edges():
            u, v = tuple(edge)
            graph.add_edge(u, v)
        return graph

    def mean_length(self) -> float:
        """Mean AS-path length over the collection (0.0 when empty)."""
        if not self.paths:
            return 0.0
        return sum(len(p) - 1 for p in self.paths) / len(self.paths)


def collect_policy_paths(
    truth: Graph,
    relationships: RelationshipMap,
    *,
    n_collectors: int = 15,
    n_destinations: int = 60,
    seed: int = 0,
) -> PathCollection:
    """Record the policy paths from degree-top collectors to sampled
    destinations.

    Collectors sit at the ``n_collectors`` highest-degree ASes (the
    Route Views / RIS model); routing state is computed once per
    destination and read off for every collector, so the cost is
    ``n_destinations`` route computations.
    """
    rng = random.Random(f"{seed}:paths")
    nodes = sorted(truth.nodes())
    collectors = sorted(nodes, key=lambda n: (-truth.degree(n), n))[:n_collectors]
    destinations = rng.sample(nodes, min(n_destinations, len(nodes)))
    simulator = BGPSimulator(truth, relationships)
    collection = PathCollection()
    for destination in destinations:
        routes = simulator.routes_to(destination)
        for collector in collectors:
            route = routes.get(collector)
            if route is not None and route.length >= 1:
                collection.paths.append(route.path)
    return collection
