"""Extension — z-P functional cartography over a k-clique cover.

The paper cites the Guimerà-Amaral z-P analysis (used on AS communities
by Moon et al. [21]) but avoids it "since [it relies] on threshold
based on heuristics".  This bench runs the method anyway and
substantiates the objection: the hub census swings with the arbitrary
z threshold, while the k-clique community structure itself has no knob.
"""

from repro.analysis.zp import ZPAnalysis
from repro.report.figures import ascii_table


def test_zp_roles(benchmark, context, emit):
    cover = context.hierarchy[5]
    analysis = benchmark(lambda: ZPAnalysis(context.graph, cover))

    role_rows = [[role, count] for role, count in analysis.role_counts().items()]
    table = ascii_table(
        ["Guimera-Amaral role", "ASes"],
        role_rows,
        title="z-P roles over the k=5 community cover",
    )
    sensitivity = analysis.threshold_sensitivity((2.0, 2.5, 3.0))
    sensitivity_table = ascii_table(
        ["z threshold", "hub count"],
        [[z, n] for z, n in sensitivity.items()],
        title="Hub census vs the arbitrary z threshold (the paper's objection)",
    )
    emit("zp_roles", f"{table}\n\n{sensitivity_table}")

    assert sum(analysis.role_counts().values()) == len(analysis.records)
    counts = list(sensitivity.values())
    assert counts == sorted(counts, reverse=True)
    # The knob matters: moving the threshold changes the hub census.
    assert counts[0] != counts[-1] or counts[0] == 0
