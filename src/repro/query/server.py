"""Long-lived JSON lookup server over a query artifact.

The read path of the ROADMAP's "millions of users" north star: a
process that loads one immutable :class:`~repro.query.artifact
.QueryArtifact` (mmapped, so N processes share one page cache copy)
and answers the point queries of :class:`~repro.query.engine
.LookupEngine` over plain HTTP.  Pure stdlib — ``http.server`` with a
threading mixin — because the repo bakes in no third-party runtime
dependencies.

Endpoints (all ``GET``, all JSON)::

    /health                        liveness + artifact identity
    /artifact                      full metadata (fingerprint, bands,
                                   orders, counts)
    /membership?as=X               k -> community labels containing X
    /band?as=X                     crown/trunk/root position of X
    /lca?a=X&b=Y                   lowest common community of X and Y
    /top?metric=M&n=N[&k=K]        top-N by density / odf / size
    /community?label=L[&members=1] one community record (+ members)

Errors are JSON too: 400 for malformed parameters, 404 for unknown
ASes/labels/paths, never a traceback page.  AS parameters are parsed
as integers when possible (AS numbers are ints), falling back to the
raw string for string-labelled graphs.

Observability: the server owns (or is given) a ``repro.obs`` tracer
and registry; every request runs inside a ``query.request`` span
(path, status) wrapping the engine's ``query.lookup`` span, and the
``query.requests`` / ``query.errors`` counters accumulate alongside
the per-op ``query.lookup.*`` family.  A single lock serialises
request handling — lookups are microseconds, and it keeps the shared
span stack and counters coherent under the threaded listener.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from ..obs.metrics import MetricsRegistry
from ..obs.tracing import NULL_TRACER, Tracer
from .artifact import QueryArtifact
from .engine import LookupEngine

__all__ = ["QueryServer", "make_server"]


def parse_as(value: str):
    """An AS query parameter: int when it looks like one, else the string."""
    try:
        return int(value)
    except ValueError:
        return value


class _BadRequest(ValueError):
    """Malformed query parameters -> HTTP 400."""


def _single(params: dict, name: str) -> str:
    values = params.get(name)
    if not values or not values[0]:
        raise _BadRequest(f"missing required query parameter {name!r}")
    if len(values) > 1:
        raise _BadRequest(f"query parameter {name!r} given more than once")
    return values[0]


class QueryServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` bound to one lookup engine."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        engine: LookupEngine,
        *,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        super().__init__(address, _QueryRequestHandler)
        self.engine = engine
        self.tracer = tracer if tracer is not None else engine.tracer
        self.metrics = metrics if metrics is not None else engine.metrics
        self.lock = threading.Lock()
        #: When set, the server shuts itself down after this many
        #: requests — a deterministic stop for smoke tests and CI.
        self.max_requests: int | None = None
        self._served = 0

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _QueryRequestHandler(BaseHTTPRequestHandler):
    server_version = "repro-query"
    protocol_version = "HTTP/1.1"
    server: QueryServer

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        url = urlparse(self.path)
        params = parse_qs(url.query)
        route = getattr(self, f"_route_{url.path.strip('/').replace('-', '_')}", None)
        server = self.server
        with server.lock:
            with server.tracer.span("query.request", path=url.path) as span:
                server.metrics.inc("query.requests")
                try:
                    if route is None:
                        raise KeyError(f"no such endpoint: {url.path}")
                    status, payload = 200, route(params)
                except _BadRequest as exc:
                    status, payload = 400, {"error": str(exc)}
                except KeyError as exc:
                    status, payload = 404, {"error": str(exc).strip("'\"")}
                except ValueError as exc:
                    status, payload = 400, {"error": str(exc)}
                if status != 200:
                    server.metrics.inc("query.errors")
                span.set("status", status)
            server._served += 1
            drained = (
                server.max_requests is not None and server._served >= server.max_requests
            )
        self._reply(status, payload)
        if drained:
            # shutdown() blocks until serve_forever exits; hop threads
            # so this response finishes first.
            threading.Thread(target=server.shutdown, daemon=True).start()

    def _reply(self, status: int, payload: dict | list) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:
        """Silence the default stderr access log; metrics carry traffic."""

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def _route_health(self, params: dict) -> dict:
        artifact = self.server.engine.artifact
        return {
            "status": "ok",
            "communities": artifact.n_communities,
            "nodes": artifact.n_nodes,
            "checksum": artifact.fingerprint.get("checksum"),
        }

    def _route_artifact(self, params: dict) -> dict:
        return self.server.engine.info()

    def _route_membership(self, params: dict) -> dict:
        node = parse_as(_single(params, "as"))
        memberships = self.server.engine.memberships(node)
        return {
            "as": node,
            "memberships": {str(k): labels for k, labels in memberships.items()},
        }

    def _route_band(self, params: dict) -> dict:
        return self.server.engine.band(parse_as(_single(params, "as")))

    def _route_lca(self, params: dict) -> dict:
        a = parse_as(_single(params, "a"))
        b = parse_as(_single(params, "b"))
        record = self.server.engine.lowest_common(a, b)
        return {"a": a, "b": b, "lca": record}

    def _route_top(self, params: dict) -> dict:
        metric = _single(params, "metric") if "metric" in params else "density"
        try:
            n = int(_single(params, "n")) if "n" in params else 10
            k = int(_single(params, "k")) if "k" in params else None
        except ValueError as exc:
            raise _BadRequest(f"n and k must be integers: {exc}") from exc
        return {"metric": metric, "k": k, "communities": self.server.engine.top(metric, n, k)}

    def _route_community(self, params: dict) -> dict:
        label = _single(params, "label")
        members = params.get("members", ["0"])[0] not in ("", "0", "false")
        return self.server.engine.community(label, members=members)


def make_server(
    artifact: QueryArtifact | LookupEngine,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> QueryServer:
    """Bind a :class:`QueryServer` (``port=0`` picks a free port).

    ``artifact`` may be a loaded :class:`QueryArtifact` or an existing
    :class:`LookupEngine`.  The caller drives ``serve_forever()`` /
    ``shutdown()``; the server is also a context manager (from
    ``socketserver``), closing its socket on exit.
    """
    if isinstance(artifact, LookupEngine):
        engine = artifact
    else:
        engine = LookupEngine(
            artifact,
            tracer=tracer if tracer is not None else NULL_TRACER,
            metrics=metrics,
        )
    return QueryServer((host, port), engine, tracer=tracer, metrics=metrics)
