"""Extension — cross-check against the sibling paper [12].

The same authors analysed the same topology with the k-dense
decomposition ("k-dense Communities in the Internet AS-Level Topology",
COMSNETS 2011).  The two methods must tell one consistent story on one
dataset: CPM(k) ⊆ dense(k) ⊆ core(k-1) at every order, the innermost
zones of both are the IXP fabric, and k-dense is the coarser lens
(bigger innermost zone, smaller maximum order).
"""

from repro.analysis.kdense_compare import compare_with_kdense
from repro.report.figures import ascii_table


def test_kdense_sibling_crosscheck(benchmark, context, emit):
    comparison = benchmark.pedantic(
        lambda: compare_with_kdense(context, max_dense_k=12), rounds=1, iterations=1
    )
    rows = []
    for k in sorted(set(comparison.clique_counts) | set(comparison.dense_counts)):
        if k > 14 and k not in comparison.dense_counts:
            continue
        rows.append(
            [
                k,
                comparison.clique_counts.get(k, 0),
                comparison.dense_counts.get(k, "-"),
            ]
        )
    table = ascii_table(
        ["k", "k-clique communities", "k-dense communities"],
        rows,
        title="This paper vs its sibling [12]: per-order community counts",
    )
    footer = (
        f"max order: clique {comparison.clique_max_k} vs dense {comparison.dense_max_k}; "
        f"sandwich CPM ⊆ dense ⊆ core holds: {comparison.sandwich_holds}; "
        f"innermost dense zone: {comparison.innermost_dense_size} ASes "
        f"({comparison.innermost_dense_on_ixp_fraction:.0%} on-IXP) vs "
        f"CPM apex {comparison.apex_size} ASes "
        f"({comparison.apex_on_ixp_fraction:.0%} on-IXP)"
    )
    emit("kdense_sibling", f"{table}\n{footer}")

    assert comparison.sandwich_holds
    assert comparison.dense_is_coarser
    assert comparison.innermost_dense_on_ixp_fraction > 0.5
    assert comparison.apex_on_ixp_fraction > 0.8
