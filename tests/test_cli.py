"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.graph import Graph, write_edgelist
from repro.topology import ASDataset


@pytest.fixture(scope="module")
def saved_dataset(tmp_path_factory, tiny_dataset):
    path = tmp_path_factory.mktemp("data") / "bundle"
    tiny_dataset.save(path)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("generate", "communities", "tree", "paper"):
            args = parser.parse_args(
                [command] + ([] if command == "paper" else ["x"])
            )
            assert args.command == command


class TestGenerate:
    def test_generates_and_saves(self, tmp_path, capsys):
        out = tmp_path / "ds"
        assert main(["generate", str(out), "--profile", "tiny", "--seed", "5"]) == 0
        assert (out / "topology.edges").exists()
        loaded = ASDataset.load(out)
        assert loaded.n_ases > 100
        assert "wrote" in capsys.readouterr().out


class TestCommunities:
    def test_on_dataset_directory(self, saved_dataset, capsys):
        assert main(["communities", saved_dataset, "--max-k", "4"]) == 0
        out = capsys.readouterr().out
        assert "maximal cliques:" in out
        assert "k=3:" in out

    def test_members_flag(self, saved_dataset, capsys):
        args = ["communities", saved_dataset, "--min-k", "4", "--max-k", "4", "--members"]
        assert main(args) == 0
        assert "k4id0" in capsys.readouterr().out

    def test_on_bare_edgelist(self, tmp_path, capsys):
        g = Graph([(1, 2), (2, 3), (1, 3), (3, 4), (4, 5), (3, 5)])
        path = tmp_path / "graph.edges"
        write_edgelist(g, path)
        assert main(["communities", str(path)]) == 0
        # Two triangles sharing a single node stay separate at k = 3.
        assert "k=3: 2 communities" in capsys.readouterr().out


class TestTree:
    def test_ascii(self, saved_dataset, capsys):
        assert main(["tree", saved_dataset]) == 0
        out = capsys.readouterr().out
        assert "k2id0" in out

    def test_dot(self, saved_dataset, capsys):
        assert main(["tree", saved_dataset, "--format", "dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph")


class TestPaper:
    def test_paper_on_saved_dataset(self, saved_dataset, capsys):
        assert main(["paper", "--dataset", saved_dataset]) == 0
        out = capsys.readouterr().out
        assert "Table 2.1" in out
        assert "Figure 4.1" in out


class TestStats:
    def test_stats_table(self, saved_dataset, capsys):
        assert main(["stats", saved_dataset]) == 0
        out = capsys.readouterr().out
        assert "power-law alpha" in out
        assert "assortativity" in out


class TestEvolve:
    def test_evolve_tiny(self, capsys):
        assert main(["evolve", "--profile", "tiny", "--seed", "7",
                     "--snapshots", "3", "-k", "4"]) == 0
        out = capsys.readouterr().out
        assert "growth:" in out
        assert "birth:" in out


class TestExport:
    def test_export_and_reload(self, saved_dataset, tmp_path, capsys):
        out_path = tmp_path / "hierarchy.json"
        assert main(["export", saved_dataset, str(out_path), "--max-k", "5"]) == 0
        assert "communities" in capsys.readouterr().out
        from repro.core import load_hierarchy

        hierarchy = load_hierarchy(out_path)
        assert hierarchy.max_k == 5
        assert hierarchy.total_communities > 0


class TestGraphmlCommand:
    def test_export(self, saved_dataset, tmp_path, capsys):
        out = tmp_path / "topo.graphml"
        assert main(["graphml", saved_dataset, str(out), "-k", "4"]) == 0
        assert out.exists()
        import xml.etree.ElementTree as ET

        ET.fromstring(out.read_text())

    def test_tree_dot_with_bands(self, saved_dataset, capsys):
        assert main(["tree", saved_dataset, "--format", "dot", "--bands"]) == 0
        out = capsys.readouterr().out
        assert "rank=same" in out
        assert "fillcolor" in out


class TestErrorHandling:
    def test_missing_dataset_is_clean_error(self, capsys):
        assert main(["communities", "/no/such/place"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_config_is_clean_error(self, tmp_path, capsys):
        assert main(["generate", str(tmp_path / "x"), "--config", "/no/cfg.json"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_edgelist_is_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.edges"
        bad.write_text("not an edge list\n")
        assert main(["communities", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err


class TestCheckpointFlags:
    def test_communities_with_checkpoint_dir(self, saved_dataset, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        args = ["communities", saved_dataset, "--max-k", "4", "--checkpoint-dir", str(ckpt)]
        assert main(args) == 0
        assert (ckpt / "percolate.pickle").exists()
        assert (ckpt / "META.json").exists()

    def test_resume_from_checkpoint(self, saved_dataset, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        base = ["communities", saved_dataset, "--max-k", "4", "--checkpoint-dir", str(ckpt)]
        assert main(base) == 0
        first = capsys.readouterr().out
        assert main(base + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert "resumed from checkpoint:" in second
        # Community output identical to the uninterrupted run.
        assert first.splitlines()[-1] == second.splitlines()[-1]

    def test_resume_requires_checkpoint_dir(self, saved_dataset, capsys):
        assert main(["communities", saved_dataset, "--resume"]) == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_resume_with_mismatched_checkpoint_is_clean_error(
        self, saved_dataset, tmp_path, capsys
    ):
        ckpt = tmp_path / "ckpt"
        base = ["communities", saved_dataset, "--max-k", "4", "--checkpoint-dir", str(ckpt)]
        assert main(base) == 0
        capsys.readouterr()
        # Same directory, different kernel: META no longer matches.
        assert main(base + ["--resume", "--kernel", "set"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "refusing to resume" in err

    def test_resume_with_corrupt_meta_is_clean_error(self, saved_dataset, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        base = ["communities", saved_dataset, "--max-k", "4", "--checkpoint-dir", str(ckpt)]
        assert main(base) == 0
        (ckpt / "META.json").write_text("{torn", encoding="utf-8")
        capsys.readouterr()
        assert main(base + ["--resume"]) == 2
        assert "unreadable" in capsys.readouterr().err

    def test_export_with_checkpoint_and_stats_block(self, saved_dataset, tmp_path, capsys):
        out_path = tmp_path / "result.json"
        ckpt = tmp_path / "ckpt"
        args = ["export", saved_dataset, str(out_path), "--max-k", "4",
                "--checkpoint-dir", str(ckpt)]
        assert main(args) == 0
        from repro.api import load_result

        result = load_result(out_path)
        assert result.stats.n_cliques > 0
        assert result.hierarchy.max_k == 4

    def test_runner_policy_flags_parse(self, saved_dataset, capsys):
        args = ["communities", saved_dataset, "--max-k", "4",
                "--batch-timeout", "30", "--max-retries", "1"]
        assert main(args) == 0
        assert "total communities:" in capsys.readouterr().out


class TestAtlasCommand:
    def test_atlas_renders(self, saved_dataset, capsys):
        assert main(["atlas", saved_dataset, "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "IXP atlas" in out
        assert "Country atlas" in out
        assert "AMS-IX" in out
