"""Sharded CPM pipeline: degeneracy-partitioned enumeration, i-shard
bucketed overlap counting and boundary-stitched percolation.

``repro.shard`` scales :class:`~repro.core.lightweight
.LightweightParallelCPM` past single-process task parallelism: the
``shards`` knob (``run_cpm(..., shards=4)`` / ``--shards auto``)
partitions every phase's *data* across workers while keeping outputs
byte-identical to the serial path.  See :mod:`.plan` for the
partitioning scheme, :mod:`.workers` for the worker-side memory model
and :mod:`.pipeline` for the stitching arguments; docs/performance.md
covers when sharding wins (and when it loses at small scale).
"""

from .plan import ShardPlan, plan_shards, resolve_shards

__all__ = ["ShardPlan", "plan_shards", "resolve_shards"]
