"""Unit tests for topology snapshots and community tracking."""

import pytest

from repro.evolution import EventKind, EvolutionTracker, TopologyEvolution
from repro.graph import Graph, complete_graph
from repro.topology import GeneratorConfig


class TestTopologyEvolution:
    @pytest.fixture(scope="class")
    def evolution(self):
        return TopologyEvolution(GeneratorConfig.tiny(), seed=7, n_snapshots=4)

    def test_snapshot_times(self, evolution):
        assert evolution.snapshot_times() == [0.0, pytest.approx(1 / 3, abs=1e-4),
                                              pytest.approx(2 / 3, abs=1e-4), 1.0]

    def test_growth_is_monotone(self, evolution):
        series = evolution.growth_series()
        nodes = [n for _, n, _ in series]
        edges = [m for _, _, m in series]
        assert nodes == sorted(nodes)
        assert edges == sorted(edges)

    def test_final_snapshot_is_full_graph(self, evolution):
        final = evolution.snapshot(1.0)
        assert final.number_of_nodes == evolution.dataset.graph.number_of_nodes

    def test_core_born_first(self, evolution):
        """Tier-1s and pool carriers predate the window; stubs spread."""
        roles = evolution.dataset.notes["roles"]
        early = evolution.snapshot(0.0)
        assert early.number_of_nodes >= roles["tier1"]

    def test_deterministic(self):
        a = TopologyEvolution(GeneratorConfig.tiny(), seed=9, n_snapshots=3)
        b = TopologyEvolution(GeneratorConfig.tiny(), seed=9, n_snapshots=3)
        assert a.birth_time == b.birth_time

    def test_too_few_snapshots_rejected(self):
        with pytest.raises(ValueError):
            TopologyEvolution(GeneratorConfig.tiny(), n_snapshots=1)


def _clique_on(nodes) -> list[tuple]:
    nodes = list(nodes)
    return [(u, v) for i, u in enumerate(nodes) for v in nodes[i + 1 :]]


class TestEvolutionTrackerSynthetic:
    """Hand-built snapshot sequences with known event structure."""

    def test_stable_continuation(self):
        g1 = Graph(_clique_on(range(5)))
        g2 = Graph(_clique_on(range(5)))
        tracker = EvolutionTracker([g1, g2], k=4)
        counts = tracker.event_counts()
        assert counts[EventKind.STABLE] == 1
        assert counts[EventKind.BIRTH] == 0
        assert counts[EventKind.DEATH] == 0

    def test_growth_event(self):
        g1 = Graph(_clique_on(range(4)))
        g2 = Graph(_clique_on(range(8)))
        tracker = EvolutionTracker([g1, g2], k=4)
        assert tracker.event_counts()[EventKind.GROWTH] == 1

    def test_birth_event(self):
        g1 = Graph(_clique_on(range(4)))
        g2 = Graph(_clique_on(range(4)) + _clique_on(range(10, 14)))
        tracker = EvolutionTracker([g1, g2], k=4)
        counts = tracker.event_counts()
        assert counts[EventKind.BIRTH] == 1
        assert counts[EventKind.STABLE] == 1
        assert len(tracker.timelines) == 2

    def test_death_event(self):
        g1 = Graph(_clique_on(range(4)) + _clique_on(range(10, 14)))
        g2 = Graph(_clique_on(range(4)))
        g2.add_nodes_from(range(10, 14))
        tracker = EvolutionTracker([g1, g2], k=4)
        assert tracker.event_counts()[EventKind.DEATH] == 1

    def test_merge_event(self):
        # Two 4-cliques fuse into one 8-clique.
        g1 = Graph(_clique_on(range(4)) + _clique_on(range(4, 8)))
        g2 = Graph(_clique_on(range(8)))
        tracker = EvolutionTracker([g1, g2], k=4)
        merges = [e for e in tracker.events if e.kind is EventKind.MERGE]
        assert len(merges) == 1
        assert len(merges[0].before) == 2

    def test_split_event(self):
        g1 = Graph(_clique_on(range(8)))
        g2 = Graph(_clique_on(range(4)) + _clique_on(range(4, 8)))
        tracker = EvolutionTracker([g1, g2], k=4)
        splits = [e for e in tracker.events if e.kind is EventKind.SPLIT]
        assert len(splits) == 1
        assert len(splits[0].after) == 2

    def test_timeline_path(self):
        g1 = Graph(_clique_on(range(4)))
        g2 = Graph(_clique_on(range(6)))
        g3 = Graph(_clique_on(range(6)))
        tracker = EvolutionTracker([g1, g2, g3], k=4)
        timeline = tracker.longest_timeline()
        assert [step for step, _, _ in timeline.path] == [0, 1, 2]
        assert timeline.sizes() == [4, 6, 6]
        assert timeline.born_at == 0 and timeline.last_seen == 2

    def test_snapshot_without_k_cliques(self):
        g1 = Graph([(0, 1), (1, 2)])  # no 4-clique at all
        g2 = Graph(_clique_on(range(4)))
        tracker = EvolutionTracker([g1, g2], k=4)
        assert tracker.event_counts()[EventKind.BIRTH] == 1

    def test_needs_two_snapshots(self):
        with pytest.raises(ValueError):
            EvolutionTracker([complete_graph(4)], k=3)


class TestEvolutionTrackerOnGenerator:
    def test_tracks_growing_internet(self):
        evolution = TopologyEvolution(GeneratorConfig.tiny(), seed=7, n_snapshots=4)
        tracker = EvolutionTracker(evolution.snapshots(), k=4)
        counts = tracker.event_counts()
        # A growing Internet: births dominate deaths, growth happens.
        assert counts[EventKind.BIRTH] > counts[EventKind.DEATH]
        assert counts[EventKind.GROWTH] >= 1
        # Some community persists across all snapshots where k-cliques
        # exist (the IXP core).
        longest = tracker.longest_timeline()
        assert len(longest.path) >= 3


class TestStrategyParity:
    """Replay and incremental strategies are interchangeable."""

    @pytest.fixture(scope="class")
    def snapshots(self):
        return TopologyEvolution(
            GeneratorConfig.tiny(), seed=7, n_snapshots=4
        ).snapshots()

    def test_unknown_strategy_rejected(self, snapshots):
        with pytest.raises(ValueError, match="strategy"):
            EvolutionTracker(snapshots, k=4, strategy="telepathy")

    def test_identical_covers_events_timelines_updates(self, snapshots):
        incremental = EvolutionTracker(snapshots, k=4, strategy="incremental")
        replay = EvolutionTracker(snapshots, k=4, strategy="replay")
        assert incremental.covers == replay.covers
        assert incremental.events == replay.events
        assert [t.path for t in incremental.timelines] == [
            t.path for t in replay.timelines
        ]
        assert incremental.updates == replay.updates

    def test_updates_report_per_transition_changes(self, snapshots):
        tracker = EvolutionTracker(snapshots, k=4)
        assert len(tracker.updates) == len(snapshots) - 1
        assert [u.batch for u in tracker.updates] == [0, 1, 2]
        # a growing topology inserts edges and births communities
        assert all(u.inserted_edges > 0 for u in tracker.updates)
        assert any(
            change.kind == "born" for u in tracker.updates for change in u.changes
        )

    def test_default_strategy_is_incremental(self, snapshots):
        assert EvolutionTracker(snapshots, k=4).strategy == "incremental"
